package edram_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edram"
	"edram/internal/service"
)

// TestCLIServiceParity drives the real edramx binary with -json and the
// real service stack over loopback HTTP, and requires the two outputs
// to be byte-identical — the CLI and the daemon share one schema and
// one encoder, and this test keeps them from drifting apart.
func TestCLIServiceParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := filepath.Join(t.TempDir(), "edramx")
	build := exec.Command("go", "build", "-o", bin, "./cmd/edramx")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building edramx: %v\n%s", err, out)
	}
	cli := exec.Command(bin, "-capacity", "16", "-bandwidth", "1", "-hitrate", "0.5", "-quiet", "-json")
	cliOut, err := cli.Output()
	if err != nil {
		t.Fatalf("edramx -json: %v", err)
	}

	srv := edram.NewService(edram.ServiceConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	servErr := make(chan error, 1)
	go func() {
		servErr <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-servErr:
		t.Fatalf("server did not start: %v", err)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	// The body mirrors the CLI flags exactly, including edramx's
	// default defect density.
	resp, err := client.Post(base+"/v1/explore", "application/json",
		strings.NewReader(`{"capacity_mbit":16,"bandwidth_gbps":1,"hit_rate":0.5,"defects_per_cm2":0.8}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	svcOut, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, svcOut)
	}

	if string(cliOut) != string(svcOut) {
		t.Errorf("edramx -json and POST /v1/explore bodies differ:\n cli: %.200s\n svc: %.200s", cliOut, svcOut)
	}
}

// TestFacadeServiceTypes pins the facade re-exports: the wire types and
// builders are reachable from the root package and produce the same
// encoding as the internal layer.
func TestFacadeServiceTypes(t *testing.T) {
	req := edram.Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5}
	got, err := edram.BuildExploreResponse(context.Background(), req, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := service.BuildExplore(context.Background(), req, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := edram.EncodeResponse(got)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := service.Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gb) != string(wb) {
		t.Error("facade and internal encodings differ")
	}
	var _ *edram.ExploreResponse = got
}
