package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointFile is the on-disk ckpt/v1 record — one JSON file per
// job under Config.Dir, named <id>.json. The same file serves two
// lives: while the job runs it is the resumable checkpoint (request +
// runner state at the last watermark); once terminal it is the job
// record (status + result or error), so restarts answer GETs for
// finished jobs without re-running anything.
//
// Result is []byte rather than json.RawMessage on purpose: RawMessage
// round-trips through encoding/json compaction, which would strip the
// trailing newline Encode appends and break the byte-parity contract.
// Base64 preserves the result bytes exactly.
type checkpointFile struct {
	FormatVersion int             `json:"format_version"`
	ID            string          `json:"id"`
	Kind          string          `json:"kind"`
	Key           string          `json:"canonical_key"`
	Status        State           `json:"status"`
	Request       json.RawMessage `json:"request"`
	State         json.RawMessage `json:"state,omitempty"`
	Progress      Progress        `json:"progress"`
	Error         string          `json:"error,omitempty"`
	Result        []byte          `json:"result,omitempty"`
}

func (s *Store) path(id string) string {
	return filepath.Join(s.cfg.Dir, id+".json")
}

// persist writes the job's current record atomically (tmp + rename):
// readers — including a restarted daemon's Resume scan — only ever see
// a complete file at some watermark, never a torn write.
func (s *Store) persist(j *Job) error {
	if s.cfg.Dir == "" {
		return nil
	}
	s.mu.Lock()
	if j.removed {
		s.mu.Unlock()
		return nil
	}
	rec := checkpointFile{
		FormatVersion: FormatVersion,
		ID:            j.ID,
		Kind:          j.Kind,
		Key:           j.Key,
		Status:        j.state,
		Request:       j.request,
		State:         j.resumed,
		Progress:      j.progress,
		Error:         j.errMsg,
		Result:        j.result,
	}
	s.mu.Unlock()

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encode checkpoint %s: %w", j.ID, err)
	}
	final := s.path(j.ID)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobs: write checkpoint %s: %w", j.ID, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("jobs: commit checkpoint %s: %w", j.ID, err)
	}
	return nil
}

func (s *Store) removeFile(id string) {
	if s.cfg.Dir == "" {
		return
	}
	_ = os.Remove(s.path(id))
	_ = os.Remove(s.path(id) + ".tmp")
}

// Resume scans the checkpoint directory and rebuilds the store's
// entries: terminal records become queryable terminal jobs; running
// records are restarted through the resolver with their persisted
// state handed to the runner via Handle.Resumed. Files from another
// format version or with unresolvable kinds are left on disk and
// reported, never deleted. Call once, after NewStore and before
// serving traffic.
func (s *Store) Resume(resolve Resolver) (restarted int, err error) {
	if s.cfg.Dir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return 0, fmt.Errorf("jobs: scan checkpoint dir: %w", err)
	}
	var errs []error
	for _, e := range entries { // ReadDir sorts by name: deterministic order
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.Dir, name))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		var rec checkpointFile
		if err := json.Unmarshal(data, &rec); err != nil {
			errs = append(errs, fmt.Errorf("jobs: checkpoint %s: %w", name, err))
			continue
		}
		if rec.FormatVersion != FormatVersion {
			errs = append(errs, fmt.Errorf("jobs: checkpoint %s: format_version %d, want %d", name, rec.FormatVersion, FormatVersion))
			continue
		}
		if !idPattern.MatchString(rec.ID) || name != rec.ID+".json" {
			errs = append(errs, fmt.Errorf("jobs: checkpoint %s: id %q does not match file", name, rec.ID))
			continue
		}

		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			errs = append(errs, ErrClosed)
			break
		}
		if _, dup := s.jobs[rec.ID]; dup {
			s.mu.Unlock()
			continue
		}
		if rec.Status.Terminal() {
			j := s.newJobLocked(rec.ID, rec.Kind, rec.Key, rec.Request, nil)
			j.state = rec.Status
			j.errMsg = rec.Error
			j.result = rec.Result
			j.progress = rec.Progress
			j.checkpoints = rec.Progress.Checkpoints
			close(j.done)
			s.mu.Unlock()
			continue
		}
		run, rerr := resolve(rec.Kind, rec.Request)
		if rerr != nil {
			s.mu.Unlock()
			errs = append(errs, fmt.Errorf("jobs: checkpoint %s: %w", name, rerr))
			continue
		}
		j := s.newJobLocked(rec.ID, rec.Kind, rec.Key, rec.Request, rec.State)
		j.progress = rec.Progress
		j.checkpoints = rec.Progress.Checkpoints
		s.launchLocked(j, run)
		restarted++
		s.mu.Unlock()
	}
	return restarted, errors.Join(errs...)
}
