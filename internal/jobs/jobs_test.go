package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edram/internal/testleak"
)

func TestMain(m *testing.M) { testleak.Check(m) }

func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(5 * time.Second); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func waitTerminal(t *testing.T, s *Store, id string) Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return snap
}

func TestSubmitRunResult(t *testing.T) {
	s := newTestStore(t, Config{Dir: t.TempDir()})
	snap, created, err := s.Submit("job1", "test", "k1", json.RawMessage(`{"n":1}`),
		func(ctx context.Context, h *Handle) ([]byte, error) {
			h.SetProgress(Progress{Done: 1, Total: 1})
			return []byte("payload\n"), nil
		})
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if snap.State != StateRunning {
		t.Errorf("fresh job state = %s", snap.State)
	}
	snap = waitTerminal(t, s, "job1")
	if snap.State != StateSucceeded || !snap.HasResult {
		t.Fatalf("terminal snapshot: %+v", snap)
	}
	if snap.Progress.Done != 1 || snap.Progress.Total != 1 {
		t.Errorf("progress not published: %+v", snap.Progress)
	}
	res, ok := s.Result("job1")
	if !ok || string(res) != "payload\n" {
		t.Errorf("result = %q ok=%v", res, ok)
	}
	req, ok := s.Request("job1")
	if !ok || string(req) != `{"n":1}` {
		t.Errorf("request = %s ok=%v", req, ok)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	s := newTestStore(t, Config{})
	release := make(chan struct{})
	blocking := func(ctx context.Context, h *Handle) ([]byte, error) {
		select {
		case <-release:
			return []byte("done"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if _, created, err := s.Submit("dup", "test", "k", nil, blocking); err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	snap, created, err := s.Submit("dup", "test", "k", nil, blocking)
	if err != nil || created {
		t.Fatalf("second submit: created=%v err=%v", created, err)
	}
	if snap.State != StateRunning {
		t.Errorf("attached snapshot state = %s", snap.State)
	}
	close(release)
	waitTerminal(t, s, "dup")
}

func TestDeleteCancelsPromptly(t *testing.T) {
	s := newTestStore(t, Config{Dir: t.TempDir()})
	cancelled := make(chan struct{})
	if _, _, err := s.Submit("victim", "test", "k", nil,
		func(ctx context.Context, h *Handle) ([]byte, error) {
			<-ctx.Done()
			close(cancelled)
			return nil, ctx.Err()
		}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("victim"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("runner never observed cancellation")
	}
	if _, ok := s.Get("victim"); ok {
		t.Error("deleted job still visible")
	}
	if err := s.Delete("victim"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete: %v", err)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.Dir, "victim.json")); !os.IsNotExist(err) {
		t.Errorf("checkpoint file survived delete: %v", err)
	}
}

func TestOverloadBounds(t *testing.T) {
	s := newTestStore(t, Config{MaxJobs: 2, MaxActive: 1})
	release := make(chan struct{})
	blocking := func(ctx context.Context, h *Handle) ([]byte, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if _, _, err := s.Submit("a", "test", "k", nil, blocking); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit("b", "test", "k", nil, blocking); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over MaxActive: %v", err)
	}
	close(release)
	waitTerminal(t, s, "a")

	// Fill to MaxJobs with terminal entries, then verify eviction
	// makes room and preserves the newer entry.
	quick := func(ctx context.Context, h *Handle) ([]byte, error) { return nil, nil }
	if _, _, err := s.Submit("c", "test", "k", nil, quick); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, "c")
	if _, _, err := s.Submit("d", "test", "k", nil, quick); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, "d")
	if _, ok := s.Get("a"); ok {
		t.Error("oldest terminal job not evicted at cap")
	}
	list := s.List()
	if len(list) != 2 || list[0].ID != "c" || list[1].ID != "d" {
		t.Errorf("list after eviction: %+v", list)
	}
	// Eviction must also reap the checkpoint file (after releasing the
	// store lock — the disk delete no longer runs under s.mu).
	if _, err := os.Stat(filepath.Join(s.cfg.Dir, "a.json")); !os.IsNotExist(err) {
		t.Errorf("evicted job's checkpoint file survived: %v", err)
	}
}

func TestInvalidID(t *testing.T) {
	s := newTestStore(t, Config{Dir: t.TempDir()})
	for _, id := range []string{"", "../escape", "a/b", "x.json", strings.Repeat("z", 200)} {
		if _, _, err := s.Submit(id, "test", "k", nil, nil); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestFailedJobRecordsError(t *testing.T) {
	s := newTestStore(t, Config{Dir: t.TempDir()})
	if _, _, err := s.Submit("boom", "test", "k", nil,
		func(ctx context.Context, h *Handle) ([]byte, error) {
			return nil, errors.New("melted")
		}); err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, s, "boom")
	if snap.State != StateFailed || snap.Error != "melted" {
		t.Errorf("failed snapshot: %+v", snap)
	}
	if _, ok := s.Result("boom"); ok {
		t.Error("failed job served a result")
	}
}

// TestCheckpointResume is the package-level resume contract: a store
// shut down mid-job leaves a running checkpoint on disk; a new store
// over the same directory restarts the job with the persisted state,
// and once terminal, a third store serves the outcome without
// resolving a runner at all.
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := make(chan struct{})
	s1.OnCheckpoint = func(id string, n int) {
		if n == 1 {
			close(checkpointed)
		}
	}
	if _, _, err := s1.Submit("resume-me", "test", "key9", json.RawMessage(`{"want":"it"}`),
		func(ctx context.Context, h *Handle) ([]byte, error) {
			if err := h.Checkpoint(json.RawMessage(`{"watermark":7}`)); err != nil {
				return nil, err
			}
			<-ctx.Done() // simulate a long tail the shutdown interrupts
			return nil, ctx.Err()
		}); err != nil {
		t.Fatal(err)
	}
	<-checkpointed
	if err := s1.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Restart: the resolver sees the original request; the runner sees
	// the checkpointed state and finishes from it.
	s2 := newTestStore(t, Config{Dir: dir})
	restarted, err := s2.Resume(func(kind string, req json.RawMessage) (RunFunc, error) {
		var got struct {
			Want string `json:"want"`
		}
		// The file is written indented, so compare the request
		// semantically, not byte-for-byte.
		if err := json.Unmarshal(req, &got); err != nil || kind != "test" || got.Want != "it" {
			t.Errorf("resolver saw kind=%q req=%s err=%v", kind, req, err)
		}
		return func(ctx context.Context, h *Handle) ([]byte, error) {
			var st struct {
				Watermark int `json:"watermark"`
			}
			if err := json.Unmarshal(h.Resumed(), &st); err != nil {
				return nil, err
			}
			if st.Watermark != 7 {
				t.Errorf("resumed watermark = %d", st.Watermark)
			}
			return []byte("finished-from-7\n"), nil
		}, nil
	})
	if err != nil || restarted != 1 {
		t.Fatalf("resume: restarted=%d err=%v", restarted, err)
	}
	snap := waitTerminal(t, s2, "resume-me")
	if snap.State != StateSucceeded || snap.Key != "key9" {
		t.Fatalf("resumed terminal snapshot: %+v", snap)
	}
	res, _ := s2.Result("resume-me")
	if string(res) != "finished-from-7\n" {
		t.Errorf("resumed result = %q", res)
	}
	if err := s2.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Third life: terminal record is served straight from disk; the
	// resolver must not be consulted.
	s3 := newTestStore(t, Config{Dir: dir})
	restarted, err = s3.Resume(func(kind string, req json.RawMessage) (RunFunc, error) {
		t.Error("resolver called for terminal checkpoint")
		return nil, errors.New("unreachable")
	})
	if err != nil || restarted != 0 {
		t.Fatalf("terminal resume: restarted=%d err=%v", restarted, err)
	}
	res, ok := s3.Result("resume-me")
	if !ok || string(res) != "finished-from-7\n" {
		t.Errorf("terminal record result = %q ok=%v", res, ok)
	}
}

// TestResumeRejectsForeignFormats: version bumps and mismatched ids
// are surfaced, not silently swallowed or deleted.
func TestResumeRejectsForeignFormats(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("future.json", `{"format_version":99,"id":"future","kind":"test","status":"succeeded"}`)
	write("liar.json", `{"format_version":1,"id":"other","kind":"test","status":"succeeded"}`)
	write("garbage.json", `{nope`)
	write("ignored.txt", `not a checkpoint`)

	s := newTestStore(t, Config{Dir: dir})
	restarted, err := s.Resume(func(string, json.RawMessage) (RunFunc, error) {
		return nil, errors.New("no runners here")
	})
	if restarted != 0 {
		t.Errorf("restarted = %d", restarted)
	}
	if err == nil {
		t.Fatal("foreign checkpoints accepted silently")
	}
	for _, want := range []string{"format_version 99", "does not match", "garbage.json"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if len(s.List()) != 0 {
		t.Errorf("foreign records materialized: %+v", s.List())
	}
	// The files themselves must survive for operator inspection.
	for _, name := range []string{"future.json", "liar.json", "garbage.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s removed: %v", name, err)
		}
	}
}

func TestCloseCancelsRunning(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	observed := make(chan struct{})
	if _, _, err := s.Submit("longhaul", "test", "k", nil,
		func(ctx context.Context, h *Handle) ([]byte, error) {
			if err := h.Checkpoint(json.RawMessage(`{"at":3}`)); err != nil {
				return nil, err
			}
			<-ctx.Done()
			close(observed)
			return nil, ctx.Err()
		}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	<-observed
	// Shutdown-cancelled: checkpoint stays on disk, still status
	// running, so the next life resumes it.
	data, err := os.ReadFile(filepath.Join(dir, "longhaul.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Status State `json:"status"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != StateRunning {
		t.Errorf("post-shutdown checkpoint status = %s, want running", rec.Status)
	}
	if _, _, err := s.Submit("late", "test", "k", nil, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v", err)
	}
}
