// Package jobs is the async-job machinery behind the service layer's
// POST /v1/jobs API: a bounded in-memory job store whose entries run
// one goroutine each, report progress, cancel cooperatively, and
// persist resumable checkpoints to disk so a killed or restarted
// daemon picks long-running work back up where the last checkpoint
// left it.
//
// The package is deliberately generic: a job is (id, kind, canonical
// key, raw request, RunFunc). What a checkpoint's state means — a Seq
// watermark plus a partial Pareto frontier for explores, a trial
// watermark plus per-trial summaries for reliability campaigns — is
// the runner's business (internal/service registers the runners). The
// store only guarantees the mechanics: bounded admission, atomic
// checkpoint files, cooperative cancellation, and deterministic
// listing/eviction order.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"sort"
	"sync"
	"time"
)

// FormatVersion is the checkpoint-file schema version (the ckpt/v1
// format documented in DESIGN.md §6). Meaning-changing edits to the
// file layout bump it; loaders reject files from another version
// rather than misread them.
const FormatVersion = 1

// State is a job's lifecycle state.
type State string

const (
	// StateRunning covers submission through completion (there is no
	// queued state: admission is bounded, so a stored job is either
	// executing or terminal).
	StateRunning State = "running"
	// StateSucceeded is terminal with a result.
	StateSucceeded State = "succeeded"
	// StateFailed is terminal with an error message.
	StateFailed State = "failed"
	// StateCancelled is terminal after a DELETE or a daemon shutdown
	// interrupted the run mid-flight (a shutdown-cancelled job's
	// checkpoint survives for resume).
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s != StateRunning }

// Progress is the wire-visible progress snapshot a runner publishes.
// Done/Total are in the runner's own unit (design points for explores,
// trials for reliability campaigns, hierarchy levels for scenarios).
type Progress struct {
	Done        int64 `json:"done"`
	Total       int64 `json:"total"`
	Built       int64 `json:"built,omitempty"`
	Infeasible  int64 `json:"infeasible,omitempty"`
	Pruned      int64 `json:"pruned,omitempty"`
	FrontSize   int   `json:"front_size,omitempty"`
	Checkpoints int   `json:"checkpoints"`
}

// RunFunc executes one job. ctx is cancelled by DELETE and by store
// shutdown; the function must return promptly then (returning
// ctx.Err() marks the job cancelled, anything else failed, nil
// succeeded with the returned bytes as the result). h carries the
// resumed checkpoint state and the progress/checkpoint callbacks.
type RunFunc func(ctx context.Context, h *Handle) ([]byte, error)

// Resolver maps a persisted job back to its RunFunc after a restart.
type Resolver func(kind string, req json.RawMessage) (RunFunc, error)

// Typed errors the HTTP layer maps onto statuses.
var (
	// ErrOverloaded: the store is at capacity with no evictable entry,
	// or every active slot is running — the 503 + Retry-After path.
	ErrOverloaded = errors.New("jobs: store overloaded")
	// ErrNotFound: no job under that id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrClosed: the store has shut down.
	ErrClosed = errors.New("jobs: store closed")
)

// idPattern bounds ids to path-safe characters: ids name checkpoint
// files, so anything else would be a traversal hazard.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{1,128}$`)

// Config tunes a Store; the zero value gets defaults.
type Config struct {
	// Dir is the checkpoint directory ("" disables persistence: jobs
	// then survive only as long as the process).
	Dir string
	// MaxJobs bounds the total stored entries, running or terminal
	// (default 64). At the cap, terminal jobs are evicted oldest-first;
	// if every entry is still running, submission sheds with
	// ErrOverloaded.
	MaxJobs int
	// MaxActive bounds concurrently running jobs (default 4). There is
	// no pending queue — beyond the bound, submission sheds with
	// ErrOverloaded, keeping overload behavior explicit instead of
	// building invisible backlog.
	MaxActive int
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 4
	}
	return c
}

// Job is one stored entry. All mutable fields are guarded by the
// owning store's mutex.
type Job struct {
	ID   string
	Kind string
	Key  string

	request     json.RawMessage
	state       State
	errMsg      string
	result      []byte
	progress    Progress
	resumed     json.RawMessage
	removed     bool
	seq         int64
	cancel      context.CancelFunc
	done        chan struct{}
	checkpoints int
}

// Snapshot is a race-free copy of a job's observable state.
type Snapshot struct {
	ID       string
	Kind     string
	Key      string
	State    State
	Error    string
	Progress Progress
	// HasResult is true when State is succeeded and result bytes are
	// available via Store.Result.
	HasResult bool
}

// Store is the bounded job registry. Construct with NewStore.
type Store struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int64
	active int
	closed bool

	ctx     context.Context
	cancels context.CancelFunc
	wg      sync.WaitGroup

	// OnCheckpoint, when set (tests only), observes every persisted
	// checkpoint — the hook resume/kill tests synchronize on. Set it
	// before the first Submit.
	OnCheckpoint func(id string, checkpoints int)
}

// NewStore builds a store. When cfg.Dir is non-empty it is created if
// missing.
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: checkpoint dir: %w", err)
		}
	}
	//nolint:edramvet/ctxflow // store-owned root: async jobs outlive the submitting request by design; Close cancels this ctx on drain
	ctx, cancel := context.WithCancel(context.Background())
	return &Store{
		cfg:     cfg,
		jobs:    map[string]*Job{},
		ctx:     ctx,
		cancels: cancel,
	}, nil
}

// Submit registers and starts a job. Submission is idempotent on id:
// an existing job (any state) is returned with created=false, so
// re-POSTing the same canonical request attaches to the prior run
// instead of duplicating work — the job-store analogue of request
// coalescing.
func (s *Store) Submit(id, kind, key string, req json.RawMessage, run RunFunc) (Snapshot, bool, error) {
	if !idPattern.MatchString(id) {
		return Snapshot{}, false, fmt.Errorf("jobs: invalid job id %q", id)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, false, ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		snap := j.snapshotLocked()
		s.mu.Unlock()
		return snap, false, nil
	}
	if s.active >= s.cfg.MaxActive {
		s.mu.Unlock()
		return Snapshot{}, false, fmt.Errorf("%w: %d jobs already running", ErrOverloaded, s.cfg.MaxActive)
	}
	var evicted string
	if len(s.jobs) >= s.cfg.MaxJobs {
		victim, ok := s.evictLocked()
		if !ok {
			s.mu.Unlock()
			return Snapshot{}, false, fmt.Errorf("%w: %d jobs stored, none evictable", ErrOverloaded, s.cfg.MaxJobs)
		}
		evicted = victim
	}
	j := s.newJobLocked(id, kind, key, req, nil)
	s.launchLocked(j, run)
	snap := j.snapshotLocked()
	s.mu.Unlock()

	// Disk work happens outside the lock: drop the evicted job's
	// checkpoint, then persist the birth record — a fresh running job
	// with no state yet, so a crash before the first checkpoint still
	// restarts the job after resume.
	if evicted != "" {
		s.removeFile(evicted)
	}
	s.persist(j)
	return snap, true, nil
}

// newJobLocked allocates and registers a job entry.
func (s *Store) newJobLocked(id, kind, key string, req, resumed json.RawMessage) *Job {
	s.seq++
	j := &Job{
		ID:      id,
		Kind:    kind,
		Key:     key,
		request: append(json.RawMessage(nil), req...),
		state:   StateRunning,
		resumed: resumed,
		seq:     s.seq,
		done:    make(chan struct{}),
	}
	s.jobs[id] = j
	return j
}

// launchLocked starts the runner goroutine for a registered job.
func (s *Store) launchLocked(j *Job, run RunFunc) {
	ctx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	s.active++
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		result, err := run(ctx, &Handle{store: s, job: j})

		s.mu.Lock()
		s.active--
		switch {
		case err == nil:
			j.state = StateSucceeded
			j.result = result
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			j.state = StateCancelled
			j.errMsg = "cancelled"
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
		}
		persistTerminal := !j.removed && j.state != StateCancelled
		s.mu.Unlock()

		// A cancelled job keeps its last checkpoint file untouched:
		// shutdown-cancelled work must resume from it after restart.
		// Success and failure overwrite the file with the terminal
		// record so restarts serve the outcome instead of re-running.
		if persistTerminal {
			s.persist(j)
		}
		close(j.done)
	}()
}

// evictLocked drops the oldest terminal job from the in-memory table
// and returns its id; the caller deletes the checkpoint file after
// releasing s.mu (disk I/O must not run under the lock — it would
// stall every snapshot read behind the filesystem). Map iteration
// feeds a sort, so eviction order is deterministic.
func (s *Store) evictLocked() (string, bool) {
	var terminal []*Job
	for _, j := range s.jobs {
		terminal = append(terminal, j)
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for _, j := range terminal {
		if j.state.Terminal() {
			j.removed = true
			delete(s.jobs, j.ID)
			return j.ID, true
		}
	}
	return "", false
}

// Get returns a snapshot of the job.
func (s *Store) Get(id string) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshotLocked(), true
}

// Result returns a succeeded job's exact result bytes.
func (s *Store) Result(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.state != StateSucceeded {
		return nil, false
	}
	return j.result, true
}

// Request returns the raw request a job was submitted with.
func (s *Store) Request(id string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return append(json.RawMessage(nil), j.request...), true
}

// Delete cancels a running job and removes the entry and its
// checkpoint file. Cancellation is cooperative: the runner observes
// its context and unwinds; Delete does not wait for it.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	j.removed = true
	delete(s.jobs, id)
	cancel := j.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.removeFile(id)
	return nil
}

// List returns snapshots in submission order.
func (s *Store) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	out := make([]Snapshot, len(all))
	for i, j := range all {
		out[i] = j.snapshotLocked()
	}
	return out
}

// Active is the number of currently running jobs.
func (s *Store) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Store) Wait(ctx context.Context, id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshotLocked(), nil
}

// Close cancels every running job and waits (bounded by timeout) for
// the runner goroutines to unwind. Cancelled jobs keep their last
// checkpoint, so a subsequent NewStore+Resume on the same directory
// continues them.
func (s *Store) Close(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancels()

	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("jobs: %d jobs still unwinding after %v", s.Active(), timeout)
	}
}

func (j *Job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:        j.ID,
		Kind:      j.Kind,
		Key:       j.Key,
		State:     j.state,
		Error:     j.errMsg,
		Progress:  j.progress,
		HasResult: j.state == StateSucceeded && len(j.result) > 0,
	}
}

// Handle is the runner's view of its job.
type Handle struct {
	store *Store
	job   *Job
}

// Resumed returns the checkpoint state the job was restarted with
// (nil on a fresh submission).
func (h *Handle) Resumed() json.RawMessage { return h.job.resumed }

// SetProgress publishes a progress snapshot (the checkpoint counter is
// store-owned and preserved across calls).
func (h *Handle) SetProgress(p Progress) {
	h.store.mu.Lock()
	p.Checkpoints = h.job.checkpoints
	h.job.progress = p
	h.store.mu.Unlock()
}

// Checkpoint atomically persists the runner's state. On return the
// file on disk describes a resumable job at exactly this watermark —
// the contract the kill/restart parity test pins.
func (h *Handle) Checkpoint(state json.RawMessage) error {
	s, j := h.store, h.job
	s.mu.Lock()
	j.resumed = append(json.RawMessage(nil), state...)
	j.checkpoints++
	j.progress.Checkpoints = j.checkpoints
	n := j.checkpoints
	s.mu.Unlock()
	if err := s.persist(j); err != nil {
		return err
	}
	if s.OnCheckpoint != nil {
		s.OnCheckpoint(j.ID, n)
	}
	return nil
}
