// The shared worker pool: one per-process budget of evaluation workers
// that every request draws from, so total CPU is governed per process
// instead of per request. A request blocks until at least one slot is
// free, then opportunistically grabs whatever else is idle up to its
// ask — a lone explore uses the whole budget, concurrent requests
// split it.

package service

import "context"

// WorkerPool is a counting semaphore over evaluation-worker slots.
type WorkerPool struct {
	slots chan struct{}
}

// NewWorkerPool returns a pool with the given slot capacity (minimum 1).
func NewWorkerPool(capacity int) *WorkerPool {
	if capacity < 1 {
		capacity = 1
	}
	p := &WorkerPool{slots: make(chan struct{}, capacity)}
	for i := 0; i < capacity; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// AcquireUpTo blocks until one slot is free (or ctx expires), then
// grabs up to want-1 additional free slots without blocking. It returns
// the number of slots acquired; the caller must Release exactly that
// many.
func (p *WorkerPool) AcquireUpTo(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	select {
	case <-p.slots:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	got := 1
	for got < want {
		select {
		case <-p.slots:
			got++
		default:
			return got, nil
		}
	}
	return got, nil
}

// Release returns n slots to the pool.
func (p *WorkerPool) Release(n int) {
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
}

// Capacity is the pool's total slot count.
func (p *WorkerPool) Capacity() int { return cap(p.slots) }

// InUse is the number of slots currently acquired.
func (p *WorkerPool) InUse() int { return cap(p.slots) - len(p.slots) }
