package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAdmissionEndpointBudget: the gate rejects past the per-endpoint
// concurrency budget and recovers on release.
func TestAdmissionEndpointBudget(t *testing.T) {
	a := newAdmission(4, 0, map[string]int{"/v1/explore": 1})
	ctx := context.Background()

	release, err := a.admit(ctx, "/v1/explore")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	_, err = a.admit(ctx, "/v1/explore")
	var oe *overloadError
	if !errors.As(err, &oe) || oe.reason != "endpoint_budget" {
		t.Fatalf("second admit: err %v, want endpoint_budget overload", err)
	}
	if secs, _ := strconv.Atoi(oe.retryAfterSeconds()); secs < 1 {
		t.Errorf("Retry-After %q, want >= 1s", oe.retryAfterSeconds())
	}
	// Other endpoints are unaffected by one endpoint's budget.
	release2, err := a.admit(ctx, "/v1/simulate")
	if err != nil {
		t.Fatalf("other endpoint: %v", err)
	}
	release2(0)
	release(time.Second)
	if _, err := a.admit(ctx, "/v1/explore"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

// TestAdmissionQueueBound: the global admitted count is bounded by
// MaxQueueDepth; a negative depth disables the bound.
func TestAdmissionQueueBound(t *testing.T) {
	a := newAdmission(1, 2, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := a.admit(ctx, "/v1/explore"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	_, err := a.admit(ctx, "/v1/recommend")
	var oe *overloadError
	if !errors.As(err, &oe) || oe.reason != "queue_full" {
		t.Fatalf("over-depth admit: err %v, want queue_full overload", err)
	}

	unbounded := newAdmission(1, -1, nil)
	for i := 0; i < 100; i++ {
		if _, err := unbounded.admit(ctx, "/v1/explore"); err != nil {
			t.Fatalf("unbounded admit %d: %v", i, err)
		}
	}
}

// TestAdmissionDeadlineShed: a request whose estimated queue wait
// exceeds its remaining deadline is rejected at the door.
func TestAdmissionDeadlineShed(t *testing.T) {
	a := newAdmission(1, 0, nil)
	ctx := context.Background()

	// Teach the EWMA that explores take ~10s, and hold one admission so
	// a newcomer sees a backlog.
	release, err := a.admit(ctx, "/v1/explore")
	if err != nil {
		t.Fatal(err)
	}
	release(10 * time.Second)
	hold, err := a.admit(ctx, "/v1/explore")
	if err != nil {
		t.Fatal(err)
	}
	defer hold(0)

	// 50ms of deadline against a ~20s wait estimate: shed.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	_, err = a.admit(dctx, "/v1/explore")
	var oe *overloadError
	if !errors.As(err, &oe) || oe.reason != "deadline" {
		t.Fatalf("deadline admit: err %v, want deadline overload", err)
	}
	// A deadline-free request still queues.
	ok, err := a.admit(ctx, "/v1/explore")
	if err != nil {
		t.Fatalf("deadline-free admit: %v", err)
	}
	ok(0)
}

// TestOverloadSheds503 is the HTTP-level overload acceptance test:
// with a budget of one concurrent recommend, a second distinct request
// is shed with 503 + Retry-After, the shed/admitted counters record
// it, and the occupant still completes normally.
func TestOverloadSheds503(t *testing.T) {
	srv := NewServer(Config{
		Workers:        1,
		EndpointBudget: map[string]int{"/v1/recommend": 1},
	})
	defer srv.Close()
	admitted := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	srv.admittedHook = func(endpoint string) {
		once.Do(func() {
			close(admitted)
			<-gate
		})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	first := make(chan int, 1)
	go func() {
		status, _, _ := post(t, client, ts.URL+"/v1/recommend", testReq)
		first <- status
	}()
	<-admitted // request 1 holds the endpoint's whole budget

	// A different body (no coalescing) on the same endpoint: shed.
	otherReq := `{"capacity_mbit":32,"bandwidth_gbps":1.0,"hit_rate":0.5}`
	status, body, hdr := post(t, client, ts.URL+"/v1/recommend", otherReq)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("overloaded recommend: status %d, want 503: %s", status, body)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if !strings.Contains(body, "endpoint_budget") {
		t.Errorf("503 body %q does not name the shed reason", body)
	}

	close(gate)
	if got := <-first; got != http.StatusOK {
		t.Errorf("occupant finished with %d, want 200", got)
	}

	// The overload is observable: shed and admitted counters on
	// /metrics.
	status, metrics, _ := do(t, client, "GET", ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, frag := range []string{
		`edramd_shed_total{endpoint="/v1/recommend",reason="endpoint_budget"} 1`,
		`edramd_admitted_total{endpoint="/v1/recommend"} 1`,
	} {
		if !strings.Contains(metrics, frag) {
			t.Errorf("metrics missing %q", frag)
		}
	}
}

// TestJobStoreSheds503: the job store's MaxActive bound surfaces as a
// 503 with Retry-After on POST /v1/jobs, not as silent queueing.
func TestJobStoreSheds503(t *testing.T) {
	srv := NewServer(Config{Workers: 2, MaxActiveJobs: 1, JobCheckpointEvery: 256})
	defer srv.Close()
	started := make(chan struct{})
	hold := make(chan struct{})
	defer close(hold)
	var once sync.Once
	srv.jobsStore.OnCheckpoint = func(id string, n int) {
		once.Do(func() {
			close(started)
			<-hold
		})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	status, body, _ := post(t, client, ts.URL+"/v1/jobs", jobTestReq)
	if status != http.StatusAccepted {
		t.Fatalf("first job: status %d: %s", status, body)
	}
	<-started

	status, body, hdr := post(t, client, ts.URL+"/v1/jobs", trialsTestReq)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("second active job: status %d, want 503: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("job shed without Retry-After")
	}
	status, metrics, _ := do(t, client, "GET", ts.URL+"/metrics")
	if status != http.StatusOK || !strings.Contains(metrics, `edramd_shed_total{endpoint="/v1/jobs",reason="jobs"} 1`) {
		t.Errorf("metrics missing the jobs shed counter")
	}
}
