package service

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testReq = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`

func post(t *testing.T, client *http.Client, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// TestCoalescingAndCache is the acceptance test of the three scaling
// layers: two identical concurrent explores share one computation
// (coalesced counter = 1), and a third request afterwards is a cache
// hit, byte-identical to the miss.
func TestCoalescingAndCache(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	// The barrier: the first request signals when its computation
	// starts, then blocks until we release it — time enough for the
	// second request to join the flight.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	srv.computeStarted = func(endpoint, key string) {
		once.Do(func() {
			close(started)
			<-gate
		})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/v1/recommend"
	client := ts.Client()

	type reply struct {
		status int
		body   string
		cache  string
	}
	replies := make(chan reply, 2)
	request := func() {
		status, body, hdr := post(t, client, url, testReq)
		replies <- reply{status, body, hdr.Get("X-Cache")}
	}
	go request()
	<-started // request 1 is inside its computation
	go request()
	// Let request 2 reach the flight group before the gate opens; if it
	// missed the flight it would start a second computation and the
	// miss-counter assertion below would catch it.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	a, b := <-replies, <-replies
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses %d, %d; bodies %q, %q", a.status, b.status, a.body, b.body)
	}
	if a.body != b.body {
		t.Error("coalesced request body differs from the originator's")
	}
	caches := a.cache + "+" + b.cache
	if !strings.Contains(caches, "miss") || !strings.Contains(caches, "coalesced") {
		t.Errorf("X-Cache pair = %q, want one miss and one coalesced", caches)
	}
	if got := srv.cacheMisses.Value(); got != 1 {
		t.Errorf("computations = %d, want exactly 1 (coalescing failed)", got)
	}
	if got := srv.coalescedReqs.Value(); got != 1 {
		t.Errorf("coalesced counter = %d, want 1", got)
	}

	// The third request replays the cached bytes.
	status, body, hdr := post(t, client, url, testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("third request: status %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	if body != a.body {
		t.Error("cache hit is not byte-identical to the original computation")
	}
	if got := srv.cacheHits.Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// A semantically identical respelling (reordered keys, trailing
	// float forms) maps to the same canonical key: still a hit.
	respelled := `{"hit_rate":0.50,"bandwidth_gbps":1,"capacity_mbit":16}`
	status, body, hdr = post(t, client, url, respelled)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("respelled request: status %d, X-Cache %q, want a cache hit", status, hdr.Get("X-Cache"))
	}
	if body != a.body {
		t.Error("respelled request body differs")
	}

	// The scrape reports every series the acceptance criteria name.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"edramd_requests_total", "edramd_request_seconds_bucket",
		"edramd_cache_hits_total", "edramd_cache_misses_total",
		"edramd_coalesced_requests_total", "edramd_in_flight_requests",
		"edramd_workers_capacity",
	} {
		if !strings.Contains(string(scrape), series) {
			t.Errorf("metrics scrape missing %s", series)
		}
	}
}

func TestDistinctRequestsComputeSeparately(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	r1 := `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`
	r2 := `{"capacity_mbit":16,"bandwidth_gbps":2.0,"hit_rate":0.5}`
	s1, b1, _ := post(t, ts.Client(), ts.URL+"/v1/recommend", r1)
	s2, b2, _ := post(t, ts.Client(), ts.URL+"/v1/recommend", r2)
	if s1 != 200 || s2 != 200 {
		t.Fatalf("statuses %d, %d", s1, s2)
	}
	if b1 == b2 {
		t.Error("distinct requirements produced identical responses")
	}
	if got := srv.cacheMisses.Value(); got != 2 {
		t.Errorf("computations = %d, want 2", got)
	}
}

func TestValidationAndErrorStatuses(t *testing.T) {
	srv := NewServer(Config{Workers: 1, MaxBodyBytes: 256})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Malformed JSON.
	status, body, _ := post(t, client, ts.URL+"/v1/explore", `{"capacity_mbit":`)
	if status != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400 (%s)", status, body)
	}
	// Unknown field.
	status, body, _ = post(t, client, ts.URL+"/v1/explore", `{"capacity_mbits":16}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "capacity_mbits") {
		t.Errorf("unknown field: status %d body %q, want 400 naming the field", status, body)
	}
	// Every violation listed, with the same wording as the model layer.
	status, body, _ = post(t, client, ts.URL+"/v1/explore", `{"capacity_mbit":-1,"hit_rate":2}`)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid requirements: status %d, want 400", status)
	}
	for _, frag := range []string{"capacity must be positive", "bandwidth must be positive", "hit rate 2 out of [0,1]"} {
		if !strings.Contains(body, frag) {
			t.Errorf("validation body %q missing %q", body, frag)
		}
	}
	// Oversized body.
	status, _, _ = post(t, client, ts.URL+"/v1/explore", `{"capacity_mbit":16,"bandwidth_gbps":1,"hit_rate":0.5,"processes":[`+strings.Repeat(" ", 300)+`]}`)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", status)
	}
	// Unknown experiment id is a domain error: 422.
	status, body, _ = post(t, client, ts.URL+"/v1/experiments", `{"ids":["NOPE"]}`)
	if status != http.StatusUnprocessableEntity || !strings.Contains(body, "NOPE") {
		t.Errorf("unknown experiment: status %d body %q, want 422 naming the id", status, body)
	}
	// Simulate validation: unbounded client, bad policy — all reported.
	status, body, _ = post(t, client, ts.URL+"/v1/simulate",
		`{"spec":{"capacity_mbit":16,"interface_bits":64},"options":{"policy":"psychic"},"clients":[{"name":"cpu","kind":"sequential","rate_gbps":1}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("simulate validation: status %d, want 400", status)
	}
	for _, frag := range []string{"count must be positive", "unknown policy"} {
		if !strings.Contains(body, frag) {
			t.Errorf("simulate validation body %q missing %q", body, frag)
		}
	}
}

func TestSimulateAndDatasheetEndpoints(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	simReq := `{"spec":{"capacity_mbit":16,"interface_bits":64},
		"options":{"policy":"round-robin"},
		"clients":[{"name":"cpu","kind":"sequential","rate_gbps":0.8,"count":2000},
		           {"name":"dsp","kind":"random","rate_gbps":0.4,"count":1000,"window_b":65536,"seed":7}]}`
	status, body, _ := post(t, client, ts.URL+"/v1/simulate", simReq)
	if status != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", status, body)
	}
	for _, frag := range []string{`"sustained_gbps"`, `"hit_rate"`, `"clients"`, `"p95_ns"`, `"cpu"`, `"dsp"`} {
		if !strings.Contains(body, frag) {
			t.Errorf("simulate body missing %s", frag)
		}
	}
	// Same seed, same stream: a repeat is a cache hit with identical bytes.
	status2, body2, hdr := post(t, client, ts.URL+"/v1/simulate", simReq)
	if status2 != http.StatusOK || hdr.Get("X-Cache") != "hit" || body2 != body {
		t.Errorf("simulate repeat: status %d, X-Cache %q, identical=%t", status2, hdr.Get("X-Cache"), body2 == body)
	}

	status, body, _ = post(t, client, ts.URL+"/v1/datasheet", `{"capacity_mbit":16,"interface_bits":128,"redundancy":"std"}`)
	if status != http.StatusOK {
		t.Fatalf("datasheet: status %d: %s", status, body)
	}
	for _, frag := range []string{`"clock_mhz"`, `"peak_gbps"`, `"text"`, "Embedded DRAM macro"} {
		if !strings.Contains(body, frag) {
			t.Errorf("datasheet body missing %s", frag)
		}
	}
	// Unbuildable spec: 422.
	status, _, _ = post(t, client, ts.URL+"/v1/datasheet", `{"capacity_mbit":16,"interface_bits":48}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("unbuildable spec: status %d, want 422", status)
	}
}

func TestExperimentsEndpointFiltered(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, body, _ := post(t, ts.Client(), ts.URL+"/v1/experiments", `{"ids":["E1"]}`)
	if status != http.StatusOK {
		t.Fatalf("experiments: status %d: %s", status, body)
	}
	if !strings.Contains(body, `"id":"E1"`) || strings.Contains(body, `"id":"E2"`) {
		t.Errorf("filter not applied: %s", body[:min(200, len(body))])
	}
}

func TestHealthz(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, b)
	}
}

// TestMetricsEndpointLabelBounded: requests to arbitrary paths must
// not mint new metric series — unmatched paths share the "other"
// endpoint label.
func TestMetricsEndpointLabelBounded(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/no/such/route", "/no/such/route2"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	if strings.Contains(body, "/no/such/route") {
		t.Error("metrics expose a client-controlled path label")
	}
	if !strings.Contains(body, `endpoint="other"`) {
		t.Error("unmatched paths are not collapsed into the \"other\" label")
	}
}

// TestGracefulDrain verifies the acceptance criterion that shutdown
// lets in-flight requests finish: a request is held mid-computation,
// the serve context is cancelled, and the request still completes with
// a 200 before ListenAndServe returns.
func TestGracefulDrain(t *testing.T) {
	srv := NewServer(Config{Workers: 1, DrainTimeout: 10 * time.Second})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	srv.computeStarted = func(endpoint, key string) {
		once.Do(func() {
			close(started)
			<-gate
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	servErr := make(chan error, 1)
	go func() {
		servErr <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-servErr:
		t.Fatalf("server did not start: %v", err)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	reply := make(chan int, 1)
	go func() {
		resp, err := client.Post(base+"/v1/recommend", "application/json", strings.NewReader(testReq))
		if err != nil {
			reply <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reply <- resp.StatusCode
	}()

	<-started // the request is mid-computation
	cancel()  // shutdown begins while it is in flight
	select {
	case err := <-servErr:
		t.Fatalf("server exited (%v) before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
		// Still draining, as it should be.
	}
	close(gate) // let the computation finish

	select {
	case status := <-reply:
		if status != http.StatusOK {
			t.Errorf("drained request status = %d, want 200", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-servErr:
		if err != nil {
			t.Errorf("ListenAndServe returned %v after drain, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after draining")
	}
}
