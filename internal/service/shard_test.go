package service

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"edram/internal/core"
	"edram/internal/shard"
)

// exploreReference computes the single-process explore bytes the
// sharded paths must reproduce exactly.
func exploreReference(t *testing.T) string {
	t.Helper()
	ref := NewServer(Config{Workers: 2})
	defer ref.Close()
	ts := httptest.NewServer(ref)
	defer ts.Close()
	status, want, _ := post(t, ts.Client(), ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK {
		t.Fatalf("reference explore: status %d: %s", status, want)
	}
	return want
}

// metricValue scrapes one series (by rendered prefix) out of /metrics.
func metricValue(t *testing.T, client *http.Client, baseURL, series string) string {
	t.Helper()
	status, body, _ := do(t, client, "GET", baseURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	return ""
}

// TestShardParityLocalParts pins the tentpole guarantee: an explore
// fanned out over N local partitions is byte-identical to the
// undivided sweep, for N = 1 and N > 1.
func TestShardParityLocalParts(t *testing.T) {
	want := exploreReference(t)
	for _, parts := range []int{1, 4} {
		srv := NewServer(Config{Workers: 2, ShardParts: parts})
		ts := httptest.NewServer(srv)
		status, got, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", testReq)
		if status != http.StatusOK {
			t.Fatalf("%d-part explore: status %d: %s", parts, status, got)
		}
		if hdr.Get("X-Cache") != "miss" {
			t.Errorf("%d-part explore: X-Cache %q, want miss", parts, hdr.Get("X-Cache"))
		}
		if got != want {
			t.Errorf("%d-part explore differs from single-process run:\n got %d bytes %.120s\nwant %d bytes %.120s",
				parts, len(got), got, len(want), want)
		}
		if v := metricValue(t, ts.Client(), ts.URL, "edramd_shard_explores_total"); v != "1" {
			t.Errorf("%d-part explore: edramd_shard_explores_total = %q, want 1", parts, v)
		}
		ts.Close()
		srv.Close()
	}
}

// TestShardParityRemotePeers runs the coordinator against two real
// peer servers and pins remote-shard byte parity.
func TestShardParityRemotePeers(t *testing.T) {
	want := exploreReference(t)
	peer1 := NewServer(Config{Workers: 2})
	tp1 := httptest.NewServer(peer1)
	defer func() { tp1.Close(); peer1.Close() }()
	peer2 := NewServer(Config{Workers: 2})
	tp2 := httptest.NewServer(peer2)
	defer func() { tp2.Close(); peer2.Close() }()

	srv := NewServer(Config{Workers: 2, Peers: []string{tp1.URL, tp2.URL}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, got, _ := post(t, ts.Client(), ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK {
		t.Fatalf("remote-shard explore: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("remote-shard explore differs from single-process run:\n got %d bytes %.120s\nwant %d bytes %.120s",
			len(got), got, len(want), want)
	}
}

// TestRemoteExecutorMatchesLocal deterministically exercises the
// remote transport: the same partition executed via a peer's
// /v1/internal/shard and via the in-process sweep must convert to
// identical merge inputs.
func TestRemoteExecutorMatchesLocal(t *testing.T) {
	peer := NewServer(Config{Workers: 2})
	defer peer.Close()
	tp := httptest.NewServer(peer)
	defer tp.Close()

	var req RequirementsRequest
	if err := strictUnmarshal([]byte(testReq), &req); err != nil {
		t.Fatal(err)
	}
	p := shard.Partition{From: 100, To: 700}
	remote := &remoteShardExec{client: tp.Client(), base: tp.URL, req: req.Requirements}
	local := &localShardExec{req: req.Requirements, workers: 2}

	ctx := context.Background()
	rr, err := remote.Execute(ctx, p)
	if err != nil {
		t.Fatalf("remote execute: %v", err)
	}
	lr, err := local.Execute(ctx, p)
	if err != nil {
		t.Fatalf("local execute: %v", err)
	}
	wrap := func(r shard.Result) string {
		resp, err := exploreResponseFromMerged(req.Requirements, r)
		if err != nil {
			t.Fatalf("merge wrap: %v", err)
		}
		b, err := Encode(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if rr.Enumerated != lr.Enumerated || rr.Built != lr.Built || rr.Infeasible != lr.Infeasible {
		t.Fatalf("remote counters (%d,%d,%d) != local (%d,%d,%d)",
			rr.Enumerated, rr.Built, rr.Infeasible, lr.Enumerated, lr.Built, lr.Infeasible)
	}
	if wrap(rr) != wrap(lr) {
		t.Error("remote partition frontier differs from local after wire round-trip")
	}
}

// TestShardPeerKillParity pins the fault-tolerance guarantee: with the
// only peer dead, its partitions re-execute locally and the final
// response is still byte-identical.
func TestShardPeerKillParity(t *testing.T) {
	want := exploreReference(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connections now refuse

	srv := NewServer(Config{Workers: 2, Peers: []string{deadURL}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, got, _ := post(t, ts.Client(), ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK {
		t.Fatalf("explore with dead peer: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("explore with dead peer differs from single-process run:\n got %d bytes %.120s\nwant %d bytes %.120s",
			len(got), got, len(want), want)
	}
	if v := metricValue(t, ts.Client(), ts.URL, "edramd_shard_peer_failures_total"); v == "" || v == "0" {
		t.Errorf("edramd_shard_peer_failures_total = %q, want >= 1", v)
	}
}

// TestShardMergeAssociativity is the property test: random partition
// boundaries over the full sweep always merge to the canonical
// response bytes.
func TestShardMergeAssociativity(t *testing.T) {
	want := exploreReference(t)
	var req RequirementsRequest
	if err := strictUnmarshal([]byte(testReq), &req); err != nil {
		t.Fatal(err)
	}
	total := core.SweepCount(req.Requirements)
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for trial := 0; trial < 3; trial++ {
		// Random sorted distinct cut points over (0, total).
		cuts := map[int]bool{}
		for n := 1 + rng.Intn(6); len(cuts) < n; {
			cuts[1+rng.Intn(total-1)] = true
		}
		bounds := []int{0}
		for c := range cuts {
			bounds = append(bounds, c)
		}
		bounds = append(bounds, total)
		sort.Ints(bounds)

		var prs []shard.PartResult
		for i := 0; i+1 < len(bounds); i++ {
			resp, err := buildShard(ctx, ShardRequest{Explore: req.Requirements, From: bounds[i], To: bounds[i+1]}, 2)
			if err != nil {
				t.Fatalf("trial %d partition [%d,%d): %v", trial, bounds[i], bounds[i+1], err)
			}
			prs = append(prs, shard.PartResult{
				Partition: shard.Partition{Index: i, From: bounds[i], To: bounds[i+1]},
				Result:    shardResult(resp),
			})
		}
		rng.Shuffle(len(prs), func(i, j int) { prs[i], prs[j] = prs[j], prs[i] })
		resp, err := exploreResponseFromMerged(req.Requirements, shard.Merge(prs))
		if err != nil {
			t.Fatalf("trial %d merge: %v", trial, err)
		}
		b, err := Encode(resp)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Fatalf("trial %d (bounds %v): merged bytes differ from canonical response", trial, bounds)
		}
	}
}

// TestShardEndpoint covers the /v1/internal/shard surface: range
// validation, counter exactness across a split, and caching.
func TestShardEndpoint(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for _, bad := range []string{
		`{"explore":` + testReq + `,"from":-1,"to":10}`,
		`{"explore":` + testReq + `,"from":5,"to":5}`,
		`{"explore":` + testReq + `,"from":0,"to":999999}`,
	} {
		status, resp, _ := post(t, client, ts.URL+"/v1/internal/shard", bad)
		if status != http.StatusBadRequest {
			t.Errorf("shard %s: status %d, want 400: %s", bad, status, resp)
		}
	}

	var req RequirementsRequest
	if err := strictUnmarshal([]byte(testReq), &req); err != nil {
		t.Fatal(err)
	}
	total := core.SweepCount(req.Requirements)
	full, err := buildShard(context.Background(), ShardRequest{Explore: req.Requirements, From: 0, To: total}, 2)
	if err != nil {
		t.Fatal(err)
	}

	shardBody := `{"explore":` + testReq + `,"from":0,"to":1000}`
	status, body, hdr := post(t, client, ts.URL+"/v1/internal/shard", shardBody)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("shard: status %d, X-Cache %q: %s", status, hdr.Get("X-Cache"), body)
	}
	var a ShardResponse
	if err := strictUnmarshal([]byte(body), &a); err != nil {
		t.Fatal(err)
	}
	status, body2, hdr := post(t, client, ts.URL+"/v1/internal/shard", shardBody)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" || body2 != body {
		t.Errorf("shard repeat: status %d, X-Cache %q, identical=%t", status, hdr.Get("X-Cache"), body2 == body)
	}

	status, body, _ = post(t, client, ts.URL+"/v1/internal/shard", `{"explore":`+testReq+`,"from":1000,"to":`+strconv.Itoa(total)+`}`)
	if status != http.StatusOK {
		t.Fatalf("shard tail: status %d: %s", status, body)
	}
	var b ShardResponse
	if err := strictUnmarshal([]byte(body), &b); err != nil {
		t.Fatal(err)
	}
	if a.Enumerated+b.Enumerated != full.Enumerated || a.Built+b.Built != full.Built || a.Infeasible+b.Infeasible != full.Infeasible {
		t.Errorf("split counters (%d,%d,%d)+(%d,%d,%d) != full (%d,%d,%d)",
			a.Enumerated, a.Built, a.Infeasible, b.Enumerated, b.Built, b.Infeasible,
			full.Enumerated, full.Built, full.Infeasible)
	}
}

// TestShardedJobAfterPeerKillParity pins the job-API acceptance
// criterion: a sharded explore submitted as a job still produces the
// canonical bytes after its only peer is killed mid-run, because the
// dead peer's partitions requeue to the local executor and per-shard
// checkpoints fold at the contiguous watermark.
func TestShardedJobAfterPeerKillParity(t *testing.T) {
	want := exploreReference(t)
	peer := NewServer(Config{Workers: 2})
	tp := httptest.NewServer(peer)

	srv := NewServer(Config{Workers: 2, JobDir: t.TempDir(), Peers: []string{tp.URL}, ShardParts: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	status, body, _ := post(t, client, ts.URL+"/v1/jobs", jobTestReq)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	// Kill the peer while the job runs: its in-flight partition fails
	// and requeues locally.
	tp.Close()
	peer.Close()

	id := jobID(t, body)
	st := waitJob(t, client, ts.URL, id)
	if st.State != "succeeded" {
		t.Fatalf("sharded job state %q (error %q), want succeeded", st.State, st.Error)
	}
	status, got, _ := do(t, client, "GET", ts.URL+st.ResultPath)
	if status != http.StatusOK {
		t.Fatalf("result: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("sharded job result differs from single-process run:\n got %d bytes %.120s\nwant %d bytes %.120s",
			len(got), got, len(want), want)
	}
	// Cross-fill: the sync path now serves the job's bytes from cache.
	status, syncBody, hdr := post(t, client, ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" || syncBody != want {
		t.Errorf("post-job sync explore: status %d, X-Cache %q, identical=%t",
			status, hdr.Get("X-Cache"), syncBody == want)
	}
}
