package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"edram/internal/core"
)

// buildExploreUnpruned assembles the explore response exactly like
// BuildExplore but without constraint pruning — the byte reference the
// pruned builder must reproduce.
func buildExploreUnpruned(t *testing.T, req core.Requirements, workers int) []byte {
	t.Helper()
	var final core.ExploreStats
	ch, err := core.ExploreContext(context.Background(), req,
		core.WithWorkers(workers),
		core.WithProgress(func(s core.ExploreStats) {
			if s.Done {
				final = s
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	front := core.NewFrontier()
	for c := range ch {
		front.Add(c)
	}
	resp := &ExploreResponse{
		SchemaVersion: SchemaVersion,
		Request:       req,
		Key:           HashKey("explore", req.CanonicalKey()),
		Points:        final.Enumerated,
		Built:         final.Built,
		Infeasible:    final.Infeasible,
		Pruned:        final.Pruned,
		Frontier:      []CandidateJSON{},
		Picks:         []RecommendationJSON{},
	}
	frontier := front.Candidates()
	for _, c := range frontier {
		resp.Frontier = append(resp.Frontier, candidateJSON(c))
	}
	for _, r := range core.Quantize(frontier) {
		resp.Picks = append(resp.Picks, RecommendationJSON{Role: r.Role, CandidateJSON: candidateJSON(r.Candidate)})
	}
	b, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBuildExplorePrunedByteParity pins the tentpole's service-level
// guarantee: the (always pruned) BuildExplore encodes byte-identically
// to a response assembled from an unpruned sweep.
func TestBuildExplorePrunedByteParity(t *testing.T) {
	for _, req := range []core.Requirements{
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5},
		{CapacityMbit: 32, BandwidthGBps: 2.5, HitRate: 0.7, MaxAreaMm2: 60, MinClockMHz: 80},
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 0.001},
	} {
		want := buildExploreUnpruned(t, req, 2)
		resp, err := BuildExplore(context.Background(), req, 2, nil)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		got, err := Encode(resp)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("pruned BuildExplore bytes differ from unpruned for %+v:\npruned   %.200s\nunpruned %.200s", req, got, want)
		}
	}
}

// deltaTestReq tweaks testReq's area constraint only — same structural
// key, different canonical key.
const deltaTestReq = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5,"max_area_mm2":25}`

// TestExploreDeltaServeByteParity drives the delta tier end to end: a
// cold explore records the state, a constraint tweak of it is served
// with X-Cache: hit-delta, and the body is byte-identical to a cold
// server's sweep of the tweaked requirements.
func TestExploreDeltaServeByteParity(t *testing.T) {
	cold := NewServer(Config{Workers: 2})
	tsCold := httptest.NewServer(cold)
	status, want, _ := post(t, tsCold.Client(), tsCold.URL+"/v1/explore", deltaTestReq)
	tsCold.Close()
	if status != http.StatusOK {
		t.Fatalf("cold reference: status %d: %s", status, want)
	}

	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if status, body, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", testReq); status != http.StatusOK {
		t.Fatalf("base explore: status %d: %s", status, body)
	} else if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("base explore X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	status, got, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", deltaTestReq)
	if status != http.StatusOK {
		t.Fatalf("delta explore: status %d: %s", status, got)
	}
	if tag := hdr.Get("X-Cache"); tag != "hit-delta" {
		t.Fatalf("delta explore X-Cache = %q, want hit-delta", tag)
	}
	if got != want {
		t.Errorf("delta-served body differs from cold sweep:\ndelta %.200s\ncold  %.200s", got, want)
	}

	// The bytes entered the result cache under the tweaked request's
	// own key: an identical re-POST is a plain memory hit.
	if _, _, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", deltaTestReq); hdr.Get("X-Cache") != "hit" {
		t.Errorf("re-POST after delta serve X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}

	// Metrics surfaced the tier.
	status, metrics, _ := do(t, ts.Client(), "GET", ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, want := range []string{
		`edramd_cache_tier_hits_total{tier="delta"} 1`,
		"edramd_delta_reused_evals_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestExploreDeltaAgainstShardedByteParity pins the delta path against
// the sharded explore path: both must produce the plain cold bytes.
func TestExploreDeltaAgainstShardedByteParity(t *testing.T) {
	sharded := NewServer(Config{Workers: 2, ShardParts: 3})
	tsSharded := httptest.NewServer(sharded)
	status, want, _ := post(t, tsSharded.Client(), tsSharded.URL+"/v1/explore", deltaTestReq)
	tsSharded.Close()
	if status != http.StatusOK {
		t.Fatalf("sharded reference: status %d: %s", status, want)
	}

	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if status, body, _ := post(t, ts.Client(), ts.URL+"/v1/explore", testReq); status != http.StatusOK {
		t.Fatalf("base explore: status %d: %s", status, body)
	}
	status, got, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", deltaTestReq)
	if status != http.StatusOK {
		t.Fatalf("delta explore: status %d: %s", status, got)
	}
	if tag := hdr.Get("X-Cache"); tag != "hit-delta" {
		t.Fatalf("delta explore X-Cache = %q, want hit-delta", tag)
	}
	if got != want {
		t.Errorf("delta-served body differs from sharded sweep")
	}
}

// TestDeltaJobByteParity pins the async form: a kind "delta" job after
// a warm explore returns exactly the cold synchronous bytes, and a
// kind "delta" job on a cold daemon falls back to the checkpointed
// explore runner with the same bytes.
func TestDeltaJobByteParity(t *testing.T) {
	cold := NewServer(Config{Workers: 2})
	tsCold := httptest.NewServer(cold)
	status, want, _ := post(t, tsCold.Client(), tsCold.URL+"/v1/explore", deltaTestReq)
	tsCold.Close()
	if status != http.StatusOK {
		t.Fatalf("cold reference: status %d: %s", status, want)
	}
	deltaJob := `{"kind":"delta","delta":` + deltaTestReq + `}`

	t.Run("warm", func(t *testing.T) {
		srv := NewServer(Config{Workers: 2})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer srv.Close()
		if status, body, _ := post(t, ts.Client(), ts.URL+"/v1/explore", testReq); status != http.StatusOK {
			t.Fatalf("base explore: status %d: %s", status, body)
		}
		status, body, _ := post(t, ts.Client(), ts.URL+"/v1/jobs", deltaJob)
		if status != http.StatusAccepted {
			t.Fatalf("job submit: status %d: %s", status, body)
		}
		id := jobID(t, body)
		if st := waitJob(t, ts.Client(), ts.URL, id); st.State != "succeeded" {
			t.Fatalf("delta job state %s: %s", st.State, st.Error)
		}
		if status, got, _ := do(t, ts.Client(), "GET", ts.URL+"/v1/jobs/"+id+"/result"); status != http.StatusOK || got != want {
			t.Errorf("warm delta job result differs from cold sweep (status %d)", status)
		}
		// The job cross-filled the synchronous tier under the explore
		// key.
		if _, _, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", deltaTestReq); hdr.Get("X-Cache") != "hit" {
			t.Errorf("explore after delta job X-Cache = %q, want hit", hdr.Get("X-Cache"))
		}
	})

	t.Run("cold-fallback", func(t *testing.T) {
		srv := NewServer(Config{Workers: 2})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer srv.Close()
		status, body, _ := post(t, ts.Client(), ts.URL+"/v1/jobs", deltaJob)
		if status != http.StatusAccepted {
			t.Fatalf("job submit: status %d: %s", status, body)
		}
		id := jobID(t, body)
		if st := waitJob(t, ts.Client(), ts.URL, id); st.State != "succeeded" {
			t.Fatalf("delta job state %s: %s", st.State, st.Error)
		}
		if status, got, _ := do(t, ts.Client(), "GET", ts.URL+"/v1/jobs/"+id+"/result"); status != http.StatusOK || got != want {
			t.Errorf("cold delta job result differs from cold sweep (status %d)", status)
		}
	})
}

// TestDeltaIndexEviction pins the LRU bound: the index never retains
// more than maxDeltaStates states.
func TestDeltaIndexEviction(t *testing.T) {
	ix := newDeltaIndex()
	var first core.Requirements
	for i := 0; i < maxDeltaStates+3; i++ {
		req := core.Requirements{CapacityMbit: 8 << uint(i%4), BandwidthGBps: 1, HitRate: 0.5 + float64(i)*0.01}
		if i == 0 {
			first = req
		}
		st, err := core.NewDeltaState(req)
		if err != nil {
			t.Fatal(err)
		}
		st.Seal()
		ix.store(st)
	}
	if n := len(ix.entries); n != maxDeltaStates {
		t.Fatalf("index holds %d entries, want %d", n, maxDeltaStates)
	}
	if ix.lookup(first) != nil {
		t.Fatalf("oldest state survived eviction")
	}
}
