package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"edram/internal/scenario"
)

// scenarioDoc is a small, fast-to-evaluate document for the endpoint
// tests; the full corpus is covered by TestScenarioCorpusGolden.
const scenarioDoc = `{
  "schema_version": 1,
  "name": "endpoint-test",
  "hierarchy": {"levels": [
    {"name": "store", "kind": "edram", "capacity_mbit": 16, "interface_bits": 64,
     "operands": ["frames"]}
  ]},
  "workload": {"clients": [
    {"name": "stream", "kind": "sequential", "level": "store", "operand": "frames",
     "rate_gbps": 0.8, "count": 500}
  ]},
  "constraints": {"hit_rate": 0.8}
}`

// TestScenarioCorpusGolden is the corpus gate: every document under
// examples/scenarios/ must load through the shared loader, compile,
// and produce a byte-stable response regardless of worker count.
func TestScenarioCorpusGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus has %d scenarios, want at least 10", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			scn, err := scenario.Load(f)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			serial, err := BuildScenario(context.Background(), scn, 1)
			if err != nil {
				t.Fatalf("BuildScenario(workers=1): %v", err)
			}
			parallel, err := BuildScenario(context.Background(), scn, 4)
			if err != nil {
				t.Fatalf("BuildScenario(workers=4): %v", err)
			}
			a, err := Encode(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Encode(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Error("1-worker and 4-worker responses differ byte-for-byte")
			}
			if serial.Key != HashKey("scenario", scn.CanonicalKey()) {
				t.Error("response key does not match the canonical scenario key")
			}
			if !strings.HasPrefix(string(a), `{"schema_version":`) {
				t.Errorf("response does not lead with schema_version: %.80s", a)
			}
		})
	}
}

func TestScenarioEndpointCaching(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/scenario"

	status, body, hdr := post(t, client, url, scenarioDoc)
	if status != http.StatusOK {
		t.Fatalf("scenario: status %d: %s", status, body)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	for _, frag := range []string{`"schema_version":1`, `"name":"endpoint-test"`, `"key":"scenario:`,
		`"recommendations"`, `"simulation"`, `"stream"`} {
		if !strings.Contains(body, frag) {
			t.Errorf("scenario body missing %s", frag)
		}
	}

	// A repeat is a cache hit with identical bytes.
	status2, body2, hdr2 := post(t, client, url, scenarioDoc)
	if status2 != http.StatusOK || hdr2.Get("X-Cache") != "hit" || body2 != body {
		t.Errorf("repeat: status %d, X-Cache %q, identical=%t",
			status2, hdr2.Get("X-Cache"), body2 == body)
	}

	// A semantic respelling (0.8 → 0.80) still hits: same canonical key.
	respelled := strings.Replace(scenarioDoc, `"rate_gbps": 0.8`, `"rate_gbps": 0.80`, 1)
	status3, body3, hdr3 := post(t, client, url, respelled)
	if status3 != http.StatusOK || hdr3.Get("X-Cache") != "hit" || body3 != body {
		t.Errorf("respelled: status %d, X-Cache %q, identical=%t",
			status3, hdr3.Get("X-Cache"), body3 == body)
	}

	// The PR 4 aliasing rule: same name, different content must be a
	// separate computation, never a replay of the cached entry.
	changed := strings.Replace(scenarioDoc, `"capacity_mbit": 16`, `"capacity_mbit": 32`, 1)
	status4, body4, hdr4 := post(t, client, url, changed)
	if status4 != http.StatusOK {
		t.Fatalf("changed scenario: status %d: %s", status4, body4)
	}
	if hdr4.Get("X-Cache") != "miss" || body4 == body {
		t.Errorf("same-named scenario with different content aliased the cache entry (X-Cache %q)",
			hdr4.Get("X-Cache"))
	}
}

func TestScenarioEndpointValidation(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/scenario"

	// Unknown field: strict decode, 400 naming the field.
	status, body, _ := post(t, client, url,
		strings.Replace(scenarioDoc, `"capacity_mbit"`, `"capacity_mb"`, 1))
	if status != http.StatusBadRequest || !strings.Contains(body, "capacity_mb") {
		t.Errorf("unknown field: status %d body %q, want 400 naming the field", status, body)
	}

	// Invalid document: one 400 listing every violation, with the same
	// vocabulary the CLI loader prints.
	bad := strings.Replace(scenarioDoc, `"capacity_mbit": 16`, `"capacity_mbit": -1`, 1)
	bad = strings.Replace(bad, `"rate_gbps": 0.8`, `"rate_gbps": -2`, 1)
	status, body, _ = post(t, client, url, bad)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid scenario: status %d, want 400 (%s)", status, body)
	}
	for _, frag := range []string{"invalid scenario:", "capacity_mbit must be positive", "rate must be positive"} {
		if !strings.Contains(body, frag) {
			t.Errorf("validation body %q missing %q", body, frag)
		}
	}

	// Missing schema_version is a document error.
	status, body, _ = post(t, client, url,
		strings.Replace(scenarioDoc, `"schema_version": 1,`, "", 1))
	if status != http.StatusBadRequest || !strings.Contains(body, "schema_version is required") {
		t.Errorf("missing version: status %d body %q", status, body)
	}

	// MaxSimRequests bounds the scenario's total client count too.
	srvSmall := NewServer(Config{Workers: 1, MaxSimRequests: 100})
	tsSmall := httptest.NewServer(srvSmall)
	defer tsSmall.Close()
	status, body, _ = post(t, tsSmall.Client(), tsSmall.URL+"/v1/scenario", scenarioDoc)
	if status != http.StatusBadRequest || !strings.Contains(body, "per-request limit") {
		t.Errorf("request cap: status %d body %q, want 400 naming the limit", status, body)
	}
}

// TestSchemaVersionPinning: every endpoint accepts a request pinned to
// the wire schema it speaks and rejects any other pin with a 400 that
// names both versions.
func TestSchemaVersionPinning(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	pinned := `{"schema_version":1,"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`
	status, body, _ := post(t, client, ts.URL+"/v1/recommend", pinned)
	if status != http.StatusOK {
		t.Fatalf("pinned recommend: status %d: %s", status, body)
	}
	if !strings.Contains(body, `"schema_version":1`) {
		t.Errorf("response missing schema_version: %.120s", body)
	}

	// The pin must not change the cache identity: the unpinned spelling
	// of the same requirements is a cache hit.
	status, body2, hdr := post(t, client, ts.URL+"/v1/recommend", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" || body2 != body {
		t.Errorf("unpinned twin: status %d, X-Cache %q, identical=%t",
			status, hdr.Get("X-Cache"), body2 == body)
	}

	for endpoint, req := range map[string]string{
		"/v1/explore":     `{"schema_version":2,"capacity_mbit":16,"bandwidth_gbps":1,"hit_rate":0.5}`,
		"/v1/recommend":   `{"schema_version":2,"capacity_mbit":16,"bandwidth_gbps":1,"hit_rate":0.5}`,
		"/v1/datasheet":   `{"schema_version":2,"capacity_mbit":16,"interface_bits":64}`,
		"/v1/simulate":    `{"schema_version":2,"spec":{"capacity_mbit":16,"interface_bits":64},"clients":[{"name":"c","kind":"sequential","rate_gbps":1,"count":10}]}`,
		"/v1/experiments": `{"schema_version":2}`,
	} {
		status, body, _ := post(t, client, ts.URL+endpoint, req)
		if status != http.StatusBadRequest || !strings.Contains(body, "unsupported schema_version 2") {
			t.Errorf("%s with wrong pin: status %d body %q, want 400 naming the version", endpoint, status, body)
		}
		// Error bodies speak the schema too.
		if !strings.Contains(body, `"schema_version":1`) {
			t.Errorf("%s error body missing the server's schema_version: %q", endpoint, body)
		}
	}
}
