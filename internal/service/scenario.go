// POST /v1/scenario: the declarative scenario endpoint. The request
// body IS a scenario document (internal/scenario's JSON schema); the
// response reports, per hierarchy level, the design-space sweep
// counters and quantized picks (edram levels), the pinned macro's
// datasheet summary, the controller simulation of the allocated
// clients, and the SRAM macro summary (sram levels). The builder is
// shared with `edramx -scenario -json`, so the CLI and the daemon
// produce byte-identical output for the same document.

package service

import (
	"context"
	"net/http"

	"edram/internal/core"
	"edram/internal/edram"
	"edram/internal/scenario"
)

// ScenarioSimJSON is the controller-simulation slice of one scenario
// level — SimulateResponse without the spec/key/version envelope,
// which the enclosing level already carries.
type ScenarioSimJSON struct {
	Policy            string             `json:"policy"`
	PeakGBps          float64            `json:"peak_gbps"`
	SustainedGBps     float64            `json:"sustained_gbps"`
	SustainedFraction float64            `json:"sustained_fraction"`
	HitRate           float64            `json:"hit_rate"`
	DurationNs        float64            `json:"duration_ns"`
	Clients           []ClientResultJSON `json:"clients"`
}

// ScenarioLevelJSON is one hierarchy level's results.
type ScenarioLevelJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Spec/Requirements and the sweep counters are set for edram
	// levels.
	Spec         *edram.Spec        `json:"spec,omitempty"`
	Requirements *core.Requirements `json:"requirements,omitempty"`
	// ClockMHz/AreaMm2/PeakGBps summarize the document-pinned macro.
	ClockMHz float64 `json:"clock_mhz,omitempty"`
	AreaMm2  float64 `json:"area_mm2,omitempty"`
	PeakGBps float64 `json:"peak_gbps,omitempty"`
	// Points/Built/Infeasible count the explorer's sweep; Picks are the
	// quantized recommendations (empty = constraints admit no feasible
	// candidate, a legitimate finding).
	Points     int64                `json:"points,omitempty"`
	Built      int64                `json:"built,omitempty"`
	Infeasible int64                `json:"infeasible,omitempty"`
	Picks      []RecommendationJSON `json:"recommendations,omitempty"`
	// Simulation is set when the workload allocates clients to this
	// level.
	Simulation *ScenarioSimJSON `json:"simulation,omitempty"`
	// The SRAM summary fields are set for sram levels.
	SRAMAreaMm2   float64 `json:"sram_area_mm2,omitempty"`
	SRAMAccessNs  float64 `json:"sram_access_ns,omitempty"`
	SRAMStandbyMW float64 `json:"sram_standby_mw,omitempty"`
}

// ScenarioResponse is the POST /v1/scenario (and edramx -scenario
// -json) response schema.
type ScenarioResponse struct {
	SchemaVersion int                 `json:"schema_version"`
	Name          string              `json:"name"`
	Key           string              `json:"key"`
	Levels        []ScenarioLevelJSON `json:"levels"`
}

// BuildScenario compiles a validated scenario and evaluates every
// level: explorer sweep + pinned-macro datasheet + client simulation
// for edram levels, macro summary for sram levels. workers is the
// evaluation-worker budget shared across the levels' sweeps (the
// response is byte-identical at any worker count).
func BuildScenario(ctx context.Context, scn *scenario.Scenario, workers int) (*ScenarioResponse, error) {
	compiled, err := scn.Compile()
	if err != nil {
		return nil, err
	}
	resp := &ScenarioResponse{
		SchemaVersion: SchemaVersion,
		Name:          scn.Name,
		Key:           HashKey("scenario", scn.CanonicalKey()),
		Levels:        []ScenarioLevelJSON{},
	}
	for i := range compiled.Levels {
		lj, err := buildScenarioLevel(ctx, compiled, i, workers)
		if err != nil {
			return nil, err
		}
		resp.Levels = append(resp.Levels, lj)
	}
	return resp, nil
}

// buildScenarioLevel evaluates one hierarchy level of a compiled
// scenario. Levels are independent of each other, which is what lets
// the scenario job runner checkpoint after each level and resume with
// byte-identical output.
func buildScenarioLevel(ctx context.Context, compiled *scenario.Compiled, i, workers int) (ScenarioLevelJSON, error) {
	cl := compiled.Levels[i]
	lj := ScenarioLevelJSON{Name: cl.Name, Kind: cl.Kind}
	switch cl.Kind {
	case "edram":
		ex, err := BuildExplore(ctx, cl.Requirements, workers, nil)
		if err != nil {
			return lj, err
		}
		spec := cl.Spec
		req := cl.Requirements
		lj.Spec = &spec
		lj.Requirements = &req
		lj.Points = ex.Points
		lj.Built = ex.Built
		lj.Infeasible = ex.Infeasible
		lj.Picks = ex.Picks
		m, err := edram.Build(spec)
		if err != nil {
			return lj, err
		}
		lj.ClockMHz = m.ClockMHz
		lj.AreaMm2 = m.Area.TotalMm2
		lj.PeakGBps = m.PeakBandwidthGBps()
		if len(cl.Clients) > 0 {
			sim, err := BuildSimulate(SimulateRequest{
				Spec: spec,
				Options: SimulateOptions{
					Policy:        compiled.PolicyName,
					ClosedPage:    compiled.ClosedPage,
					ReorderWindow: compiled.ReorderWindow,
				},
				Clients: cl.Clients,
			})
			if err != nil {
				return lj, err
			}
			lj.Simulation = &ScenarioSimJSON{
				Policy:            sim.Policy,
				PeakGBps:          sim.PeakGBps,
				SustainedGBps:     sim.SustainedGBps,
				SustainedFraction: sim.SustainedFraction,
				HitRate:           sim.HitRate,
				DurationNs:        sim.DurationNs,
				Clients:           sim.Clients,
			}
		}
	case "sram":
		area, err := cl.SRAM.AreaMm2()
		if err != nil {
			return lj, err
		}
		ns, err := cl.SRAM.AccessNs()
		if err != nil {
			return lj, err
		}
		lj.SRAMAreaMm2 = area
		lj.SRAMAccessNs = ns
		lj.SRAMStandbyMW = cl.SRAM.StandbyMW()
	}
	return lj, nil
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var scn scenario.Scenario
	if !decodeBody(w, r, &scn) {
		return
	}
	if v := scn.Violations(s.cfg.MaxSimRequests); len(v) > 0 {
		writeError(w, http.StatusBadRequest, scenario.ViolationsError(v))
		return
	}
	key := HashKey("scenario", scn.CanonicalKey())
	s.serveCached(w, r, "/v1/scenario", key, func(ctx context.Context) ([]byte, error) {
		workers, release, err := s.admitWorkers(ctx, "/v1/scenario", s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		defer release()
		resp, err := BuildScenario(ctx, &scn, workers)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}
