package service

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := NewResultCache(3, 0)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C"))
	// Touch a so b becomes the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if evicted := c.Put("d", []byte("D")); evicted != 1 {
		t.Fatalf("Put(d) evicted %d entries, want 1", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order not respected")
	}
	if got, want := c.Keys(), []string{"d", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys() = %v, want %v", got, want)
	}
}

func TestResultCacheHitIsOriginalBytes(t *testing.T) {
	c := NewResultCache(8, 0)
	orig := []byte(`{"frontier":[1,2,3]}` + "\n")
	c.Put("k", orig)
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(got) != string(orig) {
		t.Errorf("hit returned %q, want the original bytes %q", got, orig)
	}
}

func TestResultCacheTTL(t *testing.T) {
	c := NewResultCache(8, time.Minute)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	c.Put("k", []byte("v"))
	clock = clock.Add(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clock = clock.Add(2 * time.Second) // 61s after insertion
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry not dropped, Len() = %d", c.Len())
	}

	// Overwriting refreshes the TTL.
	c.Put("k", []byte("v1"))
	clock = clock.Add(50 * time.Second)
	c.Put("k", []byte("v2"))
	clock = clock.Add(50 * time.Second) // 100s after first put, 50 after refresh
	got, ok := c.Get("k")
	if !ok || string(got) != "v2" {
		t.Errorf("Get after refresh = %q, %t; want v2, true", got, ok)
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(16, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("Get(%s) = %q", key, v)
				}
				c.Len()
				c.Keys()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("cache exceeded its cap: %d entries", c.Len())
	}
}
