package service

import (
	"testing"

	"edram/internal/testleak"
)

// TestMain gates the whole package on goroutine hygiene: after every
// test has passed, the runtime must settle back to the baseline
// goroutine count. A handler that leaks a compute goroutine, a job
// runner that outlives its store, or a pool waiter stuck past
// shutdown turns the package run into a failure with a full stack
// dump.
func TestMain(m *testing.M) { testleak.Check(m) }
