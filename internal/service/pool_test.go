package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWorkerPoolAcquireUpTo(t *testing.T) {
	p := NewWorkerPool(4)
	got, err := p.AcquireUpTo(context.Background(), 8)
	if err != nil || got != 4 {
		t.Fatalf("AcquireUpTo(8) = %d, %v; want the full pool of 4", got, err)
	}
	if p.InUse() != 4 {
		t.Errorf("InUse() = %d, want 4", p.InUse())
	}
	// The pool is empty: a bounded acquire times out.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.AcquireUpTo(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("acquire on exhausted pool = %v, want deadline exceeded", err)
	}
	p.Release(4)

	// Concurrent requests split the budget instead of blocking.
	a, _ := p.AcquireUpTo(context.Background(), 3)
	b, _ := p.AcquireUpTo(context.Background(), 3)
	if a != 3 || b != 1 {
		t.Errorf("split = %d + %d, want 3 + 1", a, b)
	}
	p.Release(a + b)
	if p.InUse() != 0 {
		t.Errorf("InUse() = %d after full release", p.InUse())
	}
}

func TestWorkerPoolMinimums(t *testing.T) {
	p := NewWorkerPool(0)
	if p.Capacity() != 1 {
		t.Errorf("Capacity() = %d, want clamp to 1", p.Capacity())
	}
	got, err := p.AcquireUpTo(context.Background(), 0)
	if err != nil || got != 1 {
		t.Errorf("AcquireUpTo(0) = %d, %v; want 1 slot", got, err)
	}
	p.Release(got)
}
