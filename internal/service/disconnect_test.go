package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisconnectMidComputeEveryEndpoint pins the detached-compute
// contract on every compute endpoint: the initiating client
// disconnects mid-computation, a coalesced follower still receives the
// full response, and the result lands in the cache. Losing the
// initiator must never waste the computation or kill its followers.
func TestDisconnectMidComputeEveryEndpoint(t *testing.T) {
	simReq := `{"spec":{"capacity_mbit":16,"interface_bits":64},
		"options":{"policy":"round-robin"},
		"clients":[{"name":"cpu","kind":"sequential","rate_gbps":0.8,"count":2000}]}`
	cases := []struct {
		name, path, body string
	}{
		{"explore", "/v1/explore", testReq},
		{"recommend", "/v1/recommend", testReq},
		{"simulate", "/v1/simulate", simReq},
		{"datasheet", "/v1/datasheet", `{"capacity_mbit":16,"interface_bits":128,"redundancy":"std"}`},
		{"experiments", "/v1/experiments", `{"ids":["E1"]}`},
		{"scenario", "/v1/scenario", scenarioDoc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(Config{Workers: 2})
			defer srv.Close()
			started := make(chan struct{})
			gate := make(chan struct{})
			var once sync.Once
			srv.computeStarted = func(endpoint, key string) {
				once.Do(func() {
					close(started)
					<-gate
				})
			}
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client := ts.Client()

			// The initiator: cancelled as soon as its computation is
			// running and a follower has joined the flight.
			ctx, cancel := context.WithCancel(context.Background())
			initiatorDone := make(chan error, 1)
			go func() {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+tc.path, strings.NewReader(tc.body))
				if err != nil {
					initiatorDone <- err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				initiatorDone <- err
			}()
			<-started

			type reply struct {
				status int
				body   string
				cache  string
			}
			followerDone := make(chan reply, 1)
			go func() {
				status, body, hdr := post(t, client, ts.URL+tc.path, tc.body)
				followerDone <- reply{status, body, hdr.Get("X-Cache")}
			}()
			// Give the follower time to join the in-flight computation,
			// then disconnect the initiator and let the compute finish.
			time.Sleep(50 * time.Millisecond)
			cancel()
			<-initiatorDone
			time.Sleep(50 * time.Millisecond)
			close(gate)

			follower := <-followerDone
			if follower.status != http.StatusOK {
				t.Fatalf("follower after initiator disconnect: status %d: %s", follower.status, follower.body)
			}
			if follower.cache != "coalesced" {
				t.Errorf("follower X-Cache %q, want coalesced", follower.cache)
			}

			// The computation was cached despite the disconnect.
			status, body, hdr := post(t, client, ts.URL+tc.path, tc.body)
			if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
				t.Fatalf("post-disconnect repeat: status %d, X-Cache %q, want 200 hit", status, hdr.Get("X-Cache"))
			}
			if body != follower.body {
				t.Error("cached bytes differ from the follower's response")
			}
		})
	}
}
