// Package service is the production HTTP layer over the edram facade:
// a stdlib-only JSON daemon (cmd/edramd) exposing exploration,
// recommendation, simulation, datasheets and the experiment suite.
// Three scaling layers sit between the socket and the model:
//
//  1. a canonical-key LRU result cache (ResultCache) — identical
//     requests are served from memory, byte-identical to the original
//     computation;
//  2. request coalescing (flightGroup) — concurrent identical misses
//     run the computation once and share the bytes;
//  3. a bounded shared worker pool (WorkerPool) — the process-wide
//     evaluation budget that concurrent sweeps split between them.
//
// Every request carries a deadline (the context flows end-to-end into
// the engine), bodies are size-capped, and shutdown drains in-flight
// work before the listener closes.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"edram/internal/core"
	"edram/internal/diskcache"
	"edram/internal/jobs"
)

// Config tunes the server; the zero value gets sensible defaults.
type Config struct {
	// CacheEntries caps the result cache (default 256); CacheTTL is the
	// per-entry lifetime (default 15m; negative disables expiry).
	CacheEntries int
	CacheTTL     time.Duration
	// Workers is the shared evaluation-worker budget
	// (default GOMAXPROCS).
	Workers int
	// RequestTimeout bounds each request end-to-end, compute included
	// (default 60s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxSimRequests caps the total request count of one /v1/simulate
	// call (default 2,000,000; negative disables the cap).
	MaxSimRequests int64
	// AccessLog receives one JSON line per request (nil = no log).
	AccessLog io.Writer

	// MaxQueueDepth bounds computations admitted beyond the worker
	// capacity (default 32; negative disables the bound). Past it,
	// requests shed immediately with 503 + Retry-After instead of
	// queueing invisibly.
	MaxQueueDepth int
	// EndpointBudget caps concurrent computations per endpoint; any
	// endpoint absent from the map gets DefaultEndpointBudget
	// (default 2*Workers+2; negative disables).
	EndpointBudget        map[string]int
	DefaultEndpointBudget int

	// JobDir is the async-job checkpoint directory ("" keeps jobs
	// memory-only: no resume across restarts).
	JobDir string
	// MaxJobs / MaxActiveJobs bound the job store (defaults 64 / 2).
	MaxJobs       int
	MaxActiveJobs int
	// JobCheckpointEvery is the explore job checkpoint cadence in
	// design points (default 250,000).
	JobCheckpointEvery int
	// AsyncPointThreshold converts a synchronous POST /v1/explore
	// whose sweep exceeds this many design points into an async job
	// (202 + job id). 0 disables the escape hatch.
	AsyncPointThreshold int

	// Peers lists remote edramd base URLs (e.g. "http://10.0.0.2:8080")
	// that explore sweeps fan out to via POST /v1/internal/shard.
	Peers []string
	// ShardParts is the explore partition count when sharding is on
	// (default 2*(1+len(Peers)), so every executor gets work and
	// stragglers can be rebalanced). Setting Peers or ShardParts
	// enables the sharded explore path.
	ShardParts int
	// ShardHedgeAfter re-executes a still-unfinished remote partition
	// locally after this long (0 disables hedging).
	ShardHedgeAfter time.Duration

	// CacheDir enables the persistent disk cache tier behind the
	// in-memory LRU ("" disables it). The segment replays synchronously
	// in NewServer, before the daemon marks itself ready.
	CacheDir string
	// DiskCacheBytes / DiskCacheEntries bound the disk tier
	// (defaults 256 MiB / 4096 entries).
	DiskCacheBytes   int64
	DiskCacheEntries int
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 15 * time.Minute
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSimRequests == 0 {
		c.MaxSimRequests = 2_000_000
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 32
	}
	if c.DefaultEndpointBudget == 0 {
		c.DefaultEndpointBudget = 2*c.Workers + 2
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 64
	}
	if c.MaxActiveJobs == 0 {
		c.MaxActiveJobs = 2
	}
	if c.JobCheckpointEvery <= 0 {
		c.JobCheckpointEvery = 250_000
	}
	return c
}

// endpointBudgets resolves the per-endpoint concurrency limits: the
// explicit map entries over the default for every compute endpoint.
func (c Config) endpointBudgets() map[string]int {
	limits := map[string]int{}
	for _, ep := range []string{"/v1/explore", "/v1/recommend", "/v1/simulate", "/v1/experiments", "/v1/scenario", "/v1/internal/shard"} {
		limits[ep] = c.DefaultEndpointBudget
	}
	for ep, n := range c.EndpointBudget {
		limits[ep] = n
	}
	return limits
}

// Readiness states reported by GET /readyz.
const (
	readyStarting int32 = iota // warm-up / job resume not finished
	readyOK                    // serving
	readyDraining              // graceful shutdown in progress
)

// Server is the HTTP service. Construct with NewServer.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	cache     *ResultCache
	flights   flightGroup
	pool      *WorkerPool
	metrics   *Metrics
	logger    *slog.Logger
	admission *admission
	readiness atomic.Int32

	// jobsStore is the async-job registry; jobsErr records a failed
	// store initialization (bad JobDir) so the jobs endpoints report
	// it instead of panicking.
	jobsStore *jobs.Store
	jobsErr   error

	// disk is the persistent cache tier (nil unless CacheDir is set);
	// diskErr records a failed open so the daemon can refuse to start
	// instead of silently serving cold.
	disk    *diskcache.Cache
	diskErr error

	// shardClient carries /v1/internal/shard sub-requests to peers.
	shardClient *http.Client

	// Metric handles resolved once at construction.
	inFlight        *Gauge
	workersInUse    *Gauge
	workersCap      *Gauge
	cacheHits       *Counter
	cacheMisses     *Counter
	cacheEvicts     *Counter
	coalescedReqs   *Counter
	admissionQueued *Gauge
	jobsActive      *Gauge

	// Tiered-cache counters: the memory pair resolves always, the disk
	// pair only when the disk tier is configured. Tier label values are
	// construction-time literals (closed set).
	tierMemHits    *Counter
	tierMemMisses  *Counter
	tierDiskHits   *Counter
	tierDiskMisses *Counter

	// Delta-tier state and counters (see deltaserve.go): explore
	// requests whose byte-identity misses but whose requirement
	// structure matches a retained sweep are re-served incrementally.
	deltaStates     *deltaIndex
	tierDeltaHits   *Counter
	tierDeltaMisses *Counter
	deltaSwept      *Counter
	deltaReused     *Counter

	// Sharded-explore counters.
	shardExplores     *Counter
	shardPartsLocal   *Counter
	shardPartsRemote  *Counter
	shardRetries      *Counter
	shardHedges       *Counter
	shardPeerFailures *Counter
	shardMergeSeconds *Histogram

	// computeStarted, when set (tests only), observes every cache-miss
	// computation as it begins — the barrier the coalescing tests
	// synchronize on. admittedHook fires after a computation passes the
	// admission gate — the barrier the overload tests synchronize on.
	computeStarted func(endpoint, key string)
	admittedHook   func(endpoint string)
}

// NewServer builds a server with its own cache, flight group, worker
// pool and metrics registry.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		cache:     NewResultCache(cfg.CacheEntries, cfg.CacheTTL),
		pool:      NewWorkerPool(cfg.Workers),
		metrics:   m,
		admission: newAdmission(cfg.Workers, cfg.MaxQueueDepth, cfg.endpointBudgets()),

		inFlight:        m.Gauge("edramd_in_flight_requests", "Requests currently being served."),
		workersInUse:    m.Gauge("edramd_workers_in_use", "Evaluation workers currently acquired."),
		workersCap:      m.Gauge("edramd_workers_capacity", "Evaluation worker pool capacity."),
		cacheHits:       m.Counter("edramd_cache_hits_total", "Responses served from the result cache."),
		cacheMisses:     m.Counter("edramd_cache_misses_total", "Responses computed on a cache miss."),
		cacheEvicts:     m.Counter("edramd_cache_evictions_total", "Cache entries evicted by the LRU cap."),
		coalescedReqs:   m.Counter("edramd_coalesced_requests_total", "Requests that joined an in-flight identical computation."),
		admissionQueued: m.Gauge("edramd_admission_queued", "Computations admitted and not yet released."),
		jobsActive:      m.Gauge("edramd_jobs_active", "Async jobs currently running."),

		tierMemHits:    m.Counter("edramd_cache_tier_hits_total", "Cache hits by tier.", Label{"tier", "memory"}),
		tierMemMisses:  m.Counter("edramd_cache_tier_misses_total", "Cache misses by tier.", Label{"tier", "memory"}),
		tierDiskHits:   m.Counter("edramd_cache_tier_hits_total", "Cache hits by tier.", Label{"tier", "disk"}),
		tierDiskMisses: m.Counter("edramd_cache_tier_misses_total", "Cache misses by tier.", Label{"tier", "disk"}),

		deltaStates:     newDeltaIndex(),
		tierDeltaHits:   m.Counter("edramd_cache_tier_hits_total", "Cache hits by tier.", Label{"tier", "delta"}),
		tierDeltaMisses: m.Counter("edramd_cache_tier_misses_total", "Cache misses by tier.", Label{"tier", "delta"}),
		deltaSwept:      m.Counter("edramd_delta_swept_points_total", "Design points swept fresh by delta re-explorations."),
		deltaReused:     m.Counter("edramd_delta_reused_evals_total", "Retained evaluations reused by delta re-explorations."),

		shardExplores:     m.Counter("edramd_shard_explores_total", "Explore sweeps served through the sharded fan-out path."),
		shardPartsLocal:   m.Counter("edramd_shard_partitions_total", "Accepted shard partitions by executor kind.", Label{"target", "local"}),
		shardPartsRemote:  m.Counter("edramd_shard_partitions_total", "Accepted shard partitions by executor kind.", Label{"target", "remote"}),
		shardRetries:      m.Counter("edramd_shard_retries_total", "Shard partitions requeued after a peer failure."),
		shardHedges:       m.Counter("edramd_shard_hedges_total", "Local hedge executions launched against straggling remote shards."),
		shardPeerFailures: m.Counter("edramd_shard_peer_failures_total", "Remote shard executors retired by a failure."),
		shardMergeSeconds: m.Histogram("edramd_shard_merge_seconds", "Pareto-frontier merge latency in seconds.", DefaultLatencyBuckets),
	}
	s.workersCap.Set(int64(cfg.Workers))
	s.shardClient = &http.Client{Timeout: cfg.RequestTimeout}
	if cfg.CacheDir != "" {
		// The segment replays synchronously here, so a warm-starting
		// daemon holds /readyz at 503 "starting" until the disk tier is
		// fully rebuilt (MarkReady comes after NewServer returns).
		s.disk, s.diskErr = diskcache.Open(cfg.CacheDir, diskcache.Options{
			MaxBytes:   cfg.DiskCacheBytes,
			MaxEntries: cfg.DiskCacheEntries,
			Generation: CacheGeneration(),
		})
	}
	s.jobsStore, s.jobsErr = jobs.NewStore(jobs.Config{
		Dir:       cfg.JobDir,
		MaxJobs:   cfg.MaxJobs,
		MaxActive: cfg.MaxActiveJobs,
	})
	logOut := cfg.AccessLog
	if logOut == nil {
		logOut = io.Discard
	}
	s.logger = slog.New(slog.NewJSONHandler(logOut, nil))

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/datasheet", s.handleDatasheet)
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/scenario", s.handleScenario)
	s.mux.HandleFunc("POST /v1/internal/shard", s.handleShard)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	return s
}

// MarkReady flips /readyz to 200. The daemon calls it once job resume
// and cache warm-up have completed; until then load balancers keep the
// instance out of rotation while /healthz already answers.
func (s *Server) MarkReady() { s.readiness.CompareAndSwap(readyStarting, readyOK) }

// DiskCacheErr reports a failed disk-tier open (bad CacheDir). The
// daemon checks it at startup and refuses to serve rather than running
// silently without the tier it was configured with.
func (s *Server) DiskCacheErr() error { return s.diskErr }

// DiskStats snapshots the disk tier's counters (zero when the tier is
// off) — the warm-start smoke and tests read it.
func (s *Server) DiskStats() diskcache.Stats {
	if s.disk == nil {
		return diskcache.Stats{}
	}
	return s.disk.Stats()
}

// CacheGeneration is the disk tier's generation tag: the wire schema
// version plus every canonical-key tag version that can appear in a
// cached response's identity. Bumping any of them (see DESIGN.md §6)
// changes the tag, so a snapshot written under the old schema
// self-invalidates at open instead of replaying wrong bytes.
func CacheGeneration() string {
	return fmt.Sprintf("edram/gen|schema=%d|tags=req/v2,spec/v2,proc/v1,sim/v2,exp/v2,scn/v1,job/v1,trials/v1,shard/v1",
		SchemaVersion)
}

// lookupTiered consults memory then disk. A disk hit is promoted into
// the memory LRU so the next lookup stays off the index entirely; the
// returned tag is the X-Cache value ("hit" or "hit-disk").
func (s *Server) lookupTiered(key string) ([]byte, string, bool) {
	if val, ok := s.cache.Get(key); ok {
		s.cacheHits.Inc()
		s.tierMemHits.Inc()
		return val, "hit", true
	}
	s.tierMemMisses.Inc()
	if s.disk != nil {
		if val, ok := s.disk.Get(key); ok {
			s.tierDiskHits.Inc()
			s.cacheEvicts.Add(int64(s.cache.Put(key, val)))
			return val, "hit-disk", true
		}
		s.tierDiskMisses.Inc()
	}
	return nil, "", false
}

// fillCaches stores freshly computed response bytes in every tier.
func (s *Server) fillCaches(key string, b []byte) {
	s.cacheEvicts.Add(int64(s.cache.Put(key, b)))
	if s.disk != nil {
		s.disk.Put(key, b)
	}
}

// Warmup primes the result cache with the explore responses for the
// given requirement sets. The daemon runs it before MarkReady so an
// instance enters rotation with its hot keys already served from
// memory instead of absorbing a thundering herd cold.
func (s *Server) Warmup(ctx context.Context, reqs []core.Requirements) error {
	for _, req := range reqs {
		if err := req.Validate(); err != nil {
			return fmt.Errorf("warmup %s: %w", req.CanonicalKey(), err)
		}
		// The recording path: a warmed instance can serve constraint
		// tweaks of its warm keys through the delta tier immediately.
		resp, err := s.buildExploreRecorded(ctx, req, s.cfg.Workers)
		if err != nil {
			return fmt.Errorf("warmup %s: %w", req.CanonicalKey(), err)
		}
		b, err := Encode(resp)
		if err != nil {
			return err
		}
		s.fillCaches(HashKey("explore", req.CanonicalKey()), b)
	}
	return nil
}

// markDraining flips /readyz to 503 "draining" for the rest of the
// process lifetime.
func (s *Server) markDraining() { s.readiness.Store(readyDraining) }

// Close shuts the async-job store down (running jobs are cancelled
// cooperatively and keep their last checkpoint for the next life) and
// snapshots the disk cache tier for the next boot's warm start.
// ListenAndServe calls it after the HTTP drain; tests that never serve
// call it directly.
func (s *Server) Close() error {
	var err error
	if s.jobsStore != nil {
		err = s.jobsStore.Close(s.cfg.DrainTimeout)
	}
	if s.disk != nil {
		if derr := s.disk.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// shedTotal / admittedTotal / jobsSubmitted resolve the labeled
// overload counters (labels are from closed sets: endpointLabel output
// and fixed reason/kind strings — not client-controlled).
func (s *Server) shedTotal(endpoint, reason string) *Counter {
	return s.metrics.Counter("edramd_shed_total", "Requests shed by admission control.",
		Label{"endpoint", endpoint}, Label{"reason", reason})
}

func (s *Server) admittedTotal(endpoint string) *Counter {
	return s.metrics.Counter("edramd_admitted_total", "Computations admitted past the gate.",
		Label{"endpoint", endpoint})
}

func (s *Server) jobsSubmitted(kind string) *Counter {
	return s.metrics.Counter("edramd_jobs_submitted_total", "Async jobs created.",
		Label{"kind", kind})
}

// Metrics exposes the server's registry (the daemon and tests read it;
// GET /metrics renders it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// knownEndpoints is the closed route set used as the metrics
// "endpoint" label. Raw request paths are client-controlled: labeling
// by them would let any unauthenticated client mint unbounded metric
// series (each a permanent counter + histogram), so unmatched paths
// collapse into one "other" bucket.
var knownEndpoints = map[string]bool{
	"/healthz":           true,
	"/readyz":            true,
	"/metrics":           true,
	"/v1/explore":        true,
	"/v1/recommend":      true,
	"/v1/simulate":       true,
	"/v1/datasheet":      true,
	"/v1/experiments":    true,
	"/v1/scenario":       true,
	"/v1/jobs":           true,
	"/v1/internal/shard": true,
}

// endpointLabel normalizes a request path to the known route set.
// Job-instance paths (/v1/jobs/{id}...) collapse into "/v1/jobs": the
// id segment is client-controlled and must not mint metric series.
func endpointLabel(path string) string {
	if knownEndpoints[path] {
		return path
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs"
	}
	return "other"
}

// statusRecorder captures the status code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: body cap, per-request deadline,
// in-flight gauge, latency histogram and access log around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	//nolint:edramvet/determinism // request latency measurement is intentionally wall-clock
	start := time.Now()
	s.inFlight.Inc()
	defer s.inFlight.Dec()

	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r.WithContext(ctx))

	elapsed := time.Since(start).Seconds()
	endpoint := endpointLabel(r.URL.Path)
	s.metrics.Counter("edramd_requests_total", "Requests served by endpoint and status code.",
		Label{"endpoint", endpoint}, Label{"code", fmt.Sprintf("%d", rec.status)}).Inc()
	s.metrics.Histogram("edramd_request_seconds", "Request latency in seconds.",
		DefaultLatencyBuckets, Label{"endpoint", endpoint}).Observe(elapsed)
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", rec.status),
		slog.Float64("seconds", elapsed),
		slog.String("cache", rec.Header().Get("X-Cache")),
	)
}

// writeJSON writes v in the canonical wire encoding with the given
// status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := Encode(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

// writeError maps an error to its status and the ErrorResponse schema.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{SchemaVersion: SchemaVersion, Error: err.Error()})
}

// errStatus maps a compute error to an HTTP status: timeouts are 504,
// everything else from the model layer is a 422 (the request was
// well-formed JSON but describes something the model rejects or cannot
// build).
func errStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// decodeBody decodes the JSON request body into v, mapping the
// oversized-body error to 413 and malformed JSON to 400. It returns
// false after writing the error response.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	b, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		}
		return false
	}
	if len(b) == 0 {
		b = []byte("{}")
	}
	if err := strictUnmarshal(b, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// serveCached is the shared read path: cache lookup, then coalesced
// computation, then cache fill. compute returns the canonical encoded
// response bytes. The computation runs on a context detached from the
// initiating request (a disconnecting initiator must not kill the
// waiters that coalesced onto it) but still bounded by RequestTimeout.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, key string, compute func(ctx context.Context) ([]byte, error)) {
	s.serveCachedTagged(w, r, endpoint, key, func(ctx context.Context) ([]byte, string, error) {
		b, err := compute(ctx)
		return b, "", err
	})
}

// serveCachedTagged is serveCached for computations that can report a
// serving tier of their own: a non-empty tag from compute replaces the
// leader's default "miss" X-Cache value (the delta tier's "hit-delta").
// Coalesced followers keep "coalesced" — they did not compute.
func (s *Server) serveCachedTagged(w http.ResponseWriter, r *http.Request, endpoint, key string, compute func(ctx context.Context) ([]byte, string, error)) {
	if val, tag, ok := s.lookupTiered(key); ok {
		w.Header().Set("X-Cache", tag)
		writeBytes(w, val)
		return
	}
	// Written only inside the leader's closure, read only after Do
	// returns in the leader's own call — followers never run the
	// closure and never read it.
	leaderTag := ""
	val, err, coalesced := s.flights.Do(r.Context(), key, func() ([]byte, error) {
		s.cacheMisses.Inc()
		if s.computeStarted != nil {
			s.computeStarted(endpoint, key)
		}
		//nolint:edramvet/ctxflow // deliberate detach: coalesced followers must not lose the shared compute when the leader request disconnects; the timeout re-bounds it
		ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), s.cfg.RequestTimeout)
		defer cancel()
		b, tag, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		leaderTag = tag
		s.fillCaches(key, b)
		return b, nil
	})
	switch {
	case coalesced:
		s.coalescedReqs.Inc()
		w.Header().Set("X-Cache", "coalesced")
	case leaderTag != "":
		w.Header().Set("X-Cache", leaderTag)
	default:
		w.Header().Set("X-Cache", "miss")
	}
	if err != nil {
		var oe *overloadError
		if errors.As(err, &oe) {
			writeOverload(w, oe)
			return
		}
		writeError(w, errStatus(err), err)
		return
	}
	writeBytes(w, val)
}

// writeBytes writes pre-encoded canonical JSON.
func writeBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// acquireWorkers grants the request a share of the pool for its
// computation, updating the in-use gauge. The returned release must be
// called exactly once.
func (s *Server) acquireWorkers(ctx context.Context, want int) (got int, release func(), err error) {
	got, err = s.pool.AcquireUpTo(ctx, want)
	if err != nil {
		return 0, nil, err
	}
	s.workersInUse.Add(int64(got))
	return got, func() {
		s.pool.Release(got)
		s.workersInUse.Add(int64(-got))
	}, nil
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests run to completion
// (bounded by DrainTimeout), and only then does the call return. ready,
// when non-nil, receives the bound address once the listener is up
// (addr may carry port 0).
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds the body read too: without it a slow-body
		// (slowloris-style) client holds its connection and goroutine
		// past the per-request deadline, which cannot interrupt the
		// handler's blocking body read on its own.
		ReadTimeout: s.cfg.RequestTimeout,
		//nolint:edramvet/ctxflow // per-connection root: request contexts must outlive the accept-loop ctx so draining can finish in-flight work
		BaseContext: func(net.Listener) context.Context { return context.Background() },
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Flip /readyz to draining first, so load balancers stop
		// routing here while in-flight requests finish.
		s.markDraining()
		//nolint:edramvet/ctxflow // the parent ctx is already cancelled here; the drain deadline needs a fresh root or Shutdown would abort instantly
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		<-done // Serve has returned http.ErrServerClosed
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		return err
	case err := <-done:
		return err
	}
}
