package service

import (
	"testing"

	"edram/internal/edram"
)

// TestSimulateCanonicalKeyEscapesStrings pins the quoting rule: a
// client name containing the key's ',' / '|' separators must not shift
// the positional fields and collide with a different request.
func TestSimulateCanonicalKeyEscapesStrings(t *testing.T) {
	spec := edram.Spec{CapacityMbit: 16, InterfaceBits: 64}
	// a: one client whose name embeds what looks like the tail of its
	// own rendering plus a second client. b: the two clients spelled
	// honestly. Without quoting both render the same canonical string.
	a := SimulateRequest{Spec: spec, Clients: []ClientSpec{
		{Name: "cpu,sequential,0,1,100,0,0,0,0,0,false,0|client=dsp", Kind: "sequential", RateGBps: 1, Count: 100},
	}}
	b := SimulateRequest{Spec: spec, Clients: []ClientSpec{
		{Name: "cpu", Kind: "sequential", RateGBps: 1, Count: 100},
		{Name: "dsp", Kind: "sequential", RateGBps: 1, Count: 100},
	}}
	if a.canonicalKey() == b.canonicalKey() {
		t.Errorf("delimiter injection collides:\n  %q", a.canonicalKey())
	}
}

// TestExperimentsCanonicalKeyEscapesIDs pins the same rule for the id
// filter: an id containing ',' must not render as two ids.
func TestExperimentsCanonicalKeyEscapesIDs(t *testing.T) {
	a := ExperimentsRequest{IDs: []string{"E1,E2"}}
	b := ExperimentsRequest{IDs: []string{"E1", "E2"}}
	if a.canonicalKey() == b.canonicalKey() {
		t.Errorf("id delimiter injection collides:\n  %q", a.canonicalKey())
	}
}

// TestEndpointLabelClosedSet: metrics are labeled only with the known
// route set; arbitrary client-controlled paths collapse to "other" so
// they cannot mint unbounded metric series.
func TestEndpointLabelClosedSet(t *testing.T) {
	for _, known := range []string{"/healthz", "/metrics", "/v1/explore",
		"/v1/recommend", "/v1/simulate", "/v1/datasheet", "/v1/experiments"} {
		if got := endpointLabel(known); got != known {
			t.Errorf("endpointLabel(%q) = %q, want itself", known, got)
		}
	}
	for _, unknown := range []string{"/", "/v1/explore/", "/v2/explore", "/favicon.ico", "/../../etc/passwd"} {
		if got := endpointLabel(unknown); got != "other" {
			t.Errorf("endpointLabel(%q) = %q, want \"other\"", unknown, got)
		}
	}
}
