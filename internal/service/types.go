// The wire schema of the service layer and the builders that produce
// it. These types (plus core.Requirements and edram.Spec, which carry
// their own JSON tags) are the single source of truth for
// serialization: the HTTP handlers, edramx -json and the parity tests
// all go through BuildExplore/BuildRecommend/... and Encode, so the
// daemon and the CLI cannot drift apart. Responses deliberately contain
// no wall-clock or worker-count fields — the same request must encode
// to the same bytes at any pool size, which is what makes them
// cacheable and the CLI/service parity byte-exact.

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"edram/internal/core"
	"edram/internal/edram"
	"edram/internal/experiments"
	"edram/internal/mapping"
	"edram/internal/scenario"
	"edram/internal/sched"
)

// SchemaVersion is the wire-schema version every response carries in
// its schema_version field and every request may pin. It tracks the
// scenario document version: additive changes keep the number,
// key-affecting changes bump it together with the canonical-key tags
// (DESIGN.md "Wire-schema versioning").
const SchemaVersion = scenario.SchemaVersion

// checkSchemaVersion validates a request's optional version pin
// (0 = unpinned, accept).
func checkSchemaVersion(v int) error {
	if v != 0 && v != SchemaVersion {
		return fmt.Errorf("unsupported schema_version %d (this server speaks %d)", v, SchemaVersion)
	}
	return nil
}

// RequirementsRequest is the explore/recommend request body: the core
// requirements plus an optional schema_version pin. The pin is not
// part of the canonical key — pinning the version the server already
// speaks cannot change the result.
type RequirementsRequest struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	core.Requirements
}

// DatasheetRequest is the datasheet request body: a macro spec plus an
// optional schema_version pin.
type DatasheetRequest struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	edram.Spec
}

// CandidateJSON is the wire form of one evaluated design point
// (core.Candidate without the constructed Macro, plus its clock).
type CandidateJSON struct {
	Seq            int        `json:"seq"`
	Spec           edram.Spec `json:"spec"`
	Macros         int        `json:"macros"`
	ClockMHz       float64    `json:"clock_mhz"`
	AreaMm2        float64    `json:"area_mm2"`
	PowerMW        float64    `json:"power_mw"`
	PeakGBps       float64    `json:"peak_gbps"`
	SustainedGBps  float64    `json:"sustained_gbps"`
	DieYield       float64    `json:"die_yield"`
	CostUSD        float64    `json:"cost_usd"`
	CostPerMbitUSD float64    `json:"cost_per_mbit_usd"`
	Feasible       bool       `json:"feasible"`
	Reasons        []string   `json:"reasons,omitempty"`
}

// RecommendationJSON is one quantized pick.
type RecommendationJSON struct {
	Role string `json:"role"`
	CandidateJSON
}

// ExploreResponse is the POST /v1/explore (and edramx -json) schema.
type ExploreResponse struct {
	SchemaVersion int               `json:"schema_version"`
	Request       core.Requirements `json:"request"`
	// Key is the canonical-key hash identifying this request in the
	// result cache (see DESIGN.md for the canonicalization rules).
	Key        string               `json:"key"`
	Points     int64                `json:"points"`
	Built      int64                `json:"built"`
	Infeasible int64                `json:"infeasible"`
	Pruned     int64                `json:"pruned"`
	Frontier   []CandidateJSON      `json:"frontier"`
	Picks      []RecommendationJSON `json:"recommendations"`
}

// RecommendResponse is the POST /v1/recommend schema.
type RecommendResponse struct {
	SchemaVersion int                  `json:"schema_version"`
	Request       core.Requirements    `json:"request"`
	Key           string               `json:"key"`
	Picks         []RecommendationJSON `json:"recommendations"`
}

// SimulateOptions is the wire form of the controller options.
type SimulateOptions struct {
	// Policy is the arbitration scheme by name: "round-robin",
	// "fixed-priority", "oldest-first", "open-page-first", "deadline"
	// ("" = round-robin).
	Policy        string `json:"policy,omitempty"`
	ClosedPage    bool   `json:"closed_page,omitempty"`
	ReorderWindow int    `json:"reorder_window,omitempty"`
}

// ClientSpec is the wire form of one memory client: a named request
// generator. It is the scenario package's type — the scenario language
// and the simulate wire schema share one client vocabulary (and one
// Violations implementation).
type ClientSpec = scenario.ClientSpec

// SimulateRequest is the POST /v1/simulate schema. SchemaVersion is an
// optional version pin; it is deliberately absent from the canonical
// key (pinning the version the server already speaks is
// identity-neutral).
type SimulateRequest struct {
	// SchemaVersion optionally pins the wire version.
	//cachekey:exempt version pin validated to the one supported value; cannot change the result
	SchemaVersion int             `json:"schema_version,omitempty"`
	Spec          edram.Spec      `json:"spec"`
	Options       SimulateOptions `json:"options"`
	Clients       []ClientSpec    `json:"clients"`
}

// ClientResultJSON is one client's service quality.
type ClientResultJSON struct {
	Name         string  `json:"name"`
	Requests     int     `json:"requests"`
	AchievedGBps float64 `json:"achieved_gbps"`
	BitsMoved    int64   `json:"bits_moved"`
	MeanNs       float64 `json:"mean_ns"`
	P50Ns        float64 `json:"p50_ns"`
	P95Ns        float64 `json:"p95_ns"`
	P99Ns        float64 `json:"p99_ns"`
	MaxNs        float64 `json:"max_ns"`
	MaxFIFODepth int     `json:"max_fifo_depth"`
}

// SimulateResponse is the POST /v1/simulate response schema.
type SimulateResponse struct {
	SchemaVersion     int                `json:"schema_version"`
	Spec              edram.Spec         `json:"spec"`
	Key               string             `json:"key"`
	Policy            string             `json:"policy"`
	PeakGBps          float64            `json:"peak_gbps"`
	SustainedGBps     float64            `json:"sustained_gbps"`
	SustainedFraction float64            `json:"sustained_fraction"`
	HitRate           float64            `json:"hit_rate"`
	DurationNs        float64            `json:"duration_ns"`
	Clients           []ClientResultJSON `json:"clients"`
}

// DatasheetResponse is the POST /v1/datasheet response schema.
type DatasheetResponse struct {
	SchemaVersion        int        `json:"schema_version"`
	Spec                 edram.Spec `json:"spec"`
	Key                  string     `json:"key"`
	ClockMHz             float64    `json:"clock_mhz"`
	AreaMm2              float64    `json:"area_mm2"`
	EfficiencyMbitPerMm2 float64    `json:"efficiency_mbit_per_mm2"`
	PeakGBps             float64    `json:"peak_gbps"`
	FillFrequencyHz      float64    `json:"fill_frequency_hz"`
	Banks                int        `json:"banks"`
	RowsPerBank          int        `json:"rows_per_bank"`
	PageBits             int        `json:"page_bits"`
	Text                 string     `json:"text"`
}

// ExperimentsRequest is the POST /v1/experiments schema (empty body =
// the full suite).
type ExperimentsRequest struct {
	// SchemaVersion optionally pins the wire version (absent from the
	// canonical key, like the simulate pin).
	//cachekey:exempt version pin validated to the one supported value; cannot change the result
	SchemaVersion int `json:"schema_version,omitempty"`
	// IDs filters the suite ("E1", "A3", ...); empty runs everything.
	IDs []string `json:"ids,omitempty"`
}

// FindingJSON is one headline number of an experiment.
type FindingJSON struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// ExperimentJSON is one regenerated table.
type ExperimentJSON struct {
	ID       string        `json:"id"`
	Title    string        `json:"title"`
	Findings []FindingJSON `json:"findings"`
	Table    string        `json:"table"`
}

// ExperimentsResponse is the POST /v1/experiments response schema.
type ExperimentsResponse struct {
	SchemaVersion int              `json:"schema_version"`
	Key           string           `json:"key"`
	Experiments   []ExperimentJSON `json:"experiments"`
}

// ErrorResponse is the schema of every non-2xx body.
type ErrorResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}

// Encode renders a response in its canonical wire form: compact JSON
// plus a trailing newline. Every byte served (or cached, or printed by
// edramx -json) goes through here.
func Encode(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// candidateJSON converts one evaluated candidate to its wire form.
func candidateJSON(c core.Candidate) CandidateJSON {
	out := CandidateJSON{
		Seq:            c.Seq,
		Spec:           c.Spec,
		Macros:         c.Macros,
		AreaMm2:        c.AreaMm2,
		PowerMW:        c.PowerMW,
		PeakGBps:       c.PeakGBps,
		SustainedGBps:  c.SustainedGBps,
		DieYield:       c.DieYield,
		CostUSD:        c.CostUSD,
		CostPerMbitUSD: c.CostPerMbitUSD,
		Feasible:       c.Feasible,
		Reasons:        c.Reasons,
	}
	if c.Macro != nil {
		out.ClockMHz = c.Macro.ClockMHz
	}
	return out
}

// BuildExplore runs the full design-space exploration for req on
// workers evaluation workers and assembles the /v1/explore response:
// deterministic sweep counters, the feasible Pareto frontier in
// canonical order, and the quantized recommendations. progress, when
// non-nil, receives the engine's periodic ExploreStats snapshots (the
// CLI's progress line). extra options are appended to the engine's
// (the delta recorder passes its observer through here).
//
// The sweep runs constraint-pruned: subspaces the engine can prove
// infeasible are skipped analytically and folded back through the
// ExploreStats Total* accessors, so the response stays byte-identical
// to an unpruned run (the parity tests pin this).
func BuildExplore(ctx context.Context, req core.Requirements, workers int, progress func(core.ExploreStats), extra ...core.ExploreOption) (*ExploreResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var final core.ExploreStats
	opts := []core.ExploreOption{
		core.WithWorkers(workers),
		core.WithPruning(),
		core.WithProgress(func(s core.ExploreStats) {
			if s.Done {
				final = s
			}
			if progress != nil {
				progress(s)
			}
		}),
	}
	opts = append(opts, extra...)
	ch, err := core.ExploreContext(ctx, req, opts...)
	if err != nil {
		return nil, err
	}
	front := core.NewFrontier()
	for c := range ch {
		front.Add(c)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if final.TotalBuilt() == 0 {
		return nil, fmt.Errorf("no buildable configuration for %+v", req)
	}
	resp := &ExploreResponse{
		SchemaVersion: SchemaVersion,
		Request:       req,
		Key:           HashKey("explore", req.CanonicalKey()),
		Points:        final.TotalPoints(),
		Built:         final.TotalBuilt(),
		Infeasible:    final.TotalInfeasible(),
		// Pruned is deterministic even though arrival order is not:
		// every feasible candidate either survives in the front or was
		// discarded exactly once. Analytic skips never touch it — a
		// skipped candidate is infeasible and would never have entered
		// the front.
		Pruned:   final.Pruned,
		Frontier: []CandidateJSON{},
		Picks:    []RecommendationJSON{},
	}
	frontier := front.Candidates()
	for _, c := range frontier {
		resp.Frontier = append(resp.Frontier, candidateJSON(c))
	}
	for _, r := range core.Quantize(frontier) {
		resp.Picks = append(resp.Picks, RecommendationJSON{Role: r.Role, CandidateJSON: candidateJSON(r.Candidate)})
	}
	return resp, nil
}

// BuildExploreDelta assembles the /v1/explore response for req from a
// retained delta state instead of a cold sweep: only the Seq intervals
// the state never covered are evaluated fresh, everything else is
// re-filtered under req's constraint values. The response is
// byte-identical to BuildExplore's (the delta parity tests pin this);
// the DeltaResult carries the swept/reused accounting for metrics.
func BuildExploreDelta(ctx context.Context, st *core.DeltaState, req core.Requirements, workers int) (*ExploreResponse, *core.DeltaResult, error) {
	res, err := core.DeltaExplore(ctx, st, req, workers)
	if err != nil {
		return nil, nil, err
	}
	if res.Stats.TotalBuilt() == 0 {
		return nil, nil, fmt.Errorf("no buildable configuration for %+v", req)
	}
	resp := &ExploreResponse{
		SchemaVersion: SchemaVersion,
		Request:       req,
		Key:           HashKey("explore", req.CanonicalKey()),
		Points:        res.Stats.TotalPoints(),
		Built:         res.Stats.TotalBuilt(),
		Infeasible:    res.Stats.TotalInfeasible(),
		Pruned:        res.Stats.Pruned,
		Frontier:      []CandidateJSON{},
		Picks:         []RecommendationJSON{},
	}
	for _, c := range res.Frontier {
		resp.Frontier = append(resp.Frontier, candidateJSON(c))
	}
	for _, r := range core.Quantize(res.Frontier) {
		resp.Picks = append(resp.Picks, RecommendationJSON{Role: r.Role, CandidateJSON: candidateJSON(r.Candidate)})
	}
	return resp, res, nil
}

// BuildRecommend runs the exploration and returns only the quantized
// picks — the /v1/recommend response. Unlike explore, an empty feasible
// set is an error (mirroring core.RecommendContext).
func BuildRecommend(ctx context.Context, req core.Requirements, workers int) (*RecommendResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	recs, err := core.RecommendContext(ctx, req, core.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	resp := &RecommendResponse{
		SchemaVersion: SchemaVersion,
		Request:       req,
		Key:           HashKey("recommend", req.CanonicalKey()),
		Picks:         []RecommendationJSON{},
	}
	for _, r := range recs {
		resp.Picks = append(resp.Picks, RecommendationJSON{Role: r.Role, CandidateJSON: candidateJSON(r.Candidate)})
	}
	return resp, nil
}

// parsePolicy maps a policy name to its sched.Policy (the scenario
// package owns the vocabulary, shared with scenario documents).
func parsePolicy(name string) (sched.Policy, error) {
	return scenario.ParsePolicy(name)
}

// canonicalKey is the simulate request's cache identity: the spec key
// plus every option and client field in declared order. Client-chosen
// strings are quoted (canonString) so a name containing the ',' or '|'
// separators cannot shift the positional fields and collide with a
// different request.
//
//cachekey:fields v2 Clients,Options,Spec
func (r SimulateRequest) canonicalKey() string {
	var b strings.Builder
	b.WriteString("sim/v2|")
	b.WriteString(r.Spec.CanonicalKey())
	fmt.Fprintf(&b, "|policy=%s|closed=%t|window=%d", canonString(r.Options.Policy), r.Options.ClosedPage, r.Options.ReorderWindow)
	for _, c := range r.Clients {
		fmt.Fprintf(&b, "|client=%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%t,%s",
			canonString(c.Name), canonString(c.Kind), c.Bits, canonFloat(c.RateGBps), c.Count,
			c.StartB, c.StrideB, c.LimitB, c.WindowB, c.Seed, c.Write,
			canonFloat(c.LatencyBudgetNs))
	}
	return b.String()
}

// Violations lists every constraint the simulate request violates.
func (r SimulateRequest) Violations(maxRequests int64) []string {
	var v []string
	if len(r.Clients) == 0 {
		v = append(v, "at least one client is required")
	}
	var total int64
	for i, c := range r.Clients {
		v = append(v, c.Violations(i, maxRequests)...)
		total += int64(c.Count)
	}
	if maxRequests > 0 && total > maxRequests {
		v = append(v, fmt.Sprintf("total request count %d exceeds the per-request limit %d", total, maxRequests))
	}
	if _, err := parsePolicy(r.Options.Policy); err != nil {
		v = append(v, err.Error())
	}
	if r.Options.ReorderWindow < 0 {
		v = append(v, fmt.Sprintf("reorder window must be non-negative, got %d", r.Options.ReorderWindow))
	}
	return v
}

// BuildSimulate runs the event-driven controller simulation for the
// request — the /v1/simulate response.
func BuildSimulate(req SimulateRequest) (*SimulateResponse, error) {
	m, err := edram.Build(req.Spec)
	if err != nil {
		return nil, err
	}
	policy, err := parsePolicy(req.Options.Policy)
	if err != nil {
		return nil, err
	}
	clients := make([]sched.Client, len(req.Clients))
	for i, c := range req.Clients {
		clients[i] = sched.Client{
			Name:            c.Name,
			Gen:             c.Generator(i, m.Geometry.InterfaceBits),
			LatencyBudgetNs: c.LatencyBudgetNs,
		}
	}
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return nil, err
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{
		Policy:        policy,
		ClosedPage:    req.Options.ClosedPage,
		ReorderWindow: req.Options.ReorderWindow,
	}, clients)
	if err != nil {
		return nil, err
	}
	resp := &SimulateResponse{
		SchemaVersion:     SchemaVersion,
		Spec:              req.Spec,
		Key:               HashKey("simulate", req.canonicalKey()),
		Policy:            res.Policy.String(),
		PeakGBps:          res.PeakGBps,
		SustainedGBps:     res.SustainedGBps,
		SustainedFraction: res.SustainedFraction,
		HitRate:           res.HitRate,
		DurationNs:        res.DurationNs,
		Clients:           []ClientResultJSON{},
	}
	for _, cr := range res.Clients {
		resp.Clients = append(resp.Clients, ClientResultJSON{
			Name:         cr.Name,
			Requests:     cr.Stats.Count,
			AchievedGBps: cr.AchievedGBps,
			BitsMoved:    cr.BitsMoved,
			MeanNs:       cr.Stats.MeanNs,
			P50Ns:        cr.Stats.P50Ns,
			P95Ns:        cr.Stats.P95Ns,
			P99Ns:        cr.Stats.P99Ns,
			MaxNs:        cr.Stats.MaxNs,
			MaxFIFODepth: cr.Stats.MaxFIFODepth,
		})
	}
	return resp, nil
}

// BuildDatasheet constructs the macro and renders its datasheet — the
// /v1/datasheet response.
func BuildDatasheet(spec edram.Spec) (*DatasheetResponse, error) {
	m, err := edram.Build(spec)
	if err != nil {
		return nil, err
	}
	return &DatasheetResponse{
		SchemaVersion:        SchemaVersion,
		Spec:                 spec,
		Key:                  HashKey("datasheet", spec.CanonicalKey()),
		ClockMHz:             m.ClockMHz,
		AreaMm2:              m.Area.TotalMm2,
		EfficiencyMbitPerMm2: m.Area.EfficiencyMbitPerMm2,
		PeakGBps:             m.PeakBandwidthGBps(),
		FillFrequencyHz:      m.FillFrequencyHz(),
		Banks:                m.Geometry.Banks,
		RowsPerBank:          m.RowsPerBank(),
		PageBits:             m.Geometry.PageBits,
		Text:                 m.Datasheet(),
	}, nil
}

// canonicalKey is the experiments request's cache identity: the sorted
// id filter, each id quoted so one containing ',' cannot render as two.
//
//cachekey:fields v2 IDs
func (r ExperimentsRequest) canonicalKey() string {
	ids := make([]string, len(r.IDs))
	for i, id := range r.IDs {
		ids[i] = canonString(id)
	}
	sort.Strings(ids)
	return "exp/v2|ids=" + strings.Join(ids, ",")
}

// BuildExperiments regenerates the experiment suite (filtered to ids
// when given) on workers workers — the /v1/experiments response.
func BuildExperiments(ctx context.Context, req ExperimentsRequest, workers int) (*ExperimentsResponse, error) {
	all, err := experiments.AllContext(ctx, workers, nil)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, id := range req.IDs {
		want[id] = true
	}
	resp := &ExperimentsResponse{
		SchemaVersion: SchemaVersion,
		Key:           HashKey("experiments", req.canonicalKey()),
		Experiments:   []ExperimentJSON{},
	}
	matched := map[string]bool{}
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		matched[e.ID] = true
		ej := ExperimentJSON{ID: e.ID, Title: e.Title, Findings: []FindingJSON{}}
		for _, f := range e.Findings {
			ej.Findings = append(ej.Findings, FindingJSON{Name: f.Name, Value: f.Value, Unit: f.Unit})
		}
		var tb strings.Builder
		if e.Table != nil {
			if err := e.Table.Render(&tb); err != nil {
				return nil, err
			}
		}
		ej.Table = tb.String()
		resp.Experiments = append(resp.Experiments, ej)
	}
	for _, id := range req.IDs {
		if !matched[id] {
			return nil, fmt.Errorf("unknown experiment id %q", id)
		}
	}
	return resp, nil
}
