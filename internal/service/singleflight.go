// Request coalescing: when N identical requests (same canonical key)
// arrive while the first is still computing, the flight group runs the
// computation once and hands every waiter the same bytes. Combined with
// the result cache this turns a thundering herd of identical sweeps
// into one evaluation plus N-1 microsecond waits.

package service

import (
	"context"
	"sync"
)

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// flightGroup deduplicates concurrent calls by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// Do runs fn once per key among concurrent callers. The originating
// caller runs fn to completion; waiters block until it finishes or
// their own ctx expires, and report coalesced=true. fn's result is not
// retained after the last concurrent caller leaves — long-term reuse is
// the cache's job.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, err error, coalesced bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
