package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var computes atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const waiters = 4
	var wg sync.WaitGroup
	results := make([][]byte, waiters+1)
	coalesced := make([]bool, waiters+1)

	// The originator blocks in fn until every waiter has joined.
	wg.Add(1)
	go func() {
		defer wg.Done()
		val, err, co := g.Do(context.Background(), "k", func() ([]byte, error) {
			computes.Add(1)
			close(started)
			<-gate
			return []byte("result"), nil
		})
		if err != nil {
			t.Errorf("originator: %v", err)
		}
		results[0], coalesced[0] = val, co
	}()
	<-started
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, err, co := g.Do(context.Background(), "k", func() ([]byte, error) {
				computes.Add(1)
				return []byte("wrong"), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], coalesced[i] = val, co
		}(i)
	}
	// Give the waiters time to register before releasing the gate; a
	// waiter that misses the flight would run its own fn and bump
	// computes, which the assertion below catches.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", n)
	}
	if coalesced[0] {
		t.Error("originator reported coalesced")
	}
	for i := 1; i <= waiters; i++ {
		if !coalesced[i] {
			t.Errorf("waiter %d not coalesced", i)
		}
		if string(results[i]) != "result" {
			t.Errorf("waiter %d got %q", i, results[i])
		}
	}
}

func TestFlightGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var g flightGroup
	var computes atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			val, err, co := g.Do(context.Background(), key, func() ([]byte, error) {
				computes.Add(1)
				return []byte(key), nil
			})
			if err != nil || co || string(val) != key {
				t.Errorf("Do(%s) = %q, %v, coalesced=%t", key, val, err, co)
			}
		}(key)
	}
	wg.Wait()
	if n := computes.Load(); n != 3 {
		t.Errorf("fn ran %d times, want 3", n)
	}
}

func TestFlightGroupWaiterHonorsContext(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "k", func() ([]byte, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, co := g.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
	if !co {
		t.Error("cancelled waiter should still report coalesced")
	}
	close(gate)
}

func TestFlightGroupErrorSharedThenForgotten(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, err, _ := g.Do(context.Background(), "k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed flight is not retained: the next call runs fn again.
	val, err, co := g.Do(context.Background(), "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || co || string(val) != "ok" {
		t.Errorf("second Do = %q, %v, coalesced=%t; want ok, nil, false", val, err, co)
	}
}
