package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"edram/internal/diskcache"
)

// TestDiskWarmStartServesHitWithoutRecompute pins the tentpole
// acceptance criterion: a replica warm-started from the cache
// directory serves the original miss's exact bytes as a disk hit, and
// never enters the compute path to do it.
func TestDiskWarmStartServesHitWithoutRecompute(t *testing.T) {
	dir := t.TempDir()

	s1 := NewServer(Config{Workers: 2, CacheDir: dir})
	if err := s1.DiskCacheErr(); err != nil {
		t.Fatalf("open disk cache: %v", err)
	}
	ts1 := httptest.NewServer(s1)
	status, want, hdr := post(t, ts1.Client(), ts1.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first explore: status %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	ts1.Close()
	s1.Close() // graceful drain snapshots the segment log

	s2 := NewServer(Config{Workers: 2, CacheDir: dir})
	defer s2.Close()
	if err := s2.DiskCacheErr(); err != nil {
		t.Fatalf("warm-start disk cache: %v", err)
	}
	if got := s2.DiskStats().ReplayedEntries; got != 1 {
		t.Fatalf("replayed entries = %d, want 1", got)
	}
	var computes atomic.Int64
	s2.computeStarted = func(endpoint, key string) { computes.Add(1) }
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	status, got, hdr := post(t, ts2.Client(), ts2.URL+"/v1/explore", testReq)
	if status != http.StatusOK {
		t.Fatalf("warm explore: status %d: %s", status, got)
	}
	if hdr.Get("X-Cache") != "hit-disk" {
		t.Errorf("warm explore: X-Cache %q, want hit-disk", hdr.Get("X-Cache"))
	}
	if got != want {
		t.Errorf("warm-start bytes differ from original miss:\n got %d bytes %.120s\nwant %d bytes %.120s",
			len(got), got, len(want), want)
	}
	if n := computes.Load(); n != 0 {
		t.Errorf("warm-start hit ran the compute path %d times, want 0", n)
	}

	// The disk hit promoted the entry into memory: the next lookup is
	// a plain memory hit.
	status, again, hdr := post(t, ts2.Client(), ts2.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" || again != want {
		t.Errorf("promoted lookup: status %d, X-Cache %q, identical=%t",
			status, hdr.Get("X-Cache"), again == want)
	}
}

// TestCacheTierMetrics checks the closed-set tier series: both tiers
// export hits and misses under literal label values.
func TestCacheTierMetrics(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(Config{Workers: 2, CacheDir: dir})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	post(t, client, ts.URL+"/v1/explore", testReq) // miss both tiers
	post(t, client, ts.URL+"/v1/explore", testReq) // memory hit

	status, body, _ := do(t, client, "GET", ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	for _, series := range []string{
		`edramd_cache_tier_hits_total{tier="memory"} 1`,
		`edramd_cache_tier_misses_total{tier="memory"} 1`,
		`edramd_cache_tier_hits_total{tier="disk"} 0`,
		`edramd_cache_tier_misses_total{tier="disk"} 1`,
		`edramd_disk_cache_entries 1`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

// TestDiskGenerationMismatchRecomputes pins self-invalidation: a
// snapshot written under a different generation tag (older schema or
// key-tag set) is discarded wholesale at boot instead of serving
// stale bytes.
func TestDiskGenerationMismatchRecomputes(t *testing.T) {
	dir := t.TempDir()

	// Simulate a snapshot left behind by a binary with different wire
	// tags: same log format, different generation string.
	old, err := diskcache.Open(dir, diskcache.Options{Generation: "edram/gen|schema=0|tags=stale"})
	if err != nil {
		t.Fatal(err)
	}
	old.Put(HashKey("explore", "stale"), []byte(`{"stale":true}`))
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(Config{Workers: 2, CacheDir: dir})
	defer srv.Close()
	if err := srv.DiskCacheErr(); err != nil {
		t.Fatalf("open over stale snapshot: %v", err)
	}
	st := srv.DiskStats()
	if st.Invalidations != 1 || st.ReplayedEntries != 0 {
		t.Fatalf("stats after stale snapshot: invalidations=%d replayed=%d, want 1, 0", st.Invalidations, st.ReplayedEntries)
	}

	var computes atomic.Int64
	srv.computeStarted = func(endpoint, key string) { computes.Add(1) }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, _, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Errorf("explore over invalidated snapshot: status %d, X-Cache %q, want 200 miss", status, hdr.Get("X-Cache"))
	}
	if computes.Load() == 0 {
		t.Error("invalidated snapshot did not trigger recomputation")
	}
}
