// The sharded explore path: a coordinator partitions the sweep's
// absolute-Seq range across the local pool and remote edramd peers
// (POST /v1/internal/shard carrying a shard/v1 sub-request), then
// merges the partial Pareto frontiers into a response byte-identical
// to the single-process sweep. Exactness rests on two invariants the
// parity tests pin: Seq-disjoint partitions reproduce the full
// enumeration, and the merged front plus the summed counters satisfy
// Pruned = Built − Infeasible − len(Frontier) — the same identity the
// undivided collector maintains.

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"edram/internal/core"
	"edram/internal/jobs"
	"edram/internal/shard"
)

// ShardRequest is the POST /v1/internal/shard body: one contiguous
// absolute-Seq slice [From, To) of an explore sweep. Coordinators send
// it to peers; the response is cacheable under its shard/v1 key like
// any other canonical-keyed result.
type ShardRequest struct {
	// SchemaVersion optionally pins the wire version.
	//cachekey:exempt version pin validated to the one supported value; cannot change the result
	SchemaVersion int               `json:"schema_version,omitempty"`
	Explore       core.Requirements `json:"explore"`
	From          int               `json:"from"`
	To            int               `json:"to"`
}

// canonicalKey is the sub-request's cache identity: the parent
// explore's canonical key plus the partition bounds.
//
//cachekey:fields v1 Explore,From,To
func (r ShardRequest) canonicalKey() string {
	return fmt.Sprintf("shard/v1|%s|from=%d|to=%d", r.Explore.CanonicalKey(), r.From, r.To)
}

// ShardResponse is the partition result: the slice's exact enumeration
// counters plus its partition-local Pareto front.
type ShardResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Key           string          `json:"key"`
	From          int             `json:"from"`
	To            int             `json:"to"`
	Enumerated    int64           `json:"enumerated"`
	Built         int64           `json:"built"`
	Infeasible    int64           `json:"infeasible"`
	Frontier      []CandidateJSON `json:"frontier"`
}

// handleShard serves one partition of a sweep. Unlike /v1/explore, an
// all-unbuildable partition is a valid (empty) result — only the
// merged whole insists on at least one buildable point. The compute is
// always a direct local ranged sweep: a peer serving a shard never
// fans out again, so loopback peer sets cannot recurse.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if v := req.Explore.Violations(); len(v) > 0 {
		writeError(w, http.StatusBadRequest, violationsError(v))
		return
	}
	if total := core.SweepCount(req.Explore); req.From < 0 || req.From >= req.To || req.To > total {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("shard range [%d,%d) outside sweep [0,%d)", req.From, req.To, total))
		return
	}
	key := HashKey("shard", req.canonicalKey())
	s.serveCached(w, r, "/v1/internal/shard", key, func(ctx context.Context) ([]byte, error) {
		workers, release, err := s.admitWorkers(ctx, "/v1/internal/shard", s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		defer release()
		resp, err := buildShard(ctx, req, workers)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}

// buildShard runs the ranged sweep for one partition. The sweep is
// constraint-pruned like the undivided path; the folded Total*
// counters keep the wire response byte-identical to an unpruned
// partition (Seq numbering is absolute, so pruning never moves
// partition boundaries).
func buildShard(ctx context.Context, req ShardRequest, workers int) (*ShardResponse, error) {
	var final core.ExploreStats
	ch, err := core.ExploreContext(ctx, req.Explore,
		core.WithWorkers(workers),
		core.WithPruning(),
		core.WithSeqRange(req.From, req.To),
		core.WithProgress(func(cs core.ExploreStats) {
			if cs.Done {
				final = cs
			}
		}))
	if err != nil {
		return nil, err
	}
	front := core.NewFrontier()
	for c := range ch {
		front.Add(c)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := &ShardResponse{
		SchemaVersion: SchemaVersion,
		Key:           HashKey("shard", req.canonicalKey()),
		From:          req.From,
		To:            req.To,
		Enumerated:    final.TotalPoints(),
		Built:         final.TotalBuilt(),
		Infeasible:    final.TotalInfeasible(),
		Frontier:      []CandidateJSON{},
	}
	for _, c := range front.Candidates() {
		resp.Frontier = append(resp.Frontier, candidateJSON(c))
	}
	return resp, nil
}

// shardResult converts a wire partition response into the merge form.
func shardResult(resp *ShardResponse) shard.Result {
	out := shard.Result{
		Enumerated: resp.Enumerated,
		Built:      resp.Built,
		Infeasible: resp.Infeasible,
		Frontier:   make([]core.Candidate, 0, len(resp.Frontier)),
	}
	for _, cj := range resp.Frontier {
		out.Frontier = append(out.Frontier, candidateFromJSON(cj))
	}
	return out
}

// localShardExec sweeps partitions in-process. It carries the worker
// count the calling handler already admitted — executing a partition
// must not re-enter the admission gate the coordinator is holding.
type localShardExec struct {
	req     core.Requirements
	workers int
}

func (e *localShardExec) Kind() string { return shard.KindLocal }

func (e *localShardExec) Execute(ctx context.Context, p shard.Partition) (shard.Result, error) {
	resp, err := buildShard(ctx, ShardRequest{Explore: e.req, From: p.From, To: p.To}, e.workers)
	if err != nil {
		return shard.Result{}, err
	}
	return shardResult(resp), nil
}

// remoteShardExec sweeps partitions on a peer edramd via
// POST /v1/internal/shard.
type remoteShardExec struct {
	client *http.Client
	base   string
	req    core.Requirements
}

func (e *remoteShardExec) Kind() string { return shard.KindRemote }

func (e *remoteShardExec) Execute(ctx context.Context, p shard.Partition) (shard.Result, error) {
	body, err := Encode(ShardRequest{SchemaVersion: SchemaVersion, Explore: e.req, From: p.From, To: p.To})
	if err != nil {
		return shard.Result{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, e.base+"/v1/internal/shard", bytes.NewReader(body))
	if err != nil {
		return shard.Result{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := e.client.Do(hreq)
	if err != nil {
		return shard.Result{}, err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return shard.Result{}, fmt.Errorf("peer %s: reading shard response: %w", e.base, err)
	}
	if hresp.StatusCode != http.StatusOK {
		return shard.Result{}, fmt.Errorf("peer %s: shard [%d,%d) returned %d: %s",
			e.base, p.From, p.To, hresp.StatusCode, truncated(raw, 200))
	}
	var sr ShardResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return shard.Result{}, fmt.Errorf("peer %s: decoding shard response: %w", e.base, err)
	}
	if sr.SchemaVersion != SchemaVersion || sr.From != p.From || sr.To != p.To {
		return shard.Result{}, fmt.Errorf("peer %s: shard response mismatch: schema %d range [%d,%d), want schema %d [%d,%d)",
			e.base, sr.SchemaVersion, sr.From, sr.To, SchemaVersion, p.From, p.To)
	}
	return shardResult(&sr), nil
}

func truncated(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}

// shardingEnabled reports whether explore sweeps take the fan-out
// path: any peer list or an explicit local partition count turns it
// on.
func (s *Server) shardingEnabled() bool {
	return s.cfg.ShardParts > 0 || len(s.cfg.Peers) > 0
}

// shardPlanParts is the partition count: explicit, or two per executor
// so every lane stays busy and stragglers can be rebalanced.
func (s *Server) shardPlanParts() int {
	if s.cfg.ShardParts > 0 {
		return s.cfg.ShardParts
	}
	return 2 * (1 + len(s.cfg.Peers))
}

// shardExecutors builds the executor set for one explore: the local
// pool first (also the hedge target), then one lane per peer.
func (s *Server) shardExecutors(req core.Requirements, workers int) []shard.Executor {
	execs := []shard.Executor{&localShardExec{req: req, workers: workers}}
	for _, peer := range s.cfg.Peers {
		execs = append(execs, &remoteShardExec{client: s.shardClient, base: strings.TrimSuffix(peer, "/"), req: req})
	}
	return execs
}

// recordShardStats folds one fan-out's stats into the metrics.
func (s *Server) recordShardStats(st shard.Stats) {
	s.shardExplores.Inc()
	s.shardPartsLocal.Add(st.Local)
	s.shardPartsRemote.Add(st.Remote)
	s.shardRetries.Add(st.Retries)
	s.shardHedges.Add(st.Hedges)
	s.shardPeerFailures.Add(st.PeerFailures)
}

// buildExploreSharded is the fan-out form of BuildExplore: plan,
// execute across executors, merge, and rebuild the exact single-sweep
// response from the merged result.
func (s *Server) buildExploreSharded(ctx context.Context, req core.Requirements, workers int) (*ExploreResponse, error) {
	plan := shard.Plan(0, core.SweepCount(req), s.shardPlanParts())
	out, stats, err := shard.Run(ctx, s.shardExecutors(req, workers), plan, shard.Options{
		HedgeAfter: s.cfg.ShardHedgeAfter,
	})
	s.recordShardStats(stats)
	if err != nil {
		return nil, err
	}
	//nolint:edramvet/determinism // merge latency measurement is intentionally wall-clock
	start := time.Now()
	merged := shard.Merge(out)
	s.shardMergeSeconds.Observe(time.Since(start).Seconds())
	return exploreResponseFromMerged(req, merged)
}

// exploreResponseFromMerged rebuilds the canonical explore response
// from a merged shard result. Pruned is recovered from the exact
// identity Pruned = Built − Infeasible − len(Frontier): every built
// candidate is infeasible, on the final front, or was discarded
// exactly once — the same bookkeeping the undivided collector does
// incrementally.
func exploreResponseFromMerged(req core.Requirements, merged shard.Result) (*ExploreResponse, error) {
	if merged.Built == 0 {
		return nil, fmt.Errorf("no buildable configuration for %+v", req)
	}
	resp := &ExploreResponse{
		SchemaVersion: SchemaVersion,
		Request:       req,
		Key:           HashKey("explore", req.CanonicalKey()),
		Points:        merged.Enumerated,
		Built:         merged.Built,
		Infeasible:    merged.Infeasible,
		Pruned:        merged.Built - merged.Infeasible - int64(len(merged.Frontier)),
		Frontier:      []CandidateJSON{},
		Picks:         []RecommendationJSON{},
	}
	for _, c := range merged.Frontier {
		resp.Frontier = append(resp.Frontier, candidateJSON(c))
	}
	for _, r := range core.Quantize(merged.Frontier) {
		resp.Picks = append(resp.Picks, RecommendationJSON{Role: r.Role, CandidateJSON: candidateJSON(r.Candidate)})
	}
	return resp, nil
}

// runShardedExploreJob is the fan-out form of the checkpointed explore
// job. Partitions checkpoint as they complete: results are folded into
// the exploreJobState at the contiguous-prefix watermark, so a daemon
// killed mid-run resumes from NextSeq and a dead peer loses only its
// own partition (requeued to the survivors). The checkpoint schema is
// shared with the unsharded runner — a restart may flip between the
// two paths and still resume exactly.
func (s *Server) runShardedExploreJob(ctx context.Context, h *jobs.Handle, req core.Requirements) ([]byte, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	st := exploreJobState{Total: core.SweepCount(req)}
	if raw := h.Resumed(); len(raw) > 0 {
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, fmt.Errorf("explore checkpoint state: %w", err)
		}
	}
	front := core.NewFrontier()
	for _, cj := range st.Frontier {
		front.Add(candidateFromJSON(cj))
	}

	if st.NextSeq < st.Total {
		workers, release, err := s.acquireWorkers(ctx, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		rctx, rcancel := context.WithCancel(ctx)
		defer rcancel()
		// Out-of-order partition results wait here until the contiguous
		// prefix reaches them; only prefix-complete state is
		// checkpointed, so NextSeq stays an exact resume point.
		pending := map[int]shard.PartResult{}
		var ckptErr error
		onResult := func(p shard.Partition, r shard.Result) {
			pending[p.From] = shard.PartResult{Partition: p, Result: r}
			advanced := false
			for {
				pr, ok := pending[st.NextSeq]
				if !ok {
					break
				}
				delete(pending, st.NextSeq)
				st.NextSeq = pr.To
				st.Enumerated += pr.Enumerated
				st.Built += pr.Built
				st.Infeasible += pr.Infeasible
				for _, c := range pr.Frontier {
					front.Add(c)
				}
				advanced = true
			}
			if !advanced || ckptErr != nil {
				return
			}
			st.Pruned = st.Built - st.Infeasible - int64(front.Size())
			cands := front.Candidates()
			st.Frontier = make([]CandidateJSON, len(cands))
			for i, c := range cands {
				st.Frontier[i] = candidateJSON(c)
			}
			h.SetProgress(jobs.Progress{
				Done:       int64(st.NextSeq),
				Total:      int64(st.Total),
				Built:      st.Built,
				Infeasible: st.Infeasible,
				Pruned:     st.Pruned,
				FrontSize:  front.Size(),
			})
			raw, err := json.Marshal(st)
			if err == nil {
				err = h.Checkpoint(raw)
			}
			if err != nil {
				ckptErr = err
				rcancel()
			}
		}
		plan := shard.Plan(st.NextSeq, st.Total, s.shardPlanParts())
		_, stats, err := shard.Run(rctx, s.shardExecutors(req, workers), plan, shard.Options{
			HedgeAfter: s.cfg.ShardHedgeAfter,
			OnResult:   onResult,
		})
		release()
		s.recordShardStats(stats)
		if ckptErr != nil {
			return nil, ckptErr
		}
		if err != nil {
			return nil, err
		}
	}

	merged := shard.Result{
		Enumerated: st.Enumerated,
		Built:      st.Built,
		Infeasible: st.Infeasible,
		Frontier:   front.Candidates(),
	}
	resp, err := exploreResponseFromMerged(req, merged)
	if err != nil {
		return nil, err
	}
	b, err := Encode(resp)
	if err != nil {
		return nil, err
	}
	// Cross-fill the synchronous tiers: a later POST /v1/explore of the
	// same requirements hits the job's bytes.
	s.fillCaches(HashKey("explore", req.CanonicalKey()), b)
	return b, nil
}
