// Metrics is the service layer's dependency-free instrumentation
// registry: counters, gauges and histograms with constant label sets,
// updated atomically on the hot path and rendered in the Prometheus
// text exposition format by WriteProm (GET /metrics). The registry is
// deliberately generic — the CLIs can reuse it for their own
// instrumentation without pulling in the HTTP layer.
package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (rendered as name="value").
type Label struct {
	Name  string
	Value string
}

// DefaultLatencyBuckets are the request-latency histogram bounds in
// seconds: microsecond-scale cache hits through multi-second sweeps.
var DefaultLatencyBuckets = []float64{
	1e-5, 1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing series.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds a (possibly negative) delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution (cumulative on render, as
// the Prometheus format requires).
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// family is one metric name: its metadata plus every label combination
// seen so far.
type family struct {
	name, help, kind string
	buckets          []float64
	series           map[string]any // rendered label string -> *Counter/*Gauge/*Histogram
}

// Metrics is the registry. The zero value is not usable; NewMetrics.
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: map[string]*family{}}
}

// Counter returns (registering on first use) the counter for the label
// set. Calls with the same name must agree on the metric kind.
func (m *Metrics) Counter(name, help string, labels ...Label) *Counter {
	return getSeries(m, name, help, "counter", nil, labels, func() *Counter { return &Counter{} })
}

// Gauge returns (registering on first use) the gauge for the label set.
func (m *Metrics) Gauge(name, help string, labels ...Label) *Gauge {
	return getSeries(m, name, help, "gauge", nil, labels, func() *Gauge { return &Gauge{} })
}

// Histogram returns (registering on first use) the histogram for the
// label set. buckets are upper bounds in increasing order; they are
// fixed by the first registration of the family.
func (m *Metrics) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return getSeries(m, name, help, "histogram", buckets, labels, func() *Histogram {
		bounds := append([]float64(nil), buckets...)
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
}

// getSeries is the shared registration path: one lock, kind checked,
// series created on first use.
func getSeries[T any](m *Metrics, name, help, kind string, buckets []float64, labels []Label, create func() *T) *T {
	key := renderLabels(labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]any{}}
		m.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("service: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if s, ok := f.series[key]; ok {
		return s.(*T)
	}
	s := create()
	f.series[key] = s
	return s
}

// renderLabels renders a label set as {a="b",c="d"} ("" when empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format escapes for label values.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promFloat renders a sample value (shortest exact form; Prometheus
// accepts Go's 'g' formatting including +Inf).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every family in the text exposition format,
// families and series in sorted order so consecutive scrapes of an idle
// registry are byte-identical.
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.families))
	for name := range m.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family structure under the lock; the atomic values
	// themselves are read while rendering.
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = m.families[name]
	}
	m.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		m.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		m.mu.Unlock()
		for i, k := range keys {
			switch s := series[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, k, s.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, k, s.Value())
			case *Histogram:
				writeHistogram(&b, f.name, k, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", promFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, promFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

// mergeLabels appends one label to an already-rendered label string.
func mergeLabels(labels, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
