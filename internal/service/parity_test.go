package service

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"edram/internal/core"
)

// TestExploreParityAcrossWorkerCounts pins the schema's determinism
// property: the explore response contains no wall-clock or
// worker-count fields, so the same requirements encode to the same
// bytes at any pool size.
func TestExploreParityAcrossWorkerCounts(t *testing.T) {
	req := core.Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5}
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		resp, err := BuildExplore(context.Background(), req, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := Encode(resp)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Error("explore response differs between 1 and 4 workers; a nondeterministic field leaked into the schema")
	}
}

// TestExploreParityServiceVsBuilder pins CLI/service parity at the
// layer both share: the HTTP response body of POST /v1/explore must be
// byte-identical to Encode(BuildExplore(...)), which is exactly what
// edramx -json prints (the root-package parity test drives the real
// binary).
func TestExploreParityServiceVsBuilder(t *testing.T) {
	req := core.Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5}
	resp, err := BuildExplore(context.Background(), req, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	hres, err := ts.Client().Post(ts.URL+"/v1/explore", "application/json",
		strings.NewReader(`{"capacity_mbit":16,"bandwidth_gbps":1,"hit_rate":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	got, err := io.ReadAll(hres.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hres.StatusCode != 200 {
		t.Fatalf("status %d: %s", hres.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Errorf("service body and builder encoding differ:\n service: %.200s\n builder: %.200s", got, want)
	}
}
