// Admission control: the gate between "the socket accepted a request"
// and "the request may occupy evaluation workers". Without it the
// worker pool is an unbounded queue — every admitted compute blocks in
// AcquireUpTo however hopeless its deadline, so sustained overload
// grows latency without bound while every client times out at full
// cost. The gate keeps overload bounded and observable instead:
//
//   - per-endpoint concurrency budgets — one hot endpoint cannot
//     occupy every worker and starve the rest of the API;
//   - a bounded admission queue — beyond it, requests shed immediately
//     with 503 + Retry-After rather than joining an invisible backlog;
//   - deadline-aware rejection — using an EWMA of the endpoint's
//     recent compute time, a request whose estimated queue wait
//     already exceeds its remaining deadline is shed at the door (it
//     would only burn workers to produce a 504).
//
// Shedding is visible: edramd_shed_total{endpoint,reason} counts every
// rejection, edramd_admitted_total{endpoint} every grant, and
// edramd_admission_queued the current occupancy.

package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// overloadError is the typed rejection the admission gate (and the job
// store path) returns; the HTTP layer maps it to 503 with a
// Retry-After header.
type overloadError struct {
	reason     string // "queue_full" | "endpoint_budget" | "deadline" | "jobs"
	detail     string
	retryAfter time.Duration
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("overloaded (%s): %s", e.reason, e.detail)
}

// retryAfterSeconds renders the Retry-After value (whole seconds,
// minimum 1 — a zero would invite an immediate retry storm).
func (e *overloadError) retryAfterSeconds() string {
	secs := int64(math.Ceil(e.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// admission is the gate's state. One instance per server, shared by
// every endpoint.
type admission struct {
	mu sync.Mutex
	// queued counts admitted computations that have not released yet
	// (waiting for workers or computing) — the bounded queue.
	queued   int
	maxQueue int
	workers  int
	// inUse / limits are the per-endpoint concurrency budgets.
	inUse  map[string]int
	limits map[string]int
	// ewmaSec tracks each endpoint's recent compute seconds; it seeds
	// the wait estimate behind deadline rejection and Retry-After.
	ewmaSec map[string]float64
}

// ewmaAlpha weights the newest observation; ~0.3 follows load shifts
// within a few requests without oscillating on one outlier.
const ewmaAlpha = 0.3

func newAdmission(workers, maxQueue int, limits map[string]int) *admission {
	return &admission{
		maxQueue: maxQueue,
		workers:  workers,
		inUse:    map[string]int{},
		limits:   limits,
		ewmaSec:  map[string]float64{},
	}
}

// waitEstimateLocked predicts how long a newly admitted request would
// wait for workers: the endpoint's recent compute time scaled by how
// many admitted computations stand ahead of it per worker.
func (a *admission) waitEstimateLocked(endpoint string) time.Duration {
	ewma := a.ewmaSec[endpoint]
	if ewma == 0 {
		// No observation yet: assume a modest compute so the first
		// requests under cold overload still get a sane Retry-After.
		ewma = 0.1
	}
	backlog := a.queued + 1 - a.workers
	if backlog < 0 {
		backlog = 0
	}
	return time.Duration(ewma * float64(backlog+1) / float64(a.workers) * float64(time.Second))
}

// admit asks the gate for an execution slot. On success the returned
// release must be called exactly once with the observed compute
// duration; on rejection the error is an *overloadError.
func (a *admission) admit(ctx context.Context, endpoint string) (release func(elapsed time.Duration), err error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	if limit, ok := a.limits[endpoint]; ok && limit > 0 && a.inUse[endpoint] >= limit {
		return nil, &overloadError{
			reason:     "endpoint_budget",
			detail:     fmt.Sprintf("%s is at its concurrency budget (%d)", endpoint, limit),
			retryAfter: a.waitEstimateLocked(endpoint),
		}
	}
	if a.maxQueue > 0 && a.queued >= a.maxQueue {
		return nil, &overloadError{
			reason:     "queue_full",
			detail:     fmt.Sprintf("admission queue is full (%d)", a.maxQueue),
			retryAfter: a.waitEstimateLocked(endpoint),
		}
	}
	if deadline, ok := ctx.Deadline(); ok {
		wait := a.waitEstimateLocked(endpoint)
		remaining := time.Until(deadline)
		if wait > remaining {
			return nil, &overloadError{
				reason: "deadline",
				detail: fmt.Sprintf("estimated queue wait %v exceeds the request's remaining deadline %v",
					wait.Round(time.Millisecond), remaining.Round(time.Millisecond)),
				retryAfter: wait,
			}
		}
	}

	a.queued++
	a.inUse[endpoint]++
	return func(elapsed time.Duration) {
		a.mu.Lock()
		a.queued--
		a.inUse[endpoint]--
		sec := elapsed.Seconds()
		if prev := a.ewmaSec[endpoint]; prev == 0 {
			a.ewmaSec[endpoint] = sec
		} else {
			a.ewmaSec[endpoint] = ewmaAlpha*sec + (1-ewmaAlpha)*prev
		}
		a.mu.Unlock()
	}, nil
}

// admitWorkers is the handler-side composition: admission gate first,
// then the worker pool. The release it returns undoes both and feeds
// the observed compute time back into the gate's EWMA.
func (s *Server) admitWorkers(ctx context.Context, endpoint string, want int) (got int, release func(), err error) {
	admitRelease, err := s.admission.admit(ctx, endpoint)
	if err != nil {
		s.shedFor(endpoint, err)
		return 0, nil, err
	}
	s.admittedTotal(endpoint).Inc()
	s.admissionQueued.Inc()
	if s.admittedHook != nil {
		s.admittedHook(endpoint)
	}
	//nolint:edramvet/determinism // compute-time observation feeding the wait estimator
	start := time.Now()
	got, poolRelease, err := s.acquireWorkers(ctx, want)
	if err != nil {
		s.admissionQueued.Dec()
		admitRelease(0)
		return 0, nil, err
	}
	return got, func() {
		poolRelease()
		s.admissionQueued.Dec()
		admitRelease(time.Since(start))
	}, nil
}

// shedFor counts one shed request when err is an overload rejection.
func (s *Server) shedFor(endpoint string, err error) {
	var oe *overloadError
	if errors.As(err, &oe) {
		s.shedTotal(endpoint, oe.reason).Inc()
	}
}

// writeOverload maps an overload rejection onto the wire: 503, a
// Retry-After the client can obey, and the standard error schema.
func writeOverload(w http.ResponseWriter, oe *overloadError) {
	w.Header().Set("Retry-After", oe.retryAfterSeconds())
	writeError(w, http.StatusServiceUnavailable, oe)
}
