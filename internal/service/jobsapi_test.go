package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"edram/internal/core"
)

// jobTestReq wraps testReq as an async explore job submission.
const jobTestReq = `{"kind":"explore","explore":` + testReq + `}`

// trialsTestReq is a small Monte-Carlo reliability campaign: a modest
// simulate request repeated 12 times with fault injection armed.
const trialsTestReq = `{"kind":"trials","trials":{
	"spec":{"capacity_mbit":16,"interface_bits":64},
	"options":{"policy":"round-robin"},
	"clients":[{"name":"cpu","kind":"sequential","rate_gbps":0.8,"count":400}],
	"reliability":{"ecc":"secded","mean_defects_per_bank":0.5,"soft_errors_per_m_access":20,"spare_rows_per_bank":2,"max_retries":1},
	"trials":12,"seed":42}}`

// do issues a bodyless request (GET/DELETE) and returns the reply.
func do(t *testing.T, client *http.Client, method, url string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// jobID extracts the id from a job status response body.
func jobID(t *testing.T, body string) string {
	t.Helper()
	var st JobStatusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("parsing job status %q: %v", body, err)
	}
	if st.ID == "" {
		t.Fatalf("job status %q carries no id", body)
	}
	return st.ID
}

// waitJob polls GET /v1/jobs/{id} until the job reaches a terminal
// state, returning the final status.
func waitJob(t *testing.T, client *http.Client, baseURL, id string) JobStatusResponse {
	t.Helper()
	for i := 0; i < 3000; i++ {
		status, body, _ := do(t, client, "GET", baseURL+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, status, body)
		}
		var st JobStatusResponse
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "succeeded", "failed", "cancelled":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobStatusResponse{}
}

// TestJobCheckpointResumeByteParity is the acceptance test of the
// checkpoint/resume design: a daemon killed mid-explore and restarted
// over the same job directory finishes the job from its persisted
// watermark, and the result bytes are identical to an uninterrupted
// synchronous run.
func TestJobCheckpointResumeByteParity(t *testing.T) {
	// The reference bytes: an uninterrupted POST /v1/explore.
	ref := NewServer(Config{Workers: 2})
	tsRef := httptest.NewServer(ref)
	status, want, _ := post(t, tsRef.Client(), tsRef.URL+"/v1/explore", testReq)
	tsRef.Close()
	if status != http.StatusOK {
		t.Fatalf("reference explore: status %d: %s", status, want)
	}

	// Life 1: the same explore as a job, checkpointed every 256 of the
	// 2304 sweep points. The OnCheckpoint hook blocks the runner inside
	// its first checkpoint (already persisted at that point) while the
	// store shuts down — a deterministic mid-sweep kill: the runner
	// resumes into a cancelled context and exits without finishing.
	dir := t.TempDir()
	cfg := Config{Workers: 2, JobDir: dir, JobCheckpointEvery: 256}
	s1 := NewServer(cfg)
	firstCkpt := make(chan struct{})
	hold := make(chan struct{})
	var once sync.Once
	s1.jobsStore.OnCheckpoint = func(id string, n int) {
		once.Do(func() {
			close(firstCkpt)
			<-hold
		})
	}
	ts1 := httptest.NewServer(s1)
	status, body, hdr := post(t, ts1.Client(), ts1.URL+"/v1/jobs", jobTestReq)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202: %s", status, body)
	}
	id := jobID(t, body)
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+id {
		t.Errorf("Location %q, want /v1/jobs/%s", loc, id)
	}
	<-firstCkpt
	closeErr := make(chan error, 1)
	go func() { closeErr <- s1.Close() }()
	// Close cancels the store context first and then waits for the
	// runner; give the cancellation a beat to land before releasing
	// the runner into it.
	time.Sleep(100 * time.Millisecond)
	close(hold)
	if err := <-closeErr; err != nil {
		t.Fatalf("close: %v", err)
	}
	ts1.Close()

	// Life 2: a fresh server over the same directory must resume
	// exactly one job and finish it.
	s2 := NewServer(cfg)
	defer s2.Close()
	n, err := s2.ResumeJobs()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	client := ts2.Client()
	st := waitJob(t, client, ts2.URL, id)
	if st.State != "succeeded" {
		t.Fatalf("resumed job state %q (error %q), want succeeded", st.State, st.Error)
	}
	if st.Progress.Done != st.Progress.Total || st.Progress.Total != 2304 {
		t.Errorf("progress %d/%d, want 2304/2304", st.Progress.Done, st.Progress.Total)
	}
	if st.ResultPath == "" {
		t.Fatal("succeeded job reports no result path")
	}

	status, got, _ := do(t, client, "GET", ts2.URL+st.ResultPath)
	if status != http.StatusOK {
		t.Fatalf("result: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("resumed job result differs from the uninterrupted run:\n got %d bytes %.120s\nwant %d bytes %.120s",
			len(got), got, len(want), want)
	}

	// The job cross-fills the synchronous cache: the same explore is
	// now a hit with the same bytes.
	status, syncBody, hdr := post(t, client, ts2.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" || syncBody != want {
		t.Errorf("post-job sync explore: status %d, X-Cache %q, identical=%t",
			status, hdr.Get("X-Cache"), syncBody == want)
	}
}

// TestJobLifecycle covers the HTTP surface: submit (202), idempotent
// re-submit (200 attach), list, status, result, delete (and 404 after).
func TestJobLifecycle(t *testing.T) {
	srv := NewServer(Config{Workers: 2, JobDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	status, body, _ := post(t, client, ts.URL+"/v1/jobs", trialsTestReq)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202: %s", status, body)
	}
	id := jobID(t, body)

	// Re-submitting identical work attaches to the existing job.
	status, body2, _ := post(t, client, ts.URL+"/v1/jobs", trialsTestReq)
	if status != http.StatusOK {
		t.Fatalf("re-submit: status %d, want 200: %s", status, body2)
	}
	if jobID(t, body2) != id {
		t.Errorf("re-submit id %s, want %s", jobID(t, body2), id)
	}

	st := waitJob(t, client, ts.URL, id)
	if st.State != "succeeded" {
		t.Fatalf("job state %q (error %q), want succeeded", st.State, st.Error)
	}
	if st.Kind != "trials" || st.Progress.Done != 12 || st.Progress.Total != 12 {
		t.Errorf("terminal status kind=%q progress=%d/%d, want trials 12/12",
			st.Kind, st.Progress.Done, st.Progress.Total)
	}

	// The submission counter labels by the server-side canonical kind
	// (compileJob re-states it as a literal; the raw req.Kind string is
	// client-controlled and must never reach a metric label).
	var prom strings.Builder
	if err := srv.Metrics().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `edramd_jobs_submitted_total{kind="trials"} 1`) {
		t.Errorf("scrape missing jobs_submitted kind=trials series:\n%s", prom.String())
	}

	status, body, _ = do(t, client, "GET", ts.URL+"/v1/jobs")
	if status != http.StatusOK || !strings.Contains(body, id) {
		t.Errorf("list: status %d, contains id=%t", status, strings.Contains(body, id))
	}

	status, body, _ = do(t, client, "GET", ts.URL+"/v1/jobs/"+id+"/result")
	if status != http.StatusOK {
		t.Fatalf("result: status %d: %s", status, body)
	}
	var resp TrialsResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if len(resp.Results) != 12 || resp.Seed != 42 {
		t.Errorf("result has %d trials seed %d, want 12 trials seed 42", len(resp.Results), resp.Seed)
	}
	if resp.Aggregate.TotalInjected == 0 {
		t.Error("campaign with faults armed injected nothing")
	}

	status, _, _ = do(t, client, "DELETE", ts.URL+"/v1/jobs/"+id)
	if status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	status, _, _ = do(t, client, "GET", ts.URL+"/v1/jobs/"+id)
	if status != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", status)
	}
	status, _, _ = do(t, client, "DELETE", ts.URL+"/v1/jobs/"+id)
	if status != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", status)
	}
}

// TestJobTrialsDeterministic pins campaign determinism: the same
// trials job on two independent servers produces byte-identical
// results (seeds derive from the absolute trial index, so the chunked
// checkpoint cadence cannot leak into the bytes).
func TestJobTrialsDeterministic(t *testing.T) {
	run := func(workers int) string {
		srv := NewServer(Config{Workers: workers})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		_, body, _ := post(t, ts.Client(), ts.URL+"/v1/jobs", trialsTestReq)
		st := waitJob(t, ts.Client(), ts.URL, jobID(t, body))
		if st.State != "succeeded" {
			t.Fatalf("state %q (error %q)", st.State, st.Error)
		}
		status, result, _ := do(t, ts.Client(), "GET", ts.URL+st.ResultPath)
		if status != http.StatusOK {
			t.Fatalf("result status %d", status)
		}
		return result
	}
	if a, b := run(1), run(4); a != b {
		t.Errorf("campaign bytes differ between 1 and 4 workers:\n%.200s\n%.200s", a, b)
	}
}

// TestJobScenarioMatchesSyncEndpoint pins the scenario job runner to
// the synchronous endpoint: same document, byte-identical response.
func TestJobScenarioMatchesSyncEndpoint(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	status, want, _ := post(t, client, ts.URL+"/v1/scenario", scenarioDoc)
	if status != http.StatusOK {
		t.Fatalf("sync scenario: status %d: %s", status, want)
	}

	_, body, _ := post(t, client, ts.URL+"/v1/jobs", `{"kind":"scenario","scenario":`+scenarioDoc+`}`)
	st := waitJob(t, client, ts.URL, jobID(t, body))
	if st.State != "succeeded" {
		t.Fatalf("scenario job state %q (error %q)", st.State, st.Error)
	}
	status, got, _ := do(t, client, "GET", ts.URL+st.ResultPath)
	if status != http.StatusOK || got != want {
		t.Errorf("scenario job result differs from sync endpoint: status %d identical=%t", status, got == want)
	}
}

// TestJobValidation covers the submit-side 400s.
func TestJobValidation(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name, body, frag string
	}{
		{"unknown kind", `{"kind":"mine-bitcoin"}`, "unknown job kind"},
		{"missing payload", `{"kind":"explore"}`, "requires the explore payload"},
		{"invalid explore", `{"kind":"explore","explore":{"capacity_mbit":-1}}`, "invalid request"},
		{"bad trials count", `{"kind":"trials","trials":{"spec":{"capacity_mbit":16,"interface_bits":64},"options":{"policy":"round-robin"},"clients":[{"name":"c","kind":"sequential","rate_gbps":0.5,"count":10}],"trials":0}}`, "trials must be in"},
		{"bad ecc", `{"kind":"trials","trials":{"spec":{"capacity_mbit":16,"interface_bits":64},"options":{"policy":"round-robin"},"clients":[{"name":"c","kind":"sequential","rate_gbps":0.5,"count":10}],"reliability":{"ecc":"quantum"},"trials":4}}`, "unknown ECC scheme"},
		{"future schema", `{"schema_version":99,"kind":"explore","explore":` + testReq + `}`, "schema_version"},
	}
	for _, tc := range cases {
		status, body, _ := post(t, client, ts.URL+"/v1/jobs", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, status, body)
		}
		if !strings.Contains(body, tc.frag) {
			t.Errorf("%s: body %q missing %q", tc.name, body, tc.frag)
		}
	}

	status, _, _ := do(t, client, "GET", ts.URL+"/v1/jobs/no-such-job")
	if status != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", status)
	}
}

// TestJobResultWhileRunning: the result endpoint answers 409 with a
// Retry-After while the job is still computing.
func TestJobResultWhileRunning(t *testing.T) {
	srv := NewServer(Config{Workers: 2, JobCheckpointEvery: 256})
	defer srv.Close()
	started := make(chan struct{})
	hold := make(chan struct{})
	defer close(hold)
	var once sync.Once
	srv.jobsStore.OnCheckpoint = func(id string, n int) {
		once.Do(func() {
			close(started)
			<-hold
		})
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	_, body, _ := post(t, client, ts.URL+"/v1/jobs", jobTestReq)
	id := jobID(t, body)
	<-started
	status, body, hdr := do(t, client, "GET", ts.URL+"/v1/jobs/"+id+"/result")
	if status != http.StatusConflict {
		t.Fatalf("result while running: status %d, want 409: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("409 without Retry-After")
	}
}

// TestJobSurvivesInitiatorDisconnect pins the detachment of job
// execution from the submitting request: the submitter's context is
// cancelled right after the 202, and the job still runs to completion.
func TestJobSurvivesInitiatorDisconnect(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(trialsTestReq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the initiator is gone
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	st := waitJob(t, ts.Client(), ts.URL, jobID(t, string(b)))
	if st.State != "succeeded" {
		t.Errorf("job after initiator disconnect: state %q (error %q), want succeeded", st.State, st.Error)
	}
}

// TestAsyncExploreEscapeHatch: a synchronous explore whose sweep
// exceeds AsyncPointThreshold comes back as 202 + job id; once the job
// finishes, the same POST is a cache hit on the job's bytes.
func TestAsyncExploreEscapeHatch(t *testing.T) {
	srv := NewServer(Config{Workers: 2, AsyncPointThreshold: 100})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	status, body, hdr := post(t, client, ts.URL+"/v1/explore", testReq)
	if status != http.StatusAccepted {
		t.Fatalf("oversized sync explore: status %d, want 202: %s", status, body)
	}
	id := jobID(t, body)
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+id {
		t.Errorf("Location %q, want /v1/jobs/%s", loc, id)
	}
	st := waitJob(t, client, ts.URL, id)
	if st.State != "succeeded" {
		t.Fatalf("escape-hatch job state %q (error %q)", st.State, st.Error)
	}
	status, want, _ := do(t, client, "GET", ts.URL+st.ResultPath)
	if status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}

	status, got, hdr := post(t, client, ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" || got != want {
		t.Errorf("post-job explore: status %d, X-Cache %q, identical=%t", status, hdr.Get("X-Cache"), got == want)
	}
}

// TestReadyz: /readyz answers 503 before MarkReady and after the
// drain begins, 200 in between — while /healthz answers 200 the
// whole time.
func TestReadyz(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	status, body, _ := do(t, client, "GET", ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Errorf("before MarkReady: status %d body %q, want 503 starting", status, body)
	}
	status, _, _ = do(t, client, "GET", ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Errorf("healthz while starting: status %d, want 200", status)
	}

	srv.MarkReady()
	status, body, _ = do(t, client, "GET", ts.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("after MarkReady: status %d body %q, want 200 ok", status, body)
	}

	srv.markDraining()
	status, body, _ = do(t, client, "GET", ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining: status %d body %q, want 503 draining", status, body)
	}
	status, _, _ = do(t, client, "GET", ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", status)
	}
}

// TestWarmup: Warmup fills the cache so the first explore after
// startup is already a hit.
func TestWarmup(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	var reqBody RequirementsRequest
	if err := json.Unmarshal([]byte(testReq), &reqBody); err != nil {
		t.Fatal(err)
	}
	if err := srv.Warmup(context.Background(), []core.Requirements{reqBody.Requirements}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, _, hdr := post(t, ts.Client(), ts.URL+"/v1/explore", testReq)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("first explore after warmup: status %d X-Cache %q, want 200 hit", status, hdr.Get("X-Cache"))
	}
}
