// Cache-key derivation. A request's identity is its canonical string
// (CanonicalKey on the model types, canonicalKey on the wire types):
// every semantically significant field in declared order, floats in
// shortest-exact form, names over enum ordinals. HashKey folds that
// string to a fixed-width digest and prefixes the endpoint so the
// explore and recommend caches of the same requirements never collide.

package service

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// HashKey returns the cache key for a canonical request string:
// "endpoint:" plus the hex SHA-256 of the string.
func HashKey(endpoint, canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return endpoint + ":" + hex.EncodeToString(sum[:])
}

// canonFloat renders a float in its shortest exact form for canonical
// keys (mirrors the model packages' canonicalization).
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonString renders a client-controlled string for canonical keys.
// Quoting makes the rendering self-delimiting: a value containing the
// key's ',' or '|' separators (or a quote) cannot shift the positional
// fields and collide two semantically different requests.
func canonString(s string) string {
	return strconv.Quote(s)
}
