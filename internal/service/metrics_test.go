package service

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsCounterGauge(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("reqs_total", "Requests.", Label{"code", "200"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // counters only go up
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same name+labels resolves to the same series.
	if m.Counter("reqs_total", "Requests.", Label{"code", "200"}) != c {
		t.Error("re-registration returned a different series")
	}
	g := m.Gauge("in_flight", "In flight.")
	g.Inc()
	g.Add(4)
	g.Dec()
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %d after Set, want 7", g.Value())
	}
}

func TestMetricsKindMismatchPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("x", "X.")
	defer func() {
		if recover() == nil {
			t.Error("registering x as a gauge after counter did not panic")
		}
	}()
	m.Gauge("x", "X.")
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := m.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: 0.1 holds {0.05, 0.1}, 1 adds 0.5, 10 adds 5,
	// +Inf adds 50.
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("scrape missing %q:\n%s", line, out)
		}
	}
}

func TestWritePromDeterministic(t *testing.T) {
	m := NewMetrics()
	// Register in scrambled order; the render must sort.
	m.Counter("zz_total", "Z.").Inc()
	m.Counter("aa_total", "A.", Label{"k", "v2"}).Inc()
	m.Counter("aa_total", "A.", Label{"k", "v1"}).Inc()
	m.Gauge("mm", "M.").Set(5)

	var a, b strings.Builder
	if err := m.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("consecutive idle scrapes differ")
	}
	out := a.String()
	if strings.Index(out, "aa_total") > strings.Index(out, "mm") ||
		strings.Index(out, "mm") > strings.Index(out, "zz_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
	if strings.Index(out, `k="v1"`) > strings.Index(out, `k="v2"`) {
		t.Errorf("series not sorted:\n%s", out)
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	m := NewMetrics()
	m.Counter("e_total", "E.", Label{"path", `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := m.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Counter("c_total", "C.").Inc()
				m.Histogram("h_seconds", "H.", DefaultLatencyBuckets).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c_total", "C.").Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	if got := m.Histogram("h_seconds", "H.", DefaultLatencyBuckets).Count(); got != 4000 {
		t.Errorf("histogram count = %d, want 4000", got)
	}
}
