// The coalescing result cache: encoded responses keyed by the
// canonical-key hash of the request (see Requirements.CanonicalKey /
// Spec.CanonicalKey for the normalization rules), bounded by an LRU
// entry cap and an optional TTL. Values are the exact bytes served on
// the original miss, so a hit is byte-identical to the computation it
// replays — the property the determinism tests pin down.

package service

import (
	"container/list"
	"sync"
	"time"
)

type cacheEntry struct {
	key    string
	val    []byte
	stored time.Time
}

// ResultCache is a thread-safe LRU+TTL byte cache.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

// NewResultCache returns a cache holding at most maxEntries responses
// (minimum 1), each valid for ttl after insertion (ttl <= 0 disables
// expiry).
func NewResultCache(maxEntries int, ttl time.Duration) *ResultCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &ResultCache{
		max:     maxEntries,
		ttl:     ttl,
		now:     time.Now,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// Get returns the cached bytes for key, promoting the entry to
// most-recently-used. Expired entries are dropped on access.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().Sub(e.stored) > c.ttl {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.val, true
}

// Put stores val under key (refreshing the TTL if the key exists) and
// returns the number of entries evicted to stay under the cap.
func (c *ResultCache) Put(key string, val []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val = val
		e.stored = c.now()
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val, stored: c.now()})
	evicted := 0
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Len returns the current entry count.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the keys from most to least recently used (the LRU
// eviction order reversed) — test and debugging introspection.
func (c *ResultCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}
