// The delta-aware cache tier. Between the byte-exact result cache
// (identical request → identical bytes) and a cold sweep sits the warm
// "tweak one constraint" pattern: a request whose canonical key misses
// every byte tier but whose requirement *structure* matches a sweep the
// daemon already ran. For those, a retained core.DeltaState re-serves
// the response from the prior run's evaluations (sweeping only newly
// exposed intervals), byte-identical to the cold computation — surfaced
// as X-Cache: hit-delta and the edramd_delta_* metrics.

package service

import (
	"context"
	"sync"

	"edram/internal/core"
)

// maxDeltaStates bounds the retained-state index. Each state holds one
// evaluation record (~48 B) per built sweep point, so the bound is a
// memory cap, not a hit-rate tuning knob.
const maxDeltaStates = 8

// deltaEntry wraps one retained state with the mutex that serializes
// DeltaExplore calls against it (the state mutates as coverage grows).
type deltaEntry struct {
	mu    sync.Mutex
	state *core.DeltaState
}

// deltaIndex is a small LRU of retained delta states keyed by
// structural key.
type deltaIndex struct {
	mu      sync.Mutex
	entries map[string]*deltaEntry
	order   []string // LRU, most recently used last
}

func newDeltaIndex() *deltaIndex {
	return &deltaIndex{entries: map[string]*deltaEntry{}}
}

func (ix *deltaIndex) touch(key string) {
	for i, k := range ix.order {
		if k == key {
			ix.order = append(append(ix.order[:i:i], ix.order[i+1:]...), key)
			return
		}
	}
	ix.order = append(ix.order, key)
}

// lookup returns the entry able to serve req via delta re-exploration,
// or nil.
func (ix *deltaIndex) lookup(req core.Requirements) *deltaEntry {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e, ok := ix.entries[req.StructuralKey()]
	if !ok || !e.state.Eligible(req) {
		return nil
	}
	ix.touch(req.StructuralKey())
	return e
}

// store indexes a sealed state, evicting the least recently used entry
// past the bound. A state for an already-present structural key
// replaces the old one (the newcomer's coverage is at least as fresh).
func (ix *deltaIndex) store(st *core.DeltaState) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	key := st.StructuralKey()
	ix.entries[key] = &deltaEntry{state: st}
	ix.touch(key)
	for len(ix.entries) > maxDeltaStates {
		old := ix.order[0]
		ix.order = ix.order[1:]
		delete(ix.entries, old)
	}
}

// buildExploreRecorded is the cold local explore path that feeds the
// delta tier: the sweep records every built evaluation, and on success
// the sealed state enters the index so later same-structure requests
// can be served incrementally.
func (s *Server) buildExploreRecorded(ctx context.Context, req core.Requirements, workers int) (*ExploreResponse, error) {
	st, err := core.NewDeltaState(req)
	if err != nil {
		return nil, err
	}
	resp, err := BuildExplore(ctx, req, workers, nil, core.WithObserver(st.Observe))
	if err != nil {
		return nil, err
	}
	st.Seal()
	s.deltaStates.store(st)
	return resp, nil
}

// serveExploreDelta serves req from a retained state, folding the
// swept/reused accounting into the delta metrics.
func (s *Server) serveExploreDelta(ctx context.Context, e *deltaEntry, req core.Requirements, workers int) (*ExploreResponse, error) {
	e.mu.Lock()
	resp, res, err := BuildExploreDelta(ctx, e.state, req, workers)
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.tierDeltaHits.Inc()
	s.deltaSwept.Add(res.Swept)
	s.deltaReused.Add(res.Reused)
	return resp, nil
}
