// The async job API: POST /v1/jobs runs the expensive computations —
// full design-space explores, Monte-Carlo reliability campaigns,
// scenario evaluations — outside the request/response cycle, with
// progress reporting, cooperative cancellation (DELETE) and
// range-partitioned checkpoints. Checkpoints lean on the engine's
// Seq-determinism: a killed and restarted daemon resumes an explore at
// its persisted watermark and still produces a response byte-identical
// to an uninterrupted run (the parity test in jobsapi_test.go pins the
// bytes), because the sweep order, the frontier contents and the
// pruned counter are all arrival-order-independent.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"edram/internal/core"
	"edram/internal/edram"
	"edram/internal/jobs"
	"edram/internal/mapping"
	"edram/internal/reliab"
	"edram/internal/scenario"
	"edram/internal/sched"
)

// JobRequest is the POST /v1/jobs body: a kind plus exactly the
// matching payload.
type JobRequest struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	// Kind selects the computation: "explore", "delta", "trials" or
	// "scenario".
	Kind string `json:"kind"`
	// Explore runs the full design-space exploration (the async form
	// of POST /v1/explore, sharing its result bytes and cache key).
	Explore *core.Requirements `json:"explore,omitempty"`
	// Delta re-explores requirements preferring the incremental delta
	// path: when the daemon retains an eligible same-structure state,
	// only newly exposed Seq intervals are swept; otherwise the job
	// falls back to the checkpointed explore runner. The result bytes
	// and the explore cache key are shared with kind "explore".
	Delta *core.Requirements `json:"delta,omitempty"`
	// Trials runs a Monte-Carlo fault-injection campaign over the
	// controller simulation.
	Trials *TrialsJobRequest `json:"trials,omitempty"`
	// Scenario evaluates a declarative scenario document (the async
	// form of POST /v1/scenario).
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// ReliabilityJSON is the wire form of the fault-injection knobs
// (reliab.Config minus the per-trial seed, which the campaign derives).
type ReliabilityJSON struct {
	ECC                  string  `json:"ecc,omitempty"`
	MeanDefectsPerBank   float64 `json:"mean_defects_per_bank,omitempty"`
	RetentionTailPerBank float64 `json:"retention_tail_per_bank,omitempty"`
	SoftErrorsPerMAccess float64 `json:"soft_errors_per_m_access,omitempty"`
	SpareRowsPerBank     int     `json:"spare_rows_per_bank,omitempty"`
	MaxRetries           int     `json:"max_retries,omitempty"`
	BootScreen           bool    `json:"boot_screen,omitempty"`
}

// config materializes the wire knobs into a reliab.Config for the
// given derived trial seed.
func (r ReliabilityJSON) config(seed int64) (reliab.Config, error) {
	ecc, err := reliab.ParseECC(r.ECC)
	if err != nil {
		return reliab.Config{}, err
	}
	return reliab.Config{
		Seed:                 seed,
		ECC:                  ecc,
		MeanDefectsPerBank:   r.MeanDefectsPerBank,
		RetentionTailPerBank: r.RetentionTailPerBank,
		SoftErrorsPerMAccess: r.SoftErrorsPerMAccess,
		SpareRowsPerBank:     r.SpareRowsPerBank,
		MaxRetries:           r.MaxRetries,
		BootScreen:           r.BootScreen,
	}, nil
}

// TrialsJobRequest describes one reliability campaign: the simulate
// request to repeat, the fault process to arm, and how many
// independent trials to draw.
type TrialsJobRequest struct {
	Spec        edram.Spec      `json:"spec"`
	Options     SimulateOptions `json:"options"`
	Clients     []ClientSpec    `json:"clients"`
	Reliability ReliabilityJSON `json:"reliability"`
	Trials      int             `json:"trials"`
	Seed        int64           `json:"seed"`
}

// maxCampaignTrials bounds one campaign: each trial is a full
// controller simulation, so the cap is a worst-case-runtime guard, not
// a memory one.
const maxCampaignTrials = 4096

// Violations lists every constraint the campaign request breaks.
func (r TrialsJobRequest) Violations(maxRequests int64) []string {
	v := SimulateRequest{Spec: r.Spec, Options: r.Options, Clients: r.Clients}.Violations(maxRequests)
	if r.Trials < 1 || r.Trials > maxCampaignTrials {
		v = append(v, fmt.Sprintf("trials must be in [1, %d], got %d", maxCampaignTrials, r.Trials))
	}
	if _, err := reliab.ParseECC(r.Reliability.ECC); err != nil {
		v = append(v, err.Error())
	}
	if r.Reliability.MeanDefectsPerBank < 0 || r.Reliability.RetentionTailPerBank < 0 || r.Reliability.SoftErrorsPerMAccess < 0 {
		v = append(v, "fault rates must be non-negative")
	}
	if r.Reliability.SpareRowsPerBank < 0 || r.Reliability.MaxRetries < 0 {
		v = append(v, "spare rows and retry bound must be non-negative")
	}
	return v
}

// canonicalKey is the campaign's cache/job identity.
//
//cachekey:fields v1 Clients,Options,Reliability,Seed,Spec,Trials
func (r TrialsJobRequest) canonicalKey() string {
	var b strings.Builder
	b.WriteString("trials/v1|")
	b.WriteString(SimulateRequest{Spec: r.Spec, Options: r.Options, Clients: r.Clients}.canonicalKey())
	rel := r.Reliability
	fmt.Fprintf(&b, "|rel=%s,%s,%s,%s,%d,%d,%t|trials=%d|seed=%d",
		canonString(rel.ECC), canonFloat(rel.MeanDefectsPerBank), canonFloat(rel.RetentionTailPerBank),
		canonFloat(rel.SoftErrorsPerMAccess), rel.SpareRowsPerBank, rel.MaxRetries, rel.BootScreen,
		r.Trials, r.Seed)
	return b.String()
}

// TrialJSON is one campaign member's reliability outcome.
type TrialJSON struct {
	Trial             int     `json:"trial"`
	Seed              int64   `json:"seed"`
	InjectedFaults    int     `json:"injected_faults"`
	WeakCells         int     `json:"weak_cells"`
	DefectFingerprint uint64  `json:"defect_fingerprint"`
	FaultyAccesses    int64   `json:"faulty_accesses"`
	Corrected         int64   `json:"corrected"`
	RetryRecovered    int64   `json:"retry_recovered"`
	Remapped          int64   `json:"remapped"`
	Offlined          int64   `json:"offlined"`
	Uncorrected       int64   `json:"uncorrected"`
	Silent            int64   `json:"silent"`
	SparesUsed        int     `json:"spares_used"`
	OfflinedRows      int     `json:"offlined_rows"`
	CapacityLossFrac  float64 `json:"capacity_loss_frac"`
}

// TrialsAggregateJSON is the campaign-level rollup.
type TrialsAggregateJSON struct {
	TotalInjected        int64   `json:"total_injected"`
	TotalUncorrected     int64   `json:"total_uncorrected"`
	TotalSilent          int64   `json:"total_silent"`
	UncorrectedTrials    int     `json:"uncorrected_trials"`
	MeanCapacityLossFrac float64 `json:"mean_capacity_loss_frac"`
}

// TrialsResponse is the terminal result of a "trials" job.
type TrialsResponse struct {
	SchemaVersion int                 `json:"schema_version"`
	Key           string              `json:"key"`
	Trials        int                 `json:"trials"`
	Seed          int64               `json:"seed"`
	Results       []TrialJSON         `json:"results"`
	Aggregate     TrialsAggregateJSON `json:"aggregate"`
}

// JobStatusResponse is the status schema of POST /v1/jobs and
// GET /v1/jobs/{id}.
type JobStatusResponse struct {
	SchemaVersion int           `json:"schema_version"`
	ID            string        `json:"id"`
	Kind          string        `json:"kind"`
	Key           string        `json:"key"`
	State         string        `json:"state"`
	Error         string        `json:"error,omitempty"`
	Progress      jobs.Progress `json:"progress"`
	// ResultPath is set once the job succeeded: GET it for the exact
	// result bytes the synchronous endpoint would have served.
	ResultPath string `json:"result_path,omitempty"`
}

// JobListResponse is the GET /v1/jobs schema (submission order).
type JobListResponse struct {
	SchemaVersion int                 `json:"schema_version"`
	Jobs          []JobStatusResponse `json:"jobs"`
}

func jobStatus(snap jobs.Snapshot) JobStatusResponse {
	out := JobStatusResponse{
		SchemaVersion: SchemaVersion,
		ID:            snap.ID,
		Kind:          snap.Kind,
		Key:           snap.Key,
		State:         string(snap.State),
		Error:         snap.Error,
		Progress:      snap.Progress,
	}
	if snap.HasResult {
		out.ResultPath = "/v1/jobs/" + snap.ID + "/result"
	}
	return out
}

// compiledJob is a validated, ready-to-submit job.
type compiledJob struct {
	id   string // content-derived: hex digest of the canonical identity
	kind string
	key  string // wire-visible cache key
	run  jobs.RunFunc
}

// compileJob validates a JobRequest and binds its runner. The id is
// derived from the canonical identity alone, so re-POSTing the same
// work attaches to the existing job instead of duplicating it.
func (s *Server) compileJob(req JobRequest) (compiledJob, error) {
	// kind is re-stated as a server-side literal in each validated arm
	// (never req.Kind, which is raw client JSON): it becomes the
	// "kind" metric label, and labels must come from closed sets.
	var kind, canonical string
	var run jobs.RunFunc
	switch req.Kind {
	case "explore":
		if req.Explore == nil {
			return compiledJob{}, errors.New(`job kind "explore" requires the explore payload`)
		}
		if v := req.Explore.Violations(); len(v) > 0 {
			return compiledJob{}, violationsError(v)
		}
		kind = "explore"
		canonical = "job/v1|kind=explore|" + req.Explore.CanonicalKey()
		run = s.runExploreJob(*req.Explore)
	case "delta":
		if req.Delta == nil {
			return compiledJob{}, errors.New(`job kind "delta" requires the delta payload`)
		}
		if v := req.Delta.Violations(); len(v) > 0 {
			return compiledJob{}, violationsError(v)
		}
		kind = "delta"
		canonical = "job/v1|kind=delta|" + req.Delta.CanonicalKey()
		run = s.runDeltaJob(*req.Delta)
	case "trials":
		if req.Trials == nil {
			return compiledJob{}, errors.New(`job kind "trials" requires the trials payload`)
		}
		if v := req.Trials.Violations(s.cfg.MaxSimRequests); len(v) > 0 {
			return compiledJob{}, violationsError(v)
		}
		kind = "trials"
		canonical = "job/v1|kind=trials|" + req.Trials.canonicalKey()
		run = s.runTrialsJob(*req.Trials)
	case "scenario":
		if req.Scenario == nil {
			return compiledJob{}, errors.New(`job kind "scenario" requires the scenario payload`)
		}
		if v := req.Scenario.Violations(s.cfg.MaxSimRequests); len(v) > 0 {
			return compiledJob{}, scenario.ViolationsError(v)
		}
		kind = "scenario"
		canonical = "job/v1|kind=scenario|" + req.Scenario.CanonicalKey()
		run = s.runScenarioJob(req.Scenario)
	default:
		return compiledJob{}, fmt.Errorf("unknown job kind %q (want explore, delta, trials or scenario)", req.Kind)
	}
	key := HashKey("job", canonical)
	// The job id is the bare digest (path- and filename-safe).
	id := key[strings.IndexByte(key, ':')+1:]
	return compiledJob{id: id, kind: kind, key: key, run: run}, nil
}

// resolveJob rebuilds a runner from a persisted job request — the
// jobs.Resolver the daemon passes to Resume on startup.
func (s *Server) resolveJob(kind string, raw json.RawMessage) (jobs.RunFunc, error) {
	var req JobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, fmt.Errorf("persisted job request: %w", err)
	}
	if req.Kind != kind {
		return nil, fmt.Errorf("persisted job kind %q does not match record %q", req.Kind, kind)
	}
	compiled, err := s.compileJob(req)
	if err != nil {
		return nil, err
	}
	return compiled.run, nil
}

// ResumeJobs restarts persisted unfinished jobs after a daemon
// restart. Call before serving traffic.
func (s *Server) ResumeJobs() (int, error) {
	if s.jobsErr != nil {
		return 0, s.jobsErr
	}
	return s.jobsStore.Resume(s.resolveJob)
}

// submitJob routes a compiled job into the store and writes the
// status response (202 on creation, 200 when attaching to an existing
// job, 503 when the store sheds).
func (s *Server) submitJob(w http.ResponseWriter, req JobRequest) {
	if s.jobsErr != nil {
		writeError(w, http.StatusServiceUnavailable, s.jobsErr)
		return
	}
	compiled, err := s.compileJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	raw, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	snap, created, err := s.jobsStore.Submit(compiled.id, compiled.kind, compiled.key, raw, compiled.run)
	if errors.Is(err, jobs.ErrOverloaded) {
		oe := &overloadError{reason: "jobs", detail: err.Error(), retryAfter: s.cfg.RequestTimeout}
		s.shedTotal("/v1/jobs", oe.reason).Inc()
		writeOverload(w, oe)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		s.jobsSubmitted(compiled.kind).Inc()
		status = http.StatusAccepted
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, status, jobStatus(snap))
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submitJob(w, req)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	resp := JobListResponse{SchemaVersion: SchemaVersion, Jobs: []JobStatusResponse{}}
	for _, snap := range s.jobsStore.List() {
		resp.Jobs = append(resp.Jobs, jobStatus(snap))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobsStore.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(snap))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.jobsStore.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	switch snap.State {
	case jobs.StateSucceeded:
		// Serve the stored bytes verbatim: they are exactly what the
		// synchronous endpoint would have written, byte for byte.
		b, _ := s.jobsStore.Result(id)
		writeBytes(w, b)
	case jobs.StateFailed:
		writeError(w, http.StatusUnprocessableEntity, errors.New(snap.Error))
	case jobs.StateCancelled:
		writeError(w, http.StatusGone, errors.New("job was cancelled"))
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is still %s", id, snap.State))
	}
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobsStore.Delete(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled", "id": id})
}

// ---- runners ----------------------------------------------------------

// exploreJobState is the explore runner's checkpoint: the Seq
// watermark, the accumulated sweep counters, and the partial frontier.
// Everything downstream (frontier membership, pruned count, canonical
// ordering) is arrival-order-independent, so resuming from (NextSeq,
// Frontier, counters) reproduces the uninterrupted run exactly.
type exploreJobState struct {
	NextSeq    int             `json:"next_seq"`
	Total      int             `json:"total"`
	Enumerated int64           `json:"enumerated"`
	Built      int64           `json:"built"`
	Infeasible int64           `json:"infeasible"`
	Pruned     int64           `json:"pruned"`
	Frontier   []CandidateJSON `json:"frontier"`
}

// candidateFromJSON rebuilds a core.Candidate from its wire form. The
// stub Macro carries the clock alone: dominance, canonical ordering
// and quantization read only the candidate's value fields, and the
// wire encoding reads Macro.ClockMHz — nothing else survives into the
// response, which is what makes checkpointed frontiers byte-exact.
func candidateFromJSON(cj CandidateJSON) core.Candidate {
	return core.Candidate{
		Seq:            cj.Seq,
		Spec:           cj.Spec,
		Macro:          &edram.Macro{ClockMHz: cj.ClockMHz},
		Macros:         cj.Macros,
		AreaMm2:        cj.AreaMm2,
		PowerMW:        cj.PowerMW,
		PeakGBps:       cj.PeakGBps,
		SustainedGBps:  cj.SustainedGBps,
		DieYield:       cj.DieYield,
		CostUSD:        cj.CostUSD,
		CostPerMbitUSD: cj.CostPerMbitUSD,
		Feasible:       cj.Feasible,
		Reasons:        cj.Reasons,
	}
}

// runExploreJob returns the checkpointed explore runner: the sweep is
// partitioned into Seq ranges of JobCheckpointEvery points, with a
// checkpoint persisted after each range.
func (s *Server) runExploreJob(req core.Requirements) jobs.RunFunc {
	return func(ctx context.Context, h *jobs.Handle) ([]byte, error) {
		// The sharded runner shares the checkpoint schema, so a job can
		// resume across a restart that toggled sharding.
		if s.shardingEnabled() {
			return s.runShardedExploreJob(ctx, h, req)
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		st := exploreJobState{Total: core.SweepCount(req)}
		if raw := h.Resumed(); len(raw) > 0 {
			if err := json.Unmarshal(raw, &st); err != nil {
				return nil, fmt.Errorf("explore checkpoint state: %w", err)
			}
		}
		front := core.NewFrontier()
		for _, cj := range st.Frontier {
			front.Add(candidateFromJSON(cj))
		}
		// The restored members are mutually non-dominated, so re-adding
		// them prunes nothing; discards from before the checkpoint live
		// in st.Pruned and are added back on top of the live counter.
		prunedBase := st.Pruned - front.Pruned()

		chunk := s.cfg.JobCheckpointEvery
		for st.NextSeq < st.Total {
			to := st.NextSeq + chunk
			if to > st.Total {
				to = st.Total
			}
			workers, release, err := s.acquireWorkers(ctx, s.cfg.Workers)
			if err != nil {
				return nil, err
			}
			var chunkFinal core.ExploreStats
			ch, err := core.ExploreContext(ctx, req,
				core.WithWorkers(workers),
				core.WithPruning(),
				core.WithSeqRange(st.NextSeq, to),
				core.WithProgress(func(cs core.ExploreStats) {
					if cs.Done {
						chunkFinal = cs
					}
				}))
			if err != nil {
				release()
				return nil, err
			}
			for c := range ch {
				front.Add(c)
			}
			release()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			st.NextSeq = to
			// Folded Total* counters: the checkpoint schema and the
			// final response stay byte-identical to an unpruned run.
			st.Enumerated += chunkFinal.TotalPoints()
			st.Built += chunkFinal.TotalBuilt()
			st.Infeasible += chunkFinal.TotalInfeasible()
			st.Pruned = prunedBase + front.Pruned()
			cands := front.Candidates()
			st.Frontier = make([]CandidateJSON, len(cands))
			for i, c := range cands {
				st.Frontier[i] = candidateJSON(c)
			}
			h.SetProgress(jobs.Progress{
				Done:       int64(st.NextSeq),
				Total:      int64(st.Total),
				Built:      st.Built,
				Infeasible: st.Infeasible,
				Pruned:     st.Pruned,
				FrontSize:  front.Size(),
			})
			raw, err := json.Marshal(st)
			if err != nil {
				return nil, err
			}
			if err := h.Checkpoint(raw); err != nil {
				return nil, err
			}
		}
		if st.Built == 0 {
			return nil, fmt.Errorf("no buildable configuration for %+v", req)
		}
		resp := &ExploreResponse{
			SchemaVersion: SchemaVersion,
			Request:       req,
			Key:           HashKey("explore", req.CanonicalKey()),
			Points:        st.Enumerated,
			Built:         st.Built,
			Infeasible:    st.Infeasible,
			Pruned:        st.Pruned,
			Frontier:      []CandidateJSON{},
			Picks:         []RecommendationJSON{},
		}
		frontier := front.Candidates()
		for _, c := range frontier {
			resp.Frontier = append(resp.Frontier, candidateJSON(c))
		}
		for _, r := range core.Quantize(frontier) {
			resp.Picks = append(resp.Picks, RecommendationJSON{Role: r.Role, CandidateJSON: candidateJSON(r.Candidate)})
		}
		b, err := Encode(resp)
		if err != nil {
			return nil, err
		}
		// Cross-fill the synchronous tiers: a later POST /v1/explore of
		// the same requirements is a hit on the job's bytes.
		s.fillCaches(HashKey("explore", req.CanonicalKey()), b)
		return b, nil
	}
}

// runDeltaJob returns the delta-preferring explore runner. A fresh job
// with an eligible retained state serves through DeltaExplore in one
// step (no intermediate checkpoints — the delta path is orders of
// magnitude shorter than the sweep it replaces); everything else —
// resumed checkpoints, sharded configurations, no eligible state —
// delegates to the checkpointed explore runner, whose schema the job
// shares, so a restart can always resume it as a plain explore.
func (s *Server) runDeltaJob(req core.Requirements) jobs.RunFunc {
	exploreRun := s.runExploreJob(req)
	return func(ctx context.Context, h *jobs.Handle) ([]byte, error) {
		if len(h.Resumed()) > 0 || s.shardingEnabled() {
			return exploreRun(ctx, h)
		}
		e := s.deltaStates.lookup(req)
		if e == nil {
			s.tierDeltaMisses.Inc()
			return exploreRun(ctx, h)
		}
		workers, release, err := s.acquireWorkers(ctx, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		resp, err := s.serveExploreDelta(ctx, e, req, workers)
		release()
		if err != nil {
			return nil, err
		}
		total := int64(core.SweepCount(req))
		h.SetProgress(jobs.Progress{
			Done:       total,
			Total:      total,
			Built:      resp.Built,
			Infeasible: resp.Infeasible,
			Pruned:     resp.Pruned,
			FrontSize:  len(resp.Frontier),
		})
		b, err := Encode(resp)
		if err != nil {
			return nil, err
		}
		// Cross-fill the synchronous tiers under the explore key the
		// response bytes belong to.
		s.fillCaches(HashKey("explore", req.CanonicalKey()), b)
		return b, nil
	}
}

// trialsJobState is the campaign runner's checkpoint: the absolute
// trial watermark and the per-trial outcomes so far. Seeds derive from
// the absolute index (reliab.TrialSeed), so disjoint trial ranges
// concatenate into exactly the uninterrupted campaign.
type trialsJobState struct {
	NextTrial int         `json:"next_trial"`
	Results   []TrialJSON `json:"results"`
}

// jobTrialsChunk is the campaign checkpoint cadence: small enough that
// a restart rarely repeats more than a few simulations, large enough
// that checkpoint I/O stays negligible next to a trial's compute.
const jobTrialsChunk = 8

// runTrialsJob returns the checkpointed campaign runner.
func (s *Server) runTrialsJob(req TrialsJobRequest) jobs.RunFunc {
	return func(ctx context.Context, h *jobs.Handle) ([]byte, error) {
		m, err := edram.Build(req.Spec)
		if err != nil {
			return nil, err
		}
		policy, err := parsePolicy(req.Options.Policy)
		if err != nil {
			return nil, err
		}
		cfg := m.DeviceConfig()
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}

		runTrial := func(trial int, seed int64) (reliab.Stats, []reliab.FaultEvent, error) {
			if err := ctx.Err(); err != nil {
				return reliab.Stats{}, nil, err
			}
			rel, err := req.Reliability.config(seed)
			if err != nil {
				return reliab.Stats{}, nil, err
			}
			mp, err := mapping.NewBankInterleaved(gm)
			if err != nil {
				return reliab.Stats{}, nil, err
			}
			clients := make([]sched.Client, len(req.Clients))
			for i, c := range req.Clients {
				clients[i] = sched.Client{
					Name:            c.Name,
					Gen:             c.Generator(i, m.Geometry.InterfaceBits),
					LatencyBudgetNs: c.LatencyBudgetNs,
				}
			}
			res, err := sched.RunWithOptions(cfg, mp, sched.Options{
				Policy:        policy,
				ClosedPage:    req.Options.ClosedPage,
				ReorderWindow: req.Options.ReorderWindow,
				Reliability:   &rel,
			}, clients)
			if err != nil {
				return reliab.Stats{}, nil, err
			}
			return *res.Reliability, nil, nil
		}

		var st trialsJobState
		if raw := h.Resumed(); len(raw) > 0 {
			if err := json.Unmarshal(raw, &st); err != nil {
				return nil, fmt.Errorf("trials checkpoint state: %w", err)
			}
		}
		for st.NextTrial < req.Trials {
			to := st.NextTrial + jobTrialsChunk
			if to > req.Trials {
				to = req.Trials
			}
			workers, release, err := s.acquireWorkers(ctx, s.cfg.Workers)
			if err != nil {
				return nil, err
			}
			part, err := reliab.RunTrialsRange(st.NextTrial, to, workers, req.Seed, runTrial)
			release()
			if err != nil {
				return nil, err
			}
			for _, tr := range part {
				st.Results = append(st.Results, trialJSON(tr))
			}
			st.NextTrial = to
			h.SetProgress(jobs.Progress{Done: int64(st.NextTrial), Total: int64(req.Trials)})
			raw, err := json.Marshal(st)
			if err != nil {
				return nil, err
			}
			if err := h.Checkpoint(raw); err != nil {
				return nil, err
			}
		}

		resp := &TrialsResponse{
			SchemaVersion: SchemaVersion,
			Key:           HashKey("trials", req.canonicalKey()),
			Trials:        req.Trials,
			Seed:          req.Seed,
			Results:       st.Results,
		}
		if resp.Results == nil {
			resp.Results = []TrialJSON{}
		}
		for _, tr := range resp.Results {
			resp.Aggregate.TotalInjected += int64(tr.InjectedFaults)
			resp.Aggregate.TotalUncorrected += tr.Uncorrected
			resp.Aggregate.TotalSilent += tr.Silent
			if tr.Uncorrected > 0 || tr.Silent > 0 {
				resp.Aggregate.UncorrectedTrials++
			}
			resp.Aggregate.MeanCapacityLossFrac += tr.CapacityLossFrac
		}
		if n := len(resp.Results); n > 0 {
			resp.Aggregate.MeanCapacityLossFrac /= float64(n)
		}
		return Encode(resp)
	}
}

func trialJSON(tr reliab.TrialResult) TrialJSON {
	return TrialJSON{
		Trial:             tr.Trial,
		Seed:              tr.Seed,
		InjectedFaults:    tr.Stats.InjectedFaults,
		WeakCells:         tr.Stats.WeakCells,
		DefectFingerprint: tr.Stats.DefectFingerprint,
		FaultyAccesses:    tr.Stats.FaultyAccesses,
		Corrected:         tr.Stats.Corrected,
		RetryRecovered:    tr.Stats.RetryRecovered,
		Remapped:          tr.Stats.Remapped,
		Offlined:          tr.Stats.Offlined,
		Uncorrected:       tr.Stats.Uncorrected,
		Silent:            tr.Stats.Silent,
		SparesUsed:        tr.Stats.SparesUsed,
		OfflinedRows:      tr.Stats.OfflinedRows,
		CapacityLossFrac:  tr.Stats.CapacityLossFrac,
	}
}

// scenarioJobState is the scenario runner's checkpoint: the level
// watermark plus the levels evaluated so far. Levels are independent,
// so per-level resumption reproduces BuildScenario exactly.
type scenarioJobState struct {
	NextLevel int                 `json:"next_level"`
	Levels    []ScenarioLevelJSON `json:"levels"`
}

// runScenarioJob returns the checkpointed scenario runner.
func (s *Server) runScenarioJob(scn *scenario.Scenario) jobs.RunFunc {
	return func(ctx context.Context, h *jobs.Handle) ([]byte, error) {
		compiled, err := scn.Compile()
		if err != nil {
			return nil, err
		}
		var st scenarioJobState
		if raw := h.Resumed(); len(raw) > 0 {
			if err := json.Unmarshal(raw, &st); err != nil {
				return nil, fmt.Errorf("scenario checkpoint state: %w", err)
			}
		}
		for st.NextLevel < len(compiled.Levels) {
			workers, release, err := s.acquireWorkers(ctx, s.cfg.Workers)
			if err != nil {
				return nil, err
			}
			lj, err := buildScenarioLevel(ctx, compiled, st.NextLevel, workers)
			release()
			if err != nil {
				return nil, err
			}
			st.Levels = append(st.Levels, lj)
			st.NextLevel++
			h.SetProgress(jobs.Progress{Done: int64(st.NextLevel), Total: int64(len(compiled.Levels))})
			raw, err := json.Marshal(st)
			if err != nil {
				return nil, err
			}
			if err := h.Checkpoint(raw); err != nil {
				return nil, err
			}
		}
		resp := &ScenarioResponse{
			SchemaVersion: SchemaVersion,
			Name:          scn.Name,
			Key:           HashKey("scenario", scn.CanonicalKey()),
			Levels:        st.Levels,
		}
		if resp.Levels == nil {
			resp.Levels = []ScenarioLevelJSON{}
		}
		b, err := Encode(resp)
		if err != nil {
			return nil, err
		}
		// Cross-fill the synchronous scenario tiers.
		s.fillCaches(HashKey("scenario", scn.CanonicalKey()), b)
		return b, nil
	}
}
