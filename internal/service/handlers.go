// The endpoint handlers. Each one decodes + validates up front
// (400 with every violation listed), then hands a compute closure to
// serveCached, which supplies the cache, the coalescing and the
// detached bounded context. Handlers that sweep the design space
// (explore, recommend, experiments) draw workers from the shared pool.

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"edram/internal/core"
)

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// data — a typo in a field name is a 400, not a silently ignored knob.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// violationsError joins a violation list into one 400 message.
func violationsError(v []string) error {
	return fmt.Errorf("invalid request: %s", strings.Join(v, "; "))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer signal, distinct from /healthz:
// the process can be alive (healthz 200) yet not ready to take
// traffic — still warming its cache or resuming jobs at startup, or
// draining in-flight requests at shutdown. Both of those answer 503
// here so rotation skips the instance without killing it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch s.readiness.Load() {
	case readyOK:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case readyDraining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.jobsStore != nil {
		s.jobsActive.Set(int64(s.jobsStore.Active()))
	}
	if s.disk != nil {
		// Scrape-time sync, like the jobs gauge: the disk tier keeps its
		// own counters and the registry mirrors them on read.
		st := s.disk.Stats()
		s.metrics.Gauge("edramd_disk_cache_entries", "Live entries in the disk cache tier.").Set(int64(st.Entries))
		s.metrics.Gauge("edramd_disk_cache_live_bytes", "Live value bytes in the disk cache tier.").Set(st.LiveBytes)
		s.metrics.Gauge("edramd_disk_cache_evictions", "Disk-tier entries evicted by the size/entry budget.").Set(st.Evictions)
		s.metrics.Gauge("edramd_disk_cache_replayed_entries", "Entries recovered from the segment log at boot.").Set(st.ReplayedEntries)
		s.metrics.Gauge("edramd_disk_cache_dropped_records", "Damaged log suffixes truncated at boot.").Set(st.DroppedRecords)
		s.metrics.Gauge("edramd_disk_cache_invalidations", "Whole-segment discards (generation mismatch).").Set(st.Invalidations)
		s.metrics.Gauge("edramd_disk_cache_compactions", "Segment log compactions.").Set(st.Compactions)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w)
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var body RequirementsRequest
	if !decodeBody(w, r, &body) {
		return
	}
	if err := checkSchemaVersion(body.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req := body.Requirements
	if v := req.Violations(); len(v) > 0 {
		writeError(w, http.StatusBadRequest, violationsError(v))
		return
	}
	key := HashKey("explore", req.CanonicalKey())
	// The sync→async escape hatch: a sweep too large for the
	// request/response cycle is converted into a job (202 + job id)
	// unless the cache already holds the answer.
	if t := s.cfg.AsyncPointThreshold; t > 0 && core.SweepCount(req) > t {
		if val, tag, ok := s.lookupTiered(key); ok {
			w.Header().Set("X-Cache", tag)
			writeBytes(w, val)
			return
		}
		s.submitJob(w, JobRequest{Kind: "explore", Explore: &req})
		return
	}
	s.serveCachedTagged(w, r, "/v1/explore", key, func(ctx context.Context) ([]byte, string, error) {
		workers, release, err := s.admitWorkers(ctx, "/v1/explore", s.cfg.Workers)
		if err != nil {
			return nil, "", err
		}
		defer release()
		var resp *ExploreResponse
		tag := ""
		// The delta tier outranks the sharded fan-out: a byte-identity
		// miss whose requirement structure matches a retained sweep is
		// re-served incrementally (byte-identical to the cold
		// computation, cheaper than partitioning it across peers).
		// States are recorded by Warmup and by non-sharded cold sweeps;
		// sharded sweeps never record (partial per-lane coverage would
		// break the evals ⊆ coverage invariant).
		if e := s.deltaStates.lookup(req); e != nil {
			resp, err = s.serveExploreDelta(ctx, e, req, workers)
			tag = "hit-delta"
		} else {
			s.tierDeltaMisses.Inc()
			if s.shardingEnabled() {
				resp, err = s.buildExploreSharded(ctx, req, workers)
			} else {
				resp, err = s.buildExploreRecorded(ctx, req, workers)
			}
		}
		if err != nil {
			return nil, "", err
		}
		b, err := Encode(resp)
		return b, tag, err
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var body RequirementsRequest
	if !decodeBody(w, r, &body) {
		return
	}
	if err := checkSchemaVersion(body.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req := body.Requirements
	if v := req.Violations(); len(v) > 0 {
		writeError(w, http.StatusBadRequest, violationsError(v))
		return
	}
	key := HashKey("recommend", req.CanonicalKey())
	s.serveCached(w, r, "/v1/recommend", key, func(ctx context.Context) ([]byte, error) {
		workers, release, err := s.admitWorkers(ctx, "/v1/recommend", s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		defer release()
		resp, err := BuildRecommend(ctx, req, workers)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if v := req.Violations(s.cfg.MaxSimRequests); len(v) > 0 {
		writeError(w, http.StatusBadRequest, violationsError(v))
		return
	}
	key := HashKey("simulate", req.canonicalKey())
	s.serveCached(w, r, "/v1/simulate", key, func(ctx context.Context) ([]byte, error) {
		// The event-driven simulation is single-threaded: one pool
		// slot, however many were asked for.
		_, release, err := s.admitWorkers(ctx, "/v1/simulate", 1)
		if err != nil {
			return nil, err
		}
		defer release()
		resp, err := BuildSimulate(req)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}

func (s *Server) handleDatasheet(w http.ResponseWriter, r *http.Request) {
	var body DatasheetRequest
	if !decodeBody(w, r, &body) {
		return
	}
	if err := checkSchemaVersion(body.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := body.Spec
	key := HashKey("datasheet", spec.CanonicalKey())
	s.serveCached(w, r, "/v1/datasheet", key, func(ctx context.Context) ([]byte, error) {
		resp, err := BuildDatasheet(spec)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req ExperimentsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := HashKey("experiments", req.canonicalKey())
	s.serveCached(w, r, "/v1/experiments", key, func(ctx context.Context) ([]byte, error) {
		workers, release, err := s.admitWorkers(ctx, "/v1/experiments", s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		defer release()
		resp, err := BuildExperiments(ctx, req, workers)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}
