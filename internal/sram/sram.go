// Package sram models on-chip SRAM macros — the other half of the
// paper §3 partitioning decision: "since eDRAM allows to integrate
// SRAMs and DRAMs, decisions on the on/off-chip DRAM- and SRAM/DRAM-
// partitioning have to be made." A 6T SRAM cell is ~15-25x larger than
// a DRAM cell but needs no refresh, no sense-amplifier restore cycle
// and no DRAM process steps; below some capacity the SRAM's zero fixed
// overhead and single-cycle access win, above it the DRAM's density
// does. Partition finds that crossover.
package sram

import (
	"fmt"
	"math"

	"edram/internal/tech"
	"edram/internal/units"
)

// CellFactorF2 is the 6T SRAM cell area in F² on a logic process.
const CellFactorF2 = 140

// Macro describes one SRAM macro.
type Macro struct {
	Process  tech.Process
	Bits     int
	DataBits int
}

// Validate checks the specification.
func (m Macro) Validate() error {
	if err := m.Process.Validate(); err != nil {
		return err
	}
	if m.Bits < 1 {
		return fmt.Errorf("sram: capacity must be positive, got %d bits", m.Bits)
	}
	if m.DataBits < 1 || m.DataBits > m.Bits {
		return fmt.Errorf("sram: data width %d out of range", m.DataBits)
	}
	return nil
}

// AreaMm2 returns the macro area: cells at CellFactorF2 plus periphery
// (decoder/sense/drivers) that amortizes much better than a DRAM
// macro's fixed control overhead.
func (m Macro) AreaMm2() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	f2 := m.Process.FeatureUm * m.Process.FeatureUm * 1e-6 // mm² per F²
	cell := float64(m.Bits) * CellFactorF2 * f2
	// Periphery: ~30% of the array for small macros, shrinking with
	// size, plus a tiny fixed block.
	periphery := cell*0.22 + 0.02
	return cell + periphery, nil
}

// AccessNs returns the SRAM access time: log-depth decoder plus bitline
// development, all in one cycle (no row/column split, no precharge
// penalty between random accesses).
func (m Macro) AccessNs() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	words := float64(m.Bits / m.DataBits)
	if words < 1 {
		words = 1
	}
	// 0.9 ns base + 0.28 ns per doubling of depth at 0.24 µm,
	// scaled by the process's logic speed.
	ns := (0.9 + 0.28*math.Log2(words)) * m.Process.LogicDelayRel
	return ns, nil
}

// LeakageMWPerMbit is the 6T array leakage per Mbit (logic-transistor
// cells leak; the DRAM cell does not, it just forgets).
const LeakageMWPerMbit = 0.9

// StandbyMW returns the macro's standby power.
func (m Macro) StandbyMW() float64 {
	return LeakageMWPerMbit * float64(m.Bits) / units.Mbit * m.Process.LeakageRel
}

// ReadEnergyPJPerBit is the SRAM column energy per bit read.
const ReadEnergyPJPerBit = 0.35

// PartitionPoint is one row of the SRAM-vs-eDRAM comparison.
type PartitionPoint struct {
	CapacityMbit float64
	SRAMAreaMm2  float64
	DRAMAreaMm2  float64
	SRAMAccessNs float64
	DRAMAccessNs float64
	// SRAMWins is true when SRAM needs less silicon at this capacity.
	SRAMWins bool
}

// DRAMAreaModel abstracts the eDRAM macro area (injected to avoid a
// dependency cycle; internal/edram provides it).
type DRAMAreaModel func(capacityMbit float64) (areaMm2, accessNs float64, err error)

// Partition sweeps capacities and returns the comparison rows plus the
// crossover capacity (the smallest swept capacity where eDRAM needs
// less area than SRAM; 0 if SRAM wins everywhere).
func Partition(p tech.Process, capacitiesMbit []float64, dram DRAMAreaModel) ([]PartitionPoint, float64, error) {
	if len(capacitiesMbit) == 0 {
		return nil, 0, fmt.Errorf("sram: no capacities to sweep")
	}
	var rows []PartitionPoint
	crossover := 0.0
	for _, mbit := range capacitiesMbit {
		bits := int(mbit * units.Mbit)
		if bits < 1 {
			return nil, 0, fmt.Errorf("sram: capacity %g Mbit too small", mbit)
		}
		m := Macro{Process: p, Bits: bits, DataBits: 64}
		sa, err := m.AreaMm2()
		if err != nil {
			return nil, 0, err
		}
		sns, err := m.AccessNs()
		if err != nil {
			return nil, 0, err
		}
		da, dns, err := dram(mbit)
		if err != nil {
			return nil, 0, err
		}
		row := PartitionPoint{
			CapacityMbit: mbit,
			SRAMAreaMm2:  sa,
			DRAMAreaMm2:  da,
			SRAMAccessNs: sns,
			DRAMAccessNs: dns,
			SRAMWins:     sa < da,
		}
		rows = append(rows, row)
		if !row.SRAMWins && crossover == 0 {
			crossover = mbit
		}
	}
	return rows, crossover, nil
}
