package sram

import (
	"testing"

	"edram/internal/tech"
	"edram/internal/units"
)

func TestMacroValidate(t *testing.T) {
	p := tech.Siemens024()
	good := Macro{Process: p, Bits: 256 * units.Kbit, DataBits: 64}
	if good.Validate() != nil {
		t.Fatal("good macro rejected")
	}
	bad := []Macro{
		{Process: p, Bits: 0, DataBits: 64},
		{Process: p, Bits: 1024, DataBits: 0},
		{Process: p, Bits: 64, DataBits: 128},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad macro %d accepted", i)
		}
	}
	badProc := good
	badProc.Process.FeatureUm = 0
	if badProc.Validate() == nil {
		t.Error("bad process must fail")
	}
}

func TestAreaScalesLinearly(t *testing.T) {
	p := tech.Siemens024()
	a1, err := (Macro{Process: p, Bits: 256 * units.Kbit, DataBits: 64}).AreaMm2()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := (Macro{Process: p, Bits: 512 * units.Kbit, DataBits: 64}).AreaMm2()
	if err != nil {
		t.Fatal(err)
	}
	// Near-linear with a small fixed part.
	if a2 <= a1 || a2 > 2.1*a1 {
		t.Errorf("area scaling off: %v -> %v", a1, a2)
	}
	// Sanity: 1 Mbit of 6T SRAM at 0.24 µm is ~8-13 mm².
	a3, _ := (Macro{Process: p, Bits: units.Mbit, DataBits: 64}).AreaMm2()
	if a3 < 7 || a3 > 14 {
		t.Errorf("1-Mbit SRAM area %.1f mm² implausible", a3)
	}
}

func TestAccessGrowsWithDepth(t *testing.T) {
	p := tech.Siemens024()
	small, err := (Macro{Process: p, Bits: 64 * units.Kbit, DataBits: 64}).AccessNs()
	if err != nil {
		t.Fatal(err)
	}
	big, err := (Macro{Process: p, Bits: units.Mbit, DataBits: 64}).AccessNs()
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Error("deeper SRAM must be slower")
	}
	// SRAM random access beats a DRAM random row access (~10 ns).
	if big > 9 {
		t.Errorf("1-Mbit SRAM access %.1f ns too slow", big)
	}
}

func TestLogicProcessFasterSRAM(t *testing.T) {
	bits := 256 * units.Kbit
	onDRAM, _ := (Macro{Process: tech.Siemens024(), Bits: bits, DataBits: 64}).AccessNs()
	onLogic, _ := (Macro{Process: tech.Logic024(), Bits: bits, DataBits: 64}).AccessNs()
	if onLogic >= onDRAM {
		t.Error("SRAM on the logic process must be faster")
	}
}

func TestStandbyLeakage(t *testing.T) {
	bits := units.Mbit
	dramProc := Macro{Process: tech.Siemens024(), Bits: bits, DataBits: 64}
	logicProc := Macro{Process: tech.Logic024(), Bits: bits, DataBits: 64}
	if logicProc.StandbyMW() <= dramProc.StandbyMW() {
		t.Error("leaky logic transistors must cost more standby")
	}
	if dramProc.StandbyMW() <= 0 {
		t.Error("standby must be positive")
	}
}

func TestPartitionCrossover(t *testing.T) {
	p := tech.Siemens024()
	// Synthetic DRAM model: 1.4 mm² fixed + 0.8 mm²/Mbit, 10-ns access.
	dram := func(mbit float64) (float64, float64, error) {
		return 1.4 + 0.8*mbit, 10, nil
	}
	caps := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2, 4}
	rows, crossover, err := Partition(p, caps, dram)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(caps) {
		t.Fatalf("rows = %d", len(rows))
	}
	// SRAM must win small and lose big.
	if !rows[0].SRAMWins {
		t.Error("SRAM must win at 64 Kbit")
	}
	if rows[len(rows)-1].SRAMWins {
		t.Error("eDRAM must win at 4 Mbit")
	}
	if crossover <= 0.0625 || crossover > 4 {
		t.Errorf("crossover %.3f Mbit implausible", crossover)
	}
	// Winner flag consistent with the areas.
	for _, r := range rows {
		if r.SRAMWins != (r.SRAMAreaMm2 < r.DRAMAreaMm2) {
			t.Error("winner flag inconsistent")
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	p := tech.Siemens024()
	dram := func(mbit float64) (float64, float64, error) { return 1, 1, nil }
	if _, _, err := Partition(p, nil, dram); err == nil {
		t.Error("empty sweep must error")
	}
	if _, _, err := Partition(p, []float64{0}, dram); err == nil {
		t.Error("zero capacity must error")
	}
}

func TestPartitionMonotoneProperty(t *testing.T) {
	// SRAM area and access grow monotonically along any sweep.
	p := tech.Siemens024()
	dram := func(mbit float64) (float64, float64, error) { return 1 + mbit, 10, nil }
	caps := []float64{0.125, 0.25, 0.5, 1, 2, 4}
	rows, _, err := Partition(p, caps, dram)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SRAMAreaMm2 <= rows[i-1].SRAMAreaMm2 {
			t.Fatal("SRAM area must grow with capacity")
		}
		if rows[i].SRAMAccessNs < rows[i-1].SRAMAccessNs {
			t.Fatal("SRAM access must not shrink with capacity")
		}
	}
}
