// Package sdram models discrete commodity SDRAM parts of the late 1990s
// and the board-level memory systems composed from them. It is the
// baseline the paper argues against: fixed part sizes and narrow
// interfaces force granularity waste (§1), board-level interface power
// (§1) and package/pin overheads (§1).
package sdram

import (
	"fmt"
	"math"

	"edram/internal/dram"
	"edram/internal/power"
	"edram/internal/tech"
	"edram/internal/units"
)

// Part describes one discrete SDRAM device.
type Part struct {
	Name         string
	CapacityMbit int
	WidthBits    int // data interface width
	ClockMHz     float64
	Banks        int
	PageBits     int // page (row) length in bits
	Timing       tech.SDRAMTiming
	// SignalPins is the per-device signal pin count (data, address,
	// command, clock); power/ground excluded (added by pad models).
	SignalPins int
	PriceUSD   float64
	// StandbyMW is the device's self-refresh standby power.
	StandbyMW float64
}

// RowsPerBank derives the bank depth from capacity, banks and page size.
func (p Part) RowsPerBank() int {
	if p.Banks <= 0 || p.PageBits <= 0 {
		return 0
	}
	bits := p.CapacityMbit * units.Mbit
	return bits / p.Banks / p.PageBits
}

// PeakBandwidthGBps is the device's theoretical interface bandwidth.
func (p Part) PeakBandwidthGBps() float64 {
	return units.BandwidthGBps(p.WidthBits, p.ClockMHz)
}

// FillFrequencyHz is the paper's fill-frequency metric for one device.
func (p Part) FillFrequencyHz() float64 {
	return units.FillFrequencyHz(p.PeakBandwidthGBps(), float64(p.CapacityMbit))
}

// Validate checks the part description.
func (p Part) Validate() error {
	switch {
	case p.CapacityMbit <= 0:
		return fmt.Errorf("sdram: part %q: capacity must be positive", p.Name)
	case p.WidthBits <= 0 || !units.IsPow2(p.WidthBits):
		return fmt.Errorf("sdram: part %q: width %d must be a positive power of two", p.Name, p.WidthBits)
	case p.ClockMHz <= 0:
		return fmt.Errorf("sdram: part %q: clock must be positive", p.Name)
	case p.Banks <= 0 || p.PageBits <= 0:
		return fmt.Errorf("sdram: part %q: banks and page must be positive", p.Name)
	case p.RowsPerBank() <= 0:
		return fmt.Errorf("sdram: part %q: inconsistent geometry", p.Name)
	}
	return nil
}

// DeviceConfig returns the dram.Config for simulating one part.
func (p Part) DeviceConfig() dram.Config {
	return dram.Config{
		Banks:       p.Banks,
		RowsPerBank: p.RowsPerBank(),
		PageBits:    p.PageBits,
		DataBits:    p.WidthBits,
		Timing:      p.Timing,
		AutoRefresh: true,
	}
}

// Catalog returns the discrete parts available to the baseline system
// composer, in increasing capacity. Sizes follow the commodity
// progression the paper cites (4, 16, 64 Mbit; §4.1 mentions 4x4 Mbit
// and 2x16 Mbit alternatives).
func Catalog() []Part {
	pc100 := tech.PC100()
	return []Part{
		{Name: "4Mb-x16", CapacityMbit: 4, WidthBits: 16, ClockMHz: 100, Banks: 2, PageBits: 4096, Timing: pc100, SignalPins: 34, PriceUSD: 1.8, StandbyMW: 2.5},
		{Name: "16Mb-x16", CapacityMbit: 16, WidthBits: 16, ClockMHz: 100, Banks: 2, PageBits: 8192, Timing: pc100, SignalPins: 36, PriceUSD: 4.0, StandbyMW: 4.0},
		{Name: "64Mb-x16", CapacityMbit: 64, WidthBits: 16, ClockMHz: 100, Banks: 4, PageBits: 8192, Timing: pc100, SignalPins: 38, PriceUSD: 15.0, StandbyMW: 7.0},
	}
}

// SpeedGrade derates or upgrades a part to a different interface clock,
// scaling its price with the era's speed-bin premium (~15% per 33 MHz).
func SpeedGrade(p Part, clockMHz float64) (Part, error) {
	if clockMHz <= 0 {
		return Part{}, fmt.Errorf("sdram: clock must be positive")
	}
	out := p
	out.ClockMHz = clockMHz
	out.Timing.TCKns = units.MHzToNs(clockMHz)
	out.Name = fmt.Sprintf("%s-%.0f", p.Name, clockMHz)
	out.PriceUSD = p.PriceUSD * (1 + 0.15*(clockMHz-p.ClockMHz)/33)
	if out.PriceUSD < 0.5*p.PriceUSD {
		out.PriceUSD = 0.5 * p.PriceUSD
	}
	return out, nil
}

// System is a board-level memory system: ranks of ganged parts.
type System struct {
	Part  Part
	Chips int // chips per rank = BusBits/Part.WidthBits
	Ranks int
}

// BusBits is the composed data-bus width.
func (s System) BusBits() int { return s.Chips * s.Part.WidthBits }

// InstalledMbit is the total installed capacity.
func (s System) InstalledMbit() int { return s.Chips * s.Ranks * s.Part.CapacityMbit }

// TotalChips is the device count.
func (s System) TotalChips() int { return s.Chips * s.Ranks }

// PeakBandwidthGBps is the composed-bus peak bandwidth.
func (s System) PeakBandwidthGBps() float64 {
	return units.BandwidthGBps(s.BusBits(), s.Part.ClockMHz)
}

// FillFrequencyHz is the paper's metric for the composed system.
func (s System) FillFrequencyHz() float64 {
	return units.FillFrequencyHz(s.PeakBandwidthGBps(), float64(s.InstalledMbit()))
}

// SignalPins is the total board-level signal pin count.
func (s System) SignalPins() int { return s.TotalChips() * s.Part.SignalPins }

// PriceUSD is the memory-device bill of materials.
func (s System) PriceUSD() float64 { return float64(s.TotalChips()) * s.Part.PriceUSD }

// StandbyPowerMW is the system's self-refresh standby power (every chip
// keeps refreshing; paper §2: portable applications feel this first).
func (s System) StandbyPowerMW() float64 { return float64(s.TotalChips()) * s.Part.StandbyMW }

// InterfacePowerMW is the board-level interface power at the given
// utilization (fraction of peak transfers actually performed).
func (s System) InterfacePowerMW(e tech.Electrical, vddV, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	bus := power.OffChipBus(e, s.BusBits(), s.Part.ClockMHz*utilization, vddV)
	return bus.PowerMW
}

// DeviceConfig returns a dram.Config for the composed system: the
// ganged chips of one rank operate in lockstep as a single device of
// the full bus width (each chip contributes its slice of every page);
// additional ranks appear as extra bank groups.
func (s System) DeviceConfig() dram.Config {
	return dram.Config{
		Banks:       s.Part.Banks * s.Ranks,
		RowsPerBank: s.Part.RowsPerBank(),
		PageBits:    s.Part.PageBits * s.Chips,
		DataBits:    s.BusBits(),
		Timing:      s.Part.Timing,
		AutoRefresh: true,
	}
}

// Requirement is what the application actually needs.
type Requirement struct {
	CapacityMbit int
	// WidthBits is the minimum data-bus width (bandwidth proxy).
	WidthBits int
}

// Compose builds the cheapest-capacity system from the part that meets
// the requirement: enough chips side-by-side to reach the width, enough
// ranks to reach the capacity. This is where commodity granularity bites
// (paper §1: reaching a 256-bit bus from 16-bit parts forces 16 chips,
// i.e. a 64-Mbit floor even when 8 Mbit would do).
func Compose(p Part, req Requirement) (System, error) {
	if err := p.Validate(); err != nil {
		return System{}, err
	}
	if req.CapacityMbit <= 0 || req.WidthBits <= 0 {
		return System{}, fmt.Errorf("sdram: requirement must be positive, got %+v", req)
	}
	chips := units.CeilDiv(req.WidthBits, p.WidthBits)
	if chips < 1 {
		chips = 1
	}
	rankMbit := chips * p.CapacityMbit
	ranks := units.CeilDiv(req.CapacityMbit, rankMbit)
	if ranks < 1 {
		ranks = 1
	}
	return System{Part: p, Chips: chips, Ranks: ranks}, nil
}

// BestSystem tries every catalog part and returns the cheapest system
// that meets the requirement (ties broken by least installed capacity).
// This is the strongest discrete baseline.
func BestSystem(req Requirement) (System, error) {
	var best System
	found := false
	for _, p := range Catalog() {
		s, err := Compose(p, req)
		if err != nil {
			return System{}, err
		}
		if !found ||
			s.PriceUSD() < best.PriceUSD() ||
			//nolint:edramvet/floateq // exact price tie-break: prefer less installed capacity
			(s.PriceUSD() == best.PriceUSD() && s.InstalledMbit() < best.InstalledMbit()) {
			best = s
			found = true
		}
	}
	if !found {
		return System{}, fmt.Errorf("sdram: empty catalog")
	}
	return best, nil
}

// WasteFactor is installed capacity over required capacity (>= 1).
func WasteFactor(s System, req Requirement) float64 {
	if req.CapacityMbit <= 0 {
		return 0
	}
	return float64(s.InstalledMbit()) / float64(req.CapacityMbit)
}

// GranularityFloorMbit returns the minimum installed capacity any system
// built from part p can have while providing widthBits of bus.
func GranularityFloorMbit(p Part, widthBits int) int {
	if widthBits <= 0 || p.WidthBits <= 0 {
		return 0
	}
	chips := units.CeilDiv(widthBits, p.WidthBits)
	return chips * p.CapacityMbit
}

// SustainedFraction estimates the fraction of peak a system sustains for
// a random-row access mix with the given page-hit probability — a
// closed-form sanity model next to the event-driven simulator.
func SustainedFraction(p Part, hitRate float64) float64 {
	hitRate = units.Clamp(hitRate, 0, 1)
	tm := p.Timing
	perHit := tm.TCKns
	perMiss := tm.TRPns + tm.TRCDns + tm.TCKns
	avg := hitRate*perHit + (1-hitRate)*perMiss
	if avg <= 0 {
		return 0
	}
	return math.Min(1, perHit/avg)
}
