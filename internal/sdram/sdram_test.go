package sdram

import (
	"math"
	"testing"
	"testing/quick"

	"edram/internal/tech"
)

func TestCatalogValid(t *testing.T) {
	for _, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if cfg := p.DeviceConfig(); cfg.Validate() != nil {
			t.Errorf("%s: device config invalid: %v", p.Name, cfg.Validate())
		}
	}
}

func TestPartDerived(t *testing.T) {
	p := Catalog()[1] // 16Mb-x16
	// 16 bits at 100 MHz = 0.2 GB/s.
	if math.Abs(p.PeakBandwidthGBps()-0.2) > 1e-9 {
		t.Errorf("peak = %v", p.PeakBandwidthGBps())
	}
	// Fill frequency = 0.2e9*8 / 16Mbit ≈ 95 Hz.
	ff := p.FillFrequencyHz()
	if ff < 90 || ff > 100 {
		t.Errorf("fill frequency %v implausible", ff)
	}
	// Geometry: 16 Mbit / 2 banks / 8192-bit pages = 1024 rows.
	if p.RowsPerBank() != 1024 {
		t.Errorf("rows per bank = %d", p.RowsPerBank())
	}
	var zero Part
	if zero.RowsPerBank() != 0 {
		t.Error("zero part must have 0 rows")
	}
}

func TestPartValidateRejects(t *testing.T) {
	good := Catalog()[0]
	cases := []struct {
		name string
		mut  func(*Part)
	}{
		{"zero capacity", func(p *Part) { p.CapacityMbit = 0 }},
		{"width not pow2", func(p *Part) { p.WidthBits = 12 }},
		{"zero clock", func(p *Part) { p.ClockMHz = 0 }},
		{"zero banks", func(p *Part) { p.Banks = 0 }},
		{"page larger than capacity", func(p *Part) { p.PageBits = 1 << 30 }},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if p.Validate() == nil {
			t.Errorf("%s: should fail", c.name)
		}
	}
}

func TestComposePaperExample(t *testing.T) {
	// Paper §1: "it would take 16 discrete 4-Mbit chips (organized as
	// 256K x 16) to achieve the same [256-bit] width, so the
	// granularity of such a discrete system is 64 Mbit. But the
	// application may only call for, say, 8 Mbit of memory."
	p := Catalog()[0] // 4Mb-x16
	s, err := Compose(p, Requirement{CapacityMbit: 8, WidthBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chips != 16 {
		t.Errorf("chips = %d, want 16", s.Chips)
	}
	if s.InstalledMbit() != 64 {
		t.Errorf("installed = %d Mbit, want 64", s.InstalledMbit())
	}
	if w := WasteFactor(s, Requirement{CapacityMbit: 8, WidthBits: 256}); math.Abs(w-8) > 1e-9 {
		t.Errorf("waste factor = %v, want 8", w)
	}
	if GranularityFloorMbit(p, 256) != 64 {
		t.Errorf("granularity floor = %d, want 64", GranularityFloorMbit(p, 256))
	}
}

func TestComposeRanks(t *testing.T) {
	p := Catalog()[1] // 16Mb-x16
	// 64-bit bus (4 chips = 64 Mbit/rank), 200 Mbit => 4 ranks.
	s, err := Compose(p, Requirement{CapacityMbit: 200, WidthBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chips != 4 || s.Ranks != 4 {
		t.Errorf("chips/ranks = %d/%d, want 4/4", s.Chips, s.Ranks)
	}
	if s.InstalledMbit() != 256 || s.TotalChips() != 16 {
		t.Errorf("installed %d Mbit from %d chips", s.InstalledMbit(), s.TotalChips())
	}
	if s.BusBits() != 64 {
		t.Errorf("bus = %d bits", s.BusBits())
	}
}

func TestComposeErrors(t *testing.T) {
	p := Catalog()[0]
	if _, err := Compose(p, Requirement{}); err == nil {
		t.Error("zero requirement must error")
	}
	bad := p
	bad.CapacityMbit = 0
	if _, err := Compose(bad, Requirement{CapacityMbit: 8, WidthBits: 64}); err == nil {
		t.Error("invalid part must error")
	}
}

func TestBestSystemPicksLeastWaste(t *testing.T) {
	// For 8 Mbit at 256 bits the 4-Mbit part gives 64 Mbit installed;
	// the 16-Mbit part would give 256 Mbit. Best must pick 64.
	s, err := BestSystem(Requirement{CapacityMbit: 8, WidthBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if s.InstalledMbit() != 64 || s.Part.Name != "4Mb-x16" {
		t.Errorf("best = %s with %d Mbit, want 4Mb-x16/64", s.Part.Name, s.InstalledMbit())
	}
	// For 60 Mbit at 16 bits, a single 64-Mbit chip ($15) beats
	// fifteen ranks of 4-Mbit chips ($27).
	s, err = BestSystem(Requirement{CapacityMbit: 60, WidthBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.InstalledMbit() != 64 || s.TotalChips() != 1 {
		t.Errorf("best for 60Mbit/x16 = %s x%d", s.Part.Name, s.TotalChips())
	}
}

func TestSystemAggregates(t *testing.T) {
	s, err := Compose(Catalog()[1], Requirement{CapacityMbit: 64, WidthBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s.SignalPins() != s.TotalChips()*36 {
		t.Error("pin accounting wrong")
	}
	if s.PriceUSD() != float64(s.TotalChips())*4 {
		t.Error("price accounting wrong")
	}
	// 64-bit bus at 100 MHz = 0.8 GB/s.
	if math.Abs(s.PeakBandwidthGBps()-0.8) > 1e-9 {
		t.Errorf("peak = %v", s.PeakBandwidthGBps())
	}
	if s.FillFrequencyHz() <= 0 {
		t.Error("fill frequency must be positive")
	}
}

func TestInterfacePowerScalesWithUtilization(t *testing.T) {
	e := tech.DefaultElectrical()
	s, _ := Compose(Catalog()[1], Requirement{CapacityMbit: 64, WidthBits: 64})
	full := s.InterfacePowerMW(e, 3.3, 1.0)
	half := s.InterfacePowerMW(e, 3.3, 0.5)
	if math.Abs(full/half-2) > 1e-9 {
		t.Errorf("power must be linear in utilization: %v vs %v", full, half)
	}
	if s.InterfacePowerMW(e, 3.3, -1) != 0 {
		t.Error("negative utilization clamps to 0")
	}
	if s.InterfacePowerMW(e, 3.3, 2) != full {
		t.Error("utilization clamps to 1")
	}
}

func TestSustainedFraction(t *testing.T) {
	p := Catalog()[1]
	if f := SustainedFraction(p, 1.0); math.Abs(f-1) > 1e-9 {
		t.Errorf("all-hit sustained fraction = %v, want 1", f)
	}
	lo := SustainedFraction(p, 0.0)
	hi := SustainedFraction(p, 0.9)
	if lo >= hi {
		t.Error("sustained fraction must grow with hit rate")
	}
	// PC100: all-miss = 10/(20+20+10) = 0.2.
	if math.Abs(lo-0.2) > 1e-9 {
		t.Errorf("all-miss fraction = %v, want 0.2", lo)
	}
	// Out-of-range hit rates clamp.
	if SustainedFraction(p, -3) != lo || SustainedFraction(p, 9) != 1 {
		t.Error("hit rate must clamp")
	}
}

// Property: a composed system always meets both requirement dimensions.
func TestComposeMeetsRequirementProperty(t *testing.T) {
	parts := Catalog()
	f := func(pi, cap8, w8 uint8) bool {
		p := parts[int(pi)%len(parts)]
		req := Requirement{
			CapacityMbit: int(cap8)%300 + 1,
			WidthBits:    1 << (w8 % 10), // 1..512
		}
		s, err := Compose(p, req)
		if err != nil {
			return false
		}
		return s.BusBits() >= req.WidthBits && s.InstalledMbit() >= req.CapacityMbit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: waste factor is always >= 1 for satisfiable requirements.
func TestWasteFactorProperty(t *testing.T) {
	f := func(cap8, w8 uint8) bool {
		req := Requirement{CapacityMbit: int(cap8)%200 + 1, WidthBits: 16 << (w8 % 6)}
		s, err := BestSystem(req)
		if err != nil {
			return false
		}
		return WasteFactor(s, req) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandbyPower(t *testing.T) {
	s, err := Compose(Catalog()[0], Requirement{CapacityMbit: 8, WidthBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	// 16 chips x 2.5 mW.
	if math.Abs(s.StandbyPowerMW()-40) > 1e-9 {
		t.Errorf("standby = %v mW, want 40", s.StandbyPowerMW())
	}
}

func TestSystemDeviceConfig(t *testing.T) {
	s, err := Compose(Catalog()[0], Requirement{CapacityMbit: 16, WidthBits: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.DeviceConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.DataBits != 128 {
		t.Errorf("bus = %d", cfg.DataBits)
	}
	// Total bits must equal installed capacity.
	if cfg.TotalBits() != int64(s.InstalledMbit())<<20 {
		t.Errorf("device holds %d bits, installed %d Mbit", cfg.TotalBits(), s.InstalledMbit())
	}
}

func TestSpeedGrade(t *testing.T) {
	base := Catalog()[1]
	fast, err := SpeedGrade(base, 133)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ClockMHz != 133 || math.Abs(fast.Timing.TCKns-1e3/133) > 1e-9 {
		t.Error("clock/period not updated")
	}
	if fast.PriceUSD <= base.PriceUSD {
		t.Error("faster bin must cost more")
	}
	if fast.PeakBandwidthGBps() <= base.PeakBandwidthGBps() {
		t.Error("faster bin must have more bandwidth")
	}
	slow, err := SpeedGrade(base, 66)
	if err != nil {
		t.Fatal(err)
	}
	if slow.PriceUSD >= base.PriceUSD || slow.PriceUSD < 0.5*base.PriceUSD {
		t.Errorf("slow bin price %.2f out of band", slow.PriceUSD)
	}
	if _, err := SpeedGrade(base, 0); err == nil {
		t.Error("zero clock must error")
	}
}
