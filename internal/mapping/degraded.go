package mapping

import (
	"fmt"
	"sort"
)

// Degraded wraps a Mapping with a set of offlined (bank, row) pages:
// the graceful-degradation surface of the reliability pipeline. When
// the repair ladder exhausts its spare rows, it offlines the page here
// instead of failing the run; addresses that mapped to an offlined page
// are redirected to a healthy alias page in the same (or, as a last
// resort, a neighbouring) bank. Capacity shrinks — two address ranges
// now share one physical page, the CLR-DRAM-style capacity/reliability
// trade — but every address keeps resolving, so the system keeps
// serving traffic.
//
// Degraded is not safe for concurrent use; like the rest of the
// controller state it belongs to the single simulation goroutine.
type Degraded struct {
	base Mapping
	off  map[[2]int][2]int // offlined (bank,row) -> alias (bank,row)
}

// NewDegraded wraps a base mapping with an (initially empty) offline
// set.
func NewDegraded(base Mapping) *Degraded {
	return &Degraded{base: base, off: map[[2]int][2]int{}}
}

// Map implements Mapping: the base translation followed by offline
// redirection. Chained offlines (an alias that was later offlined
// itself) are followed to a live page.
func (d *Degraded) Map(addrB int64) (int, int) {
	bank, row := d.base.Map(addrB)
	for i := 0; i <= len(d.off); i++ {
		alias, ok := d.off[[2]int{bank, row}]
		if !ok {
			return bank, row
		}
		bank, row = alias[0], alias[1]
	}
	return bank, row
}

// Geometry implements Mapping (the nominal, undegraded organization).
func (d *Degraded) Geometry() Geometry { return d.base.Geometry() }

// Name implements Mapping, passing the base name through so reports
// stay comparable between clean and degraded runs.
func (d *Degraded) Name() string { return d.base.Name() }

// IsOffline reports whether a page has been offlined.
func (d *Degraded) IsOffline(bank, row int) bool {
	_, ok := d.off[[2]int{bank, row}]
	return ok
}

// Offline removes one page from service and returns the alias page its
// addresses are redirected to. The alias is the nearest following live
// row of the same bank; if the whole bank is offline, the same row of
// the next bank with life left. It fails only when every page of the
// geometry is already offline — the point past which no graceful
// degradation is possible.
func (d *Degraded) Offline(bank, row int) (aliasBank, aliasRow int, err error) {
	g := d.base.Geometry()
	if bank < 0 || bank >= g.Banks || row < 0 || row >= g.RowsBank {
		return 0, 0, fmt.Errorf("mapping: offline page (%d,%d) outside geometry %+v", bank, row, g)
	}
	key := [2]int{bank, row}
	if _, ok := d.off[key]; ok {
		a := d.off[key]
		return a[0], a[1], nil // already offline; keep the existing alias
	}
	if len(d.off)+1 >= g.Banks*g.RowsBank {
		return 0, 0, fmt.Errorf("mapping: cannot offline (%d,%d): no live pages left", bank, row)
	}
	for b := 0; b < g.Banks; b++ {
		ab := (bank + b) % g.Banks
		for r := 1; r <= g.RowsBank; r++ {
			ar := (row + r) % g.RowsBank
			if ab == bank && ar == row {
				continue
			}
			if _, dead := d.off[[2]int{ab, ar}]; !dead {
				d.off[key] = [2]int{ab, ar}
				// Re-point existing aliases that led here, so chains
				// stay one hop deep for the common case.
				for k, a := range d.off {
					if a == key {
						d.off[k] = [2]int{ab, ar}
					}
				}
				return ab, ar, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("mapping: cannot offline (%d,%d): no live pages left", bank, row)
}

// OfflinedPages returns the number of pages removed from service.
func (d *Degraded) OfflinedPages() int { return len(d.off) }

// Offlined lists the offlined (bank, row) pages in deterministic order.
func (d *Degraded) Offlined() [][2]int {
	out := make([][2]int, 0, len(d.off))
	for k := range d.off {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// CapacityLossFraction returns the fraction of pages out of service.
func (d *Degraded) CapacityLossFraction() float64 {
	g := d.base.Geometry()
	total := g.Banks * g.RowsBank
	if total == 0 {
		return 0
	}
	return float64(len(d.off)) / float64(total)
}
