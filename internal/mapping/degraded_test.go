package mapping

import (
	"testing"
)

func degBase(t *testing.T) Mapping {
	t.Helper()
	m, err := NewLinear(Geometry{Banks: 2, RowsBank: 4, PageBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDegradedPassThrough(t *testing.T) {
	base := degBase(t)
	d := NewDegraded(base)
	if d.Name() != base.Name() {
		t.Errorf("name should pass through, got %q", d.Name())
	}
	if d.Geometry() != base.Geometry() {
		t.Error("geometry should pass through")
	}
	for addr := int64(0); addr < 512; addr += 64 {
		b0, r0 := base.Map(addr)
		b1, r1 := d.Map(addr)
		if b0 != b1 || r0 != r1 {
			t.Fatalf("addr %d: degraded (%d,%d) != base (%d,%d)", addr, b1, r1, b0, r0)
		}
	}
	if d.OfflinedPages() != 0 || d.CapacityLossFraction() != 0 {
		t.Error("fresh wrapper must report zero degradation")
	}
}

func TestDegradedOffline(t *testing.T) {
	d := NewDegraded(degBase(t))
	ab, ar, err := d.Offline(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ab != 0 || ar != 2 {
		t.Errorf("alias = (%d,%d), want next live row (0,2)", ab, ar)
	}
	if !d.IsOffline(0, 1) || d.IsOffline(0, 2) {
		t.Error("offline bookkeeping wrong")
	}
	// Addresses of the offlined page now resolve to the alias.
	var hit bool
	for addr := int64(0); addr < 8*64; addr += 64 {
		b, r := d.Map(addr)
		if b == 0 && r == 1 {
			t.Fatalf("addr %d still maps to the offlined page", addr)
		}
		if b == 0 && r == 2 {
			hit = true
		}
	}
	if !hit {
		t.Error("no address reached the alias page")
	}
	// Idempotent: offlining again returns the same alias.
	ab2, ar2, err := d.Offline(0, 1)
	if err != nil || ab2 != ab || ar2 != ar {
		t.Errorf("re-offline = (%d,%d,%v), want (%d,%d,nil)", ab2, ar2, err, ab, ar)
	}
	if d.OfflinedPages() != 1 {
		t.Errorf("OfflinedPages = %d", d.OfflinedPages())
	}
	if got := d.CapacityLossFraction(); got != 1.0/8 {
		t.Errorf("capacity loss = %g, want 1/8", got)
	}
}

func TestDegradedChainsAndExhaustion(t *testing.T) {
	d := NewDegraded(degBase(t))
	// Offline row 1, aliased to row 2; then offline row 2 itself — the
	// old alias must be re-pointed to a live page.
	if _, _, err := d.Offline(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Offline(0, 2); err != nil {
		t.Fatal(err)
	}
	b, r := d.Map(64) // addr of (0,1) under linear mapping
	if d.IsOffline(b, r) {
		t.Fatalf("chained alias (%d,%d) is itself offline", b, r)
	}
	// Offline everything except one page; the last must fail.
	pages := [][2]int{{0, 0}, {0, 3}, {1, 0}, {1, 1}, {1, 2}}
	for _, p := range pages {
		if _, _, err := d.Offline(p[0], p[1]); err != nil {
			t.Fatalf("offline %v: %v", p, err)
		}
	}
	if _, _, err := d.Offline(1, 3); err == nil {
		t.Error("offlining the last live page must fail")
	}
	// Every address still resolves to the one live page.
	for addr := int64(0); addr < 8*64; addr += 64 {
		b, r := d.Map(addr)
		if b != 1 || r != 3 {
			t.Fatalf("addr %d maps to (%d,%d), want the last live page (1,3)", addr, b, r)
		}
	}
	if got := len(d.Offlined()); got != 7 {
		t.Errorf("Offlined lists %d pages, want 7", got)
	}
}

func TestDegradedOfflineValidation(t *testing.T) {
	d := NewDegraded(degBase(t))
	if _, _, err := d.Offline(-1, 0); err == nil {
		t.Error("negative bank must be rejected")
	}
	if _, _, err := d.Offline(0, 99); err == nil {
		t.Error("row beyond geometry must be rejected")
	}
}
