package mapping

import (
	"testing"
	"testing/quick"
)

func geo() Geometry { return Geometry{Banks: 4, RowsBank: 1024, PageBytes: 256} }

func TestGeometryValidate(t *testing.T) {
	if geo().Validate() != nil {
		t.Error("valid geometry rejected")
	}
	for _, g := range []Geometry{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if g.Validate() == nil {
			t.Errorf("geometry %+v must fail", g)
		}
	}
	if geo().TotalBytes() != 4*1024*256 {
		t.Error("TotalBytes wrong")
	}
}

func TestLinearLayout(t *testing.T) {
	m, err := NewLinear(geo())
	if err != nil {
		t.Fatal(err)
	}
	// First page of bank 0.
	if b, r := m.Map(0); b != 0 || r != 0 {
		t.Errorf("addr 0 -> (%d,%d)", b, r)
	}
	// Still in page 0.
	if b, r := m.Map(255); b != 0 || r != 0 {
		t.Errorf("addr 255 -> (%d,%d)", b, r)
	}
	// Next page, same bank.
	if b, r := m.Map(256); b != 0 || r != 1 {
		t.Errorf("addr 256 -> (%d,%d)", b, r)
	}
	// One full bank later: bank 1.
	if b, r := m.Map(1024 * 256); b != 1 || r != 0 {
		t.Errorf("bank boundary -> (%d,%d)", b, r)
	}
	if m.Name() != "linear" || m.Geometry() != geo() {
		t.Error("metadata wrong")
	}
}

func TestBankInterleavedLayout(t *testing.T) {
	m, err := NewBankInterleaved(geo())
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive pages rotate banks.
	for p := 0; p < 8; p++ {
		b, r := m.Map(int64(p * 256))
		if b != p%4 || r != p/4 {
			t.Errorf("page %d -> (%d,%d)", p, b, r)
		}
	}
	if m.Name() != "bank-interleaved" {
		t.Error("name wrong")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := Geometry{}
	if _, err := NewLinear(bad); err == nil {
		t.Error("linear must reject")
	}
	if _, err := NewBankInterleaved(bad); err == nil {
		t.Error("interleaved must reject")
	}
	if _, err := NewTiled2D(bad, 720, 16); err == nil {
		t.Error("tiled must reject")
	}
}

func TestTiled2DConstruction(t *testing.T) {
	g := geo() // page 256 B
	if _, err := NewTiled2D(g, 720, 7); err == nil {
		t.Error("tile width must divide page")
	}
	if _, err := NewTiled2D(g, 720, 32); err == nil {
		t.Error("tile width must divide pitch (720 % 32 != 0)")
	}
	if _, err := NewTiled2D(g, 0, 16); err == nil {
		t.Error("zero pitch must fail")
	}
	m, err := NewTiled2D(g, 720, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.TileH() != 16 {
		t.Errorf("tile height = %d, want 256/16 = 16", m.TileH())
	}
	if m.Name() != "tiled-2d" {
		t.Error("name wrong")
	}
}

func TestTiled2DBlockLocality(t *testing.T) {
	// A 16x16-byte block aligned to a tile touches exactly one
	// (bank,row): the tiled mapping's whole point.
	g := geo()
	m, err := NewTiled2D(g, 720*2, 16) // pitch 1440, tiles 16 B x 16 lines
	if err != nil {
		t.Fatal(err)
	}
	wantB, wantR := m.Map(0)
	for y := int64(0); y < 16; y++ {
		for x := int64(0); x < 16; x += 8 {
			b, r := m.Map(y*1440 + x)
			if b != wantB || r != wantR {
				t.Fatalf("block not page-local at (%d,%d): (%d,%d) vs (%d,%d)", x, y, b, r, wantB, wantR)
			}
		}
	}
	// Vertically adjacent tiles land in different banks (checkerboard).
	b2, _ := m.Map(16 * 1440)
	if b2 == wantB {
		t.Error("vertical neighbour tile must use another bank")
	}
	// Horizontally adjacent tiles too.
	b3, _ := m.Map(16)
	if b3 == wantB {
		t.Error("horizontal neighbour tile must use another bank")
	}
}

// Property: every mapping returns in-range banks and rows for any
// address, including negatives and far beyond capacity.
func TestMapRangeProperty(t *testing.T) {
	g := geo()
	lin, _ := NewLinear(g)
	il, _ := NewBankInterleaved(g)
	tl, _ := NewTiled2D(g, 1440, 16)
	maps := []Mapping{lin, il, tl}
	f := func(addr int64) bool {
		for _, m := range maps {
			b, r := m.Map(addr)
			if b < 0 || b >= g.Banks || r < 0 || r >= g.RowsBank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: within one page, linear and interleaved mappings are
// constant (no page ever straddles banks or rows).
func TestPageStabilityProperty(t *testing.T) {
	g := geo()
	lin, _ := NewLinear(g)
	il, _ := NewBankInterleaved(g)
	f := func(pageRaw uint16, off uint8) bool {
		page := int64(pageRaw) % (int64(g.Banks) * int64(g.RowsBank))
		base := page * int64(g.PageBytes)
		o := int64(off) % int64(g.PageBytes)
		for _, m := range []Mapping{lin, il} {
			b0, r0 := m.Map(base)
			b1, r1 := m.Map(base + o)
			if b0 != b1 || r0 != r1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bank-interleaved mapping spreads consecutive pages evenly
// over all banks.
func TestInterleaveBalanceProperty(t *testing.T) {
	g := geo()
	il, _ := NewBankInterleaved(g)
	counts := make([]int, g.Banks)
	for p := 0; p < 64; p++ {
		b, _ := il.Map(int64(p) * int64(g.PageBytes))
		counts[b]++
	}
	for i, c := range counts {
		if c != 16 {
			t.Errorf("bank %d got %d of 64 pages", i, c)
		}
	}
}

func TestBankXORBasics(t *testing.T) {
	m, err := NewBankXOR(geo())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "bank-xor" || m.Geometry() != geo() {
		t.Error("metadata wrong")
	}
	if _, err := NewBankXOR(Geometry{}); err == nil {
		t.Error("bad geometry must fail")
	}
	// In range for arbitrary addresses.
	for _, a := range []int64{-5000, 0, 255, 256, 1 << 20, 1 << 40} {
		b, r := m.Map(a)
		if b < 0 || b >= 4 || r < 0 || r >= 1024 {
			t.Fatalf("addr %d -> (%d,%d) out of range", a, b, r)
		}
	}
}

func TestBankXORBreaksLockstep(t *testing.T) {
	// Stride of banks*page bytes: plain interleaving puts every access
	// in the SAME bank; the XOR hash spreads them.
	g := geo()
	il, _ := NewBankInterleaved(g)
	xr, _ := NewBankXOR(g)
	stride := int64(g.Banks * g.PageBytes)
	ilBanks := map[int]bool{}
	xrBanks := map[int]bool{}
	for i := int64(0); i < 64; i++ {
		b, _ := il.Map(i * stride)
		ilBanks[b] = true
		b2, _ := xr.Map(i * stride)
		xrBanks[b2] = true
	}
	if len(ilBanks) != 1 {
		t.Fatalf("interleaved lockstep expected 1 bank, got %d", len(ilBanks))
	}
	if len(xrBanks) < 2 {
		t.Fatalf("xor hash must spread the lockstep stride, got %d banks", len(xrBanks))
	}
}
