// Package mapping implements data-to-memory address mappings — the
// "optimizing the mapping of the data into memory such that the
// sustainable memory bandwidth approaches the peak bandwidth" problem of
// paper §3. A Mapping turns a client byte address into a (bank, row)
// pair of the underlying DRAM organization; the page-hit and
// bank-overlap behaviour of a workload is entirely determined by this
// choice.
package mapping

import (
	"fmt"
)

// Geometry is the organization a mapping targets.
type Geometry struct {
	Banks     int
	RowsBank  int // rows per bank
	PageBytes int // page length in bytes
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if g.Banks < 1 || g.RowsBank < 1 || g.PageBytes < 1 {
		return fmt.Errorf("mapping: invalid geometry %+v", g)
	}
	return nil
}

// TotalBytes returns the capacity covered by the geometry.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Banks) * int64(g.RowsBank) * int64(g.PageBytes)
}

// Mapping translates byte addresses to physical (bank, row) locations.
type Mapping interface {
	// Map returns the bank and row of the byte address. Addresses wrap
	// modulo the geometry's capacity.
	Map(addrB int64) (bank, row int)
	// Geometry returns the target organization.
	Geometry() Geometry
	// Name identifies the mapping in reports.
	Name() string
}

// Linear maps consecutive addresses into consecutive pages of one bank,
// filling a whole bank before moving to the next — the naive mapping
// where streaming works but independent regions collide in one bank.
type Linear struct{ G Geometry }

// NewLinear builds a linear mapping.
func NewLinear(g Geometry) (*Linear, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Linear{G: g}, nil
}

// Map implements Mapping.
func (m *Linear) Map(addrB int64) (int, int) {
	a := wrap(addrB, m.G)
	page := a / int64(m.G.PageBytes)
	bank := int(page / int64(m.G.RowsBank))
	row := int(page % int64(m.G.RowsBank))
	return bank, row
}

// Geometry implements Mapping.
func (m *Linear) Geometry() Geometry { return m.G }

// Name implements Mapping.
func (m *Linear) Name() string { return "linear" }

// BankInterleaved maps consecutive pages to consecutive banks, so a
// stream rotates through all banks and a page miss in one bank can hide
// behind transfers in another — the classic interleaving of paper §4.
type BankInterleaved struct{ G Geometry }

// NewBankInterleaved builds a page-interleaved mapping.
func NewBankInterleaved(g Geometry) (*BankInterleaved, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &BankInterleaved{G: g}, nil
}

// Map implements Mapping.
func (m *BankInterleaved) Map(addrB int64) (int, int) {
	a := wrap(addrB, m.G)
	page := a / int64(m.G.PageBytes)
	bank := int(page % int64(m.G.Banks))
	row := int(page / int64(m.G.Banks))
	return bank, row
}

// Geometry implements Mapping.
func (m *BankInterleaved) Geometry() Geometry { return m.G }

// Name implements Mapping.
func (m *BankInterleaved) Name() string { return "bank-interleaved" }

// Tiled2D maps a raster frame as rectangular tiles, one tile per page,
// with a checkerboard bank assignment: a 2-D block fetch (motion
// compensation) then touches few pages, and vertically adjacent tiles
// sit in different banks. This is the application-specific mapping the
// paper's §3 envisions for video.
type Tiled2D struct {
	G Geometry
	// PitchB is the frame line pitch in bytes.
	PitchB int64
	// TileW is the tile width in bytes; TileH = PageBytes / TileW lines.
	TileW int
}

// NewTiled2D builds a tiled frame mapping. TileW must divide PageBytes.
func NewTiled2D(g Geometry, pitchB int64, tileW int) (*Tiled2D, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if pitchB < 1 || tileW < 1 {
		return nil, fmt.Errorf("mapping: pitch %d and tile width %d must be positive", pitchB, tileW)
	}
	if g.PageBytes%tileW != 0 {
		return nil, fmt.Errorf("mapping: tile width %d does not divide page %d", tileW, g.PageBytes)
	}
	if pitchB%int64(tileW) != 0 {
		return nil, fmt.Errorf("mapping: tile width %d does not divide pitch %d", tileW, pitchB)
	}
	return &Tiled2D{G: g, PitchB: pitchB, TileW: tileW}, nil
}

// TileH returns the tile height in lines.
func (m *Tiled2D) TileH() int { return m.G.PageBytes / m.TileW }

// Map implements Mapping.
func (m *Tiled2D) Map(addrB int64) (int, int) {
	a := addrB
	if a < 0 {
		a = 0
	}
	y := a / m.PitchB
	x := a % m.PitchB
	tilesPerRow := m.PitchB / int64(m.TileW)
	tx := x / int64(m.TileW)
	ty := y / int64(m.TileH())
	// Checkerboard: neighbouring tiles in x and y land in different
	// banks.
	bank := int((tx + ty) % int64(m.G.Banks))
	tileIdx := ty*tilesPerRow + tx
	row := int(tileIdx % int64(m.G.RowsBank))
	return bank, row
}

// Geometry implements Mapping.
func (m *Tiled2D) Geometry() Geometry { return m.G }

// Name implements Mapping.
func (m *Tiled2D) Name() string { return "tiled-2d" }

func wrap(addrB int64, g Geometry) int64 {
	if addrB < 0 {
		addrB = -addrB
	}
	return addrB % g.TotalBytes()
}

// BankXOR maps consecutive pages to banks through a row-XOR permutation
// (bank = (page ^ row) mod banks): strided patterns whose pages land in
// lockstep on one bank under plain interleaving get spread instead —
// the classic conflict-avoiding hash.
type BankXOR struct{ G Geometry }

// NewBankXOR builds the permutation-based mapping.
func NewBankXOR(g Geometry) (*BankXOR, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &BankXOR{G: g}, nil
}

// Map implements Mapping.
func (m *BankXOR) Map(addrB int64) (int, int) {
	a := wrap(addrB, m.G)
	page := a / int64(m.G.PageBytes)
	row := int(page / int64(m.G.Banks))
	row = row % m.G.RowsBank
	bank := int((page ^ int64(row)) % int64(m.G.Banks))
	if bank < 0 {
		bank = -bank
	}
	return bank, row
}

// Geometry implements Mapping.
func (m *BankXOR) Geometry() Geometry { return m.G }

// Name implements Mapping.
func (m *BankXOR) Name() string { return "bank-xor" }
