package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// candidateKey renders every decision-relevant field of a candidate so
// two runs can be compared byte-for-byte.
func candidateKey(c Candidate) string {
	return fmt.Sprintf("%d|%dx%dMbit/%db/%dbk/%dpg/%dblk/%v|%.9g|%.9g|%.9g|%.9g|%.9g|%t",
		c.Seq, c.Macros, c.Spec.CapacityMbit, c.Spec.InterfaceBits, c.Spec.Banks,
		c.Spec.PageBits, c.Spec.BlockBits, c.Spec.Redundancy,
		c.AreaMm2, c.PowerMW, c.SustainedGBps, c.CostUSD, c.DieYield, c.Feasible)
}

func frontKeys(t *testing.T, workers int) string {
	t.Helper()
	ch, err := ExploreContext(context.Background(), req(), WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	front := NewFrontier()
	for c := range ch {
		front.Add(c)
	}
	var sb strings.Builder
	for _, c := range front.Candidates() {
		sb.WriteString(candidateKey(c))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestExploreContextDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := frontKeys(t, 1)
	if serial == "" {
		t.Fatal("empty Pareto front from serial run")
	}
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if w < 2 {
			continue
		}
		if parallel := frontKeys(t, w); parallel != serial {
			t.Errorf("front with %d workers differs from serial:\nserial:\n%s\nworkers=%d:\n%s",
				w, serial, w, parallel)
		}
	}
}

func TestExploreContextMatchesExplore(t *testing.T) {
	want, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ExploreContext(context.Background(), req(), WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]string{}
	for c := range ch {
		got[c.Seq] = candidateKey(c)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d candidates, Explore returned %d", len(got), len(want))
	}
	for _, c := range want {
		if got[c.Seq] != candidateKey(c) {
			t.Fatalf("candidate Seq=%d differs:\n%s\nvs\n%s", c.Seq, got[c.Seq], candidateKey(c))
		}
	}
}

func TestRecommendContextDeterministicAcrossWorkerCounts(t *testing.T) {
	// The quickstart requirements from the README.
	r := Requirements{CapacityMbit: 16, BandwidthGBps: 2.5, HitRate: 0.8, DefectsPerCm2: 0.8}
	serial, err := RecommendContext(context.Background(), r, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RecommendContext(context.Background(), r, WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d recommendations, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Role != parallel[i].Role || candidateKey(serial[i].Candidate) != candidateKey(parallel[i].Candidate) {
			t.Errorf("recommendation %d differs: %s %s vs %s %s", i,
				serial[i].Role, candidateKey(serial[i].Candidate),
				parallel[i].Role, candidateKey(parallel[i].Candidate))
		}
	}
}

func TestExploreContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := ExploreContext(ctx, req(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// Consume a few candidates, then cancel; the stream must close.
	for i := 0; i < 3; i++ {
		if _, ok := <-ch; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed as required
			}
		case <-deadline:
			t.Fatal("stream not closed within 5s of cancellation")
		}
	}
}

func TestExploreContextStatsAndHooks(t *testing.T) {
	var observed int64
	var final ExploreStats
	gotFinal := false
	ch, err := ExploreContext(context.Background(), req(),
		WithWorkers(3),
		WithProgressEvery(64),
		WithObserver(func(Candidate) { atomic.AddInt64(&observed, 1) }),
		WithProgress(func(s ExploreStats) {
			if s.Done {
				final = s
				gotFinal = true
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	streamed := int64(0)
	for range ch {
		streamed++
	}
	if !gotFinal {
		t.Fatal("no final progress snapshot")
	}
	if final.Built != streamed {
		t.Errorf("stats.Built = %d, streamed %d", final.Built, streamed)
	}
	if observed != streamed {
		t.Errorf("observer saw %d candidates, streamed %d", observed, streamed)
	}
	if final.Enumerated < final.Built {
		t.Errorf("enumerated %d < built %d", final.Enumerated, final.Built)
	}
	if final.Workers != 3 || len(final.WorkerBusy) != 3 {
		t.Errorf("workers = %d, busy slots = %d, want 3", final.Workers, len(final.WorkerBusy))
	}
	if final.WallTime <= 0 || final.PointsPerSec() <= 0 {
		t.Errorf("degenerate wall time %v", final.WallTime)
	}
	if final.FrontSize <= 0 {
		t.Error("empty front on feasible requirements")
	}
	if final.Pruned == 0 {
		t.Error("incremental front pruned nothing over the full space")
	}
	if u := final.Utilization(); len(u) != 3 {
		t.Errorf("utilization slots = %d, want 3", len(u))
	}
}

func TestExploreContextOptionValidation(t *testing.T) {
	if _, err := ExploreContext(context.Background(), req(), WithWorkers(0)); err == nil {
		t.Error("worker count 0 accepted")
	}
	if _, err := ExploreContext(context.Background(), req(), WithProgressEvery(0)); err == nil {
		t.Error("progress interval 0 accepted")
	}
	if _, err := ExploreContext(context.Background(), Requirements{}); err == nil {
		t.Error("invalid requirements accepted")
	}
}

func TestSweepEnumeratesCanonically(t *testing.T) {
	ch, err := Sweep(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for p := range ch {
		if p.Seq != n {
			t.Fatalf("point %d carries Seq %d", n, p.Seq)
		}
		n++
	}
	// 2 organizations × 6 widths × 4 banks × 3 pages × 2 blocks × 4
	// redundancy levels × 2 ECC schemes × 1 process.
	if want := 2 * 6 * 4 * 3 * 2 * 4 * 2; n != want {
		t.Fatalf("sweep enumerated %d points, want %d", n, want)
	}
}

func TestFrontierMatchesBatchPareto(t *testing.T) {
	cands, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	batch := Pareto(Feasible(cands))
	front := NewFrontier()
	for _, c := range cands {
		front.Add(c)
	}
	inc := front.Candidates()
	if len(inc) != len(batch) {
		t.Fatalf("incremental front has %d members, batch Pareto %d", len(inc), len(batch))
	}
	// Same membership (batch is sorted by area only; compare as sets).
	seen := map[int]bool{}
	for _, c := range inc {
		seen[c.Seq] = true
	}
	for _, c := range batch {
		if !seen[c.Seq] {
			t.Errorf("batch front member Seq=%d missing from incremental front", c.Seq)
		}
	}
	if front.Pruned() != int64(len(Feasible(cands))-len(inc)) {
		t.Errorf("pruned %d, want %d", front.Pruned(), len(Feasible(cands))-len(inc))
	}
}
