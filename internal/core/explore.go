// Parallel design-space exploration engine. The paper's study spans
// interface width × banks × page length × block size × redundancy ×
// process (§3); Sweep enumerates that space into a channel of Points,
// and ExploreContext evaluates them on a worker pool, streaming every
// buildable Candidate to the caller while an incremental Pareto front
// prunes dominated designs as results arrive. Explore/Recommend in
// core.go are thin compatibility wrappers over this engine.

package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/power"
	"edram/internal/reliab"
	"edram/internal/tech"
)

// Point is one un-evaluated coordinate of the §3 design space: a macro
// spec plus the number of identical macros the capacity is split
// across. Seq is the position in canonical enumeration order, carried
// through evaluation so results can be re-ordered deterministically no
// matter which worker produced them.
type Point struct {
	Seq    int
	Spec   edram.Spec
	Macros int
}

// sweepBatch is the number of points handed to a worker per channel
// operation — batching amortizes the synchronization cost, which would
// otherwise rival the few-µs evaluation time of one candidate.
const sweepBatch = 32

// The sweep's free dimensions (§3). sweepBatchesOver enumerates the
// cross product of these tables; sweepCount sizes result buffers from
// the same tables so the two cannot drift apart.
var (
	sweepMacroOrgs = []int{1, 2}
	sweepPageMults = []int{4, 8, 16}
	sweepBlockBits = []int{geom.Block256K, geom.Block1M}
	sweepRedLevels = []edram.RedundancyLevel{edram.RedundancyNone, edram.RedundancyLow, edram.RedundancyStd, edram.RedundancyHigh}
	sweepECCModes  = []reliab.ECC{reliab.ECCNone, reliab.ECCSECDED}
)

// Interface width and bank count are geometric ranges, not tables.
const (
	sweepIfaceMin = 16
	sweepIfaceMax = 512
	sweepBanksMax = 8
)

// sweepCount returns the exact number of points Sweep enumerates for
// the requirements over the resolved process slice — every Point.Seq
// lies in [0, sweepCount).
func sweepCount(req Requirements, procs []tech.Process) int {
	ifaces, banks := 0, 0
	for v := sweepIfaceMin; v <= sweepIfaceMax; v *= 2 {
		ifaces++
	}
	for v := 1; v <= sweepBanksMax; v *= 2 {
		banks++
	}
	per := ifaces * banks * len(sweepPageMults) * len(sweepBlockBits) *
		len(sweepRedLevels) * len(sweepECCModes) * len(procs)
	n := 0
	for _, m := range sweepMacroOrgs {
		if m > 0 && req.CapacityMbit%m == 0 {
			n += per
		}
	}
	return n
}

// resolveProcesses returns the explore's process slice: the request's,
// or the default DRAM-based process. ExploreContext passes the same
// slice to the sweep and to the memo table so process identity resolves
// by pointer on the hot path.
func resolveProcesses(req Requirements) []tech.Process {
	if len(req.Processes) > 0 {
		return req.Processes
	}
	return []tech.Process{tech.Siemens024()}
}

// SweepCount is the total number of points Sweep enumerates for the
// requirements — the exclusive upper bound of every Point.Seq. It is
// the denominator of explore progress reporting and the range limit of
// checkpointed (range-partitioned) explores.
func SweepCount(req Requirements) int {
	return sweepCount(req, resolveProcesses(req))
}

// sweepBatches is the batched form of Sweep the worker pool consumes.
func sweepBatches(ctx context.Context, req Requirements) (<-chan *[]Point, error) {
	return sweepBatchesOver(ctx, req, resolveProcesses(req), 0, maxSeq, nil)
}

// maxSeq is the open upper bound of an unrestricted sweep range.
const maxSeq = int(^uint(0) >> 1)

// putPointBatch returns a consumed sweep batch to the pool.
func putPointBatch(bp *[]Point) { pointBatchPool.Put(bp) }

// outcome pairs one evaluated point with its buildability; workers
// forward them to the collector at batch granularity.
type outcome struct {
	cand Candidate
	ok   bool
}

// outcomePool recycles the per-batch outcome slices the same way
// pointBatchPool recycles sweep batches.
var outcomePool = sync.Pool{
	New: func() any { s := make([]outcome, 0, sweepBatch); return &s },
}

// pointBatchPool recycles sweep batches between the producer and the
// consumers (workers return a batch once its points are evaluated), so
// the steady-state sweep allocates no per-batch slices. Pooled content
// is always truncated and rewritten before use — nothing carries over.
var pointBatchPool = sync.Pool{
	New: func() any { s := make([]Point, 0, sweepBatch); return &s },
}

// sweepBatchesOver enumerates over an explicit process slice, emitting
// only points whose Seq lies in [from, to) — Seq numbering stays
// absolute, so a ranged sweep is exactly the corresponding slice of the
// full enumeration (the property range-partitioned checkpoints rely
// on). A non-nil plan lets the enumerator jump over whole skipped
// subspaces by advancing the Seq counter analytically — the emitted
// stream is the unpruned stream minus points the plan proved infeasible
// (see prune.go), with numbering untouched. Receivers own each batch
// and should return it via putPointBatch when done.
func sweepBatchesOver(ctx context.Context, req Requirements, procs []tech.Process, from, to int, plan *prunePlan) (<-chan *[]Point, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	out := make(chan *[]Point, 8)
	go func() {
		defer close(out)
		seq := 0
		bp := pointBatchPool.Get().(*[]Point)
		// bp is swapped for a fresh slice the moment it is sent, so the
		// one held at exit was never handed out and can be recycled.
		defer func() { pointBatchPool.Put(bp) }()
		batch := (*bp)[:0]
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			*bp = batch
			select {
			case out <- bp:
				bp = pointBatchPool.Get().(*[]Point)
				batch = (*bp)[:0]
				return true
			case <-ctx.Done():
				return false
			}
		}
		oi := -1
		for _, macros := range sweepMacroOrgs {
			if req.CapacityMbit%macros != 0 {
				continue
			}
			oi++
			if plan != nil && plan.skipOrg[oi] {
				seq += plan.perOrg
				if seq >= to {
					flush()
					return
				}
				continue
			}
			ii := -1
			for iface := sweepIfaceMin; iface <= sweepIfaceMax; iface *= 2 {
				ii++
				if plan != nil && plan.skipIface[oi][ii] {
					seq += plan.perIface
					if seq >= to {
						flush()
						return
					}
					continue
				}
				for banks := 1; banks <= sweepBanksMax; banks *= 2 {
					for _, pageMult := range sweepPageMults {
						for bi, block := range sweepBlockBits {
							if plan != nil && plan.skipBlock[oi][ii][bi] {
								seq += plan.perRun
								if seq >= to {
									flush()
									return
								}
								continue
							}
							for _, red := range sweepRedLevels {
								for _, ecc := range sweepECCModes {
									for pi := range procs {
										if seq >= to {
											flush()
											return
										}
										if seq >= from {
											batch = append(batch, Point{
												Seq:    seq,
												Macros: macros,
												Spec: edram.Spec{
													CapacityMbit:  req.CapacityMbit / macros,
													InterfaceBits: iface,
													Banks:         banks,
													PageBits:      iface * pageMult,
													BlockBits:     block,
													Redundancy:    red,
													ECC:           ecc,
													Process:       &procs[pi],
												},
											})
											if len(batch) == sweepBatch && !flush() {
												return
											}
										}
										seq++
									}
								}
							}
						}
					}
				}
			}
		}
		flush()
	}()
	return out, nil
}

// Sweep enumerates the design space for the requirements into a
// channel: interface widths 16..512, bank counts 1..8, page lengths
// (4x..16x interface), both building blocks, all redundancy levels,
// the no-ECC and SEC-DED word protections and every requested process,
// for 1- and 2-macro organizations. The
// channel is closed when the space is exhausted or ctx is cancelled.
func Sweep(ctx context.Context, req Requirements) (<-chan Point, error) {
	batches, err := sweepBatches(ctx, req)
	if err != nil {
		return nil, err
	}
	out := make(chan Point, sweepBatch)
	go func() {
		defer close(out)
		for bp := range batches {
			for _, p := range *bp {
				select {
				case out <- p:
				case <-ctx.Done():
					return
				}
			}
			putPointBatch(bp)
		}
	}()
	return out, nil
}

// ExploreStats is a snapshot of the engine's progress counters,
// delivered through WithProgress (periodically and once more when the
// run finishes, with Done set).
type ExploreStats struct {
	// Enumerated counts design points handed to workers so far; Built
	// counts the subset that produced a buildable macro; Infeasible
	// counts built candidates violating at least one requirement.
	Enumerated int64
	Built      int64
	Infeasible int64
	// Pruned counts feasible candidates discarded by the incremental
	// Pareto front (dominated on arrival, or evicted by a later
	// arrival); FrontSize is the current front population.
	Pruned    int64
	FrontSize int
	// Skipped counts points a constraint-pruned enumeration never
	// handed to workers (whole subspaces proven infeasible before the
	// sweep — see prune.go); SkippedBuildable is the subset that would
	// have produced a buildable macro, every one of them infeasible.
	// Both stay zero without WithPruning. Enumerated/Built/Infeasible
	// keep their exact semantics for enumerated points; use the
	// Total* accessors for counts comparable to an unpruned run.
	Skipped          int64
	SkippedBuildable int64
	// Workers is the pool size; WallTime the elapsed time since the
	// engine started; WorkerBusy the per-worker cumulative evaluation
	// time (populated on the final, Done snapshot).
	Workers    int
	WallTime   time.Duration
	WorkerBusy []time.Duration
	// Done is true on the final snapshot after the sweep is exhausted
	// (it stays false when the run was cancelled mid-sweep).
	Done bool
}

// TotalPoints is the number of design points the run covered —
// enumerated plus analytically skipped — matching the Enumerated count
// of an unpruned run over the same range.
func (s ExploreStats) TotalPoints() int64 { return s.Enumerated + s.Skipped }

// TotalBuilt is the buildable-point count including skipped subspaces,
// matching the Built count of an unpruned run over the same range.
func (s ExploreStats) TotalBuilt() int64 { return s.Built + s.SkippedBuildable }

// TotalInfeasible is the infeasible-point count including skipped
// subspaces (every skipped buildable point is infeasible — that is
// what justified skipping it), matching an unpruned run's Infeasible.
func (s ExploreStats) TotalInfeasible() int64 { return s.Infeasible + s.SkippedBuildable }

// PointsPerSec is the evaluation throughput of the run so far.
func (s ExploreStats) PointsPerSec() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.Enumerated) / s.WallTime.Seconds()
}

// Utilization returns each worker's busy fraction of the wall time
// (empty until the final snapshot carries WorkerBusy).
func (s ExploreStats) Utilization() []float64 {
	if s.WallTime <= 0 || len(s.WorkerBusy) == 0 {
		return nil
	}
	out := make([]float64, len(s.WorkerBusy))
	for i, b := range s.WorkerBusy {
		out[i] = b.Seconds() / s.WallTime.Seconds()
	}
	return out
}

type exploreConfig struct {
	workers       int
	progress      func(ExploreStats)
	progressEvery int
	observer      func(Candidate)
	seqFrom       int
	seqTo         int
	pruned        bool
}

// ExploreOption configures ExploreContext / RecommendContext.
type ExploreOption func(*exploreConfig)

// WithWorkers sets the evaluation pool size (default
// runtime.GOMAXPROCS(0)). n < 1 makes ExploreContext fail.
func WithWorkers(n int) ExploreOption {
	return func(c *exploreConfig) { c.workers = n }
}

// WithProgress registers a callback invoked (from the engine's collector
// goroutine, serialized) every progress interval and once more when the
// run completes.
func WithProgress(fn func(ExploreStats)) ExploreOption {
	return func(c *exploreConfig) { c.progress = fn }
}

// WithProgressEvery sets how many enumerated points separate two
// progress callbacks (default 512).
func WithProgressEvery(n int) ExploreOption {
	return func(c *exploreConfig) { c.progressEvery = n }
}

// WithObserver registers a callback invoked (serialized, in arrival
// order) for every built candidate before it is sent on the result
// channel — a tap for logging or incremental accounting that does not
// consume the stream.
func WithObserver(fn func(Candidate)) ExploreOption {
	return func(c *exploreConfig) { c.observer = fn }
}

// WithSeqRange restricts the exploration to points whose canonical
// sequence number lies in [from, to). Seq numbering stays absolute —
// the ranged run evaluates exactly the corresponding slice of the full
// enumeration, so a union of disjoint ranges covering [0, SweepCount)
// reproduces the unrestricted run result-for-result. This is the
// primitive behind resumable range-partitioned explore checkpoints and
// subspace sharding. from < 0 or to <= 0 select the open bound.
func WithSeqRange(from, to int) ExploreOption {
	return func(c *exploreConfig) {
		if from < 0 {
			from = 0
		}
		if to <= 0 {
			to = maxSeq
		}
		c.seqFrom, c.seqTo = from, to
	}
}

// WithPruning enables constraint-pruned enumeration: subspaces whose
// buildable points are all provably infeasible under the requirements
// are skipped analytically instead of evaluated (see prune.go). The
// candidate stream is identical to an unpruned run's; ExploreStats
// accounts the skipped points in the Skipped/SkippedBuildable counters
// so the Total* accessors still match the unpruned totals. Off by
// default: Explore()'s all-buildable-candidates contract and
// RecommendContext's nearest-miss diagnostics want the full stream.
func WithPruning() ExploreOption {
	return func(c *exploreConfig) { c.pruned = true }
}

// ExploreContext enumerates and evaluates the design space on a worker
// pool, streaming every buildable candidate (feasible or not) on the
// returned channel. The channel is closed when the sweep is exhausted
// or ctx is cancelled; per-candidate order is non-deterministic across
// workers, but Candidate.Seq restores canonical enumeration order.
// The error return covers invalid requirements or options only.
func ExploreContext(ctx context.Context, req Requirements, opts ...ExploreOption) (<-chan Candidate, error) {
	cfg := exploreConfig{workers: runtime.GOMAXPROCS(0), progressEvery: 512, seqTo: maxSeq}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		return nil, fmt.Errorf("core: worker count %d < 1", cfg.workers)
	}
	if cfg.progressEvery < 1 {
		return nil, fmt.Errorf("core: progress interval %d < 1", cfg.progressEvery)
	}
	if cfg.seqFrom >= cfg.seqTo {
		return nil, fmt.Errorf("core: empty seq range [%d, %d)", cfg.seqFrom, cfg.seqTo)
	}
	procs := resolveProcesses(req)
	var plan *prunePlan
	if cfg.pruned {
		plan = newPrunePlan(req, procs)
	}
	batches, err := sweepBatchesOver(ctx, req, procs, cfg.seqFrom, cfg.seqTo, plan)
	if err != nil {
		return nil, err
	}
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	memo := newEvalMemo(req, procs)
	start := time.Now() //nolint:edramvet/determinism // feeds ExploreStats.WallTime only, never results

	// Workers: evaluate batches of points, forwarding outcomes
	// (including unbuildable corners, so the collector can count
	// enumeration) to the collector at batch granularity — per-point
	// channel traffic would rival the evaluation cost itself. Both the
	// point batches and the outcome slices are pooled: the consumer
	// returns each slice once it has copied the contents out.
	results := make(chan *[]outcome, cfg.workers*2)
	busy := make([]time.Duration, cfg.workers)
	var wg sync.WaitGroup
	wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go func(w int) {
			defer wg.Done()
			var acc time.Duration
			var arena macroArena
			defer func() { busy[w] = acc }()
			for bp := range batches {
				t0 := time.Now() //nolint:edramvet/determinism // feeds ExploreStats.WorkerBusy only, never results
				op := outcomePool.Get().(*[]outcome)
				outs := (*op)[:len(*bp)]
				for i := range *bp {
					pt := &(*bp)[i]
					o := &outs[i]
					o.ok = memo.evaluateInto(&o.cand, pt, e, ce, &arena)
					o.cand.Seq = pt.Seq
				}
				putPointBatch(bp)
				*op = outs
				acc += time.Since(t0)
				select {
				case results <- op:
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: single goroutine owning the stats and the incremental
	// front, so observer/progress callbacks need no locking.
	out := make(chan Candidate, 4*sweepBatch)
	go func() {
		defer close(out)
		front := NewFrontier()
		stats := ExploreStats{Workers: cfg.workers}
		if plan != nil {
			hi := cfg.seqTo
			if hi > plan.total {
				hi = plan.total
			}
			if cfg.seqFrom < hi {
				stats.Skipped, stats.SkippedBuildable = plan.tally(cfg.seqFrom, hi)
			}
		}
		snapshot := func(done bool) ExploreStats {
			s := stats
			s.WallTime = time.Since(start)
			s.FrontSize = front.Size()
			s.Pruned = front.Pruned()
			s.Done = done
			if done {
				s.WorkerBusy = append([]time.Duration(nil), busy...)
			}
			return s
		}
		lastProgress := int64(0)
		for op := range results {
			for i := range *op {
				o := &(*op)[i]
				stats.Enumerated++
				if !o.ok { // unbuildable corner of the space
					continue
				}
				stats.Built++
				if !o.cand.Feasible {
					stats.Infeasible++
				}
				front.Add(o.cand)
				if cfg.observer != nil {
					cfg.observer(o.cand)
				}
				select {
				case out <- o.cand:
				case <-ctx.Done():
					return
				}
			}
			outcomePool.Put(op)
			if cfg.progress != nil && stats.Enumerated-lastProgress >= int64(cfg.progressEvery) {
				lastProgress = stats.Enumerated
				cfg.progress(snapshot(false))
			}
		}
		if cfg.progress != nil {
			cfg.progress(snapshot(ctx.Err() == nil))
		}
	}()
	return out, nil
}

// RecommendContext streams the design space through an incremental
// Pareto front and quantizes the feasible survivors into at most four
// named configurations. It is the context-aware, parallel form of
// Recommend.
func RecommendContext(ctx context.Context, req Requirements, opts ...ExploreOption) ([]Recommendation, error) {
	ch, err := ExploreContext(ctx, req, opts...)
	if err != nil {
		return nil, err
	}
	front := NewFrontier()
	var built int64
	var nearest Candidate
	nearestSet := false
	for c := range ch {
		built++
		if c.Feasible {
			front.Add(c)
			continue
		}
		if !nearestSet || len(c.Reasons) < len(nearest.Reasons) ||
			(len(c.Reasons) == len(nearest.Reasons) && c.Seq < nearest.Seq) {
			nearest, nearestSet = c, true
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if built == 0 {
		return nil, fmt.Errorf("core: no buildable configuration for %+v", req)
	}
	if front.Size() == 0 {
		return nil, fmt.Errorf("core: no feasible configuration; closest misses: %v", nearest.Reasons)
	}
	return Quantize(front.Candidates()), nil
}

// Frontier maintains a Pareto front incrementally: Add keeps a
// candidate only while no member dominates it and evicts members the
// newcomer dominates. Because dominance is a strict partial order, the
// final front is independent of insertion order — the property the
// parallel engine relies on for deterministic results.
type Frontier struct {
	members []Candidate
	pruned  int64
}

// NewFrontier returns an empty front.
func NewFrontier() *Frontier { return &Frontier{} }

// Add offers a candidate to the front and reports whether it entered.
// Infeasible candidates are ignored (the front is defined over designs
// meeting every requirement).
func (f *Frontier) Add(c Candidate) bool {
	if !c.Feasible {
		return false
	}
	// Single pass over the members: dominance is a strict partial order
	// and the members are mutually non-dominated, so if some member
	// dominates c, then c dominates no member (otherwise transitivity
	// would order two members against each other). The scan can
	// therefore evict c-dominated members in place as it goes and still
	// abort unchanged the moment a dominator of c appears — no member
	// can have been evicted by then. Compaction moves an element only
	// after the first eviction, so the common no-eviction Add copies
	// nothing at all.
	w := 0
	for i := range f.members {
		m := &f.members[i]
		if dominates(m, &c) {
			f.pruned++
			return false
		}
		if dominates(&c, m) {
			f.pruned++
			continue
		}
		if w != i {
			f.members[w] = f.members[i]
		}
		w++
	}
	f.members = append(f.members[:w], c)
	return true
}

// Size is the current front population.
func (f *Frontier) Size() int { return len(f.members) }

// Pruned counts feasible candidates discarded so far (dominated on
// arrival or evicted later).
func (f *Frontier) Pruned() int64 { return f.pruned }

// Candidates returns the front in canonical order (area, power, cost,
// descending sustained bandwidth, enumeration sequence).
func (f *Frontier) Candidates() []Candidate {
	out := append([]Candidate(nil), f.members...)
	sortCandidates(out)
	return out
}

// sortCandidates orders candidates deterministically regardless of the
// arrival order the worker pool produced.
func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		// The chain of exact comparisons builds a total order over
		// identical evaluation results — tolerance would break
		// transitivity and with it the canonical front order.
		switch {
		case a.AreaMm2 != b.AreaMm2: //nolint:edramvet/floateq // exact total-order tie-break
			return a.AreaMm2 < b.AreaMm2
		case a.PowerMW != b.PowerMW: //nolint:edramvet/floateq // exact total-order tie-break
			return a.PowerMW < b.PowerMW
		case a.CostUSD != b.CostUSD: //nolint:edramvet/floateq // exact total-order tie-break
			return a.CostUSD < b.CostUSD
		case a.SustainedGBps != b.SustainedGBps: //nolint:edramvet/floateq // exact total-order tie-break
			return a.SustainedGBps > b.SustainedGBps
		default:
			return a.Seq < b.Seq
		}
	})
}

// Quantize reduces a feasible Pareto front to at most four named picks
// (min-area, min-power, max-bandwidth, min-cost), deduplicated — the
// paper's "set of understandable if slightly sub-optimal solutions".
func Quantize(front []Candidate) []Recommendation {
	if len(front) == 0 {
		return nil
	}
	pick := func(better func(a, b Candidate) bool) Candidate {
		best := front[0]
		for _, c := range front[1:] {
			if better(c, best) {
				best = c
			}
		}
		return best
	}
	recs := []Recommendation{
		{Role: "min-area", Candidate: pick(func(a, b Candidate) bool { return a.AreaMm2 < b.AreaMm2 })},
		{Role: "min-power", Candidate: pick(func(a, b Candidate) bool { return a.PowerMW < b.PowerMW })},
		{Role: "max-bandwidth", Candidate: pick(func(a, b Candidate) bool { return a.SustainedGBps > b.SustainedGBps })},
		{Role: "min-cost", Candidate: pick(func(a, b Candidate) bool { return a.CostUSD < b.CostUSD })},
	}
	// Deduplicate identical picks, keeping the first role.
	var out []Recommendation
	seen := map[string]bool{}
	for _, r := range recs {
		k := fmt.Sprintf("%d/%d/%d/%d/%d/%v/%v", r.Macros, r.Spec.InterfaceBits, r.Spec.Banks, r.Spec.PageBits, r.Spec.BlockBits, r.Spec.Redundancy, r.Spec.ECC)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
