// Parallel design-space exploration engine. The paper's study spans
// interface width × banks × page length × block size × redundancy ×
// process (§3); Sweep enumerates that space into a channel of Points,
// and ExploreContext evaluates them on a worker pool, streaming every
// buildable Candidate to the caller while an incremental Pareto front
// prunes dominated designs as results arrive. Explore/Recommend in
// core.go are thin compatibility wrappers over this engine.

package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/power"
	"edram/internal/reliab"
	"edram/internal/tech"
)

// Point is one un-evaluated coordinate of the §3 design space: a macro
// spec plus the number of identical macros the capacity is split
// across. Seq is the position in canonical enumeration order, carried
// through evaluation so results can be re-ordered deterministically no
// matter which worker produced them.
type Point struct {
	Seq    int
	Spec   edram.Spec
	Macros int
}

// sweepBatch is the number of points handed to a worker per channel
// operation — batching amortizes the synchronization cost, which would
// otherwise rival the few-µs evaluation time of one candidate.
const sweepBatch = 32

// sweepBatches is the batched form of Sweep the worker pool consumes.
func sweepBatches(ctx context.Context, req Requirements) (<-chan []Point, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	procs := req.Processes
	if len(procs) == 0 {
		procs = []tech.Process{tech.Siemens024()}
	}
	out := make(chan []Point, 8)
	go func() {
		defer close(out)
		seq := 0
		batch := make([]Point, 0, sweepBatch)
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			select {
			case out <- batch:
				batch = make([]Point, 0, sweepBatch)
				return true
			case <-ctx.Done():
				return false
			}
		}
		for _, macros := range []int{1, 2} {
			if req.CapacityMbit%macros != 0 {
				continue
			}
			for iface := 16; iface <= 512; iface *= 2 {
				for banks := 1; banks <= 8; banks *= 2 {
					for _, pageMult := range []int{4, 8, 16} {
						for _, block := range []int{geom.Block256K, geom.Block1M} {
							for _, red := range []edram.RedundancyLevel{edram.RedundancyNone, edram.RedundancyLow, edram.RedundancyStd, edram.RedundancyHigh} {
								for _, ecc := range []reliab.ECC{reliab.ECCNone, reliab.ECCSECDED} {
									for pi := range procs {
										batch = append(batch, Point{
											Seq:    seq,
											Macros: macros,
											Spec: edram.Spec{
												CapacityMbit:  req.CapacityMbit / macros,
												InterfaceBits: iface,
												Banks:         banks,
												PageBits:      iface * pageMult,
												BlockBits:     block,
												Redundancy:    red,
												ECC:           ecc,
												Process:       &procs[pi],
											},
										})
										seq++
										if len(batch) == sweepBatch && !flush() {
											return
										}
									}
								}
							}
						}
					}
				}
			}
		}
		flush()
	}()
	return out, nil
}

// Sweep enumerates the design space for the requirements into a
// channel: interface widths 16..512, bank counts 1..8, page lengths
// (4x..16x interface), both building blocks, all redundancy levels,
// the no-ECC and SEC-DED word protections and every requested process,
// for 1- and 2-macro organizations. The
// channel is closed when the space is exhausted or ctx is cancelled.
func Sweep(ctx context.Context, req Requirements) (<-chan Point, error) {
	batches, err := sweepBatches(ctx, req)
	if err != nil {
		return nil, err
	}
	out := make(chan Point, sweepBatch)
	go func() {
		defer close(out)
		for batch := range batches {
			for _, p := range batch {
				select {
				case out <- p:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out, nil
}

// ExploreStats is a snapshot of the engine's progress counters,
// delivered through WithProgress (periodically and once more when the
// run finishes, with Done set).
type ExploreStats struct {
	// Enumerated counts design points handed to workers so far; Built
	// counts the subset that produced a buildable macro; Infeasible
	// counts built candidates violating at least one requirement.
	Enumerated int64
	Built      int64
	Infeasible int64
	// Pruned counts feasible candidates discarded by the incremental
	// Pareto front (dominated on arrival, or evicted by a later
	// arrival); FrontSize is the current front population.
	Pruned    int64
	FrontSize int
	// Workers is the pool size; WallTime the elapsed time since the
	// engine started; WorkerBusy the per-worker cumulative evaluation
	// time (populated on the final, Done snapshot).
	Workers    int
	WallTime   time.Duration
	WorkerBusy []time.Duration
	// Done is true on the final snapshot after the sweep is exhausted
	// (it stays false when the run was cancelled mid-sweep).
	Done bool
}

// PointsPerSec is the evaluation throughput of the run so far.
func (s ExploreStats) PointsPerSec() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.Enumerated) / s.WallTime.Seconds()
}

// Utilization returns each worker's busy fraction of the wall time
// (empty until the final snapshot carries WorkerBusy).
func (s ExploreStats) Utilization() []float64 {
	if s.WallTime <= 0 || len(s.WorkerBusy) == 0 {
		return nil
	}
	out := make([]float64, len(s.WorkerBusy))
	for i, b := range s.WorkerBusy {
		out[i] = b.Seconds() / s.WallTime.Seconds()
	}
	return out
}

type exploreConfig struct {
	workers       int
	progress      func(ExploreStats)
	progressEvery int
	observer      func(Candidate)
}

// ExploreOption configures ExploreContext / RecommendContext.
type ExploreOption func(*exploreConfig)

// WithWorkers sets the evaluation pool size (default
// runtime.GOMAXPROCS(0)). n < 1 makes ExploreContext fail.
func WithWorkers(n int) ExploreOption {
	return func(c *exploreConfig) { c.workers = n }
}

// WithProgress registers a callback invoked (from the engine's collector
// goroutine, serialized) every progress interval and once more when the
// run completes.
func WithProgress(fn func(ExploreStats)) ExploreOption {
	return func(c *exploreConfig) { c.progress = fn }
}

// WithProgressEvery sets how many enumerated points separate two
// progress callbacks (default 512).
func WithProgressEvery(n int) ExploreOption {
	return func(c *exploreConfig) { c.progressEvery = n }
}

// WithObserver registers a callback invoked (serialized, in arrival
// order) for every built candidate before it is sent on the result
// channel — a tap for logging or incremental accounting that does not
// consume the stream.
func WithObserver(fn func(Candidate)) ExploreOption {
	return func(c *exploreConfig) { c.observer = fn }
}

// ExploreContext enumerates and evaluates the design space on a worker
// pool, streaming every buildable candidate (feasible or not) on the
// returned channel. The channel is closed when the sweep is exhausted
// or ctx is cancelled; per-candidate order is non-deterministic across
// workers, but Candidate.Seq restores canonical enumeration order.
// The error return covers invalid requirements or options only.
func ExploreContext(ctx context.Context, req Requirements, opts ...ExploreOption) (<-chan Candidate, error) {
	cfg := exploreConfig{workers: runtime.GOMAXPROCS(0), progressEvery: 512}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		return nil, fmt.Errorf("core: worker count %d < 1", cfg.workers)
	}
	if cfg.progressEvery < 1 {
		return nil, fmt.Errorf("core: progress interval %d < 1", cfg.progressEvery)
	}
	batches, err := sweepBatches(ctx, req)
	if err != nil {
		return nil, err
	}
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	start := time.Now() //nolint:edramvet/determinism // feeds ExploreStats.WallTime only, never results

	// Workers: evaluate batches of points, forwarding outcomes
	// (including unbuildable corners, so the collector can count
	// enumeration) to the collector at batch granularity — per-point
	// channel traffic would rival the evaluation cost itself.
	type outcome struct {
		cand Candidate
		ok   bool
	}
	results := make(chan []outcome, cfg.workers*2)
	busy := make([]time.Duration, cfg.workers)
	var wg sync.WaitGroup
	wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go func(w int) {
			defer wg.Done()
			var acc time.Duration
			defer func() { busy[w] = acc }()
			for batch := range batches {
				t0 := time.Now() //nolint:edramvet/determinism // feeds ExploreStats.WorkerBusy only, never results
				outs := make([]outcome, 0, len(batch))
				for _, pt := range batch {
					cand, err := evaluate(pt.Spec, pt.Macros, req, e, ce)
					cand.Seq = pt.Seq
					outs = append(outs, outcome{cand: cand, ok: err == nil})
				}
				acc += time.Since(t0)
				select {
				case results <- outs:
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: single goroutine owning the stats and the incremental
	// front, so observer/progress callbacks need no locking.
	out := make(chan Candidate, 4*sweepBatch)
	go func() {
		defer close(out)
		front := NewFrontier()
		stats := ExploreStats{Workers: cfg.workers}
		snapshot := func(done bool) ExploreStats {
			s := stats
			s.WallTime = time.Since(start)
			s.FrontSize = front.Size()
			s.Pruned = front.Pruned()
			s.Done = done
			if done {
				s.WorkerBusy = append([]time.Duration(nil), busy...)
			}
			return s
		}
		lastProgress := int64(0)
		for outs := range results {
			for _, o := range outs {
				stats.Enumerated++
				if !o.ok { // unbuildable corner of the space
					continue
				}
				stats.Built++
				if !o.cand.Feasible {
					stats.Infeasible++
				}
				front.Add(o.cand)
				if cfg.observer != nil {
					cfg.observer(o.cand)
				}
				select {
				case out <- o.cand:
				case <-ctx.Done():
					return
				}
			}
			if cfg.progress != nil && stats.Enumerated-lastProgress >= int64(cfg.progressEvery) {
				lastProgress = stats.Enumerated
				cfg.progress(snapshot(false))
			}
		}
		if cfg.progress != nil {
			cfg.progress(snapshot(ctx.Err() == nil))
		}
	}()
	return out, nil
}

// RecommendContext streams the design space through an incremental
// Pareto front and quantizes the feasible survivors into at most four
// named configurations. It is the context-aware, parallel form of
// Recommend.
func RecommendContext(ctx context.Context, req Requirements, opts ...ExploreOption) ([]Recommendation, error) {
	ch, err := ExploreContext(ctx, req, opts...)
	if err != nil {
		return nil, err
	}
	front := NewFrontier()
	var built int64
	var nearest Candidate
	nearestSet := false
	for c := range ch {
		built++
		if c.Feasible {
			front.Add(c)
			continue
		}
		if !nearestSet || len(c.Reasons) < len(nearest.Reasons) ||
			(len(c.Reasons) == len(nearest.Reasons) && c.Seq < nearest.Seq) {
			nearest, nearestSet = c, true
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if built == 0 {
		return nil, fmt.Errorf("core: no buildable configuration for %+v", req)
	}
	if front.Size() == 0 {
		return nil, fmt.Errorf("core: no feasible configuration; closest misses: %v", nearest.Reasons)
	}
	return Quantize(front.Candidates()), nil
}

// Frontier maintains a Pareto front incrementally: Add keeps a
// candidate only while no member dominates it and evicts members the
// newcomer dominates. Because dominance is a strict partial order, the
// final front is independent of insertion order — the property the
// parallel engine relies on for deterministic results.
type Frontier struct {
	members []Candidate
	pruned  int64
}

// NewFrontier returns an empty front.
func NewFrontier() *Frontier { return &Frontier{} }

// Add offers a candidate to the front and reports whether it entered.
// Infeasible candidates are ignored (the front is defined over designs
// meeting every requirement).
func (f *Frontier) Add(c Candidate) bool {
	if !c.Feasible {
		return false
	}
	for i := range f.members {
		if dominates(f.members[i], c) {
			f.pruned++
			return false
		}
	}
	keep := f.members[:0]
	for _, m := range f.members {
		if dominates(c, m) {
			f.pruned++
			continue
		}
		keep = append(keep, m)
	}
	f.members = append(keep, c)
	return true
}

// Size is the current front population.
func (f *Frontier) Size() int { return len(f.members) }

// Pruned counts feasible candidates discarded so far (dominated on
// arrival or evicted later).
func (f *Frontier) Pruned() int64 { return f.pruned }

// Candidates returns the front in canonical order (area, power, cost,
// descending sustained bandwidth, enumeration sequence).
func (f *Frontier) Candidates() []Candidate {
	out := append([]Candidate(nil), f.members...)
	sortCandidates(out)
	return out
}

// sortCandidates orders candidates deterministically regardless of the
// arrival order the worker pool produced.
func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		// The chain of exact comparisons builds a total order over
		// identical evaluation results — tolerance would break
		// transitivity and with it the canonical front order.
		switch {
		case a.AreaMm2 != b.AreaMm2: //nolint:edramvet/floateq // exact total-order tie-break
			return a.AreaMm2 < b.AreaMm2
		case a.PowerMW != b.PowerMW: //nolint:edramvet/floateq // exact total-order tie-break
			return a.PowerMW < b.PowerMW
		case a.CostUSD != b.CostUSD: //nolint:edramvet/floateq // exact total-order tie-break
			return a.CostUSD < b.CostUSD
		case a.SustainedGBps != b.SustainedGBps: //nolint:edramvet/floateq // exact total-order tie-break
			return a.SustainedGBps > b.SustainedGBps
		default:
			return a.Seq < b.Seq
		}
	})
}

// Quantize reduces a feasible Pareto front to at most four named picks
// (min-area, min-power, max-bandwidth, min-cost), deduplicated — the
// paper's "set of understandable if slightly sub-optimal solutions".
func Quantize(front []Candidate) []Recommendation {
	if len(front) == 0 {
		return nil
	}
	pick := func(better func(a, b Candidate) bool) Candidate {
		best := front[0]
		for _, c := range front[1:] {
			if better(c, best) {
				best = c
			}
		}
		return best
	}
	recs := []Recommendation{
		{Role: "min-area", Candidate: pick(func(a, b Candidate) bool { return a.AreaMm2 < b.AreaMm2 })},
		{Role: "min-power", Candidate: pick(func(a, b Candidate) bool { return a.PowerMW < b.PowerMW })},
		{Role: "max-bandwidth", Candidate: pick(func(a, b Candidate) bool { return a.SustainedGBps > b.SustainedGBps })},
		{Role: "min-cost", Candidate: pick(func(a, b Candidate) bool { return a.CostUSD < b.CostUSD })},
	}
	// Deduplicate identical picks, keeping the first role.
	var out []Recommendation
	seen := map[string]bool{}
	for _, r := range recs {
		k := fmt.Sprintf("%d/%d/%d/%d/%d/%v/%v", r.Macros, r.Spec.InterfaceBits, r.Spec.Banks, r.Spec.PageBits, r.Spec.BlockBits, r.Spec.Redundancy, r.Spec.ECC)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
