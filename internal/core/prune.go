// Constraint-pruned enumeration for the design-space sweep. Several
// requirement constraints are monotone in a single sweep dimension: the
// interface clock depends only on the building block, peak (and with it
// sustained) bandwidth is maximal in the clock and the interface width,
// and the macro area is minimal at the banks=1 / no-redundancy / no-ECC
// corner of a subspace. A prunePlan evaluates those bounds once per
// (macro-organization, interface, block) subspace and lets the sweep
// skip whole Seq runs whose buildable points are all provably
// infeasible — without enumerating them. Seq numbering stays absolute
// (a skip advances the counter by the exact run length), so ranged
// sweeps, shard partitions and job checkpoints remain byte-compatible
// with the unpruned enumeration; tally accounts the skipped points in
// closed form so ExploreStats totals stay exact.
//
// Soundness rule: a subspace may be skipped only when every buildable
// point in it would fail at least one feasibility check of
// scoreCandidate. The bounds below replicate those checks' exact float
// comparisons (clock), or compare against a proven bound with the
// rounding slack on the safe side (area, bandwidth) — a pruned explore
// therefore streams the identical candidate set as an unpruned one
// (pinned by the pruning-parity tests).

package core

import (
	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/reliab"
	"edram/internal/tech"
	"edram/internal/timing"
	"edram/internal/units"
)

// bwPruneSlack is the relative safety margin of the bandwidth prune.
// SustainedEstimate never exceeds the peak bandwidth in exact
// arithmetic (the hit/miss-weighted cycle average is at least the hit
// cycle), but its float rounding can land a few ulp above peak; the
// margin is ~1e6 ulp wide, so a skip decided against
// macros*peak*bwPruneSlack can never discard a point the exact
// comparison in scoreCandidate would have kept.
const bwPruneSlack = 1 + 1e-9

// seqRange is a half-open [From, To) interval of canonical sequence
// numbers.
type seqRange struct{ From, To int }

// skipRun is one contiguous skipped Seq interval. structOK records
// whether the run's points are structurally buildable (they then count
// toward SkippedBuildable — all provably infeasible); runs skipped for
// structural reasons (capacity over the concept ceiling) carry false.
type skipRun struct {
	from, to int
	structOK bool
}

// prunePlan is the precomputed skip decision for one requirements set
// over one resolved process slice. A nil plan means "no pruning" —
// every accessor treats nil as the empty plan.
type prunePlan struct {
	procs  []tech.Process
	procOK []bool // procs[i].Validate() == nil
	nValid int
	total  int // sweepCount(req, procs)

	// Per-dimension run lengths: perRun covers red x ecc x proc (the
	// dimensions below the block), perIface covers banks x pageMult x
	// block x perRun, perOrg covers iface x perIface.
	perRun, perIface, perOrg int

	// Skip decisions, indexed by enumerated-organization position,
	// interface index (16<<i) and block index (sweepBlockBits order).
	// skipIface is the all-blocks conjunction of skipBlock, letting the
	// enumerator take one large jump instead of twelve small ones.
	skipOrg   []bool
	skipIface [][]bool
	skipBlock [][][]bool

	// runs is the flat, sorted, disjoint list of skipped Seq intervals
	// the bool tables induce — the single source tally and enumerated
	// derive from, so closed-form accounting cannot drift from the
	// enumerator's jumps.
	runs []skipRun
}

// sweepIfaces returns the interface-width table ({16..512} powers of
// two) the geometric range in sweepBatchesOver walks.
func sweepIfaces() []int {
	var out []int
	for v := sweepIfaceMin; v <= sweepIfaceMax; v *= 2 {
		out = append(out, v)
	}
	return out
}

// sweepBanks returns the bank-count table ({1..8} powers of two).
func sweepBanks() []int {
	var out []int
	for v := 1; v <= sweepBanksMax; v *= 2 {
		out = append(out, v)
	}
	return out
}

// eligibleOrgs returns the macro organizations the sweep enumerates for
// the requirements, in enumeration order.
func eligibleOrgs(req Requirements) []int {
	var out []int
	for _, m := range sweepMacroOrgs {
		if m > 0 && req.CapacityMbit%m == 0 {
			out = append(out, m)
		}
	}
	return out
}

// structBuildable reports whether a sweep point with the given
// per-macro capacity, block, bank count, page multiplier and interface
// width passes every structural check of edram.NewTemplate +
// Instantiate that does not depend on the process (process validity is
// tracked separately in procOK). Redundancy and ECC never affect
// buildability: spare counts are non-negative by construction and every
// ECC storage fraction is in [0,1).
func structBuildable(capPerMacro, block, banks, pageMult, iface int) bool {
	if capPerMacro <= 0 || capPerMacro > edram.ConceptMaxCapacityMbit {
		return false
	}
	capBits := capPerMacro * units.Mbit
	if capBits%block != 0 {
		return false
	}
	blocks := capBits / block
	if banks > blocks || blocks%banks != 0 {
		return false
	}
	cols := geom.MacroGeometry{BlockBits: block}.BlockColumns()
	return iface*pageMult <= cols*(blocks/banks)
}

// blockClock returns the sweep's operating clock for a building block
// (TargetClockMHz is always zero in the sweep, so the clock is the
// array maximum, a function of the block geometry alone).
func blockClock(block int) (float64, bool) {
	g := geom.MacroGeometry{BlockBits: block}
	org := timing.Organization{PageBits: g.BlockColumns(), RowsPerBank: g.BlockRows()}
	tm, err := timing.ArrayTiming(tech.PC100(), org)
	if err != nil {
		return 0, false
	}
	return timing.MaxClockMHz(tm), true
}

// cornerAreaMm2 returns the minimal candidate area of the (macros,
// iface, block) subspace for one process: the banks=1, no-redundancy,
// no-ECC corner, built through the real template path so the float
// summation order matches evaluation exactly. Every other candidate of
// the subspace only adds non-negative terms to that sum (and float
// addition of a non-negative term never rounds below the original
// sum), so the corner is a true lower bound. ok is false when the
// corner cannot be built (no area prune for the subspace then).
func cornerAreaMm2(capPerMacro, iface, block, macros int, proc *tech.Process) (float64, bool) {
	t, err := edram.NewTemplate(edram.Spec{
		CapacityMbit:  capPerMacro,
		InterfaceBits: iface,
		Banks:         1,
		BlockBits:     block,
		Redundancy:    edram.RedundancyNone,
		ECC:           reliab.ECCNone,
		Process:       proc,
	})
	if err != nil {
		return 0, false
	}
	return float64(macros) * t.TotalAreaMm2(), true
}

// costNeverFails reports whether cost.MacroDieCost is guaranteed to
// succeed for every buildable sweep point of the requirements. The only
// in-sweep failure mode is a die too large for the process wafer
// (DiesPerWafer < 1); maxSweepDieMm2 bounds the largest die the sweep
// can produce, and gross dies-per-wafer decreases monotonically up to
// wafer-diameter²/2 mm², so one check at the bound covers the space.
// When the guarantee cannot be established (pathological custom
// process), pruning is disabled entirely rather than risk a skipped
// subspace whose buildable tally would be wrong.
func costNeverFails(req Requirements, procs []tech.Process, procOK []bool) bool {
	banksTab := sweepBanks()
	ifaceTab := sweepIfaces()
	for pi := range procs {
		if !procOK[pi] {
			continue // never builds, never reaches the cost model
		}
		p := &procs[pi]
		maxDie := 0.0
		for _, macros := range eligibleOrgs(req) {
			capPer := req.CapacityMbit / macros
			if capPer <= 0 || capPer > edram.ConceptMaxCapacityMbit {
				continue
			}
			capBits := capPer * units.Mbit
			for _, block := range sweepBlockBits {
				if capBits%block != 0 {
					continue
				}
				blocks := capBits / block
				for _, banks := range banksTab {
					if banks > blocks || blocks%banks != 0 {
						continue
					}
					for _, iface := range ifaceTab {
						// Area is monotone in the spare counts and the ECC
						// storage fraction, so the high-redundancy SEC-DED
						// corner bounds both ECC modes and all four levels.
						g := geom.MacroGeometry{
							Process:       *p,
							BlockBits:     block,
							Blocks:        blocks,
							Banks:         banks,
							PageBits:      iface,
							InterfaceBits: iface,
							WithBIST:      true,
							ECCOverheadFrac: reliab.ECCSECDED.
								StorageOverhead(iface),
						}
						g.SpareRowsPerBlock, g.SpareColsPerBlock = edram.RedundancyHigh.Spares()
						a, err := g.Area()
						if err != nil {
							return false // cannot bound: disable pruning
						}
						if die := float64(macros) * a.TotalMm2; die > maxDie {
							maxDie = die
						}
					}
				}
			}
		}
		if maxDie == 0 {
			continue // nothing buildable for this process
		}
		d := p.WaferDiameterMm
		if maxDie > d*d/2 || geom.DiesPerWafer(*p, maxDie) < 1 {
			return false
		}
	}
	return true
}

// newPrunePlan derives the skip plan for the requirements over the
// resolved process slice. It returns nil when pruning cannot be applied
// soundly; the caller then runs the plain enumeration.
func newPrunePlan(req Requirements, procs []tech.Process) *prunePlan {
	if len(procs) == 0 {
		return nil
	}
	procOK := make([]bool, len(procs))
	nValid := 0
	for i := range procs {
		if procs[i].Validate() == nil {
			procOK[i] = true
			nValid++
		}
	}
	if !costNeverFails(req, procs, procOK) {
		return nil
	}

	P := len(procs)
	ifaceTab := sweepIfaces()
	banksTab := sweepBanks()
	nIface, nBanks := len(ifaceTab), len(banksTab)
	nPage, nBlock := len(sweepPageMults), len(sweepBlockBits)
	nRed, nECC := len(sweepRedLevels), len(sweepECCModes)

	p := &prunePlan{
		procs:    procs,
		procOK:   procOK,
		nValid:   nValid,
		total:    sweepCount(req, procs),
		perRun:   nRed * nECC * P,
		perIface: nBanks * nPage * nBlock * nRed * nECC * P,
	}
	p.perOrg = nIface * p.perIface
	orgs := eligibleOrgs(req)

	clocks := make([]float64, nBlock)
	clockOK := make([]bool, nBlock)
	for bi, block := range sweepBlockBits {
		clocks[bi], clockOK[bi] = blockClock(block)
	}

	p.skipOrg = make([]bool, len(orgs))
	p.skipIface = make([][]bool, len(orgs))
	p.skipBlock = make([][][]bool, len(orgs))
	for oi, macros := range orgs {
		capPer := req.CapacityMbit / macros
		p.skipOrg[oi] = capPer > edram.ConceptMaxCapacityMbit
		p.skipIface[oi] = make([]bool, nIface)
		p.skipBlock[oi] = make([][]bool, nIface)
		for ii, iface := range ifaceTab {
			p.skipBlock[oi][ii] = make([]bool, nBlock)
			if p.skipOrg[oi] {
				continue // the whole organization is skipped structurally
			}
			all := true
			for bi, block := range sweepBlockBits {
				skip := false
				if clockOK[bi] {
					if req.MinClockMHz > 0 && clocks[bi] < req.MinClockMHz {
						// Exactly the scoreCandidate clock check: the clock is
						// identical for every candidate with this block.
						skip = true
					}
					peak := float64(macros) * units.BandwidthGBps(iface, clocks[bi])
					if peak*bwPruneSlack < req.BandwidthGBps {
						skip = true
					}
				}
				if !skip && req.MaxAreaMm2 > 0 && nValid > 0 {
					minCorner, known := 0.0, false
					for pi := range procs {
						if !procOK[pi] {
							continue
						}
						a, ok := cornerAreaMm2(capPer, iface, block, macros, &procs[pi])
						if !ok {
							known = false
							break
						}
						if !known || a < minCorner {
							minCorner, known = a, true
						}
					}
					if known && minCorner > req.MaxAreaMm2 {
						skip = true
					}
				}
				p.skipBlock[oi][ii][bi] = skip
				if !skip {
					all = false
				}
			}
			p.skipIface[oi][ii] = all
		}
	}

	// Flatten the decision tables into the sorted skip-run list at
	// block-run granularity (one run per skipped red x ecc x proc
	// stretch), merging adjacent runs as they are emitted.
	emit := func(from, to int, structOK bool) {
		if n := len(p.runs); n > 0 && p.runs[n-1].to == from && p.runs[n-1].structOK == structOK {
			p.runs[n-1].to = to
			return
		}
		p.runs = append(p.runs, skipRun{from: from, to: to, structOK: structOK})
	}
	for oi, macros := range orgs {
		orgStart := oi * p.perOrg
		capPer := req.CapacityMbit / macros
		if p.skipOrg[oi] {
			emit(orgStart, orgStart+p.perOrg, false)
			continue
		}
		for ii, iface := range ifaceTab {
			ifaceStart := orgStart + ii*p.perIface
			for ki, banks := range banksTab {
				for gi, pageMult := range sweepPageMults {
					for bi, block := range sweepBlockBits {
						if !p.skipBlock[oi][ii][bi] {
							continue
						}
						runStart := ifaceStart + ((ki*nPage+gi)*nBlock+bi)*p.perRun
						emit(runStart, runStart+p.perRun,
							structBuildable(capPer, block, banks, pageMult, iface))
					}
				}
			}
		}
	}
	return p
}

// tally returns, in closed form, how many points of the window
// [from, to) a pruned sweep skips, and how many of those would have
// built (all of them provably infeasible — that is what justified the
// skip). A nil plan skips nothing.
func (p *prunePlan) tally(from, to int) (skipped, skippedBuildable int64) {
	if p == nil {
		return 0, 0
	}
	P := len(p.procs)
	for _, r := range p.runs {
		lo, hi := r.from, r.to
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if lo >= hi {
			continue
		}
		skipped += int64(hi - lo)
		if !r.structOK {
			continue
		}
		// Within a structurally buildable run the process index cycles
		// with period P (runs start on a process boundary), so the
		// buildable count is full cycles times the valid-process count
		// plus a walk over the remainder.
		r0 := lo - r.from
		n := hi - lo
		skippedBuildable += int64(n/P) * int64(p.nValid)
		for j := 0; j < n%P; j++ {
			if p.procOK[(r0+j)%P] {
				skippedBuildable++
			}
		}
	}
	return skipped, skippedBuildable
}

// enumerated returns the sorted, disjoint Seq intervals of [from, to)
// a pruned sweep actually enumerates — the complement of the skip runs.
// A nil plan enumerates the whole window.
func (p *prunePlan) enumerated(from, to int) []seqRange {
	if to > p.planTotal() {
		to = p.planTotal()
	}
	if from >= to {
		return nil
	}
	if p == nil {
		return []seqRange{{From: from, To: to}}
	}
	var out []seqRange
	cur := from
	for _, r := range p.runs {
		if r.to <= cur {
			continue
		}
		if r.from >= to {
			break
		}
		if r.from > cur {
			out = append(out, seqRange{From: cur, To: minSeqBound(r.from, to)})
		}
		if r.to > cur {
			cur = r.to
		}
		if cur >= to {
			return out
		}
	}
	if cur < to {
		out = append(out, seqRange{From: cur, To: to})
	}
	return out
}

// planTotal returns the sweep size the plan was built for; a nil plan
// imposes no bound.
func (p *prunePlan) planTotal() int {
	if p == nil {
		return maxSeq
	}
	return p.total
}

func minSeqBound(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pointAt reconstructs the sweep point at one canonical sequence
// number — the inverse of the sweepBatchesOver enumeration, used by the
// delta path to materialize frontier members without re-running the
// sweep. The caller guarantees seq is in [0, sweepCount).
func pointAt(req Requirements, procs []tech.Process, seq int) Point {
	P := len(procs)
	orgs := eligibleOrgs(req)
	nPage, nBlock := len(sweepPageMults), len(sweepBlockBits)
	nRed, nECC := len(sweepRedLevels), len(sweepECCModes)
	perRun := nRed * nECC * P
	perIface := len(sweepBanks()) * nPage * nBlock * perRun
	perOrg := len(sweepIfaces()) * perIface

	idx := seq
	macros := orgs[idx/perOrg]
	idx %= perOrg
	iface := sweepIfaceMin << (idx / perIface)
	idx %= perIface
	banks := 1 << (idx / (nPage * nBlock * perRun))
	idx %= nPage * nBlock * perRun
	pageMult := sweepPageMults[idx/(nBlock*perRun)]
	idx %= nBlock * perRun
	block := sweepBlockBits[idx/perRun]
	idx %= perRun
	red := sweepRedLevels[idx/(nECC*P)]
	idx %= nECC * P
	ecc := sweepECCModes[idx/P]
	pi := idx % P

	return Point{
		Seq:    seq,
		Macros: macros,
		Spec: edram.Spec{
			CapacityMbit:  req.CapacityMbit / macros,
			InterfaceBits: iface,
			Banks:         banks,
			PageBits:      iface * pageMult,
			BlockBits:     block,
			Redundancy:    red,
			ECC:           ecc,
			Process:       &procs[pi],
		},
	}
}
