// Memoized sub-model evaluation for the design-space sweep. Most sweep
// dimensions leave the macro skeleton untouched: the page length is the
// innermost-but-one free dimension, yet geometry, block timing, area
// and die cost are all page-length-independent (see edram.Template).
// evalMemo computes those sub-results once per unique projection of the
// spec and shares them across the page variants — the CACTI-lineage
// trick of memoizing shared sub-models across configurations.
//
// Determinism: a memo hit replays values produced by exactly the same
// pure float computations the unmemoized path would run on identical
// inputs, so memoized and unmemoized explores are byte-identical
// (pinned by TestExploreMemoParity).

package core

import (
	"sync"

	"edram/internal/cost"
	"edram/internal/edram"
	"edram/internal/power"
	"edram/internal/reliab"
	"edram/internal/tech"
)

// skelKey identifies the page-length-independent projection of one sweep
// point: every Spec field except PageBits. The process travels by its
// full parameter fingerprint (tech.Process.CanonicalKey) — the name
// alone would alias same-named but differently-parameterized custom
// processes, the aliasing class fixed for the service cache keys (see
// DESIGN.md §6 canonical-key rules). On the hot path the fingerprint is
// represented by procIdx, the process's position in the explore's
// resolved slice (every slice element's fingerprint is precomputed and
// distinct positions with equal fingerprints still evaluate
// identically); procStr carries the rendered fingerprint only for
// process pointers outside the slice (procIdx == -1), keeping the
// per-lookup hash off the long string.
type skelKey struct {
	procIdx      int
	procStr      string
	capacityMbit int
	ifaceBits    int
	banks        int
	blockBits    int
	redundancy   edram.RedundancyLevel
	ecc          reliab.ECC
	targetClock  float64
	skipBIST     bool
}

// skelEntry is one memoized bundle: the macro template plus the die-cost
// results. Both depend only on the key — the die cost reads the
// template's (page-independent) area, the macro count and the explore's
// fixed defect density, and within one explore the macro count is a
// function of the key (macros = req.CapacityMbit / key.capacityMbit,
// the inverse of how sweepBatches derives per-macro capacity).
type skelEntry struct {
	once sync.Once

	tmpl *edram.Template
	err  error // NewTemplate failure: the whole projection is unbuildable

	dieCostUSD float64
	dieYield   float64
	costErr    error
}

// evalMemo is a per-explore concurrent memo table. A plain map under an
// RWMutex beats sync.Map here: the comparable struct key needs no
// interface boxing (sync.Map allocates a key box plus a speculative
// entry on every lookup), hits take one uncontended RLock, and entries
// are filled exactly once via their sync.Once outside the write lock so
// workers racing on the same projection block only for the first
// computation. The table is scoped to one ExploreContext call: the
// requirements (defect density, hit rate) are part of every cached
// computation and must not leak across runs.
type evalMemo struct {
	req   Requirements
	procs []tech.Process

	mu    sync.RWMutex
	skels map[skelKey]*skelEntry
}

// newEvalMemo builds the table for one explore over the resolved
// process slice — the same backing array sweepBatches enumerates, so
// process identity resolves by pointer without re-fingerprinting.
func newEvalMemo(req Requirements, procs []tech.Process) *evalMemo {
	return &evalMemo{
		req:   req,
		procs: procs,
		skels: make(map[skelKey]*skelEntry, 1024),
	}
}

// entry returns the (unique) skelEntry for the key, creating it on
// first sight. The double-checked write path keeps the computation
// itself out of both locks.
func (mm *evalMemo) entry(k skelKey) *skelEntry {
	mm.mu.RLock()
	ent := mm.skels[k]
	mm.mu.RUnlock()
	if ent != nil {
		return ent
	}
	mm.mu.Lock()
	ent = mm.skels[k]
	if ent == nil {
		ent = &skelEntry{}
		mm.skels[k] = ent
	}
	mm.mu.Unlock()
	return ent
}

// procKey returns the process identity for the memo key: the slice
// index when the pointer belongs to the explore's process slice (the
// sweep's own points always do), otherwise -1 plus the full
// CanonicalKey fingerprint.
func (mm *evalMemo) procKey(p *tech.Process) (int, string) {
	for i := range mm.procs {
		if p == &mm.procs[i] {
			return i, ""
		}
	}
	if p == nil {
		return -1, ""
	}
	return -1, p.CanonicalKey()
}

// macroArena hands out Macro slots from chunks so each sweep batch
// costs one bulk allocation instead of one malloc per built point.
// Chunks are intentionally not pooled: the macros escape into
// Candidates owned by the caller. One arena belongs to one worker
// goroutine.
type macroArena struct {
	chunk []edram.Macro
}

// next returns a fresh zero slot.
func (a *macroArena) next() *edram.Macro {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]edram.Macro, 0, sweepBatch)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	return &a.chunk[len(a.chunk)-1]
}

// undo returns the most recent slot (nothing may reference it).
func (a *macroArena) undo() {
	a.chunk = a.chunk[:len(a.chunk)-1]
}

// evaluateInto is the memoized form of core.evaluate, writing the
// candidate into dst (fully overwritten either way) and reporting
// buildability — byte-for-byte the results of the unmemoized path,
// with the template and die-cost sub-models served from the memo table
// and the macro allocated from the worker's arena.
func (mm *evalMemo) evaluateInto(dst *Candidate, pt *Point, e tech.Electrical, ce power.CoreEnergy, ar *macroArena) bool {
	spec := pt.Spec
	macros := pt.Macros
	if macros < 1 {
		macros = 1
	}
	idx, str := mm.procKey(spec.Process)
	k := skelKey{
		procIdx:      idx,
		procStr:      str,
		capacityMbit: spec.CapacityMbit,
		ifaceBits:    spec.InterfaceBits,
		banks:        spec.Banks,
		blockBits:    spec.BlockBits,
		redundancy:   spec.Redundancy,
		ecc:          spec.ECC,
		targetClock:  spec.TargetClockMHz,
		skipBIST:     spec.SkipBIST,
	}
	ent := mm.entry(k)
	ent.once.Do(func() {
		ent.tmpl, ent.err = edram.NewTemplate(spec)
		if ent.err != nil {
			return
		}
		areaMm2 := float64(macros) * ent.tmpl.TotalAreaMm2()
		ent.dieCostUSD, ent.dieYield, ent.costErr = cost.MacroDieCost(
			ent.tmpl.Process(), 0, areaMm2, mm.req.DefectsPerCm2, repairFractionFor(spec.Redundancy))
	})
	if ent.err != nil {
		*dst = Candidate{}
		return false
	}
	m := ar.next()
	if err := ent.tmpl.InstantiateInto(m, spec.PageBits); err != nil {
		ar.undo()
		*dst = Candidate{}
		return false
	}
	if ent.costErr != nil {
		ar.undo()
		*dst = Candidate{}
		return false
	}
	*dst = scoreCandidate(spec, macros, m, mm.req, e, ce, ent.dieCostUSD, ent.dieYield)
	return true
}
