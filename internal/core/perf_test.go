package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"edram/internal/power"
	"edram/internal/tech"
)

// exploreUnmemoized replays the sweep through the plain (unmemoized)
// evaluate path, in canonical order — the reference the memoized engine
// must reproduce byte-for-byte.
func exploreUnmemoized(t *testing.T, r Requirements) []Candidate {
	t.Helper()
	pts, err := Sweep(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	var out []Candidate
	for pt := range pts {
		c, err := evaluate(pt.Spec, pt.Macros, r, e, ce)
		if err != nil {
			continue // unbuildable corner, same as the engine's !ok
		}
		c.Seq = pt.Seq
		out = append(out, c)
	}
	return out
}

// TestExploreMemoParity pins the tentpole determinism guarantee: the
// memoized engine (Explore / Recommend) and the unmemoized reference
// path produce byte-identical JSON, candidate by candidate and through
// the frontier + quantization pipeline.
func TestExploreMemoParity(t *testing.T) {
	cases := map[string]Requirements{
		"default-process": req(),
		"multi-process": func() Requirements {
			r := req()
			r.Processes = []tech.Process{tech.Siemens024(), tech.Logic024()}
			return r
		}(),
		"constrained": func() Requirements {
			r := req()
			r.MaxAreaMm2 = 40
			r.MaxPowerMW = 900
			r.MinClockMHz = 100
			return r
		}(),
	}
	for name, r := range cases {
		t.Run(name, func(t *testing.T) {
			want := exploreUnmemoized(t, r)
			got, err := Explore(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("memoized explore built %d candidates, reference %d", len(got), len(want))
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				for i := range got {
					gj, _ := json.Marshal(got[i])
					wj, _ := json.Marshal(want[i])
					if !bytes.Equal(gj, wj) {
						t.Fatalf("first divergent candidate at Seq %d:\nmemoized:  %s\nreference: %s", got[i].Seq, gj, wj)
					}
				}
				t.Fatal("candidate JSON differs but no per-candidate divergence found")
			}

			// Recommendation parity: the reference set pushed through the
			// same Frontier + Quantize pipeline must match Recommend.
			front := NewFrontier()
			for i := range want {
				front.Add(want[i])
			}
			if front.Size() == 0 {
				t.Fatal("reference frontier empty; case does not exercise recommendations")
			}
			wantRecs := Quantize(front.Candidates())
			gotRecs, err := Recommend(r)
			if err != nil {
				t.Fatal(err)
			}
			wantRecsJSON, err := json.Marshal(wantRecs)
			if err != nil {
				t.Fatal(err)
			}
			gotRecsJSON, err := json.Marshal(gotRecs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotRecsJSON, wantRecsJSON) {
				t.Fatalf("recommendation JSON diverges:\nmemoized:  %s\nreference: %s", gotRecsJSON, wantRecsJSON)
			}
		})
	}
}

// TestFailReasonMatchesSprintf pins failReason's strconv-based rendering
// to fmt's %.Pf output byte-for-byte across the value classes the
// feasibility checks can produce (plus the pathological floats).
func TestFailReasonMatchesSprintf(t *testing.T) {
	vals := []float64{
		0, 0.125, 1.0 / 3.0, 0.5, 2.675, 15.995, 99.994999,
		123456.789, 1e6, -3.25, -0.0004,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	for _, prec := range []int{0, 1, 2} {
		for _, have := range vals {
			for _, want := range vals {
				got := failReason("have ", have, " vs ", want, prec)
				exp := fmt.Sprintf("have %.*f vs %.*f", prec, have, prec, want)
				if got != exp {
					t.Fatalf("failReason(%g, %g, prec=%d) = %q, Sprintf gives %q", have, want, prec, got, exp)
				}
			}
		}
	}
}

// BenchmarkFrontierAdd measures the incremental Pareto front's insert
// cost over a full sweep's worth of candidates in canonical order — the
// collector's hot loop.
func BenchmarkFrontierAdd(b *testing.B) {
	cands, err := Explore(req())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFrontier()
		for j := range cands {
			f.Add(cands[j])
		}
	}
	b.ReportMetric(float64(len(cands)), "cands/front")
}
