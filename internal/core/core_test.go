package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"edram/internal/edram"
	"edram/internal/tech"
)

func req() Requirements {
	return Requirements{
		CapacityMbit:  16,
		BandwidthGBps: 2,
		HitRate:       0.8,
		DefectsPerCm2: 0.8,
	}
}

func TestRequirementsValidate(t *testing.T) {
	if req().Validate() != nil {
		t.Fatal("good requirements rejected")
	}
	bad := []Requirements{
		{CapacityMbit: 0, BandwidthGBps: 1},
		{CapacityMbit: 16, BandwidthGBps: 0},
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 2},
		{CapacityMbit: 16, BandwidthGBps: 1, MaxAreaMm2: -1},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad requirements %d accepted", i)
		}
	}
}

func TestExploreCoversSpace(t *testing.T) {
	cands, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 100 {
		t.Fatalf("design space suspiciously small: %d candidates", len(cands))
	}
	widths := map[int]bool{}
	banks := map[int]bool{}
	reds := map[edram.RedundancyLevel]bool{}
	for _, c := range cands {
		widths[c.Spec.InterfaceBits] = true
		banks[c.Spec.Banks] = true
		reds[c.Spec.Redundancy] = true
		if c.AreaMm2 <= 0 || c.PeakGBps <= 0 || c.CostUSD <= 0 {
			t.Fatalf("candidate with degenerate metrics: %+v", c.Spec)
		}
		if c.SustainedGBps > c.PeakGBps+1e-9 {
			t.Fatalf("sustained %.2f exceeds peak %.2f", c.SustainedGBps, c.PeakGBps)
		}
	}
	for w := 16; w <= 512; w *= 2 {
		if !widths[w] {
			t.Errorf("width %d never explored", w)
		}
	}
	if len(banks) < 4 || len(reds) < 4 {
		t.Error("bank/redundancy dimensions under-explored")
	}
}

func TestExploreErrors(t *testing.T) {
	if _, err := Explore(Requirements{}); err == nil {
		t.Error("invalid requirements must error")
	}
}

func TestFeasibleRespectsConstraints(t *testing.T) {
	r := req()
	r.MaxAreaMm2 = 18
	r.MaxPowerMW = 900
	cands, err := Explore(r)
	if err != nil {
		t.Fatal(err)
	}
	feas := Feasible(cands)
	if len(feas) == 0 {
		t.Fatal("expected feasible candidates")
	}
	for _, c := range feas {
		if c.AreaMm2 > 18 || c.PowerMW > 900 || c.SustainedGBps < 2 {
			t.Fatalf("infeasible candidate slipped through: %+v", c.Spec)
		}
		if len(c.Reasons) != 0 {
			t.Error("feasible candidates must have no violation reasons")
		}
	}
	// And at least one candidate must be infeasible in a constrained
	// problem (otherwise the constraints are vacuous).
	if len(feas) == len(cands) {
		t.Error("constraints filtered nothing")
	}
}

func TestParetoIsNonDominated(t *testing.T) {
	cands, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	feas := Feasible(cands)
	front := Pareto(feas)
	if len(front) == 0 || len(front) >= len(feas) {
		t.Fatalf("front size %d of %d implausible", len(front), len(feas))
	}
	for _, f := range front {
		for _, c := range feas {
			if dominates(&c, &f) {
				t.Fatalf("front member dominated: %+v by %+v", f.Spec, c.Spec)
			}
		}
	}
	// Sorted by area.
	for i := 1; i < len(front); i++ {
		if front[i].AreaMm2 < front[i-1].AreaMm2 {
			t.Fatal("front must be sorted by area")
		}
	}
}

func TestRecommendRoles(t *testing.T) {
	recs, err := Recommend(req())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) > 4 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	roles := map[string]Candidate{}
	for _, r := range recs {
		roles[r.Role] = r.Candidate
		if !r.Feasible {
			t.Errorf("recommendation %s infeasible", r.Role)
		}
	}
	// The named roles must actually optimize their objective among the
	// recommendations.
	if ma, ok := roles["min-area"]; ok {
		for _, r := range recs {
			if r.AreaMm2 < ma.AreaMm2 {
				t.Error("min-area is not minimal")
			}
		}
	}
	if mb, ok := roles["max-bandwidth"]; ok {
		for _, r := range recs {
			if r.SustainedGBps > mb.SustainedGBps {
				t.Error("max-bandwidth is not maximal")
			}
		}
	}
}

func TestRecommendInfeasible(t *testing.T) {
	r := req()
	r.BandwidthGBps = 500 // beyond any 512-bit macro
	if _, err := Recommend(r); err == nil {
		t.Error("impossible bandwidth must error")
	}
}

func TestSustainedEstimateShape(t *testing.T) {
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Sustained grows with hit rate and caps at peak.
	prev := -1.0
	for _, h := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s := SustainedEstimate(m, h)
		if s < prev {
			t.Fatalf("sustained must grow with hit rate at h=%v", h)
		}
		if s > m.PeakBandwidthGBps()+1e-9 {
			t.Fatalf("sustained exceeds peak at h=%v", h)
		}
		prev = s
	}
	if SustainedEstimate(m, 1) < 0.99*m.PeakBandwidthGBps() {
		t.Error("all-hit traffic must sustain ~peak")
	}
}

func TestMoreBanksSustainMore(t *testing.T) {
	one, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 256, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 256, Banks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if SustainedEstimate(eight, 0.3) <= SustainedEstimate(one, 0.3) {
		t.Error("more banks must sustain more under misses")
	}
}

// Property: dominance is irreflexive and asymmetric.
func TestDominanceProperty(t *testing.T) {
	cands, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	f := func(i, j uint16) bool {
		a := cands[int(i)%len(cands)]
		b := cands[int(j)%len(cands)]
		if dominates(&a, &a) {
			return false
		}
		return !(dominates(&a, &b) && dominates(&b, &a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiMacroDimension(t *testing.T) {
	cands, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	ones, twos := 0, 0
	for _, c := range cands {
		switch c.Macros {
		case 1:
			ones++
		case 2:
			twos++
			// Two macros must split the capacity.
			if c.Spec.CapacityMbit != req().CapacityMbit/2 {
				t.Fatalf("2-macro candidate holds %d Mbit each", c.Spec.CapacityMbit)
			}
		default:
			t.Fatalf("unexpected macro count %d", c.Macros)
		}
	}
	if ones == 0 || twos == 0 {
		t.Fatalf("macro dimension under-explored: %d/%d", ones, twos)
	}
}

func TestMultiMacroUnlocksBandwidth(t *testing.T) {
	// A bandwidth target beyond any single 512-bit macro must still be
	// satisfiable with two macros.
	r := req()
	r.BandwidthGBps = 12
	recs, err := Recommend(r)
	if err != nil {
		t.Fatalf("12 GB/s should be reachable with two macros: %v", err)
	}
	found := false
	for _, rec := range recs {
		if rec.Macros == 2 {
			found = true
		}
		if rec.SustainedGBps < 12 {
			t.Errorf("%s sustains only %.1f GB/s", rec.Role, rec.SustainedGBps)
		}
	}
	if !found {
		t.Error("expected a 2-macro recommendation at 12 GB/s")
	}
}

func TestMinClockConstraint(t *testing.T) {
	r := req()
	r.MinClockMHz = 160 // only 256-Kbit-block macros reach this
	cands, err := Explore(r)
	if err != nil {
		t.Fatal(err)
	}
	feas := Feasible(cands)
	if len(feas) == 0 {
		t.Fatal("expected feasible fast configurations")
	}
	for _, c := range feas {
		if c.Macro.ClockMHz < 160 {
			t.Fatalf("slow candidate slipped through: %.0f MHz", c.Macro.ClockMHz)
		}
		if c.Spec.BlockBits != geomBlock256K() {
			t.Errorf("only 256-Kbit blocks reach 160 MHz, got %d-bit blocks", c.Spec.BlockBits)
		}
	}
	bad := req()
	bad.MinClockMHz = -1
	if bad.Validate() == nil {
		t.Error("negative min clock must fail validation")
	}
}

func geomBlock256K() int { return 256 * 1024 }

func TestExploreAcrossProcesses(t *testing.T) {
	r := req()
	r.Processes = tech.Processes()
	cands, err := Explore(r)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[tech.ProcessKind]bool{}
	for _, c := range cands {
		kinds[c.Macro.Geometry.Process.Kind] = true
	}
	if len(kinds) != 3 {
		t.Fatalf("explored %d process kinds, want 3", len(kinds))
	}
	// The DRAM-based process must dominate the min-area pick (denser
	// cells) — the §3 density argument surfacing through the explorer.
	recs, err := Recommend(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Role == "min-area" && rec.Macro.Geometry.Process.Kind == tech.LogicBased {
			t.Error("logic-based process cannot win min-area")
		}
	}
}

func TestValidateBySimulationPaths(t *testing.T) {
	r := req()
	cands, err := Explore(r)
	if err != nil {
		t.Fatal(err)
	}
	c := cands[0]
	// Happy path with a stub simulator.
	v, err := ValidateBySimulation(c, r, func(d float64, cc Candidate) (float64, float64, error) {
		return SustainedEstimate(cc.Macro, 0.5), 0.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Agreement < 0.99 {
		t.Errorf("stub simulator must agree perfectly, got %.3f", v.Agreement)
	}
	// Error propagation.
	if _, err := ValidateBySimulation(c, r, func(float64, Candidate) (float64, float64, error) {
		return 0, 0, errSim
	}); err == nil {
		t.Error("simulator error must propagate")
	}
	// Invalid requirements.
	if _, err := ValidateBySimulation(c, Requirements{}, func(float64, Candidate) (float64, float64, error) {
		return 1, 1, nil
	}); err == nil {
		t.Error("invalid requirements must error")
	}
}

var errSim = fmt.Errorf("boom")

func TestNearestMissReporting(t *testing.T) {
	// An impossible requirement produces an error that names the
	// closest miss's reasons.
	r := req()
	r.BandwidthGBps = 500
	_, err := Recommend(r)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
	if !strings.Contains(err.Error(), "sustained") {
		t.Errorf("error should carry the nearest-miss reason: %v", err)
	}
}
