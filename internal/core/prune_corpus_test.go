package core_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"edram/internal/core"
	"edram/internal/scenario"
)

// TestPrunedParityScenarioCorpus sweeps every requirement set the
// example scenario corpus compiles to, pruned and unpruned, and pins
// the parity invariant on real workloads rather than synthetic
// constraint matrices: the pruned stream is the unpruned stream minus
// proven-infeasible points, and the folded totals match.
func TestPrunedParityScenarioCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus double-sweep")
	}
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	levels := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		sc, err := scenario.Load(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		comp, err := sc.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", e.Name(), err)
		}
		for _, lvl := range comp.Levels {
			if lvl.Kind != "edram" {
				continue
			}
			levels++
			req := lvl.Requirements
			t.Run(e.Name()+"/"+lvl.Name, func(t *testing.T) {
				plain, ps := corpusCollect(t, req)
				pruned, qs := corpusCollect(t, req, core.WithPruning())
				bySeq := make(map[int]core.Candidate, len(plain))
				for _, c := range plain {
					bySeq[c.Seq] = c
				}
				for _, c := range pruned {
					want, ok := bySeq[c.Seq]
					if !ok {
						t.Fatalf("pruned emitted Seq %d absent unpruned", c.Seq)
					}
					if !reflect.DeepEqual(want, c) {
						t.Fatalf("Seq %d differs:\nunpruned %+v\npruned   %+v", c.Seq, want, c)
					}
					delete(bySeq, c.Seq)
				}
				for seq, c := range bySeq {
					if c.Feasible {
						t.Fatalf("pruning removed feasible Seq %d", seq)
					}
				}
				if int64(len(plain)-len(pruned)) != qs.SkippedBuildable {
					t.Fatalf("removed %d != SkippedBuildable %d",
						len(plain)-len(pruned), qs.SkippedBuildable)
				}
				if qs.TotalPoints() != ps.Enumerated || qs.TotalBuilt() != ps.Built ||
					qs.TotalInfeasible() != ps.Infeasible ||
					qs.Pruned != ps.Pruned || qs.FrontSize != ps.FrontSize {
					t.Fatalf("folded stats diverge:\nunpruned %+v\npruned   %+v", ps, qs)
				}
			})
		}
	}
	if levels == 0 {
		t.Fatalf("corpus compiled to no edram levels — test is vacuous")
	}
}

func corpusCollect(t *testing.T, req core.Requirements, opts ...core.ExploreOption) ([]core.Candidate, core.ExploreStats) {
	t.Helper()
	var final core.ExploreStats
	opts = append(opts, core.WithProgress(func(s core.ExploreStats) {
		if s.Done {
			final = s
		}
	}))
	ch, err := core.ExploreContext(context.Background(), req, opts...)
	if err != nil {
		t.Fatalf("ExploreContext: %v", err)
	}
	var out []core.Candidate
	for c := range ch {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if !final.Done {
		t.Fatalf("no final snapshot")
	}
	return out, final
}
