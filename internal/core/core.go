// Package core implements the paper's primary contribution as a usable
// tool: systematic exploration of the embedded-memory design space. The
// paper's §3 lists the free dimensions — number of banks, page length,
// word/interface width, building-block size, redundancy level, base
// process — and argues that "it is incumbent upon eDRAM suppliers to
// make the trade-offs transparent and to quantize the design space into
// a set of understandable if slightly sub-optimal solutions". Explore
// enumerates the space, evaluates every candidate through the area,
// timing, power, yield and cost models, filters by the application's
// constraints, extracts the Pareto frontier, and quantizes it into named
// recommendations.
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"edram/internal/cost"
	"edram/internal/edram"
	"edram/internal/power"
	"edram/internal/tech"
	"edram/internal/units"
)

// Requirements captures what the application needs from the memory.
// The JSON names are the wire schema of the service layer
// (internal/service) and of edramx -json; they are stable.
type Requirements struct {
	// CapacityMbit of usable storage.
	CapacityMbit int `json:"capacity_mbit"`
	// BandwidthGBps of *sustained* bandwidth under the expected access
	// mix.
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	// HitRate is the expected page-hit rate of the workload (used by
	// the closed-form sustained-bandwidth estimate).
	HitRate float64 `json:"hit_rate"`
	// MaxAreaMm2 caps the macro area (0 = unconstrained).
	MaxAreaMm2 float64 `json:"max_area_mm2,omitempty"`
	// MaxPowerMW caps the macro's busy power (0 = unconstrained).
	MaxPowerMW float64 `json:"max_power_mw,omitempty"`
	// MinClockMHz requires the macro interface to reach at least this
	// clock (0 = unconstrained).
	MinClockMHz float64 `json:"min_clock_mhz,omitempty"`
	// Processes optionally widens the exploration to several base
	// processes (§3's DRAM-based / logic-based / merged choice); empty
	// means the default DRAM-based eDRAM process.
	Processes []tech.Process `json:"processes,omitempty"`
	// DefectsPerCm2 parameterizes the yield/cost model.
	DefectsPerCm2 float64 `json:"defects_per_cm2,omitempty"`
}

// Violations lists every constraint the requirements violate, in field
// order (empty = valid). Callers that can only surface one error should
// use Validate, which folds the whole list into a single message.
func (r Requirements) Violations() []string {
	var v []string
	if r.CapacityMbit <= 0 {
		v = append(v, fmt.Sprintf("capacity must be positive, got %d Mbit", r.CapacityMbit))
	}
	if r.BandwidthGBps <= 0 {
		v = append(v, fmt.Sprintf("bandwidth must be positive, got %g GB/s", r.BandwidthGBps))
	}
	if r.HitRate < 0 || r.HitRate > 1 {
		v = append(v, fmt.Sprintf("hit rate %g out of [0,1]", r.HitRate))
	}
	if r.MaxAreaMm2 < 0 {
		v = append(v, fmt.Sprintf("area cap must be non-negative, got %g mm²", r.MaxAreaMm2))
	}
	if r.MaxPowerMW < 0 {
		v = append(v, fmt.Sprintf("power cap must be non-negative, got %g mW", r.MaxPowerMW))
	}
	if r.MinClockMHz < 0 {
		v = append(v, fmt.Sprintf("min clock must be non-negative, got %g MHz", r.MinClockMHz))
	}
	if r.DefectsPerCm2 < 0 {
		v = append(v, fmt.Sprintf("defect density must be non-negative, got %g /cm²", r.DefectsPerCm2))
	}
	return v
}

// Validate checks the requirements, reporting every violation (not just
// the first) in one error so the CLI and the service layer surface
// identical, complete messages.
func (r Requirements) Validate() error {
	if v := r.Violations(); len(v) > 0 {
		return fmt.Errorf("core: invalid requirements: %s", strings.Join(v, "; "))
	}
	return nil
}

// CanonicalKey is the normalized fingerprint of the requirements used
// as the service layer's cache and coalescing identity: two requests
// describing the same exploration produce the same key no matter how
// their JSON was spelled. Normalization is purely formatting — integers
// in base 10, floats in shortest round-trip form, processes by their
// full parameter fingerprint (tech.Process.CanonicalKey — the name
// alone would alias same-named but differently-parameterized custom
// processes) in declared order (order changes the sweep's enumeration
// sequence, so it is part of the identity).
//
//cachekey:fields v2 BandwidthGBps,CapacityMbit,DefectsPerCm2,HitRate,MaxAreaMm2,MaxPowerMW,MinClockMHz,Processes
func (r Requirements) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("req/v2")
	fmt.Fprintf(&b, "|cap=%d", r.CapacityMbit)
	b.WriteString("|bw=" + canonFloat(r.BandwidthGBps))
	b.WriteString("|hit=" + canonFloat(r.HitRate))
	b.WriteString("|area=" + canonFloat(r.MaxAreaMm2))
	b.WriteString("|power=" + canonFloat(r.MaxPowerMW))
	b.WriteString("|clock=" + canonFloat(r.MinClockMHz))
	b.WriteString("|defects=" + canonFloat(r.DefectsPerCm2))
	if len(r.Processes) > 0 {
		keys := make([]string, len(r.Processes))
		for i, p := range r.Processes {
			keys[i] = p.CanonicalKey()
		}
		b.WriteString("|procs=" + strings.Join(keys, ","))
	}
	return b.String()
}

// StructuralKey fingerprints the requirement fields that shape the
// design space itself — the enumeration (CapacityMbit, Processes) and
// the per-point metric values (HitRate feeds the sustained-bandwidth
// model, DefectsPerCm2 the cost model). Two requirements with equal
// structural keys differ at most in the four pure constraint values
// (BandwidthGBps, MaxAreaMm2, MaxPowerMW, MinClockMHz), which only
// re-classify feasibility of unchanged candidates — the delta
// re-exploration eligibility rule (DESIGN.md §6). Formatting matches
// CanonicalKey so the structural key is a sub-projection of it.
func (r Requirements) StructuralKey() string {
	var b strings.Builder
	b.WriteString("reqstruct/v1")
	fmt.Fprintf(&b, "|cap=%d", r.CapacityMbit)
	b.WriteString("|hit=" + canonFloat(r.HitRate))
	b.WriteString("|defects=" + canonFloat(r.DefectsPerCm2))
	if len(r.Processes) > 0 {
		keys := make([]string, len(r.Processes))
		for i, p := range r.Processes {
			keys[i] = p.CanonicalKey()
		}
		b.WriteString("|procs=" + strings.Join(keys, ","))
	}
	return b.String()
}

// canonFloat renders a float in its shortest exact round-trip form, the
// canonical-key formatting rule shared with edram.Spec.CanonicalKey.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Candidate is one evaluated point of the design space.
type Candidate struct {
	// Seq is the candidate's position in canonical enumeration order
	// (assigned by Sweep); it makes results comparable across runs no
	// matter which worker evaluated them.
	Seq   int
	Spec  edram.Spec
	Macro *edram.Macro
	// Macros is the number of identical macros the capacity is split
	// across (each with its own independent interface) — the
	// "interface organization" dimension of paper §3.
	Macros int
	// Evaluated metrics.
	AreaMm2       float64
	PowerMW       float64
	PeakGBps      float64
	SustainedGBps float64
	DieYield      float64
	CostUSD       float64 // macro die-cost share per good die
	// CostPerMbitUSD normalizes CostUSD by the usable capacity, making
	// the ECC and redundancy area overheads comparable across points.
	CostPerMbitUSD float64
	// Feasible is true when every requirement is met; Reasons lists
	// the violated constraints otherwise.
	Feasible bool
	Reasons  []string
}

// SustainedEstimate is the closed-form sustained-bandwidth model: a hit
// proceeds at the interface cycle; a miss pays the row cycle amortized
// over the banks that can overlap their activations, but never less
// than the activation path (tRCD) the in-order controller serializes,
// plus the transfer cycle. Validated against the event-driven simulator
// in ablation A3.
func SustainedEstimate(m *edram.Macro, hitRate float64) float64 {
	hitRate = units.Clamp(hitRate, 0, 1)
	tm := m.Timing
	banks := float64(m.Geometry.Banks)
	perHit := tm.TCKns
	rowShare := tm.TRCns / banks
	if rowShare < tm.TRCDns {
		rowShare = tm.TRCDns
	}
	missPenalty := rowShare + tm.TCKns
	avg := hitRate*perHit + (1-hitRate)*missPenalty
	if avg <= 0 {
		return 0
	}
	return m.PeakBandwidthGBps() * perHit / avg
}

// repairFractionFor maps redundancy level to the fraction of
// memory-defective dies the spares recover (calibrated against the
// yield package's Monte-Carlo results for typical defect clusters).
func repairFractionFor(level edram.RedundancyLevel) float64 {
	switch level {
	case edram.RedundancyLow:
		return 0.70
	case edram.RedundancyStd:
		return 0.90
	case edram.RedundancyHigh:
		return 0.97
	default:
		return 0
	}
}

// evaluate builds and scores one spec, replicated over `macros`
// identical instances that share the load. It is the unmemoized
// reference path; the explore engine runs the byte-identical
// evalMemo.evaluate (see memo.go).
func evaluate(spec edram.Spec, macros int, req Requirements, e tech.Electrical, ce power.CoreEnergy) (Candidate, error) {
	if macros < 1 {
		macros = 1
	}
	m, err := edram.Build(spec)
	if err != nil {
		return Candidate{}, err
	}
	dieCost, yieldEff, err := cost.MacroDieCost(m.Geometry.Process, 0,
		float64(macros)*m.Area.TotalMm2, req.DefectsPerCm2, repairFractionFor(spec.Redundancy))
	if err != nil {
		return Candidate{}, err
	}
	return scoreCandidate(spec, macros, m, req, e, ce, dieCost, yieldEff), nil
}

// scoreCandidate assembles the per-point metrics and feasibility checks
// from a built macro and its die-cost results — the shared tail of the
// unmemoized evaluate and the memoized evalMemo.evaluate, so the two
// paths cannot drift apart.
func scoreCandidate(spec edram.Spec, macros int, m *edram.Macro, req Requirements, e tech.Electrical, ce power.CoreEnergy, dieCostUSD, dieYield float64) Candidate {
	n := float64(macros)
	c := Candidate{Spec: spec, Macro: m, Macros: macros}
	c.AreaMm2 = n * m.Area.TotalMm2
	c.PeakGBps = n * m.PeakBandwidthGBps()
	c.SustainedGBps = n * SustainedEstimate(m, req.HitRate)
	pr := m.Power(e, ce, 1.0, req.HitRate)
	c.PowerMW = n * pr.TotalMW

	c.CostUSD = dieCostUSD
	c.DieYield = dieYield
	c.CostPerMbitUSD = cost.CostPerMbitUSD(dieCostUSD, float64(req.CapacityMbit))

	c.Feasible = true
	fail := func(pre string, have float64, mid string, want float64, prec int) {
		c.Feasible = false
		c.Reasons = append(c.Reasons, failReason(pre, have, mid, want, prec))
	}
	if c.SustainedGBps < req.BandwidthGBps {
		fail("sustained ", c.SustainedGBps, " GB/s < required ", req.BandwidthGBps, 2)
	}
	if req.MaxAreaMm2 > 0 && c.AreaMm2 > req.MaxAreaMm2 {
		fail("area ", c.AreaMm2, " mm² > cap ", req.MaxAreaMm2, 1)
	}
	if req.MaxPowerMW > 0 && c.PowerMW > req.MaxPowerMW {
		fail("power ", c.PowerMW, " mW > cap ", req.MaxPowerMW, 0)
	}
	if req.MinClockMHz > 0 && m.ClockMHz < req.MinClockMHz {
		fail("clock ", m.ClockMHz, " MHz < required ", req.MinClockMHz, 0)
	}
	return c
}

// failReason renders one "<pre><have><mid><want>" infeasibility message
// with both values at fixed precision. It is fmt.Sprintf("%s%.Pf%s%.Pf")
// minus fmt's formatting machinery — the sweep evaluates thousands of
// infeasible candidates per explore and the Sprintf calls used to be
// its largest single CPU item. strconv.AppendFloat('f', prec) emits the
// same bytes %.Pf would (TestFailReasonMatchesSprintf pins this).
func failReason(pre string, have float64, mid string, want float64, prec int) string {
	buf := make([]byte, 0, 64)
	buf = append(buf, pre...)
	buf = strconv.AppendFloat(buf, have, 'f', prec, 64)
	buf = append(buf, mid...)
	buf = strconv.AppendFloat(buf, want, 'f', prec, 64)
	return string(buf)
}

// Explore enumerates the §3 design space for the requirements: interface
// widths 16..512, bank counts 1..8, page lengths (4x..16x interface),
// both building blocks and all redundancy levels. It returns every
// buildable candidate, feasible or not, in canonical enumeration order.
//
// Explore is a compatibility wrapper over the streaming engine; new
// code should prefer ExploreContext, which adds cancellation, a worker
// pool, and progress/observer hooks.
func Explore(req Requirements) ([]Candidate, error) {
	ch, err := ExploreContext(context.Background(), req)
	if err != nil {
		return nil, err
	}
	// Seq values are unique positions in [0, sweepCount), so canonical
	// order is restored by placing each candidate at its Seq slot and
	// compacting over the unbuildable gaps — O(n) with one exactly-sized
	// allocation, instead of append-doubling plus a reflective sort that
	// both churn the ~300-byte Candidate struct.
	buf := make([]Candidate, sweepCount(req, resolveProcesses(req)))
	n := 0
	for c := range ch {
		buf[c.Seq] = c
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("core: no buildable configuration for %+v", req)
	}
	w := 0
	for i := range buf {
		if buf[i].Macro == nil { // unbuildable corner: slot never filled
			continue
		}
		if w != i {
			buf[w] = buf[i]
		}
		w++
	}
	return buf[:w], nil
}

// Feasible filters to the candidates meeting every requirement.
func Feasible(cands []Candidate) []Candidate {
	var out []Candidate
	for _, c := range cands {
		if c.Feasible {
			out = append(out, c)
		}
	}
	return out
}

// dominates reports whether a is at least as good as b on (area, power,
// cost, -sustained) and strictly better somewhere. It takes pointers
// because the dominance scans in Frontier.Add and Pareto are the hot
// loops of the explore collector — passing the ~200-byte Candidate by
// value made struct copying the top profile entry. The strictly-worse
// test runs first: on a healthy front most comparisons are between
// mutually non-dominated candidates, and those exit on the first
// objective where b wins.
func dominates(a, b *Candidate) bool {
	if a.AreaMm2 > b.AreaMm2 || a.PowerMW > b.PowerMW ||
		a.CostUSD > b.CostUSD || a.SustainedGBps < b.SustainedGBps {
		return false
	}
	return a.AreaMm2 < b.AreaMm2 || a.PowerMW < b.PowerMW ||
		a.CostUSD < b.CostUSD || a.SustainedGBps > b.SustainedGBps
}

// Pareto extracts the non-dominated candidates (objectives: minimize
// area, power and cost; maximize sustained bandwidth), sorted by area.
func Pareto(cands []Candidate) []Candidate {
	var front []Candidate
	for i := range cands {
		dominated := false
		for j := range cands {
			if i != j && dominates(&cands[j], &cands[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, cands[i])
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].AreaMm2 < front[j].AreaMm2 })
	return front
}

// Recommendation is one quantized solution with a role label — the
// paper's "set of understandable if slightly sub-optimal solutions".
type Recommendation struct {
	Role string
	Candidate
}

// Recommend explores the space and quantizes the feasible Pareto
// frontier into at most four named configurations.
//
// Recommend is a compatibility wrapper over the streaming engine; new
// code should prefer RecommendContext.
func Recommend(req Requirements) ([]Recommendation, error) {
	return RecommendContext(context.Background(), req)
}

// Validation is the outcome of checking a candidate against the
// event-driven simulator (the A3 ablation applied to one design point).
type Validation struct {
	ModelGBps     float64
	SimulatedGBps float64
	SimHitRate    float64
	// Agreement = min(model,sim)/max(model,sim).
	Agreement float64
	// MeetsRequirement is true when the simulated sustained bandwidth
	// (per macro, scaled by the macro count) covers the requirement.
	MeetsRequirement bool
}

// ValidateBySimulation replays a standard three-client contention mix on
// the candidate's device configuration and compares the measured
// sustained bandwidth with the closed-form estimate the explorer used.
// The simulation hook is injected (internal/sched provides it) to keep
// the package dependency-light; see Experiments A3 for the calibration.
type SimulateFunc func(devTotalGBpsDemand float64, c Candidate) (sustainedGBps, hitRate float64, err error)

// ValidateBySimulation runs the injected simulator against the candidate.
func ValidateBySimulation(c Candidate, req Requirements, sim SimulateFunc) (Validation, error) {
	if sim == nil {
		return Validation{}, fmt.Errorf("core: nil simulator")
	}
	if err := req.Validate(); err != nil {
		return Validation{}, err
	}
	perMacroDemand := req.BandwidthGBps / float64(maxInt(1, c.Macros))
	simGB, hit, err := sim(perMacroDemand, c)
	if err != nil {
		return Validation{}, err
	}
	v := Validation{
		ModelGBps:     SustainedEstimate(c.Macro, hit) * float64(maxInt(1, c.Macros)),
		SimulatedGBps: simGB * float64(maxInt(1, c.Macros)),
		SimHitRate:    hit,
	}
	lo, hi := v.ModelGBps, v.SimulatedGBps
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 0 {
		v.Agreement = lo / hi
	}
	v.MeetsRequirement = v.SimulatedGBps >= req.BandwidthGBps
	return v, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
