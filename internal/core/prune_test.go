package core

import (
	"context"
	"reflect"
	"testing"

	"edram/internal/tech"
)

// collectSorted runs ExploreContext with the options and returns the
// candidate stream in canonical Seq order plus the final stats.
func collectSorted(t *testing.T, req Requirements, opts ...ExploreOption) ([]Candidate, ExploreStats) {
	t.Helper()
	var final ExploreStats
	opts = append(opts, WithProgress(func(s ExploreStats) {
		if s.Done {
			final = s
		}
	}))
	ch, err := ExploreContext(context.Background(), req, opts...)
	if err != nil {
		t.Fatalf("ExploreContext: %v", err)
	}
	var out []Candidate
	for c := range ch {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if !final.Done {
		t.Fatalf("no final progress snapshot")
	}
	return out, final
}

// pruneParityReqs is the constraint matrix the parity tests sweep:
// unconstrained, each monotone constraint alone at a pruning-relevant
// value, all combined, a multi-process request, and an
// over-the-concept-ceiling capacity whose whole space is skipped.
func pruneParityReqs() map[string]Requirements {
	return map[string]Requirements{
		"unconstrained": {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5},
		"tight-area":    {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 20},
		"impossible-area": {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5,
			MaxAreaMm2: 0.001},
		"high-bw":   {CapacityMbit: 16, BandwidthGBps: 3.5, HitRate: 0.8},
		"min-clock": {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MinClockMHz: 95},
		"combined": {CapacityMbit: 32, BandwidthGBps: 2.5, HitRate: 0.7,
			MaxAreaMm2: 60, MaxPowerMW: 900, MinClockMHz: 80, DefectsPerCm2: 0.8},
		"multi-proc": {CapacityMbit: 16, BandwidthGBps: 2, HitRate: 0.6,
			MaxAreaMm2: 40, Processes: tech.Processes()},
		"over-ceiling": {CapacityMbit: 1000, BandwidthGBps: 1, HitRate: 0.5},
		"odd-capacity": {CapacityMbit: 13, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 25},
	}
}

// assertPruneParity pins the tentpole invariant between an unpruned and
// a pruned run of the same window: the pruned stream is exactly the
// unpruned stream minus analytically skipped points, every candidate
// the pruning removed was infeasible (soundness), the feasible sets are
// identical, and the folded stats totals match the unpruned counters.
func assertPruneParity(t *testing.T, plain, pruned []Candidate, ps, qs ExploreStats) {
	t.Helper()
	if ps.Skipped != 0 || ps.SkippedBuildable != 0 {
		t.Fatalf("unpruned run reported skips: %+v", ps)
	}
	bySeq := make(map[int]*Candidate, len(plain))
	for i := range plain {
		bySeq[plain[i].Seq] = &plain[i]
	}
	for i := range pruned {
		c := &pruned[i]
		want := bySeq[c.Seq]
		if want == nil {
			t.Fatalf("pruned run emitted Seq %d the unpruned run did not", c.Seq)
		}
		if !reflect.DeepEqual(*want, *c) {
			t.Fatalf("candidate Seq %d differs:\nunpruned %+v\npruned   %+v", c.Seq, *want, *c)
		}
		delete(bySeq, c.Seq)
	}
	for seq, c := range bySeq {
		if c.Feasible {
			t.Fatalf("pruning removed feasible candidate Seq %d: %+v", seq, *c)
		}
	}
	if int64(len(plain)-len(pruned)) != qs.SkippedBuildable {
		t.Fatalf("pruning removed %d built candidates but SkippedBuildable is %d",
			len(plain)-len(pruned), qs.SkippedBuildable)
	}
	if qs.TotalPoints() != ps.Enumerated {
		t.Fatalf("TotalPoints %d != unpruned Enumerated %d", qs.TotalPoints(), ps.Enumerated)
	}
	if qs.TotalBuilt() != ps.Built {
		t.Fatalf("TotalBuilt %d != unpruned Built %d", qs.TotalBuilt(), ps.Built)
	}
	if qs.TotalInfeasible() != ps.Infeasible {
		t.Fatalf("TotalInfeasible %d != unpruned Infeasible %d", qs.TotalInfeasible(), ps.Infeasible)
	}
	if qs.Pruned != ps.Pruned || qs.FrontSize != ps.FrontSize {
		t.Fatalf("front counters differ: pruned %+v vs unpruned %+v", qs, ps)
	}
}

func TestPrunedExploreParity(t *testing.T) {
	for name, req := range pruneParityReqs() {
		req := req
		t.Run(name, func(t *testing.T) {
			plain, ps := collectSorted(t, req)
			pruned, qs := collectSorted(t, req, WithPruning())
			assertPruneParity(t, plain, pruned, ps, qs)
		})
	}
}

// TestPrunedExploreRangeParity pins byte-compatibility of Seq numbering
// under pruning for ranged sweeps — the property shard partitions and
// job checkpoints rely on: a window of a pruned sweep equals the same
// window of an unpruned sweep, and the windowed tallies still fold to
// the unpruned window totals.
func TestPrunedExploreRangeParity(t *testing.T) {
	req := Requirements{CapacityMbit: 32, BandwidthGBps: 2.5, HitRate: 0.7,
		MaxAreaMm2: 60, MinClockMHz: 80}
	total := SweepCount(req)
	windows := [][2]int{{0, total}, {0, total / 3}, {total / 3, 2 * total / 3},
		{2 * total / 3, total}, {total / 2, total/2 + 1}, {7, 777}}
	for _, w := range windows {
		plain, ps := collectSorted(t, req, WithSeqRange(w[0], w[1]))
		pruned, qs := collectSorted(t, req, WithSeqRange(w[0], w[1]), WithPruning())
		assertPruneParity(t, plain, pruned, ps, qs)
	}
}

// TestPointAtInvertsSweep pins pointAt as the exact inverse of the
// sweep enumeration, including for multi-process requests.
func TestPointAtInvertsSweep(t *testing.T) {
	for _, req := range []Requirements{
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5},
		{CapacityMbit: 13, BandwidthGBps: 1, HitRate: 0.5},
		{CapacityMbit: 8, BandwidthGBps: 1, HitRate: 0.5, Processes: tech.Processes()},
	} {
		procs := resolveProcesses(req)
		batches, err := sweepBatchesOver(context.Background(), req, procs, 0, maxSeq, nil)
		if err != nil {
			t.Fatalf("sweepBatchesOver: %v", err)
		}
		n := 0
		for bp := range batches {
			for _, want := range *bp {
				got := pointAt(req, procs, want.Seq)
				if got.Seq != want.Seq || got.Macros != want.Macros ||
					got.Spec != want.Spec {
					t.Fatalf("pointAt(%d) = %+v, sweep emitted %+v", want.Seq, got, want)
				}
				n++
			}
			putPointBatch(bp)
		}
		if n != SweepCount(req) {
			t.Fatalf("sweep emitted %d points, SweepCount says %d", n, SweepCount(req))
		}
	}
}

// TestPlanEnumeratedComplementsTally pins the two plan views against
// each other: over any window, enumerated intervals plus tallied skips
// cover the window exactly.
func TestPlanEnumeratedComplementsTally(t *testing.T) {
	req := Requirements{CapacityMbit: 16, BandwidthGBps: 3, HitRate: 0.6, MaxAreaMm2: 30}
	procs := resolveProcesses(req)
	plan := newPrunePlan(req, procs)
	if plan == nil {
		t.Fatalf("expected a plan for the default process")
	}
	total := plan.total
	for _, w := range [][2]int{{0, total}, {5, total - 5}, {total / 2, total/2 + 100}} {
		skipped, _ := plan.tally(w[0], w[1])
		enum := 0
		last := w[0]
		for _, r := range plan.enumerated(w[0], w[1]) {
			if r.From < last || r.To <= r.From || r.To > w[1] {
				t.Fatalf("window %v: bad interval %+v", w, r)
			}
			last = r.To
			enum += r.To - r.From
		}
		if int64(enum)+skipped != int64(w[1]-w[0]) {
			t.Fatalf("window %v: enumerated %d + skipped %d != %d", w, enum, skipped, w[1]-w[0])
		}
	}
}
