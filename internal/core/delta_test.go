package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"edram/internal/tech"
)

// coldDelta runs a cold pruned full sweep of req and returns the final
// frontier (canonical order) plus folded stats — the reference
// DeltaExplore must reproduce exactly. The front is folded from the
// stream exactly as the engine folds its own (order-independent).
func coldDelta(t *testing.T, req Requirements) ([]Candidate, ExploreStats) {
	t.Helper()
	stream, stats := collectSorted(t, req, WithPruning())
	front := NewFrontier()
	for _, c := range stream {
		front.Add(c)
	}
	return front.Candidates(), stats
}

// recordedState runs one cold pruned explore of req and builds a sealed
// DeltaState from its stream, as the service does.
func recordedState(t *testing.T, req Requirements) *DeltaState {
	t.Helper()
	s, err := NewDeltaState(req)
	if err != nil {
		t.Fatalf("NewDeltaState: %v", err)
	}
	ch, err := ExploreContext(context.Background(), req, WithPruning(),
		WithObserver(s.Observe))
	if err != nil {
		t.Fatalf("ExploreContext: %v", err)
	}
	for range ch {
	}
	s.Seal()
	return s
}

// assertDeltaParity pins DeltaExplore(newReq) against a cold pruned
// full sweep of newReq: identical frontier candidates (deep equal,
// canonical order) and identical folded counters.
func assertDeltaParity(t *testing.T, s *DeltaState, newReq Requirements) {
	t.Helper()
	res, err := DeltaExplore(context.Background(), s, newReq, 2)
	if err != nil {
		t.Fatalf("DeltaExplore: %v", err)
	}
	wantFront, wantStats := coldDelta(t, newReq)
	if len(res.Frontier) != len(wantFront) {
		t.Fatalf("frontier size %d != cold %d (req %+v)",
			len(res.Frontier), len(wantFront), newReq)
	}
	for i := range wantFront {
		if !reflect.DeepEqual(res.Frontier[i], wantFront[i]) {
			t.Fatalf("frontier[%d] differs (req %+v):\ndelta %+v\ncold  %+v",
				i, newReq, res.Frontier[i], wantFront[i])
		}
	}
	rs, ws := res.Stats, wantStats
	if rs.Enumerated != ws.Enumerated || rs.Built != ws.Built ||
		rs.Infeasible != ws.Infeasible || rs.Skipped != ws.Skipped ||
		rs.SkippedBuildable != ws.SkippedBuildable ||
		rs.Pruned != ws.Pruned || rs.FrontSize != ws.FrontSize {
		t.Fatalf("stats differ (req %+v):\ndelta %+v\ncold  %+v", newReq, rs, ws)
	}
	if res.Swept+res.Reused < rs.Built {
		t.Fatalf("swept %d + reused %d cannot cover built %d",
			res.Swept, res.Reused, rs.Built)
	}
}

func TestDeltaExploreTightenLoosen(t *testing.T) {
	base := Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 60}
	s := recordedState(t, base)
	for _, newReq := range []Requirements{
		// Tighten area: pure re-filter, nothing swept.
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 25},
		// Loosen area fully: exposes intervals the first run pruned.
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5},
		// Tighten bandwidth and add clock floor together.
		{CapacityMbit: 16, BandwidthGBps: 2.5, HitRate: 0.5, MinClockMHz: 90},
		// Empty the feasible set entirely.
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 0.001},
		// Un-empty it again (state must have survived the empty round).
		{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, MaxAreaMm2: 40, MaxPowerMW: 1200},
	} {
		assertDeltaParity(t, s, newReq)
	}
}

func TestDeltaExploreRejectsStructuralChange(t *testing.T) {
	s := recordedState(t, Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5})
	for name, bad := range map[string]Requirements{
		"capacity": {CapacityMbit: 32, BandwidthGBps: 1, HitRate: 0.5},
		"hit-rate": {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.6},
		"defects":  {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, DefectsPerCm2: 0.9},
		"procs": {CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5,
			Processes: tech.Processes()},
	} {
		if s.Eligible(bad) {
			t.Fatalf("%s change reported delta-eligible", name)
		}
		if _, err := DeltaExplore(context.Background(), s, bad, 1); err == nil {
			t.Fatalf("%s change: DeltaExplore accepted a structural delta", name)
		}
	}
}

// TestDeltaExploreRandomDeltas is the property test: seeded random
// constraint deltas (tighten, loosen, drop, mixed — including rounds
// that empty or un-empty the feasible set) applied as a sequence
// against one evolving state, each asserted byte-equal to a cold sweep.
func TestDeltaExploreRandomDeltas(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round full-sweep property test")
	}
	rng := rand.New(rand.NewSource(0x6ed4a3))
	base := Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5,
		MaxAreaMm2: 50, MinClockMHz: 80}
	s := recordedState(t, base)
	pick := func(vals []float64) float64 { return vals[rng.Intn(len(vals))] }
	for round := 0; round < 12; round++ {
		newReq := base
		// Each constraint independently keeps, tightens, loosens, or
		// drops (where zero means unconstrained); the value pools span
		// satisfiable through unsatisfiable extremes.
		newReq.BandwidthGBps = pick([]float64{0.5, 1, 2, 3.5, 6})
		newReq.MaxAreaMm2 = pick([]float64{0, 0.001, 20, 50, 120})
		newReq.MaxPowerMW = pick([]float64{0, 300, 900, 2500})
		newReq.MinClockMHz = pick([]float64{0, 70, 95, 500})
		assertDeltaParity(t, s, newReq)
	}
}
