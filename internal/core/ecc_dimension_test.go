package core

import (
	"testing"

	"edram/internal/reliab"
)

// TestExploreCoversECC: the sweep evaluates both word protections and
// prices them apart.
func TestExploreCoversECC(t *testing.T) {
	cands, err := Explore(req())
	if err != nil {
		t.Fatal(err)
	}
	// Index by everything except ECC to find paired points.
	type key struct {
		macros, iface, banks, page, block int
		red                               int
	}
	byKey := map[key]map[reliab.ECC]Candidate{}
	for _, c := range cands {
		k := key{c.Macros, c.Spec.InterfaceBits, c.Spec.Banks, c.Spec.PageBits, c.Spec.BlockBits, int(c.Spec.Redundancy)}
		if byKey[k] == nil {
			byKey[k] = map[reliab.ECC]Candidate{}
		}
		byKey[k][c.Spec.ECC] = c
		if c.CostPerMbitUSD <= 0 {
			t.Fatalf("candidate %d has no cost per Mbit", c.Seq)
		}
	}
	pairs := 0
	for k, m := range byKey {
		plain, okP := m[reliab.ECCNone]
		prot, okS := m[reliab.ECCSECDED]
		if !okP || !okS {
			continue
		}
		pairs++
		if prot.AreaMm2 <= plain.AreaMm2 {
			t.Fatalf("%+v: SEC-DED area %g not above plain %g", k, prot.AreaMm2, plain.AreaMm2)
		}
		if prot.CostPerMbitUSD <= plain.CostPerMbitUSD {
			t.Fatalf("%+v: SEC-DED cost/Mbit %g not above plain %g", k, prot.CostPerMbitUSD, plain.CostPerMbitUSD)
		}
	}
	if pairs == 0 {
		t.Fatal("no ECC pairs found in the sweep")
	}
}
