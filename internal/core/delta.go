// Incremental delta re-exploration. The service's common warm pattern
// is "tweak one constraint and re-explore": the requirement set keeps
// its structure (capacity, hit rate, defect density, processes) and
// only constraint values move. Those four constraints never change a
// candidate's metrics — they only re-classify feasibility — so a prior
// run's per-point evaluations can be reused wholesale: re-filter the
// retained evaluations under the new constraint values, sweep only the
// Seq intervals the previous (pruned) run never enumerated and the new
// constraints now need, and merge through a fresh Frontier. The result
// is byte-identical to a cold full sweep of the new requirements,
// pinned the same way shard merge parity is (see delta_test.go and the
// service parity tests).

package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"edram/internal/power"
	"edram/internal/tech"
)

// pointEval is the retained evaluation of one built sweep point: the
// exact metric floats every feasibility comparison and dominance test
// reads. Everything else about the candidate is reconstructed on demand
// from its Seq (pointAt + the unmemoized evaluate, byte-identical to
// the sweep's memoized path).
type pointEval struct {
	seq                                 int
	area, power, cost, sustained, clock float64
}

// deltaGapTolerance bounds missing-interval fragmentation: gaps of
// already-covered points up to this long are re-swept rather than
// spinning one explore engine per fragment (covered duplicates are
// dropped on arrival, so over-sweeping is a pure time trade).
const deltaGapTolerance = 1024

// DeltaState retains what a completed explore learned about one
// requirement structure: the evaluations of every built point inside
// the covered Seq intervals. It is keyed by Requirements.StructuralKey;
// DeltaExplore serves any requirement set with the same structure from
// it, extending coverage as loosened constraints expose new intervals.
//
// A DeltaState is not safe for concurrent use — the service layer
// serializes access per state.
type DeltaState struct {
	req      Requirements
	key      string
	procs    []tech.Process
	total    int
	evals    []pointEval // sorted by seq once sealed
	coverage []seqRange  // sorted, disjoint
	sealed   bool
}

// NewDeltaState prepares recording for one full pruned explore of req.
// Feed every built candidate to Observe (WithObserver, or the result
// stream) and call Seal once the run completed; the state then covers
// exactly the intervals a pruned full sweep enumerates.
func NewDeltaState(req Requirements) (*DeltaState, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	procs := resolveProcesses(req)
	return &DeltaState{
		req:   req,
		key:   req.StructuralKey(),
		procs: procs,
		total: sweepCount(req, procs),
	}, nil
}

// StructuralKey returns the requirement-structure fingerprint the state
// serves.
func (s *DeltaState) StructuralKey() string { return s.key }

// Eligible reports whether newReq can be served by delta
// re-exploration from this state: the structural key must match (only
// the four pure constraint values may differ). Any structural change —
// capacity, hit rate, defect density, process set or order — alters
// candidate metrics or the enumeration itself and forces a cold sweep.
func (s *DeltaState) Eligible(newReq Requirements) bool {
	return s.sealed && newReq.StructuralKey() == s.key
}

// Observe records one built candidate of the state's own full explore.
// It must see every built candidate of a pruned full sweep of the
// state's requirements, in any order, before Seal.
func (s *DeltaState) Observe(c Candidate) {
	s.evals = append(s.evals, pointEval{
		seq:       c.Seq,
		area:      c.AreaMm2,
		power:     c.PowerMW,
		cost:      c.CostUSD,
		sustained: c.SustainedGBps,
		clock:     c.Macro.ClockMHz,
	})
}

// Seal marks the recording complete: the state now covers the
// enumerated intervals of a pruned full sweep of its requirements.
// Call it only after the explore ran to completion.
func (s *DeltaState) Seal() {
	plan := newPrunePlan(s.req, s.procs)
	s.coverage = plan.enumerated(0, s.total)
	sort.Slice(s.evals, func(i, j int) bool { return s.evals[i].seq < s.evals[j].seq })
	// Drop evaluations outside the coverage intervals (a recording fed
	// from an unpruned run observes points inside skipped subspaces):
	// evals ⊆ coverage is the invariant that keeps a later re-sweep of
	// a missing interval from double-counting.
	keep := s.evals[:0]
	for _, ev := range s.evals {
		if rangesContain(s.coverage, ev.seq) {
			keep = append(keep, ev)
		}
	}
	s.evals = keep
	s.sealed = true
}

// Evals returns the number of retained point evaluations.
func (s *DeltaState) Evals() int { return len(s.evals) }

// DeltaResult is the outcome of a delta re-exploration, equivalent to
// the final state of a cold pruned explore of the new requirements.
type DeltaResult struct {
	// Stats carries the folded counters exactly as the cold run's final
	// progress snapshot would (Done set, timing fields zero).
	Stats ExploreStats
	// Frontier is the feasible Pareto front in canonical order, fully
	// materialized — byte-identical to the cold run's.
	Frontier []Candidate
	// Swept counts points enumerated fresh by this call; Reused counts
	// retained built evaluations that served the result instead of
	// being re-computed.
	Swept, Reused int64
}

// DeltaExplore re-explores newReq from the retained state: it
// classifies the constraint changes implicitly through the new prune
// plan (tightened constraints shrink the enumerated region — pure
// re-filtering; loosened ones expose intervals the prior runs never
// evaluated, which are swept fresh and folded into the state), then
// re-scores every retained evaluation under the new constraint values
// and rebuilds the Pareto front from scratch. The frontier and counters
// are byte-identical to a cold full pruned sweep of newReq.
//
// The state is mutated (coverage and evaluations grow monotonically);
// callers serialize access per state.
func DeltaExplore(ctx context.Context, s *DeltaState, newReq Requirements, workers int) (*DeltaResult, error) {
	if err := newReq.Validate(); err != nil {
		return nil, err
	}
	if !s.Eligible(newReq) {
		return nil, fmt.Errorf("core: requirements not delta-eligible for state %s", s.key)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	newPlan := newPrunePlan(newReq, s.procs)
	needed := newPlan.enumerated(0, s.total)
	missing := coalesceRanges(subtractRanges(needed, s.coverage), deltaGapTolerance)

	// Sweep the intervals no prior run covered. The sweep runs under
	// newReq, but the recorded metrics depend only on the (shared)
	// structural fields, so the evaluations join the retained ones
	// seamlessly. Already-covered points inside a coalesced gap are
	// dropped on arrival.
	var swept, freshBuilt int64
	var fresh []pointEval
	for _, r := range missing {
		swept += int64(r.To - r.From)
		ch, err := ExploreContext(ctx, newReq,
			WithWorkers(workers), WithSeqRange(r.From, r.To))
		if err != nil {
			return nil, err
		}
		for c := range ch {
			if rangesContain(s.coverage, c.Seq) {
				continue
			}
			if rangesContain(needed, c.Seq) {
				freshBuilt++
			}
			fresh = append(fresh, pointEval{
				seq:       c.Seq,
				area:      c.AreaMm2,
				power:     c.PowerMW,
				cost:      c.CostUSD,
				sustained: c.SustainedGBps,
				clock:     c.Macro.ClockMHz,
			})
		}
		if err := ctx.Err(); err != nil {
			return nil, err // incomplete sweep: leave the state untouched
		}
	}
	if len(fresh) > 0 {
		s.evals = append(s.evals, fresh...)
		sort.Slice(s.evals, func(i, j int) bool { return s.evals[i].seq < s.evals[j].seq })
	}
	if len(missing) > 0 {
		s.coverage = unionRanges(s.coverage, missing)
	}

	// Re-filter every retained evaluation inside the new enumerated
	// region, replicating scoreCandidate's feasibility comparisons on
	// the exact recorded floats, and rebuild the front. Infeasible
	// points never enter a Frontier, so offering only the feasible ones
	// reproduces the cold run's front and pruned counter exactly
	// (the front is insertion-order independent).
	front := NewFrontier()
	var built, feasible int64
	ri := 0
	for _, ev := range s.evals {
		for ri < len(needed) && needed[ri].To <= ev.seq {
			ri++
		}
		if ri >= len(needed) || ev.seq < needed[ri].From {
			continue // outside the new plan's enumerated region
		}
		built++
		if ev.sustained < newReq.BandwidthGBps ||
			(newReq.MaxAreaMm2 > 0 && ev.area > newReq.MaxAreaMm2) ||
			(newReq.MaxPowerMW > 0 && ev.power > newReq.MaxPowerMW) ||
			(newReq.MinClockMHz > 0 && ev.clock < newReq.MinClockMHz) {
			continue
		}
		feasible++
		front.Add(Candidate{
			Seq:           ev.seq,
			AreaMm2:       ev.area,
			PowerMW:       ev.power,
			CostUSD:       ev.cost,
			SustainedGBps: ev.sustained,
			Feasible:      true,
		})
	}

	// Materialize the surviving members through the unmemoized
	// reference evaluation — byte-identical to the sweep's memoized
	// path (TestExploreMemoParity pins that equivalence).
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	members := front.Candidates()
	out := make([]Candidate, 0, len(members))
	for _, m := range members {
		pt := pointAt(newReq, s.procs, m.Seq)
		c, err := evaluate(pt.Spec, pt.Macros, newReq, e, ce)
		if err != nil {
			return nil, fmt.Errorf("core: delta materialization of seq %d: %v", m.Seq, err)
		}
		c.Seq = m.Seq
		out = append(out, c)
	}

	skipped, skippedBuildable := newPlan.tally(0, s.total)
	res := &DeltaResult{
		Stats: ExploreStats{
			Enumerated:       int64(s.total) - skipped,
			Built:            built,
			Infeasible:       built - feasible,
			Skipped:          skipped,
			SkippedBuildable: skippedBuildable,
			Pruned:           front.Pruned(),
			FrontSize:        front.Size(),
			Workers:          workers,
			Done:             true,
		},
		Frontier: out,
		Swept:    swept,
		Reused:   built - freshBuilt,
	}
	return res, nil
}

// rangesContain reports whether a sorted disjoint range list contains
// seq.
func rangesContain(rs []seqRange, seq int) bool {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case rs[mid].To <= seq:
			lo = mid + 1
		case rs[mid].From > seq:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// subtractRanges returns a \ b for sorted disjoint range lists.
func subtractRanges(a, b []seqRange) []seqRange {
	var out []seqRange
	bi := 0
	for _, r := range a {
		cur := r.From
		for bi < len(b) && b[bi].To <= cur {
			bi++
		}
		j := bi
		for cur < r.To {
			if j >= len(b) || b[j].From >= r.To {
				out = append(out, seqRange{From: cur, To: r.To})
				break
			}
			if b[j].From > cur {
				out = append(out, seqRange{From: cur, To: b[j].From})
			}
			if b[j].To > cur {
				cur = b[j].To
			}
			j++
		}
	}
	return out
}

// unionRanges merges two sorted disjoint range lists.
func unionRanges(a, b []seqRange) []seqRange {
	all := append(append([]seqRange(nil), a...), b...)
	sort.Slice(all, func(i, j int) bool { return all[i].From < all[j].From })
	var out []seqRange
	for _, r := range all {
		if n := len(out); n > 0 && r.From <= out[n-1].To {
			if r.To > out[n-1].To {
				out[n-1].To = r.To
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// coalesceRanges merges ranges separated by gaps of at most tol points.
func coalesceRanges(rs []seqRange, tol int) []seqRange {
	var out []seqRange
	for _, r := range rs {
		if n := len(out); n > 0 && r.From-out[n-1].To <= tol {
			if r.To > out[n-1].To {
				out[n-1].To = r.To
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
