package core

import (
	"encoding/json"
	"strings"
	"testing"

	"edram/internal/tech"
)

func TestRequirementsViolationsListsEverything(t *testing.T) {
	bad := Requirements{CapacityMbit: -1, BandwidthGBps: 0, HitRate: 2,
		MaxAreaMm2: -3, MaxPowerMW: -4, MinClockMHz: -5, DefectsPerCm2: -6}
	v := bad.Violations()
	if len(v) != 7 {
		t.Fatalf("want 7 violations, got %d: %v", len(v), v)
	}
	// Field order, so the message is stable.
	for i, frag := range []string{"capacity", "bandwidth", "hit rate", "area cap",
		"power cap", "min clock", "defect density"} {
		if !strings.Contains(v[i], frag) {
			t.Errorf("violation %d = %q, want it to mention %q", i, v[i], frag)
		}
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate() = nil for invalid requirements")
	}
	// Validate folds the complete list into one message.
	for _, msg := range v {
		if !strings.Contains(err.Error(), msg) {
			t.Errorf("Validate() error %q missing violation %q", err, msg)
		}
	}

	good := Requirements{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8}
	if v := good.Violations(); len(v) != 0 {
		t.Errorf("valid requirements report violations: %v", v)
	}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate() = %v for valid requirements", err)
	}
}

func TestRequirementsCanonicalKey(t *testing.T) {
	a := Requirements{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8}
	if got, want := a.CanonicalKey(), a.CanonicalKey(); got != want {
		t.Fatalf("key not stable: %q vs %q", got, want)
	}
	// JSON round-trip (however the request was spelled) preserves the key.
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Requirements
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.CanonicalKey() != a.CanonicalKey() {
		t.Errorf("JSON round-trip changed the key:\n  %q\n  %q", a.CanonicalKey(), back.CanonicalKey())
	}
	// Every field is part of the identity.
	variants := []Requirements{
		{CapacityMbit: 32, BandwidthGBps: 1.5, HitRate: 0.8},
		{CapacityMbit: 16, BandwidthGBps: 2.5, HitRate: 0.8},
		{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.9},
		{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8, MaxAreaMm2: 20},
		{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8, MaxPowerMW: 500},
		{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8, MinClockMHz: 100},
		{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8, DefectsPerCm2: 0.5},
	}
	seen := map[string]int{a.CanonicalKey(): -1}
	for i, r := range variants {
		k := r.CanonicalKey()
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
	// Process list order changes the enumeration sequence, so it
	// changes the key.
	p1, p2 := tech.Siemens024(), tech.Logic024()
	fwd := Requirements{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8,
		Processes: []tech.Process{p1, p2}}
	rev := Requirements{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8,
		Processes: []tech.Process{p2, p1}}
	if fwd.CanonicalKey() == rev.CanonicalKey() {
		t.Error("process order should be part of the canonical key")
	}
}

func TestRequirementsCanonicalKeyCoversProcessParameters(t *testing.T) {
	// The wire schema accepts full custom tech.Process objects: two
	// same-named processes with different parameters are different
	// explorations and must never share a cache entry.
	p1, p2 := tech.Siemens024(), tech.Siemens024()
	p2.CellFactor *= 2
	a := Requirements{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8,
		Processes: []tech.Process{p1}}
	b := Requirements{CapacityMbit: 16, BandwidthGBps: 1.5, HitRate: 0.8,
		Processes: []tech.Process{p2}}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("same-named processes with different parameters collide on the canonical key")
	}
}
