package core

import (
	"context"
	"sort"
	"strings"
	"testing"
)

// collectRange drains a ranged explore into a Seq-sorted key list.
func collectRange(t *testing.T, r Requirements, from, to int) []string {
	t.Helper()
	ch, err := ExploreContext(context.Background(), r, WithWorkers(2), WithSeqRange(from, to))
	if err != nil {
		t.Fatal(err)
	}
	var out []Candidate
	for c := range ch {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	keys := make([]string, len(out))
	for i, c := range out {
		keys[i] = candidateKey(c)
	}
	return keys
}

// TestSweepCountMatchesEnumeration pins SweepCount as the exclusive
// Seq upper bound of the actual sweep.
func TestSweepCountMatchesEnumeration(t *testing.T) {
	for _, r := range []Requirements{req(), {CapacityMbit: 15, BandwidthGBps: 1, HitRate: 0.5}} {
		want := SweepCount(r)
		ch, err := Sweep(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		n, maxSeqSeen := 0, -1
		for p := range ch {
			n++
			if p.Seq > maxSeqSeen {
				maxSeqSeen = p.Seq
			}
		}
		if n != want || maxSeqSeen != want-1 {
			t.Errorf("capacity %d: SweepCount=%d, enumerated %d points, max Seq %d",
				r.CapacityMbit, want, n, maxSeqSeen)
		}
	}
}

// TestSeqRangePartitionExactness is the checkpointing invariant: the
// union of disjoint Seq ranges covering the space is candidate-for-
// candidate identical to the unrestricted run, and an accumulated
// frontier over the chunks matches the one-shot frontier.
func TestSeqRangePartitionExactness(t *testing.T) {
	r := req()
	total := SweepCount(r)
	if total == 0 {
		t.Fatal("empty sweep")
	}
	full := collectRange(t, r, 0, total)

	// Uneven chunk size so boundaries cross batch boundaries.
	chunk := 501
	var chunked []string
	front := NewFrontier()
	for from := 0; from < total; from += chunk {
		to := from + chunk
		if to > total {
			to = total
		}
		ch, err := ExploreContext(context.Background(), r, WithWorkers(2), WithSeqRange(from, to))
		if err != nil {
			t.Fatal(err)
		}
		var part []Candidate
		for c := range ch {
			part = append(part, c)
		}
		sort.Slice(part, func(i, j int) bool { return part[i].Seq < part[j].Seq })
		for _, c := range part {
			if c.Seq < from || c.Seq >= to {
				t.Fatalf("range [%d,%d) leaked Seq %d", from, to, c.Seq)
			}
			chunked = append(chunked, candidateKey(c))
			front.Add(c)
		}
	}
	if strings.Join(chunked, "\n") != strings.Join(full, "\n") {
		t.Fatalf("chunked union differs from full run: %d vs %d candidates", len(chunked), len(full))
	}

	fullFront := NewFrontier()
	ch, err := ExploreContext(context.Background(), r, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for c := range ch {
		fullFront.Add(c)
	}
	a, b := front.Candidates(), fullFront.Candidates()
	if len(a) != len(b) {
		t.Fatalf("chunk-accumulated front size %d != one-shot %d", len(a), len(b))
	}
	for i := range a {
		if candidateKey(a[i]) != candidateKey(b[i]) {
			t.Errorf("front member %d differs:\nchunked:  %s\none-shot: %s", i, candidateKey(a[i]), candidateKey(b[i]))
		}
	}
	if front.Pruned() != fullFront.Pruned() {
		t.Errorf("pruned count: chunked %d, one-shot %d", front.Pruned(), fullFront.Pruned())
	}
}

// TestSeqRangeValidation: an empty range is an option error.
func TestSeqRangeValidation(t *testing.T) {
	if _, err := ExploreContext(context.Background(), req(), WithSeqRange(10, 10)); err == nil {
		t.Error("empty seq range accepted")
	}
	if _, err := ExploreContext(context.Background(), req(), WithSeqRange(-5, -1)); err != nil {
		t.Errorf("open-bound range rejected: %v", err)
	}
}
