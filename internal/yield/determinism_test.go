package yield

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// Repair builds its row/column tallies in maps; before the sorted-key
// rewrite the greedy tie-break depended on map iteration order and the
// spare allocation could differ between runs on the same defect map.
// These tests pin the fixed behaviour.

func TestRepairDeterministicOnTies(t *testing.T) {
	// Two rows and two columns with identical failure counts: every
	// greedy pick is a tie. One spare row + one spare col cannot cover
	// all four cells, so which lines get repaired (and the leftover
	// count) is pure tie-breaking.
	failing := [][2]int{{1, 1}, {1, 7}, {5, 1}, {5, 7}}
	first := Repair(failing, 1, 1)
	for i := 0; i < 50; i++ {
		if got := Repair(failing, 1, 1); got != first {
			t.Fatalf("run %d: repair differs on tied input: %+v vs %+v", i, got, first)
		}
	}
}

func TestRepairOrderInsensitive(t *testing.T) {
	// The allocation must depend on the defect set, not on the order the
	// caller happens to list the cells in.
	base := [][2]int{{0, 0}, {0, 1}, {0, 2}, {3, 1}, {4, 1}, {7, 7}}
	want := Repair(base, 2, 2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		shuffled := append([][2]int(nil), base...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := Repair(shuffled, 2, 2); got != want {
			t.Fatalf("shuffle %d changed the repair outcome: %+v vs %+v", i, got, want)
		}
	}
}

func TestFaultCellsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	faults, err := GenerateDefects(rng, 64, 64, 6, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	cells := FaultCells(faults, 64, 64)
	sorted := sort.SliceIsSorted(cells, func(i, j int) bool {
		if cells[i][0] != cells[j][0] {
			return cells[i][0] < cells[j][0]
		}
		return cells[i][1] < cells[j][1]
	})
	if !sorted {
		t.Errorf("FaultCells output not in (row, col) order: %v", cells)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	mc := MonteCarlo{
		Rows: 128, Cols: 128,
		MeanDefectsPerBlock: 1.5,
		SpareRows:           2, SpareCols: 2,
		Mix: DefaultMix(),
	}
	a, err := mc.Run(200, 33)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.Run(200, 33)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed must reproduce the sweep: %+v vs %+v", a, b)
	}
	ga, err := mc.RunGraded(200, 33, 2)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := mc.RunGraded(200, 33, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ga, gb) {
		t.Errorf("same seed must reproduce the graded sweep: %+v vs %+v", ga, gb)
	}
}
