package yield

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edram/internal/dram"
)

func TestPoissonYield(t *testing.T) {
	// exp(-1) at D*A = 1 (100 mm² at 1 defect/cm²).
	if y := PoissonYield(1, 100); math.Abs(y-math.Exp(-1)) > 1e-12 {
		t.Errorf("yield = %v", y)
	}
	if PoissonYield(0, 50) != 1 {
		t.Error("zero defects must yield 1")
	}
	if PoissonYield(-1, 50) != 0 || PoissonYield(1, 0) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
	// Monotone in area.
	if PoissonYield(1, 50) <= PoissonYield(1, 200) {
		t.Error("bigger dies must yield worse")
	}
}

func TestNegBinomialYield(t *testing.T) {
	// Clustering helps: NB yield >= Poisson yield at equal D*A.
	for _, area := range []float64{20, 100, 400} {
		nb := NegBinomialYield(1, area, 2.5)
		po := PoissonYield(1, area)
		if nb < po {
			t.Errorf("area %v: NB %v < Poisson %v", area, nb, po)
		}
	}
	if NegBinomialYield(1, 100, 0) != 0 {
		t.Error("zero alpha must yield 0")
	}
}

func TestDefectMixValidate(t *testing.T) {
	if DefaultMix().Validate() != nil {
		t.Error("default mix must validate")
	}
	bad := DefectMix{CellFrac: 0.5}
	if bad.Validate() == nil {
		t.Error("non-unit mix must fail")
	}
	neg := DefectMix{CellFrac: 1.2, RowFrac: -0.2}
	if neg.Validate() == nil {
		t.Error("negative component must fail")
	}
}

func TestGenerateDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	faults, err := GenerateDefects(rng, 128, 128, 8, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(8): overwhelmingly within [0, 30].
	if len(faults) > 30 {
		t.Errorf("got %d defects for mean 8", len(faults))
	}
	for _, f := range faults {
		if f.Row < 0 || f.Row >= 128 || f.Col < 0 || f.Col >= 128 {
			t.Fatalf("defect out of block: %+v", f)
		}
		if f.Kind == dram.Retention && f.RetentionMs <= 0 {
			t.Fatal("retention defect without retention time")
		}
	}
	if _, err := GenerateDefects(rng, 0, 128, 1, DefaultMix()); err == nil {
		t.Error("bad geometry must error")
	}
	if _, err := GenerateDefects(rng, 128, 128, -1, DefaultMix()); err == nil {
		t.Error("negative mean must error")
	}
	if _, err := GenerateDefects(rng, 128, 128, 1, DefectMix{}); err == nil {
		t.Error("bad mix must error")
	}
}

func TestGenerateDefectsInjectable(t *testing.T) {
	// Every generated defect must be accepted by the array.
	rng := rand.New(rand.NewSource(6))
	a, err := dram.NewArray(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := GenerateDefects(rng, 64, 64, 20, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		if err := a.Inject(f); err != nil {
			t.Fatalf("inject %+v: %v", f, err)
		}
	}
}

func TestRepairSimpleCases(t *testing.T) {
	// No failures: trivially repaired with no spares used.
	r := Repair(nil, 2, 2)
	if !r.Repaired || r.UsedRows != 0 || r.UsedCols != 0 {
		t.Errorf("empty repair = %+v", r)
	}
	// One failing cell, one spare row.
	r = Repair([][2]int{{3, 4}}, 1, 0)
	if !r.Repaired || r.UsedRows != 1 {
		t.Errorf("single-cell repair = %+v", r)
	}
	// One failing cell, no spares: unrepairable.
	r = Repair([][2]int{{3, 4}}, 0, 0)
	if r.Repaired || r.Unrepaired != 1 {
		t.Errorf("unrepairable case = %+v", r)
	}
}

func TestRepairMustRepair(t *testing.T) {
	// A row with 3 failures but only 2 spare columns MUST take the
	// spare row; the remaining isolated cell takes a spare column.
	failing := [][2]int{{5, 1}, {5, 2}, {5, 3}, {9, 9}}
	r := Repair(failing, 1, 2)
	if !r.Repaired {
		t.Fatalf("must-repair case failed: %+v", r)
	}
	if r.UsedRows != 1 {
		t.Errorf("spare row not used for the clustered row: %+v", r)
	}
	if r.UsedCols != 1 {
		t.Errorf("expected one spare column for the stray cell: %+v", r)
	}
}

func TestRepairColumnCluster(t *testing.T) {
	// A whole-column failure needs a spare column when rows are scarce.
	var failing [][2]int
	for r := 0; r < 16; r++ {
		failing = append(failing, [2]int{r, 7})
	}
	res := Repair(failing, 2, 1)
	if !res.Repaired || res.UsedCols != 1 || res.UsedRows != 0 {
		t.Errorf("column repair = %+v", res)
	}
}

func TestRepairExhaustion(t *testing.T) {
	// Diagonal failures: each needs its own row or column.
	failing := [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}
	res := Repair(failing, 2, 2)
	if res.Repaired {
		t.Error("5 diagonal failures cannot be fixed with 2+2 spares")
	}
	if res.Unrepaired != 1 {
		t.Errorf("unrepaired = %d, want 1", res.Unrepaired)
	}
	res = Repair(failing, 3, 2)
	if !res.Repaired {
		t.Error("5 diagonal failures must be fixable with 3+2 spares")
	}
}

func TestFaultCells(t *testing.T) {
	faults := []dram.Fault{
		{Kind: dram.StuckAt0, Row: 1, Col: 1},
		{Kind: dram.StuckAt1, Row: 1, Col: 1}, // duplicate cell
		{Kind: dram.WordlineStuck0, Row: 3},
		{Kind: dram.BitlineStuck0, Col: 2},
	}
	cells := FaultCells(faults, 8, 8)
	// 1 unique cell + 8 row cells + 8 col cells - 1 overlap (3,2).
	if len(cells) != 1+8+8-1 {
		t.Errorf("cells = %d, want 16", len(cells))
	}
}

func TestMonteCarloRedundancyHelps(t *testing.T) {
	base := MonteCarlo{Rows: 256, Cols: 256, MeanDefectsPerBlock: 1.2, Mix: DefaultMix()}
	none := base
	none.SpareRows, none.SpareCols = 0, 0
	std := base
	std.SpareRows, std.SpareCols = 4, 4

	rNone, err := none.Run(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	rStd, err := std.Run(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Raw yield is redundancy-independent (same defect stream).
	if math.Abs(rNone.RawYield-rStd.RawYield) > 1e-9 {
		t.Errorf("raw yields differ: %v vs %v", rNone.RawYield, rStd.RawYield)
	}
	// Paper §5: redundancy buys yield.
	if rStd.RepairedYield <= rNone.RepairedYield+0.1 {
		t.Errorf("redundancy must buy substantial yield: %0.2f vs %0.2f",
			rStd.RepairedYield, rNone.RepairedYield)
	}
	// Raw yield ≈ exp(-1.2) = 0.30.
	if rNone.RawYield < 0.2 || rNone.RawYield > 0.42 {
		t.Errorf("raw yield %.2f far from Poisson expectation 0.30", rNone.RawYield)
	}
	// With 4+4 spares and ~1.2 defects/block, nearly everything repairs.
	if rStd.RepairedYield < 0.9 {
		t.Errorf("repaired yield %.2f too low", rStd.RepairedYield)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	mc := MonteCarlo{Rows: 64, Cols: 64, MeanDefectsPerBlock: 1, Mix: DefaultMix()}
	if _, err := mc.Run(0, 1); err == nil {
		t.Error("zero trials must error")
	}
	bad := mc
	bad.Rows = 0
	if _, err := bad.Run(10, 1); err == nil {
		t.Error("bad geometry must error")
	}
}

// Property: a repaired result never uses more spares than granted, and
// repair success is monotone in the spare counts.
func TestRepairProperty(t *testing.T) {
	f := func(seed int64, sr, sc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12)
		failing := make([][2]int, n)
		for i := range failing {
			failing[i] = [2]int{rng.Intn(32), rng.Intn(32)}
		}
		spR, spC := int(sr%5), int(sc%5)
		r1 := Repair(failing, spR, spC)
		if r1.UsedRows > spR || r1.UsedCols > spC {
			return false
		}
		r2 := Repair(failing, spR+2, spC+2)
		if r1.Repaired && !r2.Repaired {
			return false // more spares can never hurt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
