package yield

import (
	"testing"

	"edram/internal/dram"
)

func TestGradeString(t *testing.T) {
	if ProgramGrade.String() != "program" || GraphicsGrade.String() != "graphics" {
		t.Error("grade strings changed")
	}
}

func TestSplitCells(t *testing.T) {
	faults := []dram.Fault{
		{Kind: dram.StuckAt0, Row: 1, Col: 1},
		{Kind: dram.Retention, Row: 2, Col: 2, RetentionMs: 5},
		{Kind: dram.Retention, Row: 1, Col: 1, RetentionMs: 5}, // overlaps hard cell
		{Kind: dram.WordlineStuck0, Row: 4},
	}
	hard, weak := splitCells(faults, 8, 8)
	if len(hard) != 1+8 {
		t.Errorf("hard cells = %d, want 9", len(hard))
	}
	if len(weak) != 1 || weak[0] != [2]int{2, 2} {
		t.Errorf("weak cells = %v, want [[2 2]]", weak)
	}
}

func TestGradedYieldOrdering(t *testing.T) {
	// Graphics grade must never yield worse than program grade, and
	// with a retention-heavy defect mix it must yield clearly better
	// when spares are scarce.
	mc := MonteCarlo{
		Rows: 256, Cols: 256,
		MeanDefectsPerBlock: 3,
		SpareRows:           1, SpareCols: 1,
		Mix: DefectMix{CellFrac: 0.2, RowFrac: 0.05, ColFrac: 0.05, RetentionFrac: 0.7},
	}
	res, err := mc.RunGraded(400, 23, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphicsYield < res.ProgramYield {
		t.Fatalf("graphics yield %.2f below program yield %.2f",
			res.GraphicsYield, res.ProgramYield)
	}
	if res.GraphicsYield < res.ProgramYield+0.1 {
		t.Errorf("retention-heavy mix should open a clear grade gap: %.2f vs %.2f",
			res.GraphicsYield, res.ProgramYield)
	}
	if res.MeanWeakLeft < 0 || res.MeanWeakLeft > 4 {
		t.Errorf("mean weak left %.2f outside tolerance", res.MeanWeakLeft)
	}
}

func TestGradedZeroToleranceMatchesProgram(t *testing.T) {
	mc := MonteCarlo{
		Rows: 128, Cols: 128,
		MeanDefectsPerBlock: 1.5,
		SpareRows:           2, SpareCols: 2,
		Mix: DefaultMix(),
	}
	res, err := mc.RunGraded(300, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphicsYield != res.ProgramYield {
		t.Errorf("zero tolerance must equalize grades: %.3f vs %.3f",
			res.GraphicsYield, res.ProgramYield)
	}
}

func TestGradedErrors(t *testing.T) {
	mc := MonteCarlo{Rows: 64, Cols: 64, MeanDefectsPerBlock: 1, Mix: DefaultMix()}
	if _, err := mc.RunGraded(0, 1, 2); err == nil {
		t.Error("zero trials must error")
	}
	if _, err := mc.RunGraded(10, 1, -1); err == nil {
		t.Error("negative tolerance must error")
	}
	bad := mc
	bad.Rows = 0
	if _, err := bad.RunGraded(10, 1, 2); err == nil {
		t.Error("bad geometry must error")
	}
}

func TestGradedToleranceMonotone(t *testing.T) {
	mc := MonteCarlo{
		Rows: 128, Cols: 128,
		MeanDefectsPerBlock: 2.5,
		SpareRows:           1, SpareCols: 1,
		Mix: DefectMix{CellFrac: 0.3, RowFrac: 0.05, ColFrac: 0.05, RetentionFrac: 0.6},
	}
	prev := -1.0
	for _, tol := range []int{0, 1, 2, 4, 8} {
		res, err := mc.RunGraded(200, 5, tol)
		if err != nil {
			t.Fatal(err)
		}
		if res.GraphicsYield < prev {
			t.Fatalf("graphics yield must be monotone in tolerance (tol %d)", tol)
		}
		prev = res.GraphicsYield
	}
}
