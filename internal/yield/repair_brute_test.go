package yield

import (
	"math/rand"
	"testing"
)

// bruteRepairable reports whether any assignment of spare rows/columns
// covers all failing cells, by exhaustive search over which rows get a
// spare (remaining cells must fit in spareCols distinct columns).
func bruteRepairable(failing [][2]int, spareRows, spareCols int) bool {
	rows := map[int]bool{}
	for _, f := range failing {
		rows[f[0]] = true
	}
	rowList := make([]int, 0, len(rows))
	for r := range rows {
		rowList = append(rowList, r)
	}
	// Choose up to spareRows rows to repair (all subsets).
	var rec func(idx, used int, repaired map[int]bool) bool
	rec = func(idx, used int, repaired map[int]bool) bool {
		if idx == len(rowList) || used == spareRows {
			// Count distinct columns of uncovered cells.
			cols := map[int]bool{}
			for _, f := range failing {
				if !repaired[f[0]] {
					cols[f[1]] = true
				}
			}
			return len(cols) <= spareCols
		}
		// Skip this row.
		if rec(idx+1, used, repaired) {
			return true
		}
		// Repair this row.
		repaired[rowList[idx]] = true
		ok := rec(idx+1, used+1, repaired)
		delete(repaired, rowList[idx])
		return ok
	}
	return rec(0, 0, map[int]bool{})
}

// TestRepairMatchesBruteForce cross-checks the must-repair + greedy
// heuristic against exhaustive search on small instances: the heuristic
// must never claim success where none exists, and should find the
// solution in the overwhelming majority of solvable cases.
func TestRepairMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials, heuristicMisses := 0, 0
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(8)
		failing := make([][2]int, n)
		for i := range failing {
			failing[i] = [2]int{rng.Intn(6), rng.Intn(6)}
		}
		sr, sc := rng.Intn(3), rng.Intn(3)
		got := Repair(failing, sr, sc).Repaired
		want := bruteRepairable(failing, sr, sc)
		trials++
		if got && !want {
			t.Fatalf("heuristic claims repair where brute force finds none: %v spares %d/%d", failing, sr, sc)
		}
		if !got && want {
			heuristicMisses++
		}
	}
	// Greedy is a heuristic; allow a small optimality gap but no more.
	if frac := float64(heuristicMisses) / float64(trials); frac > 0.02 {
		t.Errorf("heuristic missed %d/%d solvable instances (%.1f%%)", heuristicMisses, trials, 100*frac)
	}
}
