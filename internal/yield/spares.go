package yield

import (
	"fmt"
	"math/rand"

	"edram/internal/dram"
)

// This file extends the manufacturing-time yield model with the two
// pieces the runtime reliability pipeline needs: a spare-row allocator
// that tracks the §5 redundancy pool while the system is in the field
// (spares consumed by the detect→retry→remap ladder instead of the
// laser-repair flow), and a retention-time tail generator modelling the
// weak-cell population whose retention falls below the refresh period —
// the classic eDRAM field-failure mechanism.

// Allocator tracks runtime spare-row allocation per bank. It is the
// in-field counterpart of Repair: instead of a one-shot must-repair
// analysis at test time, spares are handed out one by one as the
// controller's repair ladder encounters uncorrectable rows.
type Allocator struct {
	banks  int
	spares int
	used   []int
}

// NewAllocator creates an allocator with sparesPerBank rows per bank.
func NewAllocator(banks, sparesPerBank int) (*Allocator, error) {
	if banks < 1 {
		return nil, fmt.Errorf("yield: allocator needs >= 1 bank, got %d", banks)
	}
	if sparesPerBank < 0 {
		return nil, fmt.Errorf("yield: spare count must be non-negative, got %d", sparesPerBank)
	}
	return &Allocator{banks: banks, spares: sparesPerBank, used: make([]int, banks)}, nil
}

// Allocate hands out the next spare row of a bank, returning its index
// within the bank's spare pool (0-based) and whether one was available.
func (al *Allocator) Allocate(bank int) (int, bool) {
	if bank < 0 || bank >= al.banks || al.used[bank] >= al.spares {
		return 0, false
	}
	idx := al.used[bank]
	al.used[bank]++
	return idx, true
}

// Used returns the number of spares consumed in a bank.
func (al *Allocator) Used(bank int) int {
	if bank < 0 || bank >= al.banks {
		return 0
	}
	return al.used[bank]
}

// Remaining returns the spares left in a bank.
func (al *Allocator) Remaining(bank int) int {
	if bank < 0 || bank >= al.banks {
		return 0
	}
	return al.spares - al.used[bank]
}

// Totals returns the pool-wide (used, total) spare counts.
func (al *Allocator) Totals() (used, total int) {
	for _, u := range al.used {
		used += u
	}
	return used, al.banks * al.spares
}

// GenerateRetentionTail draws Poisson(mean) weak cells over a rows x
// cols block whose retention lies in [minMs, maxMs), concentrated
// toward the weak end (the measured retention distribution has an
// exponential tail below the nominal value). The result is injectable
// dram.Retention faults; cells this weak decay between two refresh
// visits and surface as correctable-then-hard errors at runtime.
func GenerateRetentionTail(rng *rand.Rand, rows, cols int, mean, minMs, maxMs float64) ([]dram.Fault, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("yield: block geometry %dx%d invalid", rows, cols)
	}
	if mean < 0 {
		return nil, fmt.Errorf("yield: mean weak cells must be non-negative")
	}
	if minMs <= 0 || maxMs <= minMs {
		return nil, fmt.Errorf("yield: retention tail window [%g,%g) ms invalid", minMs, maxMs)
	}
	n := poissonDraw(rng, mean)
	faults := make([]dram.Fault, 0, n)
	for i := 0; i < n; i++ {
		// Exponential profile folded into the window: most weak cells
		// sit near minMs, few near maxMs.
		u := rng.ExpFloat64() / 3
		if u > 1 {
			u = 1
		}
		ret := minMs + u*(maxMs-minMs)
		faults = append(faults, dram.Fault{
			Kind: dram.Retention,
			Row:  rng.Intn(rows), Col: rng.Intn(cols),
			RetentionMs: ret,
		})
	}
	return faults, nil
}
