// Package yield implements the defect, redundancy-repair and yield
// models behind the paper's §5 "different redundancy levels, in order to
// optimize the yield of the memory module to the specific chip": Poisson
// and negative-binomial die yield, random defect-map generation as
// injectable faults, the classic must-repair + greedy spare-row/column
// allocation, and Monte-Carlo yield sweeps over redundancy levels.
package yield

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"edram/internal/dram"
)

// PoissonYield returns exp(-D*A): die yield at defect density
// defectsPerCm2 over areaMm2 with Poisson statistics.
func PoissonYield(defectsPerCm2, areaMm2 float64) float64 {
	if defectsPerCm2 < 0 || areaMm2 <= 0 {
		return 0
	}
	return math.Exp(-defectsPerCm2 * areaMm2 / 100)
}

// NegBinomialYield returns (1 + D*A/alpha)^-alpha — the industry-
// standard clustered-defect model (alpha ~ 2-3).
func NegBinomialYield(defectsPerCm2, areaMm2, alpha float64) float64 {
	if defectsPerCm2 < 0 || areaMm2 <= 0 || alpha <= 0 {
		return 0
	}
	return math.Pow(1+defectsPerCm2*areaMm2/100/alpha, -alpha)
}

// DefectMix controls what a random defect becomes.
type DefectMix struct {
	CellFrac      float64 // single-cell fault (stuck-at / transition)
	RowFrac       float64 // whole wordline
	ColFrac       float64 // whole bitline
	RetentionFrac float64 // weak cell
}

// DefaultMix returns the mix used throughout the reproduction: mostly
// single cells, some line failures, some weak cells.
func DefaultMix() DefectMix {
	return DefectMix{CellFrac: 0.62, RowFrac: 0.1, ColFrac: 0.1, RetentionFrac: 0.18}
}

// Validate checks the mix sums to 1.
func (m DefectMix) Validate() error {
	s := m.CellFrac + m.RowFrac + m.ColFrac + m.RetentionFrac
	if math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("yield: defect mix sums to %g, want 1", s)
	}
	if m.CellFrac < 0 || m.RowFrac < 0 || m.ColFrac < 0 || m.RetentionFrac < 0 {
		return fmt.Errorf("yield: defect mix has negative component")
	}
	return nil
}

// poissonDraw samples a Poisson(lambda) variate (Knuth for small lambda,
// normal approximation above 30).
func poissonDraw(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(rng.NormFloat64()*math.Sqrt(lambda) + lambda + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateDefects draws Poisson(meanDefects) random defects over a
// rows x cols block and renders them as injectable faults.
func GenerateDefects(rng *rand.Rand, rows, cols int, meanDefects float64, mix DefectMix) ([]dram.Fault, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("yield: block geometry %dx%d invalid", rows, cols)
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if meanDefects < 0 {
		return nil, fmt.Errorf("yield: mean defects must be non-negative")
	}
	n := poissonDraw(rng, meanDefects)
	faults := make([]dram.Fault, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(rows)
		c := rng.Intn(cols)
		u := rng.Float64()
		switch {
		case u < mix.CellFrac:
			kind := dram.StuckAt0
			switch rng.Intn(4) {
			case 1:
				kind = dram.StuckAt1
			case 2:
				kind = dram.TransitionUp
			case 3:
				kind = dram.TransitionDown
			}
			faults = append(faults, dram.Fault{Kind: kind, Row: r, Col: c})
		case u < mix.CellFrac+mix.RowFrac:
			faults = append(faults, dram.Fault{Kind: dram.WordlineStuck0, Row: r})
		case u < mix.CellFrac+mix.RowFrac+mix.ColFrac:
			faults = append(faults, dram.Fault{Kind: dram.BitlineStuck0, Col: c})
		default:
			faults = append(faults, dram.Fault{Kind: dram.Retention, Row: r, Col: c,
				RetentionMs: 1 + rng.Float64()*30})
		}
	}
	return faults, nil
}

// RepairResult reports one repair attempt.
type RepairResult struct {
	Repaired   bool
	UsedRows   int
	UsedCols   int
	Unrepaired int // failing cells left when not repairable
}

// Repair allocates spare rows and columns to cover the failing cells
// using must-repair analysis followed by greedy selection (most-failures
// first) — the classic laser-repair algorithm.
func Repair(failing [][2]int, spareRows, spareCols int) RepairResult {
	if spareRows < 0 {
		spareRows = 0
	}
	if spareCols < 0 {
		spareCols = 0
	}
	remaining := make(map[[2]int]bool, len(failing))
	for _, f := range failing {
		remaining[f] = true
	}
	var res RepairResult
	removeRow := func(r int) {
		for k := range remaining {
			if k[0] == r {
				delete(remaining, k)
			}
		}
		res.UsedRows++
	}
	removeCol := func(c int) {
		for k := range remaining {
			if k[1] == c {
				delete(remaining, k)
			}
		}
		res.UsedCols++
	}
	counts := func() (rows, cols map[int]int) {
		rows, cols = map[int]int{}, map[int]int{}
		for k := range remaining {
			rows[k[0]]++
			cols[k[1]]++
		}
		return
	}

	// Must-repair: a row with more failures than remaining spare
	// columns can only be fixed by a spare row, and vice versa. Iterate
	// to a fixed point, visiting lines in index order so the allocation
	// is identical on every run (map iteration order is random).
	for {
		changed := false
		rows, _ := counts()
		for _, r := range sortedKeys(rows) {
			if rows[r] > spareCols-res.UsedCols && res.UsedRows < spareRows {
				removeRow(r)
				changed = true
			}
		}
		_, cols := counts()
		for _, c := range sortedKeys(cols) {
			if cols[c] > spareRows-res.UsedRows && res.UsedCols < spareCols {
				removeCol(c)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Greedy: repair whichever line covers the most remaining failures,
	// ties broken to the lowest index (not map order).
	for len(remaining) > 0 {
		rows, cols := counts()
		bestRow, bestRowN := maxLine(rows)
		bestCol, bestColN := maxLine(cols)
		rowsLeft := res.UsedRows < spareRows
		colsLeft := res.UsedCols < spareCols
		switch {
		case rowsLeft && (!colsLeft || bestRowN >= bestColN) && bestRow >= 0:
			removeRow(bestRow)
		case colsLeft && bestCol >= 0:
			removeCol(bestCol)
		default:
			res.Unrepaired = len(remaining)
			return res
		}
	}
	res.Repaired = true
	return res
}

// sortedKeys returns the map's keys in ascending order, so selection
// loops visit lines deterministically.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// maxLine returns the index with the highest count, ties broken to the
// lowest index so repair choices do not depend on map iteration order.
func maxLine(counts map[int]int) (idx, n int) {
	idx, n = -1, 0
	for _, k := range sortedKeys(counts) {
		if counts[k] > n {
			idx, n = k, counts[k]
		}
	}
	return idx, n
}

// FaultCells converts a defect list into the failing-cell set of a
// rows x cols block, expanding line faults.
func FaultCells(faults []dram.Fault, rows, cols int) [][2]int {
	seen := map[[2]int]bool{}
	add := func(r, c int) {
		k := [2]int{r, c}
		if !seen[k] {
			seen[k] = true
		}
	}
	for _, f := range faults {
		switch f.Kind {
		case dram.WordlineStuck0:
			for c := 0; c < cols; c++ {
				add(f.Row, c)
			}
		case dram.BitlineStuck0:
			for r := 0; r < rows; r++ {
				add(r, f.Col)
			}
		default:
			add(f.Row, f.Col)
		}
	}
	out := make([][2]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	// Map iteration order is random; downstream spare allocation and
	// grading must see the same cell list on every run.
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MonteCarlo runs `trials` random blocks at the given mean defect count
// and redundancy, reporting raw yield (no repair) and effective yield
// (after repair).
type MonteCarlo struct {
	Rows, Cols           int
	MeanDefectsPerBlock  float64
	SpareRows, SpareCols int
	Mix                  DefectMix
}

// MCResult is the sweep outcome.
type MCResult struct {
	Trials        int
	RawYield      float64
	RepairedYield float64
	MeanUsedRows  float64
	MeanUsedCols  float64
}

// Run executes the Monte-Carlo experiment.
func (mc MonteCarlo) Run(trials int, seed int64) (MCResult, error) {
	if trials < 1 {
		return MCResult{}, fmt.Errorf("yield: trials must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	var res MCResult
	res.Trials = trials
	rawGood, repGood := 0, 0
	for i := 0; i < trials; i++ {
		faults, err := GenerateDefects(rng, mc.Rows, mc.Cols, mc.MeanDefectsPerBlock, mc.Mix)
		if err != nil {
			return MCResult{}, err
		}
		if len(faults) == 0 {
			rawGood++
			repGood++
			continue
		}
		cells := FaultCells(faults, mc.Rows, mc.Cols)
		rep := Repair(cells, mc.SpareRows, mc.SpareCols)
		if rep.Repaired {
			repGood++
			res.MeanUsedRows += float64(rep.UsedRows)
			res.MeanUsedCols += float64(rep.UsedCols)
		}
	}
	res.RawYield = float64(rawGood) / float64(trials)
	res.RepairedYield = float64(repGood) / float64(trials)
	res.MeanUsedRows /= float64(trials)
	res.MeanUsedCols /= float64(trials)
	return res, nil
}
