package yield

import (
	"math/rand"
	"testing"

	"edram/internal/dram"
)

func TestAllocator(t *testing.T) {
	if _, err := NewAllocator(0, 2); err == nil {
		t.Error("zero banks must be rejected")
	}
	if _, err := NewAllocator(2, -1); err == nil {
		t.Error("negative spares must be rejected")
	}
	al, err := NewAllocator(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bank budgets are independent.
	if idx, ok := al.Allocate(0); !ok || idx != 0 {
		t.Fatalf("first spare of bank 0 = %d, %t", idx, ok)
	}
	if idx, ok := al.Allocate(0); !ok || idx != 1 {
		t.Fatalf("second spare of bank 0 = %d, %t", idx, ok)
	}
	if _, ok := al.Allocate(0); ok {
		t.Error("bank 0 exhausted, allocation must fail")
	}
	if idx, ok := al.Allocate(1); !ok || idx != 0 {
		t.Fatalf("bank 1 must still have spares, got %d, %t", idx, ok)
	}
	if al.Used(0) != 2 || al.Remaining(0) != 0 || al.Remaining(1) != 1 {
		t.Errorf("bookkeeping: used0=%d rem0=%d rem1=%d", al.Used(0), al.Remaining(0), al.Remaining(1))
	}
	used, total := al.Totals()
	if used != 3 || total != 4 {
		t.Errorf("Totals = %d/%d, want 3/4", used, total)
	}
	// Out-of-range banks never allocate.
	if _, ok := al.Allocate(-1); ok {
		t.Error("negative bank must fail")
	}
	if _, ok := al.Allocate(2); ok {
		t.Error("bank beyond range must fail")
	}
}

func TestGenerateRetentionTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	faults, err := GenerateRetentionTail(rng, 64, 64, 20, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) == 0 {
		t.Fatal("mean 20 drew no weak cells")
	}
	for _, f := range faults {
		if f.Kind != dram.Retention {
			t.Fatalf("kind = %v", f.Kind)
		}
		if f.Row < 0 || f.Row >= 64 || f.Col < 0 || f.Col >= 64 {
			t.Fatalf("cell (%d,%d) out of range", f.Row, f.Col)
		}
		if f.RetentionMs < 0.1 || f.RetentionMs > 0.9 {
			t.Fatalf("retention %g outside window", f.RetentionMs)
		}
	}
	// Deterministic under the same source.
	rng2 := rand.New(rand.NewSource(1))
	again, err := GenerateRetentionTail(rng2, 64, 64, 20, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(faults) {
		t.Errorf("re-draw differs: %d vs %d", len(again), len(faults))
	}
	// Invalid windows and geometry.
	if _, err := GenerateRetentionTail(rng, 0, 64, 1, 0.1, 0.9); err == nil {
		t.Error("zero rows must be rejected")
	}
	if _, err := GenerateRetentionTail(rng, 64, 64, 1, 0.9, 0.1); err == nil {
		t.Error("inverted window must be rejected")
	}
	if _, err := GenerateRetentionTail(rng, 64, 64, -1, 0.1, 0.9); err == nil {
		t.Error("negative mean must be rejected")
	}
	// Zero mean draws nothing.
	none, err := GenerateRetentionTail(rng, 64, 64, 0, 0.1, 0.9)
	if err != nil || len(none) != 0 {
		t.Errorf("zero mean: %d faults, %v", len(none), err)
	}
}
