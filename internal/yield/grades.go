package yield

import (
	"fmt"
	"math/rand"
	"sort"

	"edram/internal/dram"
)

// Grade distinguishes the paper §6 quality targets: "if eDRAM is used
// for graphics applications, occasional soft problems, such as too
// short retention times of a few cells, are much more acceptable than
// if eDRAM is used for program data. The test concept should take this
// cost-reduction potential into account, ideally in conjunction with
// the redundancy concept."
type Grade int

const (
	// ProgramGrade requires every cell to work (program/data storage).
	ProgramGrade Grade = iota
	// GraphicsGrade tolerates a bounded number of unrepaired weak
	// (retention) cells; hard faults must still be repaired.
	GraphicsGrade
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	if g == GraphicsGrade {
		return "graphics"
	}
	return "program"
}

// GradeResult reports the graded Monte-Carlo yields.
type GradeResult struct {
	Trials int
	// ProgramYield: fully repaired blocks.
	ProgramYield float64
	// GraphicsYield: blocks good enough for graphics (hard faults
	// repaired, at most WeakTolerance weak cells left unrepaired).
	GraphicsYield float64
	// MeanWeakLeft is the average count of tolerated weak cells on
	// graphics-passing parts.
	MeanWeakLeft float64
}

// splitCells separates a defect list into hard failing cells and weak
// (retention-only) cells.
func splitCells(faults []dram.Fault, rows, cols int) (hard, weak [][2]int) {
	var hardFaults, weakFaults []dram.Fault
	weakSet := map[[2]int]bool{}
	for _, f := range faults {
		if f.Kind == dram.Retention {
			weakFaults = append(weakFaults, f)
			weakSet[[2]int{f.Row, f.Col}] = true
		} else {
			hardFaults = append(hardFaults, f)
		}
	}
	hard = FaultCells(hardFaults, rows, cols)
	// A cell that is both hard- and weak-faulty counts as hard.
	hardSet := map[[2]int]bool{}
	for _, c := range hard {
		hardSet[c] = true
	}
	for c := range weakSet {
		if !hardSet[c] {
			weak = append(weak, c)
		}
	}
	// Leftover spares cover weak cells in list order; sort so grading
	// does not depend on map iteration order.
	sort.Slice(weak, func(i, j int) bool {
		if weak[i][0] != weak[j][0] {
			return weak[i][0] < weak[j][0]
		}
		return weak[i][1] < weak[j][1]
	})
	return hard, weak
}

// RunGraded executes the Monte-Carlo experiment with quality grading:
// spares are allocated to hard faults first; leftover spares then cover
// weak cells; a part passes graphics grade when at most weakTolerance
// weak cells remain.
func (mc MonteCarlo) RunGraded(trials int, seed int64, weakTolerance int) (GradeResult, error) {
	if trials < 1 {
		return GradeResult{}, fmt.Errorf("yield: trials must be >= 1")
	}
	if weakTolerance < 0 {
		return GradeResult{}, fmt.Errorf("yield: weak tolerance must be non-negative")
	}
	rng := rand.New(rand.NewSource(seed))
	res := GradeResult{Trials: trials}
	var weakLeftSum float64
	graphicsPasses := 0
	for i := 0; i < trials; i++ {
		faults, err := GenerateDefects(rng, mc.Rows, mc.Cols, mc.MeanDefectsPerBlock, mc.Mix)
		if err != nil {
			return GradeResult{}, err
		}
		hard, weak := splitCells(faults, mc.Rows, mc.Cols)
		repHard := Repair(hard, mc.SpareRows, mc.SpareCols)
		if !repHard.Repaired {
			continue // fails both grades
		}
		leftRows := mc.SpareRows - repHard.UsedRows
		leftCols := mc.SpareCols - repHard.UsedCols
		repWeak := Repair(weak, leftRows, leftCols)
		if repWeak.Repaired {
			res.ProgramYield++
			res.GraphicsYield++
			graphicsPasses++
			continue
		}
		if repWeak.Unrepaired <= weakTolerance {
			res.GraphicsYield++
			weakLeftSum += float64(repWeak.Unrepaired)
			graphicsPasses++
		}
	}
	res.ProgramYield /= float64(trials)
	res.GraphicsYield /= float64(trials)
	if graphicsPasses > 0 {
		res.MeanWeakLeft = weakLeftSum / float64(graphicsPasses)
	}
	return res, nil
}
