package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

func TestLoaderUnitsPackage(t *testing.T) {
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Import("edram/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "units" {
		t.Fatalf("package name = %q, want units", p.Name())
	}
	if p.Scope().Lookup("MHzToNs") == nil {
		t.Fatal("MHzToNs not found in type-checked units package")
	}
	pkg := l.Packages()[0]
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
}

// TestLoaderCrossPackage checks that a package importing both stdlib
// and module-internal packages type-checks, and that object identity is
// shared across loads (the deprecated index relies on it).
func TestLoaderCrossPackage(t *testing.T) {
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	ip, err := l.Import("edram/internal/iram")
	if err != nil {
		t.Fatal(err)
	}
	up, err := l.Import("edram/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	// iram's imports must include the very same *types.Package.
	found := false
	for _, imp := range ip.Imports() {
		if imp == up {
			found = true
		}
	}
	if !found {
		t.Fatal("iram does not share the loader's units package object")
	}
	for _, pkg := range l.Packages() {
		if len(pkg.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", pkg.Path, pkg.TypeErrors)
		}
	}
}

func TestNolintIndex(t *testing.T) {
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := `package nolintfix

var a = 1 //nolint:edramvet
//nolint:edramvet/floateq // tolerance intentionally exact here
var b = 2
var c = 3
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix := buildNolint(l.Fset(), pkg.Files)
	at := func(line int) token.Position {
		return token.Position{Filename: filepath.Join(dir, "f.go"), Line: line}
	}
	if !ix.suppressed(at(3), "determinism") {
		t.Error("bare nolint should suppress any analyzer on its line")
	}
	if !ix.suppressed(at(5), "floateq") {
		t.Error("standalone nolint should suppress the next line")
	}
	if ix.suppressed(at(5), "determinism") {
		t.Error("scoped nolint must not suppress other analyzers")
	}
	if ix.suppressed(at(6), "floateq") {
		t.Error("nolint must not leak beyond the following line")
	}
}
