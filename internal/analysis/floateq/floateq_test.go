package floateq

import (
	"testing"

	"edram/internal/analysis/analysistest"
)

func TestFloateqFixtures(t *testing.T) {
	analysistest.Run(t, Analyzer, "floatfix")
}
