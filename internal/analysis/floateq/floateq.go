// Package floateq flags == and != between floating-point expressions.
// The model suite computes everything in float64; after any arithmetic,
// exact equality silently depends on evaluation order and optimization
// level, so comparisons belong behind a tolerance helper
// (math.Abs(a-b) <= eps). Three idioms stay legal:
//
//   - comparison against an exact zero constant (the sweep convention
//     for "unset / degenerate corner" sentinels);
//   - x != x (the standard NaN test);
//   - comparisons inside tolerance helpers themselves (functions whose
//     name ends in Eq/Equal/Equals or mentions approx/almost/near/
//     close/tol/within/epsilon).
//
// Deliberate exact comparisons elsewhere (e.g. total-order tie-breaks
// in canonical sorts) are annotated //nolint:edramvet/floateq with a
// reason.
package floateq

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag exact ==/!= between floats outside tolerance helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Info()
	for _, f := range pass.Files() {
		var inTolerance []bool
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				inTolerance = append(inTolerance, toleranceHelper(n.Name.Name))
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				inTolerance = inTolerance[:len(inTolerance)-1]
				return false
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if len(inTolerance) > 0 && inTolerance[len(inTolerance)-1] {
					return true
				}
				if !isFloat(info, n.X) || !isFloat(info, n.Y) {
					return true
				}
				if isZeroConst(info, n.X) || isZeroConst(info, n.Y) {
					return true // zero-sentinel convention
				}
				if sameIdent(n.X, n.Y) {
					return true // x != x is the NaN test
				}
				pass.Report(analysis.Diagnostic{
					Pos: n.OpPos,
					Message: fmt.Sprintf("float64 equality (%s): use a tolerance comparison or annotate //nolint:edramvet/floateq",
						n.Op),
				})
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

func sameIdent(a, b ast.Expr) bool {
	x, ok1 := ast.Unparen(a).(*ast.Ident)
	y, ok2 := ast.Unparen(b).(*ast.Ident)
	return ok1 && ok2 && x.Name == y.Name
}

// toleranceHelper reports whether a function name announces an
// approximate-comparison helper.
func toleranceHelper(name string) bool {
	l := strings.ToLower(name)
	if strings.HasSuffix(l, "eq") || strings.HasSuffix(l, "equal") || strings.HasSuffix(l, "equals") {
		return true
	}
	for _, w := range []string{"approx", "almost", "near", "close", "tol", "within", "epsilon"} {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}
