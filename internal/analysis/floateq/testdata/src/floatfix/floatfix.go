package floatfix

import "math"

func bad(a, b float64) bool {
	if a == b { // want "float64 equality"
		return true
	}
	return a*2 != b+1 // want "float64 equality"
}

func badSwitch(a, b float64) int {
	switch {
	case a != b: // want "float64 equality"
		return 1
	default:
		return 0
	}
}

// clean cases

func zeroSentinel(mhz float64) float64 {
	if mhz == 0 { // exact-zero sentinel is the sweep convention
		return 0
	}
	return 1 / mhz
}

func nanTest(x float64) bool {
	return x != x // the standard NaN test
}

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps || a == b // inside a tolerance helper
}

func intsAreFine(a, b int) bool { return a == b }

func annotated(a, b float64) bool {
	return a == b //nolint:edramvet/floateq // fixture: exact tie-break
}
