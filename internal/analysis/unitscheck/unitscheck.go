// Package unitscheck enforces the internal/units naming convention:
// every float64 in the model suite carries an implicit physical unit,
// spelled as an identifier suffix (RowNs, ClockMHz, AreaMm2, PowerMW,
// PeakGBps, SizeMbit, CostUSD — acronym-style spellings like TCKns
// count too). The compiler sees only float64; this analyzer flags the
// two ways the convention is broken in practice:
//
//   - a value whose name carries one unit flowing into a parameter,
//     field, variable or result whose name carries a different unit
//     (e.g. passing latencyNs where the parameter is mhz);
//   - raw "1e3 / x" period/frequency conversions where the units
//     package already provides MHzToNs / NsToMHz (which also define the
//     zero-denominator behaviour sweeps rely on).
//
// The units package itself is exempt from the conversion check — it is
// where the helpers live.
package unitscheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the unitscheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitscheck",
	Doc:  "flag identifier unit-suffix conflicts and raw 1e3/x conversions with a units helper available",
	Run:  run,
}

// suffixes are the canonical unit spellings, longest-match first.
var suffixes = []string{"GBps", "Mbit", "MHz", "Mm2", "USD", "Ns", "MW"}

// unitOf extracts the canonical unit suffix carried by a name, or "".
// Accepted spellings for e.g. Ns: "RowNs" (lower-case boundary),
// "TCKns" (acronym boundary, lower-case suffix), "ns"/"Ns" (the whole
// name, any case).
func unitOf(name string) string {
	for _, s := range suffixes {
		if strings.EqualFold(name, s) {
			return s
		}
		lower := strings.ToLower(s)
		if n, ok := strings.CutSuffix(name, s); ok && isLowerOrDigit(n[len(n)-1]) {
			return s
		}
		if n, ok := strings.CutSuffix(name, lower); ok && len(n) > 0 && isUpperOrDigit(n[len(n)-1]) {
			return s
		}
	}
	return ""
}

func isLowerOrDigit(b byte) bool { return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' }
func isUpperOrDigit(b byte) bool { return b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' }

// exprUnit extracts the unit a value expression carries, from the name
// of the identifier, selector or called function that produces it.
func exprUnit(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return exprUnit(e.X)
	case *ast.UnaryExpr:
		return exprUnit(e.X)
	case *ast.Ident:
		return unitOf(e.Name)
	case *ast.SelectorExpr:
		return unitOf(e.Sel.Name)
	case *ast.CallExpr:
		return exprUnit(e.Fun)
	}
	return ""
}

// exprName renders a short name for diagnostics.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.UnaryExpr:
		return exprName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun) + "()"
	}
	return "expression"
}

type checker struct {
	pass      *analysis.Pass
	info      *types.Info
	inUnits   bool // the units package itself
	reported  map[token.Pos]bool
	funcStack []string // enclosing function names, innermost last
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		info:     pass.Info(),
		inUnits:  strings.HasSuffix(pass.Pkg.Path, "internal/units") || pass.Pkg.Name == "units",
		reported: map[token.Pos]bool{},
	}
	for _, f := range pass.Files() {
		c.file(f)
	}
	return nil
}

func (c *checker) file(f *ast.File) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			c.funcStack = append(c.funcStack, n.Name.Name)
			if n.Body != nil {
				ast.Inspect(n.Body, walk)
			}
			c.funcStack = c.funcStack[:len(c.funcStack)-1]
			return false
		case *ast.CallExpr:
			c.call(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.ReturnStmt:
			c.returnStmt(n)
		}
		return true
	}
	ast.Inspect(f, walk)
}

// numeric reports whether e has a basic numeric type (unit suffixes on
// strings, formatters etc. are not unit-bearing values).
func (c *checker) numeric(e ast.Expr) bool {
	t := c.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// call checks each argument's unit against the parameter name's unit.
func (c *checker) call(call *ast.CallExpr) {
	t := c.info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		au := exprUnit(arg)
		if au == "" || !c.numeric(arg) {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi < 0 || pi >= params.Len() {
			continue
		}
		pname := params.At(pi).Name()
		pu := unitOf(pname)
		if pu != "" && pu != au {
			c.report(arg.Pos(), "argument %s carries unit %s but parameter %s of %s expects %s",
				exprName(arg), au, pname, exprName(call.Fun), pu)
		}
	}
}

// assign checks destination names against source units.
func (c *checker) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lu := exprUnit(lhs)
		rhs := as.Rhs[i]
		if lu != "" {
			if ru := exprUnit(rhs); ru != "" && ru != lu && c.numeric(rhs) {
				c.report(rhs.Pos(), "%s (unit %s) assigned to %s (unit %s)",
					exprName(rhs), ru, exprName(lhs), lu)
			}
		}
		c.rawConversion(lu, rhs)
	}
}

// composite checks struct-literal field names against value units.
func (c *checker) composite(lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		ku := unitOf(key.Name)
		if ku != "" {
			if vu := exprUnit(kv.Value); vu != "" && vu != ku && c.numeric(kv.Value) {
				c.report(kv.Value.Pos(), "%s (unit %s) used for field %s (unit %s)",
					exprName(kv.Value), vu, key.Name, ku)
			}
		}
		c.rawConversion(ku, kv.Value)
	}
}

// returnStmt checks returned expressions against the enclosing
// function's name unit (single-result functions only).
func (c *checker) returnStmt(ret *ast.ReturnStmt) {
	if len(ret.Results) != 1 || len(c.funcStack) == 0 {
		return
	}
	fu := unitOf(c.funcStack[len(c.funcStack)-1])
	if fu == "" {
		return
	}
	res := ret.Results[0]
	if ru := exprUnit(res); ru != "" && ru != fu && c.numeric(res) {
		c.report(res.Pos(), "%s (unit %s) returned from %s (unit %s)",
			exprName(res), ru, c.funcStack[len(c.funcStack)-1], fu)
	}
	c.rawConversion(fu, res)
}

// rawConversion flags "1e3 / x" period<->frequency conversions flowing
// into an Ns- or MHz-named destination, or dividing an MHz/Ns-named
// operand — the units package provides MHzToNs / NsToMHz for exactly
// this, with defined zero-denominator behaviour.
func (c *checker) rawConversion(destUnit string, e ast.Expr) {
	if c.inUnits {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.QUO || !hasThousandFactor(bin.X) {
			return true
		}
		du := exprUnit(bin.Y) // unit of the denominator
		switch {
		case du == "MHz" || (du == "" && destUnit == "Ns"):
			c.report(bin.Pos(), "raw period conversion 1e3/%s: use units.MHzToNs", exprName(bin.Y))
		case du == "Ns" || (du == "" && destUnit == "MHz"):
			c.report(bin.Pos(), "raw frequency conversion 1e3/%s: use units.NsToMHz", exprName(bin.Y))
		}
		return true
	})
}

// hasThousandFactor reports whether the expression is the literal 1e3
// (or 1000), possibly multiplied by other factors.
func hasThousandFactor(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return hasThousandFactor(e.X)
	case *ast.BasicLit:
		return e.Kind == token.FLOAT && e.Value == "1e3" ||
			e.Kind == token.INT && e.Value == "1000"
	case *ast.BinaryExpr:
		if e.Op == token.MUL {
			return hasThousandFactor(e.X) || hasThousandFactor(e.Y)
		}
	}
	return false
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
