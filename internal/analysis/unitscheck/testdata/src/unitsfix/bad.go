package unitsfix

// Fixture: unit-suffix conflicts and raw conversions the analyzer must
// flag. Comments with `want` are matched against diagnostics.

func wantPeriod(ns float64) float64    { return ns * 2 }
func wantClock(mhz float64) float64    { return mhz }
func clockMHz() float64                { return 143 }
func areaMm2() float64                 { return 12.5 }
func priceUSD(areaMm2 float64) float64 { return areaMm2 * 0.1 }

type Spec struct {
	LatencyNs float64
	PeakGBps  float64
}

func conflicts() float64 {
	latNs := 7.5
	_ = wantPeriod(latNs)    // same unit: clean
	_ = wantClock(latNs)     // want "carries unit Ns but parameter mhz .* expects MHz"
	_ = priceUSD(clockMHz()) // want "carries unit MHz but parameter areaMm2 .* expects Mm2"

	var busMHz float64
	busMHz = latNs // want "unit Ns.*assigned to busMHz.*unit MHz"
	_ = busMHz

	s := Spec{
		LatencyNs: latNs,     // clean
		PeakGBps:  areaMm2(), // want "unit Mm2.*field PeakGBps.*unit GBps"
	}
	return s.LatencyNs
}

// cycleNs returns a period but hand-rolls the conversion.
func cycleNs(clockMHz float64) float64 {
	return 1e3 / clockMHz // want "use units.MHzToNs"
}

// maxClockMHz hand-rolls the inverse conversion.
func maxClockMHz(tckNs float64) float64 {
	return 1e3 / tckNs // want "use units.NsToMHz"
}

func litPeriod() Spec {
	return Spec{LatencyNs: 6 * 1e3 / 300} // want "use units.MHzToNs"
}

// wrongReturn returns a frequency from an Ns-named function.
func totalNs(busMHz float64) float64 {
	return busMHz // want "unit MHz.*returned from totalNs.*unit Ns"
}
