package unitsfix

import "edram/internal/units"

// Fixture: idiomatic code the analyzer must NOT flag.

func cleanUsage(clock float64, fps int) float64 {
	// Helper-based conversions carry matching units end to end.
	periodNs := units.MHzToNs(clock)
	backMHz := units.NsToMHz(periodNs)

	// Division by a unitless quantity into a destination outside the
	// Ns/MHz pair (e.g. milliseconds) is not a period conversion.
	budgetMs := 5 * 1e3 / float64(fps)

	// Words that merely end in lower-case "ns"/"mw" are not units.
	columns := 512
	runs := columns / 4

	// Mixed-unit arithmetic is fine — only direct flows are checked.
	density := areaMm2() / float64(runs)
	return periodNs + backMHz + budgetMs + density
}

// An explicitly annotated exception stays quiet and greppable.
func annotated(tckNs float64) float64 {
	return 1e3 / tckNs //nolint:edramvet/unitscheck // fixture: escape hatch
}
