package unitscheck

import (
	"testing"

	"edram/internal/analysis/analysistest"
)

func TestUnitscheckFixtures(t *testing.T) {
	analysistest.Run(t, Analyzer, "unitsfix")
}

func TestUnitOf(t *testing.T) {
	cases := map[string]string{
		"RowNs":      "Ns",
		"TCKns":      "Ns",
		"ns":         "Ns",
		"ClockMHz":   "MHz",
		"mhz":        "MHz",
		"AreaMm2":    "Mm2",
		"mm2":        "Mm2",
		"PowerMW":    "MW",
		"PeakGBps":   "GBps",
		"SizeMbit":   "Mbit",
		"CostUSD":    "USD",
		"MHzToNs":    "Ns",
		"NsToMHz":    "MHz",
		"columns":    "", // lower-case word ending in ns
		"runs":       "",
		"Banks":      "",
		"budgetMs":   "",
		"Frequency":  "",
		"MbitToBits": "",
		"BitsToMbit": "Mbit",
		"FormatGBps": "GBps",
		"WindowB":    "",
	}
	for name, want := range cases {
		if got := unitOf(name); got != want {
			t.Errorf("unitOf(%q) = %q, want %q", name, got, want)
		}
	}
}
