package analysis

// The suppression audit: every //nolint:edramvet directive must carry a
// reason and must still be earning its keep. A directive that
// suppressed nothing in a full-suite run is stale — the code it excused
// was fixed or deleted — and keeping it around silently blinds the
// suite to future regressions at that site.

// AuditEntry is one directive's verdict.
type AuditEntry struct {
	Directive
	// Stale marks a directive that suppressed no diagnostic in this
	// run even though every analyzer it names ran.
	Stale bool
	// Unknown lists scope names matching no analyzer in the suite
	// (typo, or an analyzer since removed).
	Unknown []string
	// MissingReason marks a directive with no justification text.
	MissingReason bool
}

// Bad reports whether the entry should fail the audit.
func (e AuditEntry) Bad() bool {
	return e.Stale || e.MissingReason || len(e.Unknown) > 0
}

// AuditNolint judges every directive from a run against the analyzer
// set that ran. Staleness is only meaningful when the directives'
// analyzers all ran — the driver runs the full suite in audit mode.
func AuditNolint(res *RunResult, analyzers []*Analyzer) []AuditEntry {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	entries := make([]AuditEntry, 0, len(res.Directives))
	for _, d := range res.Directives {
		e := AuditEntry{Directive: d}
		for _, n := range d.Analyzers {
			if !known[n] {
				e.Unknown = append(e.Unknown, n)
			}
		}
		if d.Hits == 0 && len(e.Unknown) == 0 {
			e.Stale = true
		}
		if d.Reason == "" {
			e.MissingReason = true
		}
		entries = append(entries, e)
	}
	return entries
}
