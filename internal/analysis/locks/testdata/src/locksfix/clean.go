// Fixture: the clean half — release-before-block, pure Locked-suffix
// helpers, non-blocking selects, and goroutine escape.
package locksfix

import (
	"os"
	"sync"
)

type cache struct {
	mu sync.RWMutex
	m  map[string]string
}

func (c *cache) get(k string) (string, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

// unlockThenBlock releases the lock before the channel send.
func (c *cache) unlockThenBlock(ch chan int) {
	c.mu.Lock()
	c.m["x"] = "y"
	c.mu.Unlock()
	ch <- 1
}

// snapshotLocked is a Locked-convention helper with a pure body.
func (c *cache) snapshotLocked() map[string]string {
	out := make(map[string]string, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// evictThenRemove picks the victim under the lock and touches the disk
// only after releasing it — the fixed shape of the eviction bug.
func (c *cache) evictThenRemove(path string) {
	c.mu.Lock()
	delete(c.m, path)
	c.mu.Unlock()
	os.Remove(path)
}

// tryNotify may hold the lock through a select with a default arm: it
// cannot block.
func (c *cache) tryNotify(ch chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
}

// goroutineEscapes: the spawned body runs without the lock.
func (c *cache) goroutineEscapes(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		ch <- 1
	}()
}
