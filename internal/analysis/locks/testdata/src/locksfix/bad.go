// Fixture: blocking operations under a held mutex. evictLocked mirrors
// the jobs.Store eviction bug: disk I/O inside a Locked-convention
// helper.
package locksfix

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
}

func (s *store) badSend(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want "held across a channel send"
	s.mu.Unlock()
}

func (s *store) badRecv(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want "held across a channel receive"
}

func (s *store) badIO(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(path) // want "held across a call to os.Remove"
}

func (s *store) badSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "held across a select with no default"
	case <-ch:
	}
}

type pool struct{}

func (p *pool) Acquire() {}

func (s *store) badAcquire(p *pool) {
	s.mu.Lock()
	p.Acquire() // want "held across a call to pool.Acquire"
	s.mu.Unlock()
}

func (s *store) badWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "held across a call to WaitGroup.Wait"
	s.mu.Unlock()
}

// evictLocked runs under the caller's lock and deletes a file through a
// same-package helper — the one-level propagation case.
func (s *store) evictLocked(path string) {
	s.removeFile(path) // want "calls removeFile, which blocks"
}

func (s *store) removeFile(path string) {
	os.Remove(path)
}

// badHelperUnderLock: the same helper, but under an explicit region.
func (s *store) badHelperUnderLock(path string) {
	s.mu.Lock()
	s.removeFile(path) // want "held across a call to removeFile"
	s.mu.Unlock()
}
