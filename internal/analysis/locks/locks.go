// Package locks flags a mutex held across a blocking operation —
// channel sends/receives, selects without a default, time.Sleep,
// network/disk I/O, pool Acquire calls, WaitGroup waits. A blocking
// call under a lock turns one slow operation into a stall for every
// goroutine contending on that mutex (the jobs.Store eviction bug:
// checkpoint file deletion under the store lock froze every Submit and
// Get for the duration of the disk I/O).
//
// Two region shapes are checked:
//
//   - from each mu.Lock()/mu.RLock() to the next textual matching
//     unlock in the same function (or to the function's end when the
//     unlock is deferred). Nested function literals and go statements
//     are excluded — their bodies run on other goroutines or later;
//   - the whole body of any function named *Locked: the project's
//     naming convention for "caller holds the lock".
//
// Calls to same-package functions that directly contain a blocking
// operation count as blocking too (one level of propagation — enough
// to catch lock-held helpers like removeFile).
package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the lock-region pass.
var Analyzer = &analysis.Analyzer{
	Name: "locks",
	Doc:  "no blocking operation (channel, I/O, Acquire, Wait) while a mutex is held",
	Run:  run,
}

// blockingPkgs are the stdlib packages whose calls are assumed to
// block (I/O), minus the pure predicates in osAllow.
var blockingPkgs = map[string]bool{
	"net": true, "net/http": true, "os": true, "io": true, "bufio": true,
}

// osAllow are non-blocking helpers inside the blocking packages.
var osAllow = map[string]bool{
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
	"Getenv": true, "LookupEnv": true, "Environ": true, "Getpid": true,
}

// timeBlocking are the time functions that park the goroutine.
var timeBlocking = map[string]bool{"Sleep": true, "After": true, "Tick": true}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, info: pass.Info(), direct: map[*types.Func]string{}}
	// First pass: which same-package functions directly block?
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var ops []op
			c.scan(fd.Body, &ops)
			for _, o := range ops {
				if o.kind == opBlock {
					c.direct[fn] = o.desc
					break
				}
			}
		}
	}
	// Second pass: lock regions.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
		// Function literals get their own region analysis (their
		// bodies were skipped by the enclosing function's scan).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkBody("", lit.Body)
			}
			return true
		})
	}
	return nil
}

const (
	opLock   = "lock"
	opUnlock = "unlock"
	opBlock  = "block"
	opCall   = "call"
)

// op is one lock-relevant event in a function body, in source order.
type op struct {
	pos      token.Pos
	kind     string
	key      string // lock expression, e.g. "s.mu"
	rlock    bool
	deferred bool
	desc     string      // blocking description
	fn       *types.Func // same-package callee
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	direct map[*types.Func]string // same-package funcs that directly block
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.checkBody(fd.Name.Name, fd.Body)
}

func (c *checker) checkBody(name string, body *ast.BlockStmt) {
	var ops []op
	c.scan(body, &ops)

	// The *Locked naming convention: the whole body runs under the
	// caller's lock.
	if strings.HasSuffix(name, "Locked") {
		for _, o := range ops {
			switch o.kind {
			case opBlock:
				c.report(o.pos, "%s runs with its caller's lock held (Locked suffix) but performs %s; move the blocking work outside the locked section", name, o.desc)
			case opCall:
				if desc, ok := c.direct[o.fn]; ok {
					c.report(o.pos, "%s runs with its caller's lock held (Locked suffix) but calls %s, which blocks (%s)", name, o.fn.Name(), desc)
				}
			}
		}
	}

	for i, l := range ops {
		if l.kind != opLock || l.deferred {
			continue
		}
		end := body.End()
		for _, u := range ops {
			if u.kind == opUnlock && !u.deferred && u.key == l.key && u.rlock == l.rlock && u.pos > l.pos && u.pos < end {
				end = u.pos
			}
		}
		for j, o := range ops {
			if j == i || o.pos <= l.pos || o.pos >= end {
				continue
			}
			switch o.kind {
			case opBlock:
				c.report(o.pos, "mutex %s is held across %s; release the lock before blocking", l.key, o.desc)
			case opCall:
				if desc, ok := c.direct[o.fn]; ok {
					c.report(o.pos, "mutex %s is held across a call to %s, which blocks (%s); release the lock first", l.key, o.fn.Name(), desc)
				}
			}
		}
	}
}

// scan collects lock-relevant ops from a body, excluding nested
// function literals and go statements (they run elsewhere/later) and
// the comm clauses of select statements (the select op itself is the
// blocking point).
func (c *checker) scan(n ast.Node, out *[]op) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if o, ok := c.mutexCall(n.Call); ok {
				o.pos = n.Pos()
				o.deferred = true
				*out = append(*out, o)
			}
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				*out = append(*out, op{pos: n.Pos(), kind: opBlock, desc: "a select with no default"})
			}
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						c.scan(st, out)
					}
				}
			}
			return false
		case *ast.SendStmt:
			*out = append(*out, op{pos: n.Arrow, kind: opBlock, desc: "a channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				*out = append(*out, op{pos: n.Pos(), kind: opBlock, desc: "a channel receive"})
			}
		case *ast.RangeStmt:
			if tv, ok := c.info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					*out = append(*out, op{pos: n.Pos(), kind: opBlock, desc: "a channel range"})
				}
			}
		case *ast.CallExpr:
			if o, ok := c.mutexCall(n); ok {
				*out = append(*out, o)
				return true
			}
			fn := c.calleeFunc(n)
			if fn == nil {
				return true
			}
			if desc, blocking := c.blockingFunc(fn); blocking {
				*out = append(*out, op{pos: n.Pos(), kind: opBlock, desc: desc})
				return true
			}
			if fn.Pkg() == c.pass.Pkg.Types {
				*out = append(*out, op{pos: n.Pos(), kind: opCall, fn: fn})
			}
		}
		return true
	})
}

// mutexCall classifies mu.Lock/RLock/Unlock/RUnlock calls.
func (c *checker) mutexCall(call *ast.CallExpr) (op, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return op{}, false
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return op{}, false
	}
	o := op{pos: call.Pos(), key: types.ExprString(sel.X)}
	switch fn.Name() {
	case "Lock":
		o.kind = opLock
	case "RLock":
		o.kind, o.rlock = opLock, true
	case "Unlock":
		o.kind = opUnlock
	case "RUnlock":
		o.kind, o.rlock = opUnlock, true
	default:
		return op{}, false
	}
	return o, true
}

// blockingFunc classifies callees that park the goroutine or do I/O.
func (c *checker) blockingFunc(fn *types.Func) (string, bool) {
	name := fn.Name()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && timeBlocking[name]:
		return "a call to time." + name, true
	case blockingPkgs[pkg] && !osAllow[name]:
		return "a call to " + qualName(fn), true
	case pkg == "sync" && name == "Wait":
		return "a call to " + qualName(fn), true
	case strings.HasPrefix(name, "Acquire"):
		return "a call to " + qualName(fn), true
	}
	return "", false
}

// qualName renders pkg.Func or RecvType.Method for messages.
func qualName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.info.Uses[id].(*types.Func)
	return fn
}
