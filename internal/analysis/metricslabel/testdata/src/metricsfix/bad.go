// Fixture: unbounded-cardinality label values.
package metricsfix

// Request mimics a wire type: its fields are decoded from client JSON
// and never written in-package.
type Request struct {
	Kind string `json:"kind"`
}

func badRawParam(m *Metrics, path string) {
	m.Counter("req_total", "Requests.", Label{"path", path}).Inc() // want "closed set"
}

func badWireField(m *Metrics, req Request) {
	m.Counter("jobs_total", "Jobs.", Label{"kind", req.Kind}).Inc() // want "closed set"
}

func badOpaqueLabel(m *Metrics, l Label) {
	m.Counter("x_total", "X.", l).Inc() // want "literal Label"
}

// Masked mimics the write-masking trap: the field has a visible
// literal write (newMasked below), but its json tag means the decoder
// can also write it from client bytes — the literal must not mask the
// wire path.
type Masked struct {
	Kind string `json:"kind"`
}

func newMasked() Masked { return Masked{Kind: "explore"} }

func badMaskedWireField(m *Metrics, q Masked) {
	m.Counter("masked_total", "Masked.", Label{"kind", q.Kind}).Inc() // want "closed set"
}

// badParamChain: the label flows through sink's parameter, and one of
// sink's call sites passes untraceable data.
func sink(m *Metrics, endpoint string) {
	m.Counter("y_total", "Y.", Label{"endpoint", endpoint}).Inc() // want "closed set"
}

func badCallSite(m *Metrics, raw string) {
	sink(m, raw)
}
