// Fixture: the closed-set producers the registry accepts.
package metricsfix

import (
	"fmt"
	"strconv"
)

// endpointLabel is a closed-set normalizer: the *Label suffix is the
// project convention for "output drawn from a fixed set".
func endpointLabel(path string) string {
	if path == "/v1/explore" {
		return path
	}
	return "other"
}

// Kind is a closed-set enum.
type Kind int

func (k Kind) String() string {
	if k == 0 {
		return "explore"
	}
	return "trials"
}

const fixedLabel = "const_value"

func goodProducers(m *Metrics, path string, k Kind, status int) {
	endpoint := endpointLabel(path)
	m.Counter("req_total", "R.", Label{"endpoint", endpoint}, Label{"kind", k.String()}).Inc()
	m.Counter("code_total", "C.", Label{"code", fmt.Sprintf("%d", status)}).Inc()
	m.Counter("n_total", "N.", Label{"n", strconv.Itoa(status)}).Inc()
	m.Gauge("fixed", "F.", Label{"v", fixedLabel}, Label{Name: "lit", Value: "yes"}).Inc()
}

// goodParamChain: every in-package call site of shed passes a literal,
// so the parameter itself is a closed set.
func goodParamChain(m *Metrics) {
	shed(m, "/v1/explore")
	shed(m, "/v1/jobs")
}

func shed(m *Metrics, endpoint string) {
	m.Counter("shed_total", "S.", Label{"endpoint", endpoint}).Inc()
}

// goodFieldChain: every in-package write to overload.reason is a
// literal, so reading the field back is closed.
type overload struct{ reason string }

func goodFieldChain(m *Metrics, full bool) {
	oe := overload{reason: "queue_full"}
	if full {
		oe.reason = "endpoint_budget"
	}
	m.Counter("reason_total", "R.", Label{"reason", oe.reason}).Inc()
}
