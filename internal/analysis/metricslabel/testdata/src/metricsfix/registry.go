// Fixture: a miniature of the service.Metrics registry shape — the
// analyzer matches Counter/Gauge/Histogram methods on any type named
// Metrics taking Label arguments.
package metricsfix

type Label struct {
	Name  string
	Value string
}

type Counter struct{}

func (c *Counter) Inc() {}

type Metrics struct{}

func (m *Metrics) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }

func (m *Metrics) Gauge(name, help string, labels ...Label) *Counter { return &Counter{} }
