// Package metricslabel bounds metric cardinality: every label value
// passed to the service.Metrics registry (Counter/Gauge/Histogram on a
// type named Metrics) must come from a closed set. A raw request field
// in a label is an unbounded-cardinality leak — every distinct client
// string mints a new time series, which is both a memory leak and a
// scrape-size explosion.
//
// A value is closed when its provenance bottoms out in literals or
// constants: string/number literals, calls to closed-set normalizers
// (functions whose name ends in "Label", e.g. endpointLabel), enum
// String() methods, strconv formatting of numbers, and fmt.Sprintf over
// closed operands. Identifiers are traced one level at a time — a
// function parameter is closed when every in-package call site passes a
// closed argument; a struct field is closed when every in-package write
// to it stores a closed value; a local is closed when all its
// assignments are. Provenance the analyzer cannot see (a field only
// ever written by the JSON decoder, a parameter with no in-package
// callers) is not closed.
package metricslabel

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the metric-label cardinality pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricslabel",
	Doc:  "metric label values must come from closed sets, never raw request data",
	Run:  run,
}

// registryMethods are the Metrics methods that mint labeled series.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		info:      pass.Info(),
		callSites: map[*types.Func][]*ast.CallExpr{},
	}
	c.index()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c.registryCall(call)
			return true
		})
	}
	return nil
}

type paramRef struct {
	fn    *types.Func
	index int
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
	// paramOwner maps a parameter object to its declaring function and
	// position, for the call-site provenance trace.
	paramOwner map[*types.Var]paramRef
	// callSites caches in-package call expressions per callee.
	callSites map[*types.Func][]*ast.CallExpr
	indexed   bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// index builds the parameter-ownership and call-site tables.
func (c *checker) index() {
	c.paramOwner = map[*types.Var]paramRef{}
	for _, f := range c.pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := c.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				c.paramOwner[sig.Params().At(i)] = paramRef{fn: fn, index: i}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := c.calleeFunc(call); fn != nil {
				c.callSites[fn] = append(c.callSites[fn], call)
			}
			return true
		})
	}
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.info.Uses[id].(*types.Func)
	return fn
}

// registryCall checks the Label arguments of a Metrics registry call.
func (c *checker) registryCall(call *ast.CallExpr) {
	fn := c.calleeFunc(call)
	if fn == nil || !registryMethods[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Metrics" {
		return
	}
	for _, arg := range call.Args {
		tv, ok := c.info.Types[arg]
		if !ok || !isLabelType(tv.Type) {
			continue
		}
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			c.report(arg.Pos(), "metric label must be a literal Label{...} so its value's provenance can be checked")
			continue
		}
		name, value := labelParts(lit)
		if value == nil {
			continue
		}
		if !c.closed(value, map[string]bool{}) {
			c.report(value.Pos(), "metric label %s value %s does not come from a closed set (use a literal, a *Label normalizer, an enum String(), or strconv over numbers); raw request data mints unbounded series",
				name, types.ExprString(value))
		}
	}
}

// labelParts extracts the name (for the message) and value expression
// from a Label composite literal.
func labelParts(lit *ast.CompositeLit) (string, ast.Expr) {
	name := "?"
	var value ast.Expr
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				switch id.Name {
				case "Name":
					name = exprLit(kv.Value, name)
				case "Value":
					value = kv.Value
				}
			}
			continue
		}
		switch i {
		case 0:
			name = exprLit(elt, name)
		case 1:
			value = elt
		}
	}
	return name, value
}

func exprLit(e ast.Expr, fallback string) string {
	if bl, ok := e.(*ast.BasicLit); ok && bl.Kind == token.STRING {
		return bl.Value
	}
	return fallback
}

func isLabelType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Label" {
		return false
	}
	_, ok = named.Underlying().(*types.Struct)
	return ok
}

// closed reports whether an expression's value provably comes from a
// closed set. visited breaks provenance cycles (a cycle means the value
// never originates outside the traced set, so it is accepted).
func (c *checker) closed(e ast.Expr, visited map[string]bool) bool {
	e = ast.Unparen(e)
	if tv, ok := c.info.Types[e]; ok {
		if tv.Value != nil {
			return true // constant-folded
		}
		// Non-string basics (status codes, counts) are bounded enough;
		// the cardinality risk is client-controlled text.
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() != types.String && b.Info()&types.IsConstType != 0 {
			return true
		}
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.CallExpr:
		return c.closedCall(e, visited)
	case *ast.Ident:
		if v, ok := c.info.Uses[e].(*types.Var); ok {
			return c.closedVar(v, visited)
		}
		_, isConst := c.info.Uses[e].(*types.Const)
		return isConst
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return c.closedField(v, visited)
			}
		}
		_, isConst := c.info.Uses[e.Sel].(*types.Const)
		return isConst
	}
	return false
}

// closedCall accepts the closed-set producers: *Label normalizers,
// enum String() methods, strconv formatting, and fmt.Sprint* over
// closed operands.
func (c *checker) closedCall(call *ast.CallExpr, visited map[string]bool) bool {
	fn := c.calleeFunc(call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	switch {
	case strings.HasSuffix(name, "Label"):
		return true
	case name == "String":
		return true
	case fn.Pkg() != nil && fn.Pkg().Path() == "strconv":
		return true
	case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(name, "Sprint"):
		for _, arg := range call.Args {
			if !c.closed(arg, visited) {
				return false
			}
		}
		return true
	}
	return false
}

// closedVar traces an identifier: parameters through their call sites,
// locals through their assignments.
func (c *checker) closedVar(v *types.Var, visited map[string]bool) bool {
	if pr, ok := c.paramOwner[v]; ok {
		key := fmt.Sprintf("param:%s:%d", pr.fn.FullName(), pr.index)
		if visited[key] {
			return true
		}
		visited[key] = true
		sites := c.callSites[pr.fn]
		if len(sites) == 0 {
			return false // no in-package provenance to check
		}
		for _, site := range sites {
			if pr.index >= len(site.Args) {
				return false
			}
			if !c.closed(site.Args[pr.index], visited) {
				return false
			}
		}
		return true
	}
	key := fmt.Sprintf("var:%d", v.Pos())
	if visited[key] {
		return true
	}
	visited[key] = true
	assigns := c.assignments(v)
	if len(assigns) == 0 {
		return false
	}
	for _, rhs := range assigns {
		if rhs == nil || !c.closed(rhs, visited) {
			return false
		}
	}
	return true
}

// assignments collects every expression assigned to a local variable; a
// nil entry marks an assignment whose value cannot be traced (range
// clause, multi-value unpacking).
func (c *checker) assignments(v *types.Var) []ast.Expr {
	var out []ast.Expr
	for _, f := range c.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !c.sameObj(id, v) {
						continue
					}
					if len(n.Rhs) == len(n.Lhs) {
						out = append(out, n.Rhs[i])
					} else {
						out = append(out, nil)
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if !c.sameObj(id, v) {
						continue
					}
					if i < len(n.Values) {
						out = append(out, n.Values[i])
					}
				}
			case *ast.RangeStmt:
				for _, lhs := range []ast.Expr{n.Key, n.Value} {
					if id, ok := lhs.(*ast.Ident); ok && c.sameObj(id, v) {
						out = append(out, nil)
					}
				}
			}
			return true
		})
	}
	return out
}

func (c *checker) sameObj(id *ast.Ident, v *types.Var) bool {
	return c.info.Defs[id] == v || c.info.Uses[id] == v
}

// closedField traces a struct field: every in-package write (composite
// literal element or assignment) must store a closed value. A field
// with no visible writes is decoded from the wire — not closed. A
// json-tagged field is never closed: the decoder writes it invisibly
// from request bytes, so visible literal writes cannot bound it.
func (c *checker) closedField(v *types.Var, visited map[string]bool) bool {
	key := fmt.Sprintf("field:%d", v.Pos())
	if visited[key] {
		return true
	}
	visited[key] = true
	if c.wireTagged(v) {
		return false
	}
	writes := c.fieldWrites(v)
	if len(writes) == 0 {
		return false
	}
	for _, w := range writes {
		if w == nil || !c.closed(w, visited) {
			return false
		}
	}
	return true
}

// wireTagged reports whether field v carries a json tag other than "-"
// on a package-scope struct — the JSON decoder can write such a field
// from client bytes without any syntactic assignment.
func (c *checker) wireTagged(v *types.Var) bool {
	pkg := v.Pkg()
	if pkg == nil {
		return false
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) != v {
				continue
			}
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			jsonName, _, _ := strings.Cut(tag, ",")
			return jsonName != "" && jsonName != "-"
		}
	}
	return false
}

func (c *checker) fieldWrites(v *types.Var) []ast.Expr {
	var out []ast.Expr
	for _, f := range c.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				out = append(out, c.litWrites(n, v)...)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					s, ok := c.info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal || s.Obj() != v {
						continue
					}
					if len(n.Rhs) == len(n.Lhs) {
						out = append(out, n.Rhs[i])
					} else {
						out = append(out, nil)
					}
				}
			}
			return true
		})
	}
	return out
}

// litWrites extracts the value stored into field v by a composite
// literal of v's struct, if any.
func (c *checker) litWrites(lit *ast.CompositeLit, v *types.Var) []ast.Expr {
	tv, ok := c.info.Types[lit]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fieldIndex := -1
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			fieldIndex = i
			break
		}
	}
	if fieldIndex < 0 {
		return nil
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && c.info.Uses[id] == v {
				return []ast.Expr{kv.Value}
			}
			continue
		}
		if i == fieldIndex {
			return []ast.Expr{elt}
		}
	}
	return nil
}
