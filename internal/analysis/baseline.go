package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline is the committed inventory of accepted findings: the
// `-diff` mode reports only findings beyond it, so CI fails on *new*
// lint debt without forcing an all-at-once burn-down. Entries are keyed
// by (analyzer, file, message) — deliberately not by line, so unrelated
// edits that shift code do not churn the baseline — with a count
// allowing that many identical findings per file.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry accepts Count findings of one analyzer+message in one
// file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineVersion is bumped when the entry key shape changes.
const baselineVersion = 1

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// NewBaseline aggregates findings (paths relativized to base) into a
// baseline ready to write.
func NewBaseline(findings []Finding, base string) *Baseline {
	counts := map[string]*BaselineEntry{}
	var keys []string
	for _, f := range findings {
		file := relPath(base, f.Pos.Filename)
		k := baselineKey(f.Analyzer, file, f.Message)
		e := counts[k]
		if e == nil {
			e = &BaselineEntry{Analyzer: f.Analyzer, File: file, Message: f.Message}
			counts[k] = e
			keys = append(keys, k)
		}
		e.Count++
	}
	sort.Strings(keys)
	b := &Baseline{Version: baselineVersion, Findings: make([]BaselineEntry, 0, len(keys))}
	for _, k := range keys {
		b.Findings = append(b.Findings, *counts[k])
	}
	return b
}

// LoadBaseline reads a baseline file written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: version %d, want %d (regenerate with -write-baseline)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff returns the findings not absorbed by the baseline, preserving
// order. Each baseline entry absorbs up to Count matching findings.
func (b *Baseline) Diff(findings []Finding, base string) []Finding {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += e.Count
	}
	var fresh []Finding
	for _, f := range findings {
		k := baselineKey(f.Analyzer, relPath(base, f.Pos.Filename), f.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}
