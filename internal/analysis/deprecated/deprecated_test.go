package deprecated

import (
	"testing"

	"edram/internal/analysis/analysistest"
)

func TestDeprecatedFixtures(t *testing.T) {
	analysistest.Run(t, Analyzer, "deprecfix")
}
