package deprecfix

// Run drains the queue.
//
// Deprecated: use RunWithOptions, which exposes the full options.
// It remains as a compatibility shim; recursive uses inside the shim
// are exempt.
func Run(n int) int {
	if n > 1 {
		return Run(n - 1) // inside the deprecated declaration: exempt
	}
	return RunWithOptions(n, 0)
}

// RunWithOptions is the replacement API.
func RunWithOptions(n, opts int) int { return n + opts }

// LegacyLimit is kept for old callers.
//
// Deprecated: size limits moved to Options.
const LegacyLimit = 64

// OldSpec describes the v0 layout.
//
// Deprecated: use Spec.
type OldSpec struct{ N int }

// Spec is the current layout.
type Spec struct{ N int }

func callers() int {
	a := Run(3)               // want "Run is deprecated: use RunWithOptions"
	b := RunWithOptions(3, 1) // replacement API: clean
	c := LegacyLimit          // want "LegacyLimit is deprecated: size limits moved to Options"
	var s OldSpec             // want "OldSpec is deprecated: use Spec"
	var s2 Spec               // clean
	return a + b + c + s.N + s2.N
}

func annotated() int {
	return Run(1) //nolint:edramvet/deprecated // fixture: migration pending
}
