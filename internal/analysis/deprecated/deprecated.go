// Package deprecated flags uses of symbols whose doc comment carries a
// "Deprecated:" marker — most immediately the positional sched.Run,
// deprecated when PR 1 introduced RunWithOptions. The index is built
// from every package the loader materialized, so facade re-exports and
// cross-package calls are caught; the deprecated symbol's own
// declaration (its compatibility-shim body) is exempt.
package deprecated

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the deprecated pass.
var Analyzer = &analysis.Analyzer{
	Name: "deprecated",
	Doc:  "flag uses of symbols documented as Deprecated:",
	Run:  run,
}

// entry records one deprecated symbol: its note and the source range of
// its declaration (uses inside it are the shim itself).
type entry struct {
	note    string
	declPos token.Pos
	declEnd token.Pos
}

func run(pass *analysis.Pass) error {
	index := buildIndex(pass.All)
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			e, ok := index[obj]
			if !ok {
				return true
			}
			if id.Pos() >= e.declPos && id.Pos() <= e.declEnd {
				return true // inside the deprecated declaration itself
			}
			msg := fmt.Sprintf("%s is deprecated", obj.Name())
			if e.note != "" {
				msg += ": " + e.note
			}
			pass.Report(analysis.Diagnostic{Pos: id.Pos(), Message: msg})
			return true
		})
	}
	return nil
}

// buildIndex scans every loaded package for Deprecated: declarations.
func buildIndex(all []*analysis.Package) map[types.Object]entry {
	index := map[types.Object]entry{}
	add := func(pkg *analysis.Package, id *ast.Ident, doc *ast.CommentGroup, declPos, declEnd token.Pos) {
		note, ok := deprecationNote(doc)
		if !ok || id == nil {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			return
		}
		index[obj] = entry{note: note, declPos: declPos, declEnd: declEnd}
	}
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					add(pkg, d.Name, d.Doc, d.Pos(), d.End())
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.ValueSpec:
							doc := s.Doc
							if doc == nil {
								doc = d.Doc
							}
							for _, name := range s.Names {
								add(pkg, name, doc, d.Pos(), d.End())
							}
						case *ast.TypeSpec:
							doc := s.Doc
							if doc == nil {
								doc = d.Doc
							}
							add(pkg, s.Name, doc, d.Pos(), d.End())
						}
					}
				}
			}
		}
	}
	return index
}

// deprecationNote extracts the first line of a "Deprecated:" paragraph.
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
