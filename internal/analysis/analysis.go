// Package analysis is a self-contained, stdlib-only analyzer framework
// for the project's custom lint suite (cmd/edramvet). It mirrors the
// shape of golang.org/x/tools/go/analysis at a fraction of the surface:
// an Analyzer owns a Run function that inspects one type-checked
// package at a time and reports Diagnostics; the driver loads packages
// with go/parser + go/types (no network, no module downloads), applies
// the //nolint:edramvet escape hatch, and renders findings.
//
// The suite exists because two invariants of the model packages are
// invisible to the compiler: every float64 carries an implicit physical
// unit (internal/units conventions), and every sweep / fault pipeline
// must be byte-identical across runs and worker counts. See the
// sibling packages unitscheck, determinism, floateq and deprecated for
// the individual invariants.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:edramvet/<name> comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// All lists every package the loader has materialized this run
	// (the analyzed set plus transitively imported module packages).
	// Cross-package indexes — e.g. the deprecated-symbol table — are
	// built from it; object identity is shared because all packages
	// were type-checked through one loader.
	All []*Package
	// Report records one finding.
	Report func(Diagnostic)
}

// Files is shorthand for the analyzed package's syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Info is shorthand for the analyzed package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a rendered diagnostic, ready for printing and sorting.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}
