// Fixture: context-discipline violations in a gated serving package.
package service

import "context"

func doWork(ctx context.Context) error { return ctx.Err() }

func badRoot() error {
	ctx := context.Background() // want "fresh root context"
	return doWork(ctx)
}

func badTODO() error {
	return doWork(context.TODO()) // want "fresh root context"
}

func badDetach(ctx context.Context) error {
	dctx := context.WithoutCancel(ctx) // want "detaches from the caller"
	return doWork(dctx)
}

func badUnthreaded(ctx context.Context) error { // want "never threaded"
	return doWork(context.TODO()) // want "fresh root context"
}

func badClosure(ctx context.Context) error { // want "never threaded"
	return func(inner context.Context) error { // want "never threaded"
		return doWork(context.TODO()) // want "fresh root context"
	}(nil)
}
