// Fixture: the clean half — threaded contexts, a ctx-free helper, a
// capture through a closure, and the scoped-nolint escape for an
// intentional root.
package service

import "context"

func threaded(ctx context.Context) error {
	return doWork(ctx)
}

func holdsUnusedCtx(ctx context.Context) int {
	// Keeps a ctx for interface shape but calls nothing that accepts
	// one — not a threading violation.
	return 42
}

func capturesInClosure(ctx context.Context) func() error {
	return func() error { return doWork(ctx) }
}

func intentionalRoot() error {
	ctx := context.Background() //nolint:edramvet/ctxflow // fixture: deliberate detach with a reason
	return doWork(ctx)
}
