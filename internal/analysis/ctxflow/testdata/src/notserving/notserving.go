// Fixture: packages outside the serving set may build root contexts
// (CLI entry points, tests, model code).
package notserving

import "context"

func Root() context.Context { return context.Background() }
