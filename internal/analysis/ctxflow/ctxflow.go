// Package ctxflow enforces context discipline in the long-lived
// serving packages (internal/service, internal/jobs, internal/loadgen).
// Two rules:
//
//   - no fresh root contexts: context.Background(), context.TODO() and
//     the context.WithoutCancel detach are findings. The handful of
//     intentional roots (the server's base context, the graceful-drain
//     timeout, the detached cache-fill compute, the job store's runner
//     root) carry scoped //nolint:edramvet/ctxflow escapes with the
//     detach reason — making the allowlist greppable and audited;
//   - a function that receives a ctx must thread it: if the body calls
//     at least one context-accepting callee but never mentions its own
//     ctx parameter, cancellation stops propagating right there (the
//     callee runs on whatever context it conjures instead).
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the context-propagation pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid fresh root contexts and unthreaded ctx parameters in the serving packages",
	Run:  run,
}

// servingPackages are the long-lived packages held to context
// discipline (by final path element).
var servingPackages = map[string]bool{
	"service": true, "jobs": true, "loadgen": true,
	// The shard coordinator fans requests out to peers: a severed
	// context there would keep doomed partitions running after the
	// caller gave up. The disk cache's writer runs under the same
	// discipline — its lifetime is channel-managed, never
	// context-detached.
	"shard": true, "diskcache": true,
}

// rootFuncs are the context constructors that sever the caller's
// cancellation chain.
var rootFuncs = map[string]string{
	"Background":    "creates a fresh root context; derive from the caller's ctx instead",
	"TODO":          "creates a fresh root context; derive from the caller's ctx instead",
	"WithoutCancel": "detaches from the caller's cancellation; intentional detach sites need a scoped nolint with the reason",
}

func run(pass *analysis.Pass) error {
	parts := strings.Split(pass.Pkg.Path, "/")
	if !servingPackages[parts[len(parts)-1]] {
		return nil
	}
	c := &checker{pass: pass, info: pass.Info()}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				c.rootCall(n)
			case *ast.FuncDecl:
				if n.Body != nil {
					c.threading(n.Type, n.Body)
				}
			case *ast.FuncLit:
				c.threading(n.Type, n.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// rootCall flags context.Background/TODO/WithoutCancel.
func (c *checker) rootCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if why, bad := rootFuncs[fn.Name()]; bad {
		c.report(call.Pos(), "context.%s %s", fn.Name(), why)
	}
}

// threading flags a ctx parameter that is never used even though the
// body calls context-accepting callees.
func (c *checker) threading(ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Params == nil {
		return
	}
	var ctxParams []*ast.Ident
	for _, field := range ft.Params.List {
		if !isCtxExpr(c.info, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				ctxParams = append(ctxParams, name)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := map[types.Object]bool{}
	hasCtxCallee := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := c.info.Uses[n]; obj != nil {
				used[obj] = true
			}
		case *ast.CallExpr:
			if c.acceptsCtx(n) {
				hasCtxCallee = true
			}
		}
		return true
	})
	if !hasCtxCallee {
		return
	}
	for _, p := range ctxParams {
		if obj := c.info.Defs[p]; obj != nil && !used[obj] {
			c.report(p.Pos(), "ctx parameter %s is never threaded to the function's context-accepting callees; cancellation stops propagating here", p.Name)
		}
	}
}

// acceptsCtx reports whether a call's callee takes a context.Context.
func (c *checker) acceptsCtx(call *ast.CallExpr) bool {
	tv, ok := c.info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isCtxExpr reports whether a parameter type expression is
// context.Context.
func isCtxExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isCtxType(tv.Type)
}

func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
