// Fixture for the harness meta-test: the want regexp matches no
// diagnostic (floateq reports "float64 equality" here), so a correct
// harness must fail twice — unexpected diagnostic + unmatched want.
package metabad

func F(a, b float64) bool {
	return a == b // want "this-regexp-matches-no-diagnostic"
}
