// Fixture for the harness meta-test: a correctly annotated fixture
// must pass with zero recorded errors.
package metaclean

func G(a, b float64) bool {
	return a == b // want "float64 equality"
}
