// Package analysistest runs an analyzer over fixture packages under
// testdata/src/<name> and checks its diagnostics against expectations
// written in the fixtures themselves, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	x := aNs == bNs // want "float64 equality"
//
// Each quoted string after "want" is a regular expression that must
// match a diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// fail the test. Fixtures may import module packages (edram/...) and
// the standard library; they must type-check cleanly.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"edram/internal/analysis"
)

var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// TB is the subset of testing.TB the harness needs. It exists so the
// harness can be tested against itself: a meta-test drives RunTB with a
// recording fake and asserts that bad fixtures fail.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Fatal(args ...any)
	Failed() bool
}

// Run checks the analyzer against the named fixture packages (each a
// directory under testdata/src relative to the calling test).
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	RunTB(t, a, fixtures...)
}

// RunTB is Run over any TB implementation.
func RunTB(t TB, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := moduleRoot(t, cwd)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range fixtures {
		runOne(t, loader, a, filepath.Join(cwd, "testdata", "src", name))
	}
}

func runOne(t TB, loader *analysis.Loader, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, e)
	}
	if t.Failed() {
		return
	}
	findings, err := analysis.RunAnalyzers(loader, []*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	// file -> line -> pending expectations
	wants := map[string]map[int][]*want{}
	fset := loader.Fset()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoted.FindAllString(text, -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					m := wants[pos.Filename]
					if m == nil {
						m = map[int][]*want{}
						wants[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], &want{re: re, raw: raw})
				}
			}
		}
	}

	for _, f := range findings {
		var hit *want
		for _, w := range wants[f.Pos.Filename][f.Pos.Line] {
			if !w.matched && w.re.MatchString(f.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s", f)
			continue
		}
		hit.matched = true
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, w.raw)
				}
			}
		}
	}
}

func moduleRoot(t TB, dir string) string {
	t.Helper()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above test directory")
		}
		dir = parent
	}
}
