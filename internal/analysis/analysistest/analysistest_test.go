// The meta-test: the fixture harness itself must fail fixtures with
// wrong expectations and pass correct ones. A recording TB stands in
// for *testing.T.
package analysistest

import (
	"fmt"
	"strings"
	"testing"

	"edram/internal/analysis/floateq"
)

type fatalStop struct{}

// recordTB captures harness verdicts without failing the real test.
type recordTB struct {
	errors []string
}

func (r *recordTB) Helper() {}

func (r *recordTB) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func (r *recordTB) Fatalf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
	panic(fatalStop{})
}

func (r *recordTB) Fatal(args ...any) {
	r.errors = append(r.errors, fmt.Sprint(args...))
	panic(fatalStop{})
}

func (r *recordTB) Failed() bool { return len(r.errors) > 0 }

func (r *recordTB) run(a func()) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(fatalStop); !ok {
				panic(p)
			}
		}
	}()
	a()
}

func TestWrongWantRegexpFails(t *testing.T) {
	rec := &recordTB{}
	rec.run(func() { RunTB(rec, floateq.Analyzer, "metabad") })
	if len(rec.errors) != 2 {
		t.Fatalf("harness recorded %d errors, want 2:\n%s", len(rec.errors), strings.Join(rec.errors, "\n"))
	}
	var unexpected, unmatched bool
	for _, e := range rec.errors {
		if strings.Contains(e, "unexpected diagnostic") {
			unexpected = true
		}
		if strings.Contains(e, "no diagnostic matching") {
			unmatched = true
		}
	}
	if !unexpected || !unmatched {
		t.Errorf("harness errors missed a verdict (unexpected=%v unmatched=%v):\n%s",
			unexpected, unmatched, strings.Join(rec.errors, "\n"))
	}
}

func TestCorrectFixturePasses(t *testing.T) {
	rec := &recordTB{}
	rec.run(func() { RunTB(rec, floateq.Analyzer, "metaclean") })
	if len(rec.errors) != 0 {
		t.Fatalf("harness failed a correct fixture:\n%s", strings.Join(rec.errors, "\n"))
	}
}
