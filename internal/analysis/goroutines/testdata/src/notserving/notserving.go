// Fixture: packages outside the serving set may spawn free goroutines
// (CLI fan-out with its own join logic, tests).
package notserving

func FireAndForget() {
	go func() {}()
}
