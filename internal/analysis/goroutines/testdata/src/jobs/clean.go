// Fixture: the clean half — goroutines tied to a context, a WaitGroup
// or a channel, plus the scoped-nolint escape.
package jobs

import (
	"context"
	"sync"
	"time"
)

func withCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func withWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
	}()
}

func withDoneChannel() <-chan error {
	done := make(chan error, 1)
	go func() {
		done <- nil
	}()
	return done
}

func withCloseSignal() chan struct{} {
	settled := make(chan struct{})
	go func() {
		defer close(settled)
		time.Sleep(time.Millisecond)
	}()
	return settled
}

func namedRunnerWithCtx(ctx context.Context) {
	go runner(ctx)
}

func runner(ctx context.Context) { <-ctx.Done() }

func intentionalDetach() {
	go tick() //nolint:edramvet/goroutines // fixture: process-lifetime helper, exits with the process
}
