// Fixture: lifecycle-blind goroutines in a gated serving package.
package jobs

import "time"

func fireAndForget() {
	go func() { // want "not cancellation-aware"
		for {
			time.Sleep(time.Second)
		}
	}()
}

func detachedHelper() {
	go tick() // want "not cancellation-aware"
}

func tick() { time.Sleep(time.Millisecond) }
