package goroutines

import (
	"testing"

	"edram/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, Analyzer, "jobs", "notserving")
}
