// Package goroutines is the static complement of the PR 7 testleak
// runtime gate: every `go` statement in the long-lived serving packages
// (internal/service, internal/jobs, internal/loadgen) must be
// cancellation-aware — observably tied to a context, a WaitGroup, or a
// channel (send, receive, close or select). A goroutine with none of
// those has no shutdown path: the daemon's graceful drain cannot wait
// for it and cannot stop it, which is exactly how serve loops leak.
package goroutines

import (
	"go/ast"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the goroutine-lifecycle pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutines",
	Doc:  "go statements in serving packages must be cancellation-aware (ctx, WaitGroup or channel)",
	Run:  run,
}

// servingPackages are the long-lived packages whose goroutines need a
// shutdown path (by final path element).
var servingPackages = map[string]bool{
	"service": true, "jobs": true, "loadgen": true,
	// Shard lanes and the disk cache's writer goroutine live for the
	// whole process: both must observe shutdown (context or done
	// channel) or a drain would hang forever.
	"shard": true, "diskcache": true,
}

func run(pass *analysis.Pass) error {
	parts := strings.Split(pass.Pkg.Path, "/")
	if !servingPackages[parts[len(parts)-1]] {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !aware(info, g) {
				pass.Report(analysis.Diagnostic{
					Pos:     g.Pos(),
					Message: "goroutine is not cancellation-aware: tie it to a context, WaitGroup or done channel so shutdown can reach it",
				})
			}
			return true
		})
	}
	return nil
}

// aware scans the whole go statement (arguments and, for a function
// literal, its body) for a lifecycle signal: any context- or
// WaitGroup-typed value, any channel-typed value, or any channel
// operation.
func aware(info *types.Info, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(g, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					found = true
				}
			}
		case ast.Expr:
			if tv, ok := info.Types[n]; ok && lifecycleType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// lifecycleType reports whether a value of this type ties the goroutine
// to a shutdown path: a channel, a context.Context, or a
// sync.WaitGroup.
func lifecycleType(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Name() == "Context" && obj.Pkg().Path() == "context":
		return true
	case obj.Name() == "WaitGroup" && obj.Pkg().Path() == "sync":
		return true
	}
	return false
}
