// Fixture: the clean half — the full discipline as practiced by the
// real key methods (quoted strings, enum String(), nested delegation,
// reasoned exemption, matching pin and version tag).
package keys

import (
	"strconv"
	"strings"
)

// Kind is a closed-set enum; its String() values are safe unquoted.
type Kind int

func (k Kind) String() string {
	if k == 0 {
		return "fast"
	}
	return "dense"
}

// SubKey is a nested identity reached by delegation.
type SubKey struct {
	Label string
}

//cachekey:fields v1 Label
func (s SubKey) CanonicalKey() string {
	return "sub/v1{label=" + canonString(s.Label) + "}"
}

// GoodSpec renders every identity field, quotes the raw string, and
// pins the field set against its version tag.
type GoodSpec struct {
	CapacityMbit int     `json:"capacity_mbit"`
	Clock        float64 `json:"clock"`
	Kind         Kind    `json:"kind"`
	Name         string  `json:"name"`
	Sub          *SubKey `json:"sub,omitempty"`
	// Comment is operator documentation; it never changes the model's
	// answer, so it stays out of the cache identity.
	//cachekey:exempt presentation-only, never read by the model
	Comment string `json:"comment,omitempty"`
	private int
}

//cachekey:fields v2 CapacityMbit,Clock,Kind,Name,Sub
func (g GoodSpec) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("good/v2{cap=")
	b.WriteString(strconv.Itoa(g.CapacityMbit))
	b.WriteString("|clock=")
	b.WriteString(strconv.FormatFloat(g.Clock, 'g', -1, 64))
	b.WriteString("|kind=")
	b.WriteString(g.Kind.String())
	b.WriteString("|name=")
	b.WriteString(canonString(g.Name))
	if g.Sub != nil {
		b.WriteString("|sub=")
		b.WriteString(g.Sub.CanonicalKey())
	}
	b.WriteString("}")
	return b.String()
}
