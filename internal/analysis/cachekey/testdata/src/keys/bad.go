// Fixture: cache-key discipline violations. Each struct isolates one
// rule; BadSpec mirrors the real edram.Spec shape with one field-render
// line deleted — the exact regression the analyzer exists to catch.
package keys

import "strconv"

func canonString(s string) string { return strconv.Quote(s) }

// BadSpec is a Spec-shaped identity whose Banks render line was
// deleted without touching the struct.
type BadSpec struct {
	CapacityMbit int
	Banks        int
	Name         string
}

//cachekey:fields v1 Banks,CapacityMbit,Name
func (s BadSpec) CanonicalKey() string { // want "does not render field Banks"
	return "badspec/v1{cap=" + strconv.Itoa(s.CapacityMbit) + "|name=" + canonString(s.Name) + "}"
}

// NoVersion renders everything but carries no /vN tag to bump.
type NoVersion struct {
	ID int
}

//cachekey:fields v1 ID
func (n NoVersion) CanonicalKey() string { // want "no /vN version tag"
	return "noversion{" + strconv.Itoa(n.ID) + "}"
}

// NoPin has no recorded field set, so a future struct change cannot be
// detected as an unbumped identity change.
type NoPin struct {
	ID int
}

func (n NoPin) CanonicalKey() string { // want "no //cachekey:fields pin"
	return "nopin/v1{" + strconv.Itoa(n.ID) + "}"
}

// PinDrift grew a field (rendered, even) without bumping the version
// tag — cached entries from the old format now collide with the new.
type PinDrift struct {
	ID    int
	Extra int
}

//cachekey:fields v1 ID
func (p PinDrift) CanonicalKey() string { // want "does not match //cachekey:fields pin"
	return "pindrift/v1{id=" + strconv.Itoa(p.ID) + "|extra=" + strconv.Itoa(p.Extra) + "}"
}

// VerMismatch bumped the pin but not the literal.
type VerMismatch struct {
	ID int
}

//cachekey:fields v2 ID
func (v VerMismatch) CanonicalKey() string { // want "tag /v1 does not match"
	return "vermismatch/v1{id=" + strconv.Itoa(v.ID) + "}"
}

// RawString embeds client-controlled text without quoting, so a crafted
// Name can forge the key's separators.
type RawString struct {
	Name string
}

//cachekey:fields v1 Name
func (r RawString) CanonicalKey() string {
	return "rawstring/v1{name=" + r.Name + "}" // want "without canonString"
}

// ExemptNoReason exempts a field without saying why.
type ExemptNoReason struct {
	ID int
	//cachekey:exempt
	Notes string // want "needs a reason"
}

//cachekey:fields v1 ID
func (e ExemptNoReason) CanonicalKey() string {
	return "exemptnoreason/v1{id=" + strconv.Itoa(e.ID) + "}"
}
