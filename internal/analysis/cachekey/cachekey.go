// Package cachekey mechanizes the canonical-cache-key discipline of
// DESIGN.md §6. Any struct with a CanonicalKey/canonicalKey method is a
// cache identity, and the PR 4 review showed what a partial identity
// costs: a request field left out of the key aliases distinct requests
// onto one cached response. The analyzer enforces, per key method:
//
//   - every exported or json-tagged field of the receiver struct is
//     rendered into the key (referenced in the method body) or carries
//     an explicit `//cachekey:exempt <reason>` comment on the field;
//   - the method embeds a `/vN` version tag in a string literal, and a
//     `//cachekey:fields vN <f1,f2,...>` pin in the method's doc
//     comment records the field set that tag covers — so growing or
//     shrinking the struct without bumping the version is a finding,
//     not a silent cache alias;
//   - plain string fields (client-controlled text) pass through a
//     quoting sanitizer (canonString or strconv.Quote) before entering
//     the key, so field values cannot forge separators. Named string
//     types (closed-set enums) and comparison operands are exempt.
package cachekey

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the cache-key completeness pass.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc:  "every exported/json-tagged field of a CanonicalKey type must be rendered, quoted and version-pinned",
	Run:  run,
}

const (
	exemptDirective = "cachekey:exempt"
	pinDirective    = "cachekey:fields"
)

// versionTag matches the /vN marker inside a key literal ("spec/v2{").
var versionTag = regexp.MustCompile(`/v(\d+)`)

// sanitizers are the callee names that make a raw string safe to embed
// in a key (canonString wraps strconv.Quote in every key-owning
// package).
var sanitizers = map[string]bool{"canonString": true, "Quote": true}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, info: pass.Info()}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "CanonicalKey" && fd.Name.Name != "canonicalKey" {
				continue
			}
			c.checkKeyMethod(fd)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// structField pairs a receiver-struct field with its declaration AST
// (the AST carries the exemption comments).
type structField struct {
	obj  *types.Var
	ast  *ast.Field
	tag  string
	name string
}

func (c *checker) checkKeyMethod(fd *ast.FuncDecl) {
	obj, ok := c.info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 1 || !isString(sig.Results().At(0).Type()) {
		return
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	typeName := named.Obj().Name()
	fields := c.structFields(named, st)

	// Partition the identity-bearing fields: exported or json-tagged,
	// minus explicit exemptions (which must carry a reason).
	var required []structField
	for _, f := range fields {
		if !identityField(f) {
			continue
		}
		if exempt, reason := exemption(f.ast); exempt {
			if reason == "" {
				c.report(f.ast.Pos(), "field %s.%s: //cachekey:exempt needs a reason", typeName, f.name)
			}
			continue
		}
		required = append(required, f)
	}

	// Which fields does the method body actually render?
	referenced := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := c.info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				referenced[v] = true
			}
		}
		return true
	})
	for _, f := range required {
		if !referenced[f.obj] {
			c.report(fd.Pos(), "%s on %s does not render field %s: add it to the key and bump the /vN version tag, or mark the field //cachekey:exempt with a reason",
				fd.Name.Name, typeName, f.name)
		}
	}

	// The /vN version tag inside the key literal, and the
	// //cachekey:fields pin that records which field set that version
	// covers.
	tag := c.bodyVersionTag(fd.Body)
	if tag == "" {
		c.report(fd.Pos(), "%s on %s has no /vN version tag in any key literal; key formats must be versioned", fd.Name.Name, typeName)
	}
	names := make([]string, 0, len(required))
	for _, f := range required {
		names = append(names, f.name)
	}
	sort.Strings(names)
	pinVer, pinFields, hasPin := pin(fd.Doc)
	switch {
	case !hasPin:
		c.report(fd.Pos(), "%s on %s has no //cachekey:fields pin; add `//cachekey:fields %s %s` above the method",
			fd.Name.Name, typeName, orV(tag), strings.Join(names, ","))
	default:
		if tag != "" && pinVer != tag {
			c.report(fd.Pos(), "%s on %s: key literal tag /%s does not match //cachekey:fields pin %s — bump the version tag when the key format changes",
				fd.Name.Name, typeName, tag, pinVer)
		}
		if !equalStrings(pinFields, names) {
			c.report(fd.Pos(), "%s on %s: field set {%s} does not match //cachekey:fields pin {%s} — the key identity changed, bump the /vN version tag and update the pin",
				fd.Name.Name, typeName, strings.Join(names, ","), strings.Join(pinFields, ","))
		}
	}

	c.checkStringHygiene(fd, typeName)
}

// structFields walks the receiver type's declaration to pair each
// types.Struct field with its AST (same package by Go's method rule).
func (c *checker) structFields(named *types.Named, st *types.Struct) []structField {
	var stAST *ast.StructType
	for _, f := range c.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || c.info.Defs[ts.Name] != named.Obj() {
				return true
			}
			if s, ok := ts.Type.(*ast.StructType); ok {
				stAST = s
			}
			return false
		})
		if stAST != nil {
			break
		}
	}
	if stAST == nil {
		return nil
	}
	var out []structField
	i := 0
	for _, af := range stAST.Fields.List {
		n := len(af.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for j := 0; j < n && i < st.NumFields(); j++ {
			out = append(out, structField{obj: st.Field(i), ast: af, tag: st.Tag(i), name: st.Field(i).Name()})
			i++
		}
	}
	return out
}

// identityField reports whether a field is part of the cache identity:
// exported, or carried on the wire via a json tag.
func identityField(f structField) bool {
	jsonTag := reflect.StructTag(f.tag).Get("json")
	if jsonTag != "" && jsonTag != "-" {
		return true
	}
	return f.obj.Exported()
}

// exemption parses a //cachekey:exempt directive from a field's doc or
// trailing comment.
func exemption(af *ast.Field) (bool, string) {
	for _, cg := range []*ast.CommentGroup{af.Doc, af.Comment} {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cmt.Text, "//"))
			if rest, ok := strings.CutPrefix(text, exemptDirective); ok {
				return true, strings.TrimSpace(rest)
			}
		}
	}
	return false, ""
}

// pin parses the //cachekey:fields vN f1,f2 directive from the method
// doc comment.
func pin(doc *ast.CommentGroup) (ver string, fields []string, ok bool) {
	if doc == nil {
		return "", nil, false
	}
	for _, cmt := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cmt.Text, "//"))
		rest, found := strings.CutPrefix(text, pinDirective)
		if !found {
			continue
		}
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			return "", nil, true
		}
		ver = parts[0]
		for _, chunk := range parts[1:] {
			for _, n := range strings.Split(chunk, ",") {
				if n = strings.TrimSpace(n); n != "" {
					fields = append(fields, n)
				}
			}
		}
		sort.Strings(fields)
		return ver, fields, true
	}
	return "", nil, false
}

// bodyVersionTag returns the vN of the first string literal in the body
// containing a /vN marker.
func (c *checker) bodyVersionTag(body *ast.BlockStmt) string {
	tag := ""
	var tagPos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if m := versionTag.FindStringSubmatch(s); m != nil {
			if tag == "" || lit.Pos() < tagPos {
				tag = "v" + m[1]
				tagPos = lit.Pos()
			}
		}
		return true
	})
	return tag
}

// checkStringHygiene flags plain string struct fields rendered into the
// key without passing through a quoting sanitizer. Named string types
// are closed-set enums by project convention and comparisons don't
// render anything, so both are exempt.
func (c *checker) checkStringHygiene(fd *ast.FuncDecl, typeName string) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := c.info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !isPlainString(v.Type()) {
			return true
		}
		if sanitizedContext(stack, sel) {
			return true
		}
		c.report(sel.Pos(), "string field %s is rendered into the %s key without canonString/strconv.Quote; client-controlled text must be quoted", v.Name(), typeName)
		return true
	})
}

// sanitizedContext reports whether the selector sits inside a sanitizer
// call, a comparison, or a switch/case — contexts where the raw string
// never reaches the key bytes unquoted.
func sanitizedContext(stack []ast.Node, sel *ast.SelectorExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CallExpr:
			name := calleeName(p)
			if !sanitizers[name] {
				continue
			}
			for _, arg := range p.Args {
				if arg.Pos() <= sel.Pos() && sel.End() <= arg.End() {
					return true
				}
			}
		case *ast.BinaryExpr:
			switch p.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				return true
			}
		case *ast.SwitchStmt, *ast.CaseClause:
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// isPlainString matches the predeclared string type only — named string
// types are closed-set enums, not client-controlled text.
func isPlainString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.String
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// orV renders a tag for the fix-it hint, defaulting to v1.
func orV(tag string) string {
	if tag == "" {
		return "v1"
	}
	return tag
}
