package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{Analyzer: "cachekey", Pos: token.Position{Filename: "/repo/internal/edram/edram.go", Line: 10, Column: 6}, Message: "missing field"},
		{Analyzer: "locks", Pos: token.Position{Filename: "/repo/internal/jobs/jobs.go", Line: 20, Column: 2}, Message: "held across send"},
	}
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	want := "internal/edram/edram.go:10:6: missing field [cachekey]\n" +
		"internal/jobs/jobs.go:20:2: held across send [locks]\n"
	if b.String() != want {
		t.Errorf("text output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil, "/repo"); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty findings must render as [], got %q", b.String())
	}
	b.Reset()
	if err := WriteJSON(&b, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if len(out) != 2 || out[0]["analyzer"] != "cachekey" || out[0]["file"] != "internal/edram/edram.go" {
		t.Errorf("json output = %v", out)
	}
}

// TestWriteSARIFShape validates the output against the SARIF 2.1.0
// schema shape: required top-level keys, tool.driver with rules, and
// results carrying ruleId/message/physical locations.
func TestWriteSARIFShape(t *testing.T) {
	suite := []*Analyzer{
		{Name: "cachekey", Doc: "cache keys must be complete. Long tail ignored."},
		{Name: "locks", Doc: "no blocking under mutex"},
	}
	var b strings.Builder
	if err := WriteSARIF(&b, sampleFindings(), suite, "/repo"); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatalf("sarif output does not parse: %v", err)
	}
	if got := log["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	schema, _ := log["$schema"].(string)
	if !strings.Contains(schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", schema)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "edramvet" {
		t.Errorf("driver name = %v, want edramvet", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != 2 {
		t.Fatalf("rules = %d entries, want 2", len(rules))
	}
	rule := rules[0].(map[string]any)
	if rule["id"] != "cachekey" {
		t.Errorf("rule id = %v", rule["id"])
	}
	if desc := rule["shortDescription"].(map[string]any)["text"]; desc != "cache keys must be complete." {
		t.Errorf("shortDescription = %v, want first sentence only", desc)
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("results = %v, want 2", run["results"])
	}
	res := results[0].(map[string]any)
	if res["ruleId"] != "cachekey" || res["level"] != "error" {
		t.Errorf("result = %v", res)
	}
	if msg := res["message"].(map[string]any)["text"]; msg != "missing field" {
		t.Errorf("message.text = %v", msg)
	}
	loc := res["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/edram/edram.go" {
		t.Errorf("artifactLocation.uri = %v", uri)
	}
	region := loc["region"].(map[string]any)
	if region["startLine"] != float64(10) || region["startColumn"] != float64(6) {
		t.Errorf("region = %v", region)
	}
}

// TestWriteSARIFEmpty: a clean run still emits a valid log with the
// rule inventory and an empty (non-null) results array.
func TestWriteSARIFEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSARIF(&b, nil, []*Analyzer{{Name: "x", Doc: "d"}}, ""); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatal(err)
	}
	if log.Runs[0].Results == nil {
		t.Error("results must be [] on a clean run, not null")
	}
}
