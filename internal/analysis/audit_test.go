package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// auditTestAnalyzer flags every variable whose name starts with "bad" —
// a minimal diagnostic source for exercising suppression accounting.
var auditTestAnalyzer = &Analyzer{
	Name: "testcheck",
	Doc:  "flags variables named bad*",
	Run: func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "bad") {
						pass.Report(Diagnostic{Pos: name.Pos(), Message: "bad variable " + name.Name})
					}
				}
				return true
			})
		}
		return nil
	},
}

const auditFixture = `package auditfix

var bad1 = 1 //nolint:edramvet/testcheck // known-bad fixture value

//nolint:edramvet/testcheck
var bad2 = 2

//nolint:edramvet/testcheck // nothing left to excuse here
var good1 = 3

//nolint:edramvet/nosuch // this analyzer does not exist
var good2 = 4

var bad3 = 5
`

func TestAuditNolint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module auditfix\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(auditFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAnalyzersDetail(l, []*Package{pkg}, []*Analyzer{auditTestAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Findings) != 1 || !strings.Contains(res.Findings[0].Message, "bad3") {
		t.Errorf("findings = %v, want just bad3", res.Findings)
	}
	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %v, want bad1 and bad2", res.Suppressed)
	}

	entries := AuditNolint(res, []*Analyzer{auditTestAnalyzer})
	if len(entries) != 4 {
		t.Fatalf("audit entries = %d, want 4", len(entries))
	}
	byReason := map[string]AuditEntry{}
	for _, e := range entries {
		byReason[e.Reason] = e
	}

	if e := byReason["known-bad fixture value"]; e.Bad() || e.Hits != 1 {
		t.Errorf("earning directive judged bad: %+v", e)
	}
	if e := byReason[""]; !e.MissingReason || e.Stale || len(e.Unknown) != 0 {
		t.Errorf("reasonless directive verdict: %+v", e)
	}
	if e := byReason["nothing left to excuse here"]; !e.Stale || e.MissingReason {
		t.Errorf("stale directive verdict: %+v", e)
	}
	if e := byReason["this analyzer does not exist"]; len(e.Unknown) != 1 || e.Unknown[0] != "nosuch" || e.Stale {
		t.Errorf("unknown-scope directive verdict: %+v", e)
	}
}
