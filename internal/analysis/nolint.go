package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The escape-hatch convention: a comment of the form
//
//	//nolint:edramvet                  — suppress every edramvet analyzer
//	//nolint:edramvet/floateq          — suppress one analyzer
//	//nolint:edramvet/floateq,determinism // reason
//
// suppresses matching diagnostics on the comment's own line and on the
// line directly below it (so it works both as a trailing comment and as
// a standalone comment above the offending statement). A reason after
// the directive is required by the audit (`edramvet -audit-nolint`);
// the directive itself is greppable as "nolint:edramvet".
const nolintPrefix = "nolint:edramvet"

// Directive is one parsed //nolint:edramvet comment. The driver counts
// how many diagnostics each directive suppressed so the audit can flag
// stale ones.
type Directive struct {
	File string
	Line int
	// Analyzers lists the analyzer names the directive is scoped to;
	// empty means it suppresses every analyzer ("*").
	Analyzers []string
	// Reason is the free-text justification following the directive.
	Reason string
	// Hits counts the diagnostics this directive suppressed during the
	// run that produced it.
	Hits int
}

// Scope renders the directive's analyzer list for reports.
func (d *Directive) Scope() string {
	if len(d.Analyzers) == 0 {
		return "*"
	}
	return strings.Join(d.Analyzers, ",")
}

// Matches reports whether the directive covers the named analyzer.
func (d *Directive) Matches(analyzer string) bool {
	if len(d.Analyzers) == 0 {
		return true
	}
	for _, n := range d.Analyzers {
		if n == analyzer {
			return true
		}
	}
	return false
}

// nolintIndex maps file name → line → directives anchored there, and
// keeps the parse-order list for the audit.
type nolintIndex struct {
	byFile     map[string]map[int][]*Directive
	directives []*Directive
}

// buildNolint scans a package's comments for nolint directives.
func buildNolint(fset *token.FileSet, files []*ast.File) *nolintIndex {
	ix := &nolintIndex{byFile: map[string]map[int][]*Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				rest := text[len(nolintPrefix):]
				var names []string
				if strings.HasPrefix(rest, "/") {
					spec := rest[1:]
					rest = ""
					if i := strings.IndexAny(spec, " \t"); i >= 0 {
						rest = spec[i:]
						spec = spec[:i]
					}
					for _, n := range strings.Split(spec, ",") {
						if n = strings.TrimSpace(n); n != "" {
							names = append(names, n)
						}
					}
				}
				// The reason conventionally follows as "// why" or
				// "- why"; strip the separator.
				reason := strings.TrimSpace(rest)
				for _, sep := range []string{"//", "-", "—"} {
					reason = strings.TrimSpace(strings.TrimPrefix(reason, sep))
				}
				pos := fset.Position(c.Pos())
				d := &Directive{File: pos.Filename, Line: pos.Line, Analyzers: names, Reason: reason}
				m := ix.byFile[pos.Filename]
				if m == nil {
					m = map[int][]*Directive{}
					ix.byFile[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
				ix.directives = append(ix.directives, d)
			}
		}
	}
	sort.Slice(ix.directives, func(i, j int) bool {
		a, b := ix.directives[i], ix.directives[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return ix
}

// suppressor returns the directive covering a diagnostic from the named
// analyzer at pos, or nil. The first matching directive (comment line
// before standalone-above line) wins and is charged the hit.
func (ix *nolintIndex) suppressor(pos token.Position, analyzer string) *Directive {
	m := ix.byFile[pos.Filename]
	if m == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range m[line] {
			if d.Matches(analyzer) {
				return d
			}
		}
	}
	return nil
}

// suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a nolint directive.
func (ix *nolintIndex) suppressed(pos token.Position, analyzer string) bool {
	return ix.suppressor(pos, analyzer) != nil
}
