package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape-hatch convention: a comment of the form
//
//	//nolint:edramvet                  — suppress every edramvet analyzer
//	//nolint:edramvet/floateq          — suppress one analyzer
//	//nolint:edramvet/floateq,determinism // reason
//
// suppresses matching diagnostics on the comment's own line and on the
// line directly below it (so it works both as a trailing comment and as
// a standalone comment above the offending statement). A reason after
// the directive is strongly encouraged; the directive itself is
// greppable as "nolint:edramvet".
const nolintPrefix = "nolint:edramvet"

// nolintIndex maps file name → line → analyzer names suppressed there
// ("*" means all).
type nolintIndex map[string]map[int][]string

// buildNolint scans a package's comments for nolint directives.
func buildNolint(fset *token.FileSet, files []*ast.File) nolintIndex {
	ix := nolintIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				rest := text[len(nolintPrefix):]
				names := []string{"*"}
				if strings.HasPrefix(rest, "/") {
					// Strip a trailing reason ("// why" or "- why").
					spec := rest[1:]
					if i := strings.IndexAny(spec, " \t"); i >= 0 {
						spec = spec[:i]
					}
					names = nil
					for _, n := range strings.Split(spec, ",") {
						if n = strings.TrimSpace(n); n != "" {
							names = append(names, n)
						}
					}
				}
				pos := fset.Position(c.Pos())
				m := ix[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					ix[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	return ix
}

// suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a nolint directive.
func (ix nolintIndex) suppressed(pos token.Position, analyzer string) bool {
	m := ix[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, n := range m[line] {
			if n == "*" || n == analyzer {
				return true
			}
		}
	}
	return false
}
