package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func bf(analyzer, file string, line int, msg string) Finding {
	return Finding{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line, Column: 1}, Message: msg}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bf("locks", "/r/a.go", 10, "held"),
		bf("locks", "/r/a.go", 20, "held"),
		bf("ctxflow", "/r/b.go", 5, "root ctx"),
	}
	b := NewBaseline(findings, "/r")
	if len(b.Findings) != 2 {
		t.Fatalf("aggregated entries = %d, want 2", len(b.Findings))
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The exact same findings diff to nothing — even though the lines
	// moved (the baseline is line-independent).
	moved := []Finding{
		bf("locks", "/r/a.go", 99, "held"),
		bf("locks", "/r/a.go", 120, "held"),
		bf("ctxflow", "/r/b.go", 7, "root ctx"),
	}
	if fresh := loaded.Diff(moved, "/r"); len(fresh) != 0 {
		t.Errorf("moved-lines diff = %v, want empty", fresh)
	}

	// A third identical locks finding exceeds the per-entry count and
	// surfaces as new.
	extra := append(moved, bf("locks", "/r/a.go", 130, "held"))
	fresh := loaded.Diff(extra, "/r")
	if len(fresh) != 1 || fresh[0].Pos.Line != 130 {
		t.Errorf("over-budget diff = %v, want the line-130 finding", fresh)
	}

	// A new message is new debt.
	novel := append(moved, bf("cachekey", "/r/c.go", 1, "missing field"))
	if fresh := loaded.Diff(novel, "/r"); len(fresh) != 1 || fresh[0].Analyzer != "cachekey" {
		t.Errorf("novel diff = %v, want the cachekey finding", fresh)
	}
}

func TestLoadBaselineRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := &Baseline{Version: 99}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("loading a future-version baseline must fail loudly")
	}
}
