package analysis

import (
	"go/types"
	"testing"
)

// TestCrossPackageCanonicalKeyIdentity pins the property the cachekey
// analyzer depends on: the tech.Process method object reached through
// edram's imported view of tech is the SAME *types.Func as the one in
// tech's own package scope. If the loader ever type-checked tech twice
// (two loaders, or a cache miss), method lookups across packages would
// silently stop matching.
func TestCrossPackageCanonicalKeyIdentity(t *testing.T) {
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := l.Import("edram/internal/edram")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := l.Import("edram/internal/tech")
	if err != nil {
		t.Fatal(err)
	}

	// Reach tech.Process via edram.Spec's Process field.
	spec, ok := ep.Scope().Lookup("Spec").Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatal("edram.Spec is not a struct")
	}
	var viaField *types.Named
	for i := 0; i < spec.NumFields(); i++ {
		f := spec.Field(i)
		if f.Name() != "Process" {
			continue
		}
		ptr, ok := f.Type().(*types.Pointer)
		if !ok {
			t.Fatalf("Spec.Process is %v, want a pointer", f.Type())
		}
		viaField = ptr.Elem().(*types.Named)
	}
	if viaField == nil {
		t.Fatal("edram.Spec has no Process field")
	}

	direct, ok := tp.Scope().Lookup("Process").(*types.TypeName)
	if !ok {
		t.Fatal("tech.Process not found")
	}
	if viaField.Obj() != direct {
		t.Errorf("tech.Process type object differs across packages: %p vs %p", viaField.Obj(), direct)
	}

	m1, _, _ := types.LookupFieldOrMethod(viaField, true, ep, "CanonicalKey")
	m2, _, _ := types.LookupFieldOrMethod(direct.Type(), true, tp, "CanonicalKey")
	if m1 == nil || m2 == nil {
		t.Fatalf("CanonicalKey lookup failed: via edram %v, via tech %v", m1, m2)
	}
	if m1 != m2 {
		t.Errorf("CanonicalKey method object differs across packages: %v vs %v", m1, m2)
	}
}
