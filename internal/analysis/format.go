package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Output formats for rendered findings. Text is the classic
// file:line:col listing; JSON is a stable machine-readable array; SARIF
// is the 2.1.0 interchange shape CI systems ingest as an artifact.

// relPath shortens an absolute finding path to a slash-separated path
// relative to base (the module root or the invoking directory). Paths
// outside base are returned unchanged.
func relPath(base, name string) string {
	if base == "" {
		return filepath.ToSlash(name)
	}
	rel, err := filepath.Rel(base, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}

// WriteText renders findings one per line, paths relative to base.
func WriteText(w io.Writer, findings []Finding, base string) error {
	for _, f := range findings {
		f.Pos.Filename = relPath(base, f.Pos.Filename)
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable machine-readable rendering of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array (never null).
func WriteJSON(w io.Writer, findings []Finding, base string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(base, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// The minimal SARIF 2.1.0 shape: a single run, one rule per analyzer,
// one result per finding with a physical location.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with one rule per
// analyzer in the running suite, so the artifact is self-describing
// even on a clean run.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, base string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: firstSentence(a.Doc)}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(base, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "edramvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// firstSentence truncates an analyzer doc to its first sentence for the
// SARIF rule description.
func firstSentence(doc string) string {
	doc = strings.TrimSpace(doc)
	if i := strings.Index(doc, ". "); i >= 0 {
		return doc[:i+1]
	}
	return doc
}
