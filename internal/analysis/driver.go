package analysis

import (
	"fmt"
	"sort"
)

// RunResult is everything one driver run produced: the findings that
// survived suppression, the diagnostics a nolint directive absorbed,
// and every directive seen (with hit counts) for the suppression audit.
type RunResult struct {
	Findings   []Finding
	Suppressed []Finding
	Directives []Directive
}

// RunAnalyzers runs every analyzer over every package, applies the
// //nolint:edramvet escape hatch, and returns findings sorted by
// position. The loader must be the one that produced pkgs, so that
// cross-package indexes (Pass.All) share object identity.
func RunAnalyzers(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	res, err := RunAnalyzersDetail(l, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunAnalyzersDetail is RunAnalyzers plus the suppression detail needed
// by `edramvet -audit-nolint`: which diagnostics were absorbed by
// directives, and every directive with the number of diagnostics it
// suppressed this run.
func RunAnalyzersDetail(l *Loader, pkgs []*Package, analyzers []*Analyzer) (*RunResult, error) {
	all := l.Packages()
	res := &RunResult{}
	var directives []*Directive
	for _, pkg := range pkgs {
		ix := buildNolint(l.Fset(), pkg.Files)
		directives = append(directives, ix.directives...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset(),
				Pkg:      pkg,
				All:      all,
			}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := l.Fset().Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				if sup := ix.suppressor(pos, a.Name); sup != nil {
					sup.Hits++
					res.Suppressed = append(res.Suppressed, f)
					continue
				}
				res.Findings = append(res.Findings, f)
			}
		}
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	sort.Slice(directives, func(i, j int) bool {
		a, b := directives[i], directives[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	for _, d := range directives {
		res.Directives = append(res.Directives, *d)
	}
	return res, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// String renders a finding in the familiar file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}
