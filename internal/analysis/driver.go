package analysis

import (
	"fmt"
	"sort"
)

// RunAnalyzers runs every analyzer over every package, applies the
// //nolint:edramvet escape hatch, and returns findings sorted by
// position. The loader must be the one that produced pkgs, so that
// cross-package indexes (Pass.All) share object identity.
func RunAnalyzers(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	all := l.Packages()
	var findings []Finding
	for _, pkg := range pkgs {
		ix := buildNolint(l.Fset(), pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset(),
				Pkg:      pkg,
				All:      all,
			}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := l.Fset().Position(d.Pos)
				if ix.suppressed(pos, a.Name) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// String renders a finding in the familiar file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}
