package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("edram/internal/units"), or a synthetic
	// path (the directory base name) for fixture packages loaded from a
	// bare directory.
	Path string
	Dir  string
	Name string
	// Files holds the parsed syntax, sorted by file name so every run
	// visits declarations in the same order.
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-checker complaints. The tree is expected
	// to compile (tier-1 gate), so anything here points at a loader
	// limitation and is surfaced by the driver rather than ignored.
	TypeErrors []error
}

// Loader materializes module packages for analysis without shelling out
// to the go tool: module-internal import paths are resolved by the
// module-root/go.mod mapping, and everything else (the standard
// library) is type-checked from GOROOT source via go/importer's
// "source" compiler, which works offline.
type Loader struct {
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module line from go.mod.
	ModulePath string
	// IncludeTests adds in-package _test.go files to each package.
	// External test packages (package foo_test) are never loaded.
	IncludeTests bool

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader reads go.mod under root and prepares a loader.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Fset returns the shared file set all loaded packages use.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Packages lists every package loaded so far, sorted by path.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded by this loader, everything else is delegated to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// load returns the memoized package for a module-internal import path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	p, err := l.check(l.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the single package in dir under a synthetic import path
// (its base name). Used by the fixture test harness, where the package
// is not part of the module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Base(abs)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	p, err := l.check(abs, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadAll loads every package in the module (skipping testdata, hidden
// and underscore directories), returning them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadTree(l.ModuleRoot)
}

// LoadTree loads every package under root (which must sit inside the
// module), sorted by import path.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: loading %s: %w", path, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		return true
	}
	return false
}

// check parses and type-checks the package in dir.
func (l *Loader) check(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir}
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// Never include external test packages: they would be a second
		// package in the same directory.
		if strings.HasSuffix(file.Name.Name, "_test") {
			continue
		}
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		} else if pkg.Name != file.Name.Name {
			return nil, fmt.Errorf("%s: multiple packages %s and %s", dir, pkg.Name, file.Name.Name)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Filenames = append(pkg.Filenames, name)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no loadable Go files in %s", dir)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check reports the first hard error; soft errors land in
	// TypeErrors. Either way the partial Info is usable; the driver
	// decides how loud to be about TypeErrors.
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	return pkg, nil
}
