package core

import (
	"math/rand"
	"sort"
	"time"
)

// Fixture: deterministic idioms the analyzer must NOT flag.

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are fine
	return rng.Float64()                  // method on an injected source
}

func sortedCollect(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom
	}
	sort.Ints(keys)
	return keys
}

func commutative(m map[int]int) (int, bool) {
	count := 0
	found := false
	for _, v := range m {
		count += v // op-assign accumulation of ints is order-insensitive
		if v > 10 {
			found = true // loop-invariant value
		}
	}
	return count, found
}

func pruned(m map[int]bool) {
	for k := range m {
		if !m[k] {
			delete(m, k) // deletion during range is order-insensitive
		}
	}
}

func annotatedClock() int64 {
	// Wall-time that only feeds progress reporting may be annotated.
	return time.Now().UnixNano() //nolint:edramvet/determinism // fixture: stats only
}
