// Package core is a determinism fixture named after a model package so
// the analyzer applies (only model packages carry the reproducibility
// contract).
package core

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "time.Now in model package core"
	return t.UnixNano()
}

func globalRand() float64 {
	return rand.Float64() // want "global rand.Float64"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

func unsortedCollect(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append to keys while ranging over a map"
	}
	return keys
}

func argmax(m map[int]int) int {
	best, bestN := -1, 0
	for k, n := range m {
		if n > bestN {
			best, bestN = k, n // want "assignment to outer variable best" "assignment to outer variable bestN"
		}
	}
	return best
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside a map range"
	}
}

type digest struct{ h uint64 }

func (d *digest) Hash(x uint64) { d.h ^= x }

func fingerprint(m map[int]uint64) uint64 {
	var d digest
	for _, v := range m {
		d.Hash(v) // want "feeding Hash inside a map range"
	}
	return d.h
}
