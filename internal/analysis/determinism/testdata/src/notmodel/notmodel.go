// Package notmodel is outside the model-package set: the determinism
// contract does not apply, so nothing here is flagged.
package notmodel

import (
	"math/rand"
	"time"
)

func Timestamp() int64 { return time.Now().UnixNano() }

func Jitter() float64 { return rand.Float64() }
