package determinism

import (
	"testing"

	"edram/internal/analysis/analysistest"
)

func TestDeterminismFixtures(t *testing.T) {
	analysistest.Run(t, Analyzer, "core", "notmodel")
}
