// Package determinism enforces the model suite's reproducibility
// contract: sweep, fault and experiment pipelines must be byte-identical
// across runs and worker counts (the PR 1 explore engine and PR 2
// reliability fingerprints are tested on exactly that property). In the
// model packages it forbids the three ways wall-clock or scheduler
// state leaks into results:
//
//   - time.Now (inject a clock, or annotate the call when it only feeds
//     progress/stats reporting);
//   - package-level math/rand functions, which draw from the global
//     source (inject a seeded *rand.Rand; constructors like rand.New
//     and rand.NewSource are allowed);
//   - ranging over a map while appending to an outer slice with no
//     subsequent sort, writing output, feeding a hash/fingerprint, or
//     assigning outer variables (the argmax-over-map pattern breaks
//     ties in map order).
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edram/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand and map-iteration-order leaks in model packages",
	Run:  run,
}

// modelPackages are the packages whose outputs must be reproducible
// bit-for-bit (by final path element).
var modelPackages = map[string]bool{
	"core": true, "reliab": true, "sched": true, "yield": true,
	"geom": true, "timing": true, "experiments": true,
	"iram": true, "cpu": true, "mpeg2": true,
	// The HTTP service layer serves cached model outputs, so its
	// encodings must be as reproducible as the models themselves; its
	// two intentional wall-clock sites (cache TTL, latency measurement)
	// carry scoped nolint escapes.
	"service": true,
	// Scenario documents compile to cacheable byte-stable responses, so
	// the loader/compiler is held to the same determinism bar.
	"scenario": true,
	// The job store's checkpoints must replay byte-identically after a
	// restart, so its persistence path cannot depend on wall-clock or
	// iteration order.
	"jobs": true,
	// The load generator's schedules are seeded and replayable: the same
	// profile + seed must issue the same request sequence, or an SLO
	// regression cannot be distinguished from schedule noise. The
	// edramload driver's latency clocks carry scoped nolint escapes.
	"loadgen": true, "edramload": true,
	// The shard coordinator's merged frontiers must be byte-identical
	// to the single-process sweep regardless of partition arrival
	// order; its one wall-clock site (merge latency) carries a scoped
	// nolint escape.
	"shard": true,
	// The disk cache's segment log must replay byte-identically after
	// a restart: record framing and compaction order cannot depend on
	// wall-clock or map iteration.
	"diskcache": true,
}

// allowedRandFuncs are math/rand package-level constructors that do not
// touch the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	parts := strings.Split(pass.Pkg.Path, "/")
	if !modelPackages[parts[len(parts)-1]] {
		return nil
	}
	c := &checker{pass: pass, info: pass.Info()}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				c.forbiddenCall(n)
			case *ast.RangeStmt:
				c.mapRange(n, enclosingBody(f, n))
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// calleeFunc resolves a call to the *types.Func it invokes, if any.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.info.Uses[id].(*types.Func)
	return fn
}

func (c *checker) forbiddenCall(call *ast.CallExpr) {
	fn := c.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && !isMethod {
			c.report(call.Pos(), "time.Now in model package %s: inject a clock (results must be reproducible)", c.pass.Pkg.Name)
		}
	case "math/rand", "math/rand/v2":
		if !isMethod && !allowedRandFuncs[fn.Name()] {
			c.report(call.Pos(), "global rand.%s draws from the process-wide source: inject a seeded *rand.Rand", fn.Name())
		}
	}
}

// enclosingBody finds the innermost function body containing n, for the
// sorted-afterwards check.
func enclosingBody(f *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(f, func(m ast.Node) bool {
		if m == nil || m.Pos() > n.Pos() || m.End() < n.End() {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncDecl:
			if m.Body != nil && m.Body.Pos() <= n.Pos() && m.Body.End() >= n.End() {
				body = m.Body
			}
		case *ast.FuncLit:
			if m.Body.Pos() <= n.Pos() && m.Body.End() >= n.End() {
				body = m.Body
			}
		}
		return true
	})
	return body
}

// mapRange inspects one `for ... := range m` over a map for
// order-dependent effects in its body.
func (c *checker) mapRange(rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := c.info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	outer := func(id *ast.Ident) bool {
		obj := c.info.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.mapRangeAssign(rng, fnBody, n, outer)
		case *ast.CallExpr:
			c.mapRangeCall(rng, n)
		}
		return true
	})
}

// mapRangeAssign flags appends without a later sort, and plain
// assignments to outer variables (order-dependent selection).
func (c *checker) mapRangeAssign(rng *ast.RangeStmt, fnBody *ast.BlockStmt, as *ast.AssignStmt, outer func(*ast.Ident) bool) {
	if as.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || !outer(id) {
			continue
		}
		if i < len(as.Rhs) && isAppendOf(as.Rhs[i], id.Name) {
			if !sortedAfter(c.info, fnBody, rng, id.Name) {
				c.report(id.Pos(), "append to %s while ranging over a map: iteration order is random — sort %s afterwards or iterate sorted keys", id.Name, id.Name)
			}
			continue
		}
		// Only order-dependent values are a problem: the right-hand
		// side must mention something bound by this iteration (the loop
		// variables or anything declared in the body). Loop-invariant
		// assignments like `found = true` are fine.
		if c.rhsDependsOnLoop(rng, as.Rhs) {
			c.report(id.Pos(), "assignment to outer variable %s inside a map range: selection depends on iteration order — iterate sorted keys", id.Name)
		}
	}
}

// rhsDependsOnLoop reports whether any right-hand side references a
// variable bound inside the range statement (key, value, or body
// locals) — i.e. carries an iteration-order-dependent value.
func (c *checker) rhsDependsOnLoop(rng *ast.RangeStmt, rhs []ast.Expr) bool {
	dep := false
	for _, e := range rhs {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || dep {
				return !dep
			}
			obj := c.info.ObjectOf(id)
			if obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
				dep = true
			}
			return !dep
		})
	}
	return dep
}

// mapRangeCall flags output writes and hash/fingerprint feeding inside
// a map range.
func (c *checker) mapRangeCall(rng *ast.RangeStmt, call *ast.CallExpr) {
	fn := c.calleeFunc(call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.Contains(name, "rint") {
		c.report(call.Pos(), "fmt.%s inside a map range: output order is random — iterate sorted keys", name)
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if isMethod && (name == "Write" || name == "WriteString" || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		c.report(call.Pos(), "%s inside a map range: output order is random — iterate sorted keys", name)
		return
	}
	if strings.Contains(name, "Fingerprint") || strings.Contains(name, "Hash") || name == "Sum" || name == "Sum64" {
		c.report(call.Pos(), "feeding %s inside a map range: digest depends on iteration order — iterate sorted keys", name)
	}
}

// isAppendOf reports whether e is append(target, ...).
func isAppendOf(e ast.Expr, target string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" || len(call.Args) == 0 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && arg.Name == target
}

// sortedAfter reports whether the enclosing function sorts the named
// slice somewhere after the range statement (sort.* or slices.Sort*
// with the slice as first argument) — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		sorter := (pkg == "sort" && !strings.HasPrefix(fn.Name(), "Search") && fn.Name() != "IsSorted") ||
			(pkg == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if sorter && len(call.Args) > 0 {
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg.Name == target {
				found = true
			}
		}
		return !found
	})
	return found
}
