// Package cost implements the economics models of the reproduction: die
// cost from wafer cost, dies-per-wafer and yield; packaging and test
// adders; and the discrete-vs-embedded system cost comparison behind the
// paper's observations that eDRAM commands process-cost adders (extra
// masks, merged steps) but saves packages, pins and board space.
package cost

import (
	"fmt"

	"edram/internal/geom"
	"edram/internal/tech"
	"edram/internal/yield"
)

// DieCostUSD returns the cost of one good die of dieMm2 on process p
// with extraMetal additional metal layers, at the given die yield.
func DieCostUSD(p tech.Process, dieMm2 float64, extraMetal int, dieYield float64) (float64, error) {
	if dieMm2 <= 0 {
		return 0, fmt.Errorf("cost: die area must be positive")
	}
	if dieYield <= 0 || dieYield > 1 {
		return 0, fmt.Errorf("cost: yield %g out of (0,1]", dieYield)
	}
	if extraMetal < 0 {
		return 0, fmt.Errorf("cost: extra metal layers must be non-negative")
	}
	wafer := p.WaferCostUSD + float64(extraMetal)*p.MetalLayerAdderUSD
	dies := geom.DiesPerWafer(p, dieMm2)
	if dies < 1 {
		return 0, fmt.Errorf("cost: die of %.0f mm² does not fit the wafer", dieMm2)
	}
	return wafer / (float64(dies) * dieYield), nil
}

// PackageCostUSD models package cost as a base plus a per-pin adder
// (paper §1: "more expensive packages may be needed"; embedding saves
// packages and pins).
func PackageCostUSD(signalPins int) float64 {
	if signalPins <= 0 {
		return 0
	}
	return 0.35 + 0.011*float64(signalPins)
}

// BoardCostUSDPerCm2 is the loaded-board cost used for footprint
// accounting.
const BoardCostUSDPerCm2 = 0.55

// ChipCost aggregates one packaged, tested chip.
type ChipCost struct {
	DieUSD     float64
	PackageUSD float64
	TestUSD    float64
	TotalUSD   float64
}

// NewChipCost sums the components.
func NewChipCost(die, pkg, test float64) ChipCost {
	return ChipCost{DieUSD: die, PackageUSD: pkg, TestUSD: test, TotalUSD: die + pkg + test}
}

// SystemCost compares memory subsystem implementations.
type SystemCost struct {
	Name     string
	Chips    int
	ChipUSD  float64
	BoardCm2 float64
	TotalUSD float64
}

// DiscreteSystem costs a board of n identical chips, each chipUSD, with
// footprintCm2 of board each (device + routing share).
func DiscreteSystem(n int, chipUSD, footprintCm2 float64) SystemCost {
	if n < 0 {
		n = 0
	}
	board := float64(n) * footprintCm2
	return SystemCost{
		Name:     "discrete",
		Chips:    n,
		ChipUSD:  chipUSD,
		BoardCm2: board,
		TotalUSD: float64(n)*chipUSD + board*BoardCostUSDPerCm2,
	}
}

// EmbeddedSystem costs the single-die alternative.
func EmbeddedSystem(chipUSD, footprintCm2 float64) SystemCost {
	return SystemCost{
		Name:     "embedded",
		Chips:    1,
		ChipUSD:  chipUSD,
		BoardCm2: footprintCm2,
		TotalUSD: chipUSD + footprintCm2*BoardCostUSDPerCm2,
	}
}

// MacroDieCost computes the cost of a die carrying logicKGates of logic
// plus an eDRAM macro of macroMm2 on process p, with yield from the
// negative-binomial model improved by the macro's redundancy repair
// rate (repairFraction of memory-defective dies are recovered).
func MacroDieCost(p tech.Process, logicKGates, macroMm2, defectsPerCm2, repairFraction float64) (float64, float64, error) {
	if repairFraction < 0 || repairFraction > 1 {
		return 0, 0, fmt.Errorf("cost: repair fraction %g out of [0,1]", repairFraction)
	}
	logicMm2 := geom.LogicAreaMm2(p, logicKGates)
	die := logicMm2 + macroMm2
	if die <= 0 {
		return 0, 0, fmt.Errorf("cost: empty die")
	}
	y := yield.NegBinomialYield(defectsPerCm2, die, 2.5)
	// Redundancy recovers a fraction of the dies lost to memory-area
	// defects.
	memShare := macroMm2 / die
	lost := 1 - y
	recovered := lost * memShare * repairFraction
	eff := y + recovered
	if eff > 1 {
		eff = 1
	}
	c, err := DieCostUSD(p, die, 0, eff)
	if err != nil {
		return 0, 0, err
	}
	return c, eff, nil
}

// CostPerMbitUSD normalizes a die cost by its usable memory capacity —
// the metric that makes ECC and redundancy overheads comparable across
// organizations (a stronger code costs area; offlined capacity would
// cost usable bits).
func CostPerMbitUSD(dieUSD, usableMbit float64) float64 {
	if usableMbit <= 0 {
		return 0
	}
	return dieUSD / usableMbit
}

// NRE models the non-recurring engineering cost of an embedded design:
// the mask set of the eDRAM process plus the design/porting effort the
// paper's §1 warns about ("libraries must be developed and
// characterized, macros must be ported, and design flows must be
// tuned").
type NRE struct {
	MaskSetUSD float64
	DesignUSD  float64
}

// DefaultNRE returns 0.25 µm-era values.
func DefaultNRE() NRE {
	return NRE{MaskSetUSD: 250_000, DesignUSD: 400_000}
}

// Total returns the NRE sum.
func (n NRE) Total() float64 { return n.MaskSetUSD + n.DesignUSD }

// BreakEvenVolume returns the unit volume at which the embedded build
// (high NRE, low unit cost) catches the discrete build (no extra NRE,
// high unit cost). It returns 0 when the embedded unit cost is not
// lower — then embedding never pays on cost alone (paper §2: "either
// the memory content is high enough to justify the higher DRAM process
// costs, or eDRAM is required for bandwidth or other reasons").
func BreakEvenVolume(n NRE, discreteUnitUSD, embeddedUnitUSD float64) float64 {
	saving := discreteUnitUSD - embeddedUnitUSD
	if saving <= 0 {
		return 0
	}
	return n.Total() / saving
}

// VolumeCostUSD returns the per-unit cost at a production volume,
// amortizing the NRE.
func VolumeCostUSD(n NRE, unitUSD float64, volume float64) float64 {
	if volume <= 0 {
		return 0
	}
	return unitUSD + n.Total()/volume
}
