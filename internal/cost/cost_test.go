package cost

import (
	"math"
	"testing"

	"edram/internal/tech"
)

func TestDieCost(t *testing.T) {
	p := tech.Siemens024()
	c, err := DieCostUSD(p, 50, 0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// ~560 gross dies at 50 mm² on a 200-mm wafer; $2800/(560*0.8) ≈ $6.
	if c < 3 || c > 12 {
		t.Errorf("50 mm² die cost $%.2f implausible", c)
	}
	// Monotone: bigger dies cost more.
	c2, err := DieCostUSD(p, 100, 0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if c2 <= c {
		t.Error("bigger die must cost more")
	}
	// Lower yield costs more.
	c3, _ := DieCostUSD(p, 50, 0, 0.4)
	if c3 <= c {
		t.Error("worse yield must cost more")
	}
	// Extra metal layers cost more (paper §1).
	c4, _ := DieCostUSD(p, 50, 2, 0.8)
	if c4 <= c {
		t.Error("extra metal must cost more")
	}
}

func TestDieCostErrors(t *testing.T) {
	p := tech.Siemens024()
	if _, err := DieCostUSD(p, 0, 0, 0.5); err == nil {
		t.Error("zero area must error")
	}
	if _, err := DieCostUSD(p, 50, 0, 0); err == nil {
		t.Error("zero yield must error")
	}
	if _, err := DieCostUSD(p, 50, 0, 1.5); err == nil {
		t.Error("yield > 1 must error")
	}
	if _, err := DieCostUSD(p, 50, -1, 0.5); err == nil {
		t.Error("negative metal must error")
	}
	if _, err := DieCostUSD(p, 1e9, 0, 0.5); err == nil {
		t.Error("die bigger than wafer must error")
	}
}

func TestPackageCost(t *testing.T) {
	if PackageCostUSD(0) != 0 || PackageCostUSD(-5) != 0 {
		t.Error("no pins, no package")
	}
	if PackageCostUSD(300) <= PackageCostUSD(44) {
		t.Error("more pins must cost more")
	}
}

func TestChipCostSums(t *testing.T) {
	c := NewChipCost(5, 1, 0.5)
	if c.TotalUSD != 6.5 {
		t.Errorf("total = %v", c.TotalUSD)
	}
}

func TestSystemComparison(t *testing.T) {
	// Paper §1: higher integration saves board space, packages and
	// pins. 16 discrete chips at $5.5 each vs one larger embedded die.
	discrete := DiscreteSystem(16, 5.5, 2.2)
	embedded := EmbeddedSystem(45, 4.0)
	if discrete.BoardCm2 <= embedded.BoardCm2 {
		t.Error("discrete must burn more board")
	}
	if discrete.Chips != 16 || embedded.Chips != 1 {
		t.Error("chip accounting wrong")
	}
	// Total: 16*5.5 + 35.2*0.55 = 107.4 vs 45 + 2.2 = 47.2.
	if discrete.TotalUSD <= embedded.TotalUSD {
		t.Errorf("discrete $%.1f should exceed embedded $%.1f here",
			discrete.TotalUSD, embedded.TotalUSD)
	}
	if DiscreteSystem(-3, 5, 1).Chips != 0 {
		t.Error("negative chips must clamp")
	}
}

func TestMacroDieCost(t *testing.T) {
	p := tech.Siemens024()
	c0, y0, err := MacroDieCost(p, 500, 16, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, y1, err := MacroDieCost(p, 500, 16, 0.8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Redundancy repair lifts effective yield and cuts cost.
	if y1 <= y0 || c1 >= c0 {
		t.Errorf("repair must help: yield %v->%v cost %v->%v", y0, y1, c0, c1)
	}
	if y1 > 1 {
		t.Error("yield must cap at 1")
	}
	if _, _, err := MacroDieCost(p, 500, 16, 0.8, 1.5); err == nil {
		t.Error("repair fraction > 1 must error")
	}
	if _, _, err := MacroDieCost(p, 0, 0, 0.8, 0.5); err == nil {
		t.Error("empty die must error")
	}
}

func TestMacroDieCostYieldConsistency(t *testing.T) {
	p := tech.Siemens024()
	_, y, err := MacroDieCost(p, 500, 16, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-1) > 1e-9 {
		t.Errorf("zero defects must give yield 1, got %v", y)
	}
}

func TestBreakEvenVolume(t *testing.T) {
	n := DefaultNRE()
	// $10 saving per unit: break even at NRE/10.
	v := BreakEvenVolume(n, 30, 20)
	if math.Abs(v-n.Total()/10) > 1e-9 {
		t.Errorf("break-even = %v", v)
	}
	// No saving: never.
	if BreakEvenVolume(n, 20, 25) != 0 {
		t.Error("costlier embedded build must never break even")
	}
	// The paper's rule of thumb: volumes are "usually high" — with a
	// realistic ~$20 system saving the break-even sits in the tens of
	// thousands of units, i.e. consumer-product territory.
	v = BreakEvenVolume(n, 34, 8)
	if v < 10_000 || v > 100_000 {
		t.Errorf("realistic break-even %v outside consumer-volume territory", v)
	}
}

func TestVolumeCost(t *testing.T) {
	n := DefaultNRE()
	if VolumeCostUSD(n, 10, 0) != 0 {
		t.Error("zero volume must yield 0")
	}
	lo := VolumeCostUSD(n, 10, 10_000)
	hi := VolumeCostUSD(n, 10, 1_000_000)
	if hi >= lo {
		t.Error("amortization must cut unit cost with volume")
	}
	if hi < 10 {
		t.Error("unit cost cannot drop below the marginal cost")
	}
}
