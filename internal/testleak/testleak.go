// Package testleak is a stdlib-only goroutine-leak gate for test
// packages that exercise shutdown and overload paths. Wire it in via
// TestMain:
//
//	func TestMain(m *testing.M) { testleak.Check(m) }
//
// After the package's tests pass, Check waits for the goroutine count
// to settle back to the pre-run baseline (plus a small slack for
// runtime-owned goroutines) and fails the package with a full stack
// dump if it never does — turning "the drain path leaks a worker per
// request" from an invisible slow burn into a red test.
package testleak

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

const (
	// slack tolerates goroutines the runtime or testing machinery
	// parks lazily (GC workers, test output pumps).
	slack = 3
	// settleTimeout bounds how long Check waits for goroutines that
	// are legitimately unwinding (timer-driven cache janitors, worker
	// pools draining after Shutdown).
	settleTimeout = 10 * time.Second
)

// Check runs the package's tests and exits the process with a failure
// when they leak goroutines. It must be the only statement in
// TestMain.
func Check(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 && !settled(baseline) {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr,
			"testleak: goroutine leak: baseline %d, still %d after %v\n%s\n",
			baseline, runtime.NumGoroutine(), settleTimeout, buf[:n])
		code = 1
	}
	os.Exit(code)
}

// settled polls until the goroutine count returns to baseline+slack
// or the timeout lapses.
func settled(baseline int) bool {
	deadline := time.Now().Add(settleTimeout)
	for {
		if runtime.NumGoroutine() <= baseline+slack {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}
