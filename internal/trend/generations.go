package trend

import "edram/internal/units"

// DeviceGen is one commodity-DRAM interface generation. The paper's §4
// observes that while the core improved only ~10 %/yr, "the peak device
// memory bandwidth has increased over the last couple of years by two
// orders of magnitude" through synchronous interfacing, row caching,
// prefetch and multiple banks — at the price of latency and burst
// length.
type DeviceGen struct {
	Name      string
	Year      int
	WidthBits int
	// TransferMHz is the data-transfer rate per pin.
	TransferMHz float64
	// Banks inside the device.
	Banks int
	// MinBurst is the access granularity in transfers (the latency/
	// burst-length price of the bandwidth).
	MinBurst int
	// RandomAccessNs is the row-access (core) time — the ~10 %/yr
	// quantity.
	RandomAccessNs float64
}

// PeakGBps returns the device's peak interface bandwidth.
func (g DeviceGen) PeakGBps() float64 {
	return units.BandwidthGBps(g.WidthBits, g.TransferMHz)
}

// Generations returns the commodity interface generations through the
// paper's present (1998), in chronological order.
func Generations() []DeviceGen {
	return []DeviceGen{
		{Name: "FPM", Year: 1990, WidthBits: 8, TransferMHz: 20, Banks: 1, MinBurst: 1, RandomAccessNs: 110},
		{Name: "EDO", Year: 1994, WidthBits: 8, TransferMHz: 40, Banks: 1, MinBurst: 1, RandomAccessNs: 85},
		{Name: "SDRAM-66", Year: 1996, WidthBits: 16, TransferMHz: 66, Banks: 2, MinBurst: 2, RandomAccessNs: 75},
		{Name: "SDRAM-100", Year: 1998, WidthBits: 16, TransferMHz: 100, Banks: 4, MinBurst: 4, RandomAccessNs: 70},
		{Name: "RDRAM", Year: 1998, WidthBits: 8, TransferMHz: 800, Banks: 16, MinBurst: 8, RandomAccessNs: 70},
	}
}

// BandwidthGrowth returns peak-bandwidth growth from the first to the
// last generation — the paper's "two orders of magnitude".
func BandwidthGrowth() float64 {
	g := Generations()
	first := g[0].PeakGBps()
	last := g[len(g)-1].PeakGBps()
	if first == 0 {
		return 0
	}
	return last / first
}

// CoreImprovement returns the random-access improvement over the same
// span — the contrast the paper draws.
func CoreImprovement() float64 {
	g := Generations()
	last := g[len(g)-1].RandomAccessNs
	if last == 0 {
		return 0
	}
	return g[0].RandomAccessNs / last
}
