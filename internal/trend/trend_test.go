package trend

import (
	"math"
	"testing"
)

func TestBaseYearAnchors(t *testing.T) {
	if CPUPerf(BaseYear) != 1 {
		t.Error("CPU perf must anchor at 1")
	}
	if DRAMAccessNs(BaseYear) != 250 {
		t.Error("DRAM access must anchor at 250 ns")
	}
	if Gap(BaseYear) != 1 {
		t.Error("gap must anchor at 1")
	}
}

func TestGrowthRates(t *testing.T) {
	// +60 %/yr CPU.
	if r := CPUPerf(BaseYear+1) / CPUPerf(BaseYear); math.Abs(r-1.6) > 1e-9 {
		t.Errorf("CPU growth %v, want 1.6", r)
	}
	// -10 %/yr DRAM access time.
	if r := DRAMAccessNs(BaseYear+1) / DRAMAccessNs(BaseYear); math.Abs(r-0.9) > 1e-9 {
		t.Errorf("DRAM improvement %v, want 0.9", r)
	}
	// 4x device capacity per 3 years.
	if r := DeviceMbit(BaseYear+3) / DeviceMbit(BaseYear); math.Abs(r-4) > 1e-9 {
		t.Errorf("device growth %v, want 4", r)
	}
	// System grows at half the device rate: 2x per 3 years.
	if r := SystemMbit(BaseYear+3) / SystemMbit(BaseYear); math.Abs(r-2) > 1e-9 {
		t.Errorf("system growth %v, want 2", r)
	}
}

func TestGapGrowsRelentlessly(t *testing.T) {
	prev := 0.0
	for y := 1980; y <= 2000; y++ {
		g := Gap(y)
		if g <= prev {
			t.Fatalf("gap must grow every year, stalled at %d", y)
		}
		prev = g
	}
	// The 1998 gap (the paper's present) is already enormous:
	// (1.6 x 0.9)^18 ≈ 700.
	if Gap(1998) < 500 {
		t.Errorf("1998 gap %.0f suspiciously small", Gap(1998))
	}
}

func TestDevicesPerSystemFalls(t *testing.T) {
	// The granularity squeeze: fewer devices per system each year,
	// hence narrower total bus width from discrete parts.
	if DevicesPerSystem(1998) >= DevicesPerSystem(1990) {
		t.Error("devices per system must fall over time")
	}
	if DevicesPerSystem(BaseYear) != 8 {
		t.Errorf("base year devices per system = %v, want 8", DevicesPerSystem(BaseYear))
	}
}

func TestTable(t *testing.T) {
	rows, err := Table(1990, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i, r := range rows {
		if r.Year != 1990+2*i {
			t.Errorf("row %d year %d", i, r.Year)
		}
		if r.Gap <= 0 || r.CPUPerf <= 0 || r.DRAMAccessNs <= 0 {
			t.Error("all trend values must be positive")
		}
	}
	if _, err := Table(2000, 1990, 1); err == nil {
		t.Error("reversed range must error")
	}
	if _, err := Table(1990, 2000, 0); err == nil {
		t.Error("zero step must error")
	}
}

func TestGenerations(t *testing.T) {
	gens := Generations()
	if len(gens) < 4 {
		t.Fatal("need the FPM..RDRAM span")
	}
	// Chronological and bandwidth-monotone.
	for i := 1; i < len(gens); i++ {
		if gens[i].Year < gens[i-1].Year {
			t.Error("generations must be chronological")
		}
		if gens[i].PeakGBps() <= gens[i-1].PeakGBps() {
			t.Errorf("%s must out-bandwidth %s", gens[i].Name, gens[i-1].Name)
		}
	}
	// Paper §4: peak bandwidth grew by two orders of magnitude...
	if g := BandwidthGrowth(); g < 30 || g > 150 {
		t.Errorf("bandwidth growth %.0fx not ~two orders of magnitude", g)
	}
	// ...while the core barely improved.
	if c := CoreImprovement(); c < 1.1 || c > 3 {
		t.Errorf("core improvement %.2fx should be modest", c)
	}
	// The bandwidth price: burst length grows.
	first, last := gens[0], gens[len(gens)-1]
	if last.MinBurst <= first.MinBurst {
		t.Error("burst length must grow with bandwidth (the paper's latency price)")
	}
}
