// Package trend implements the multi-year scaling models behind the
// paper's §4 arguments: processor performance growing 60 %/yr while DRAM
// row/column access times improve only ~10 %/yr, DRAM device capacity
// quadrupling every three years, and memory-system size growing at only
// half the device rate — the combination that makes interface width,
// granularity and the processor-memory gap worsen over time.
package trend

import (
	"fmt"
	"math"

	"edram/internal/tech"
)

// BaseYear anchors the trend curves.
const BaseYear = 1980

// Base-year values.
const (
	baseCPUPerf      = 1.0   // relative
	baseDRAMAccessNs = 250.0 // row-access time of a 64-Kbit part
	baseDeviceMbit   = 0.064 // 64 Kbit
	baseSystemMbit   = 0.512 // typical PC memory, 64 KB
)

// CPUPerf returns relative processor performance in the given year
// (+60 %/yr after BaseYear).
func CPUPerf(year int) float64 {
	return baseCPUPerf * math.Pow(tech.CPUPerfGrowthPerYear, float64(year-BaseYear))
}

// DRAMAccessNs returns the DRAM core access time in the given year
// (−10 %/yr).
func DRAMAccessNs(year int) float64 {
	return baseDRAMAccessNs * math.Pow(1-tech.DRAMAccessImprovementPerYr, float64(year-BaseYear))
}

// DeviceMbit returns the commodity DRAM device capacity (4x / 3 yr).
func DeviceMbit(year int) float64 {
	return baseDeviceMbit * math.Pow(tech.DRAMDensityGrowthPer3Years, float64(year-BaseYear)/3)
}

// SystemMbit returns the PC memory-system capacity, which the paper
// notes "has grown by only half the rate of single DRAM devices": half
// the exponential rate, i.e. 2x per 3 years.
func SystemMbit(year int) float64 {
	rate := math.Pow(tech.DRAMDensityGrowthPer3Years, tech.SystemSizeGrowthRatioOfChip)
	return baseSystemMbit * math.Pow(rate, float64(year-BaseYear)/3)
}

// DevicesPerSystem returns how many DRAM devices a PC memory system
// needs in the given year. Because the system grows slower than the
// device, this count falls over time — and with it the achievable bus
// width, which is the paper's granularity squeeze.
func DevicesPerSystem(year int) float64 {
	return SystemMbit(year) / DeviceMbit(year)
}

// Gap returns the processor-memory performance gap: CPU performance
// divided by DRAM access-rate improvement, normalized to 1 at BaseYear.
func Gap(year int) float64 {
	return CPUPerf(year) * DRAMAccessNs(year) / baseDRAMAccessNs
}

// Row is one year of the gap table.
type Row struct {
	Year         int
	CPUPerf      float64
	DRAMAccessNs float64
	Gap          float64
	DeviceMbit   float64
	SystemMbit   float64
	DevicesPer   float64
}

// Table produces the year-by-year trend rows over [from, to] inclusive
// with the given step.
func Table(from, to, step int) ([]Row, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trend: step must be positive, got %d", step)
	}
	if to < from {
		return nil, fmt.Errorf("trend: to %d before from %d", to, from)
	}
	var rows []Row
	for y := from; y <= to; y += step {
		rows = append(rows, Row{
			Year:         y,
			CPUPerf:      CPUPerf(y),
			DRAMAccessNs: DRAMAccessNs(y),
			Gap:          Gap(y),
			DeviceMbit:   DeviceMbit(y),
			SystemMbit:   SystemMbit(y),
			DevicesPer:   DevicesPerSystem(y),
		})
	}
	return rows, nil
}
