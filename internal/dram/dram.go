// Package dram implements an event-driven multi-bank DRAM core model.
// It is the simulation substrate beneath the memory-controller and
// application studies: banks with open rows, the classic timing
// constraints (tRCD, tRP, tRAS, tRC, tRFC), a shared data bus, and
// distributed refresh.
//
// Time is modelled in nanoseconds as float64; the device quantizes
// command issue to its interface clock. The model is deliberately a
// *core* model: the arbitration and page policies that turn peak
// bandwidth into sustained bandwidth live in internal/sched.
package dram

import (
	"fmt"
	"math"

	"edram/internal/tech"
)

// Config describes one DRAM device or embedded macro core.
type Config struct {
	Banks       int
	RowsPerBank int
	// PageBits is the row (page) length in bits.
	PageBits int
	// DataBits is the data-interface width; one column access moves
	// DataBits bits in one clock.
	DataBits int
	Timing   tech.SDRAMTiming
	// AutoRefresh enables distributed refresh: every TRefIns one row is
	// refreshed (rotating over banks), stealing tRFC from the bank.
	AutoRefresh bool
}

// ColumnsPerRow returns the number of column accesses one page holds.
func (c Config) ColumnsPerRow() int {
	if c.DataBits <= 0 {
		return 0
	}
	return c.PageBits / c.DataBits
}

// TotalBits returns the device capacity.
func (c Config) TotalBits() int64 {
	return int64(c.Banks) * int64(c.RowsPerBank) * int64(c.PageBits)
}

// PeakBandwidthGBps is the theoretical interface bandwidth: DataBits per
// clock, no gaps.
func (c Config) PeakBandwidthGBps() float64 {
	if c.Timing.TCKns <= 0 {
		return 0
	}
	return float64(c.DataBits) / 8 / c.Timing.TCKns // bits/8 per ns = GB/s
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Banks < 1:
		return fmt.Errorf("dram: banks must be >= 1, got %d", c.Banks)
	case c.RowsPerBank < 1:
		return fmt.Errorf("dram: rows per bank must be >= 1, got %d", c.RowsPerBank)
	case c.PageBits < 1:
		return fmt.Errorf("dram: page bits must be >= 1, got %d", c.PageBits)
	case c.DataBits < 1 || c.DataBits > c.PageBits:
		return fmt.Errorf("dram: data width %d must be in [1, page=%d]", c.DataBits, c.PageBits)
	case c.PageBits%c.DataBits != 0:
		return fmt.Errorf("dram: page %d not a multiple of data width %d", c.PageBits, c.DataBits)
	case c.Timing.TCKns <= 0 || c.Timing.TRCDns <= 0 || c.Timing.TRPns <= 0 || c.Timing.TRCns <= 0:
		return fmt.Errorf("dram: timing parameters must be positive: %+v", c.Timing)
	}
	return nil
}

// Stats accumulates device activity.
type Stats struct {
	Reads       int64
	Writes      int64
	PageHits    int64
	PageMisses  int64 // row conflict: had to precharge first
	PageEmpties int64 // bank was idle: activate without precharge
	Refreshes   int64
	// Scrubs counts full-row scrub rewrites issued by the reliability
	// ladder; ScrubBusyNs is the device time they occupied (bandwidth
	// stolen from the clients).
	Scrubs      int64
	ScrubBusyNs float64
	// DataBusBusyNs is the total time the data bus carried transfers.
	DataBusBusyNs float64
	// LastDoneNs is the completion time of the latest access.
	LastDoneNs float64
}

// Accesses returns total read+write count.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// HitRate returns the fraction of accesses that hit an open page.
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.PageHits) / float64(s.Accesses())
}

type bankState struct {
	openRow   int     // -1 when precharged
	canActAt  float64 // earliest next ACT (tRC / tRP from precharge)
	canPreAt  float64 // earliest next PRE (tRAS from last ACT)
	canColAt  float64 // earliest next column command (tRCD from ACT)
	refOwedAt float64 // next scheduled refresh time for this bank slice
}

// Device is an event-driven DRAM core.
type Device struct {
	cfg       Config
	banks     []bankState
	busFreeAt float64
	nextRefAt float64
	refBank   int
	stats     Stats
	// lastWriteEnd supports the write-to-read turnaround penalty.
	lastWriteEnd float64
	// actTimes is a ring of the last four activate times (tFAW).
	actTimes [4]float64
	actIdx   int
	// backing, when non-nil, couples every access to functional cell
	// arrays (see backing.go).
	backing *backingState
}

// New creates a device from a validated config.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg, banks: make([]bankState, cfg.Banks)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	if cfg.Timing.TFAWns > 0 {
		for i := range d.actTimes {
			d.actTimes[i] = math.Inf(-1)
		}
	}
	if cfg.AutoRefresh && cfg.Timing.TRefIns > 0 {
		d.nextRefAt = cfg.Timing.TRefIns
	} else {
		d.nextRefAt = math.Inf(1)
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the statistics without touching bank state.
func (d *Device) ResetStats() { d.stats = Stats{} }

// clockAlign rounds t up to the next interface clock edge.
func (d *Device) clockAlign(t float64) float64 {
	tck := d.cfg.Timing.TCKns
	return math.Ceil(t/tck-1e-9) * tck
}

// serveRefresh performs any refreshes due at or before time t.
func (d *Device) serveRefresh(t float64) {
	for d.nextRefAt <= t {
		b := &d.banks[d.refBank]
		start := math.Max(d.nextRefAt, b.canActAt)
		// Refresh needs the bank precharged.
		if b.openRow >= 0 {
			preAt := math.Max(start, b.canPreAt)
			b.openRow = -1
			start = preAt + d.cfg.Timing.TRPns
		}
		end := start + d.cfg.Timing.TRFCns
		b.canActAt = end
		b.canPreAt = end
		b.canColAt = end
		d.refreshBacking(end, d.refBank)
		d.stats.Refreshes++
		d.refBank = (d.refBank + 1) % d.cfg.Banks
		d.nextRefAt += d.cfg.Timing.TRefIns
	}
}

// AccessResult reports one access.
type AccessResult struct {
	StartNs float64 // when the column command issued
	DoneNs  float64 // when the data transfer completed
	Hit     bool    // open-page hit
	Empty   bool    // bank was precharged (neither hit nor conflict)
}

// Access performs one column access (DataBits bits) at the given bank and
// row, issuing precharge/activate as needed (open-page policy). now is
// the earliest time the controller presents the request. It returns the
// timing of the access.
func (d *Device) Access(now float64, bank, row int, write bool) (AccessResult, error) {
	return d.access(now, bank, row, write, false)
}

// access is the shared timing path; scrub accesses skip the client
// read/write counters (they are accounted by ScrubRow).
func (d *Device) access(now float64, bank, row int, write, scrub bool) (AccessResult, error) {
	if bank < 0 || bank >= d.cfg.Banks {
		return AccessResult{}, fmt.Errorf("dram: bank %d out of range [0,%d)", bank, d.cfg.Banks)
	}
	if row < 0 || row >= d.cfg.RowsPerBank {
		return AccessResult{}, fmt.Errorf("dram: row %d out of range [0,%d)", row, d.cfg.RowsPerBank)
	}
	if now < 0 {
		now = 0
	}
	d.serveRefresh(now)

	tm := d.cfg.Timing
	b := &d.banks[bank]
	t := d.clockAlign(now)
	var res AccessResult

	activate := func(earliest float64) float64 {
		act := math.Max(earliest, b.canActAt)
		if tm.TFAWns > 0 {
			// The oldest of the last four ACTs bounds this one.
			if w := d.actTimes[d.actIdx] + tm.TFAWns; w > act {
				act = w
			}
		}
		act = d.clockAlign(act)
		if tm.TFAWns > 0 {
			d.actTimes[d.actIdx] = act
			d.actIdx = (d.actIdx + 1) % len(d.actTimes)
		}
		b.openRow = row
		b.canPreAt = act + tm.TRASns
		b.canColAt = act + tm.TRCDns
		b.canActAt = act + tm.TRCns
		return act
	}

	switch {
	case b.openRow == row:
		res.Hit = true
		d.stats.PageHits++
	case b.openRow < 0:
		res.Empty = true
		d.stats.PageEmpties++
		activate(t)
	default:
		d.stats.PageMisses++
		pre := math.Max(t, b.canPreAt)
		pre = d.clockAlign(pre)
		activate(pre + tm.TRPns)
	}

	col := math.Max(math.Max(t, b.canColAt), d.busFreeAt)
	// Write-to-read turnaround: a read after a write waits tWTR.
	if !write && tm.TWTRns > 0 && col < d.lastWriteEnd+tm.TWTRns {
		col = d.lastWriteEnd + tm.TWTRns
	}
	col = d.clockAlign(col)
	res.StartNs = col
	// Data appears tCAS after a read command; writes complete after the
	// transfer cycle. Either way the bus is occupied for one clock.
	if write {
		res.DoneNs = col + tm.TCKns
		d.lastWriteEnd = res.DoneNs
		if !scrub {
			d.stats.Writes++
		}
	} else {
		res.DoneNs = col + tm.TCASns
		if !scrub {
			d.stats.Reads++
		}
	}
	d.busFreeAt = col + tm.TCKns
	d.stats.DataBusBusyNs += tm.TCKns
	if res.DoneNs > d.stats.LastDoneNs {
		d.stats.LastDoneNs = res.DoneNs
	}
	d.touch(res.StartNs, bank, row, write, scrub)
	return res, nil
}

// Burst performs n consecutive column accesses to the same row (a burst)
// and returns the completion time of the last beat.
func (d *Device) Burst(now float64, bank, row, n int, write bool) (AccessResult, error) {
	if n < 1 {
		return AccessResult{}, fmt.Errorf("dram: burst length must be >= 1, got %d", n)
	}
	var first, last AccessResult
	var err error
	t := now
	for i := 0; i < n; i++ {
		last, err = d.Access(t, bank, row, write)
		if err != nil {
			return AccessResult{}, err
		}
		if i == 0 {
			first = last
		}
		t = last.StartNs // next beat may pipeline right behind
	}
	return AccessResult{StartNs: first.StartNs, DoneNs: last.DoneNs, Hit: first.Hit, Empty: first.Empty}, nil
}

// Precharge closes one bank at the earliest legal time at or after now
// (a controller-issued PRE, e.g. auto-precharge in a closed-page
// policy).
func (d *Device) Precharge(now float64, bank int) error {
	if bank < 0 || bank >= len(d.banks) {
		return fmt.Errorf("dram: bank %d out of range [0,%d)", bank, len(d.banks))
	}
	b := &d.banks[bank]
	if b.openRow < 0 {
		return nil
	}
	pre := math.Max(now, b.canPreAt)
	b.openRow = -1
	if pre+d.cfg.Timing.TRPns > b.canActAt {
		b.canActAt = pre + d.cfg.Timing.TRPns
	}
	return nil
}

// PrechargeAll closes every bank (e.g. before power-down or a policy
// switch). Completion is not modelled beyond the per-bank timers.
func (d *Device) PrechargeAll(now float64) {
	for i := range d.banks {
		d.Precharge(now, i) // in-range by construction
	}
}

// OpenRow returns the currently open row of a bank, or -1.
func (d *Device) OpenRow(bank int) int {
	if bank < 0 || bank >= len(d.banks) {
		return -1
	}
	return d.banks[bank].openRow
}
