package dram

import (
	"strings"
	"testing"
)

// TestInjectRejectsWithoutMutation is the regression test for the
// validate-before-commit contract: every malformed fault must be
// rejected with FaultCount unchanged and the array still behaving as
// fault-free.
func TestInjectRejectsWithoutMutation(t *testing.T) {
	bad := []struct {
		name string
		f    Fault
	}{
		{"cell row negative", Fault{Kind: StuckAt0, Row: -1, Col: 0}},
		{"cell row high", Fault{Kind: StuckAt1, Row: 8, Col: 0}},
		{"cell col negative", Fault{Kind: TransitionUp, Row: 0, Col: -1}},
		{"cell col high", Fault{Kind: TransitionDown, Row: 0, Col: 16}},
		{"bitline col negative", Fault{Kind: BitlineStuck0, Col: -3}},
		{"bitline col high", Fault{Kind: BitlineStuck0, Col: 16}},
		{"wordline row negative", Fault{Kind: WordlineStuck0, Row: -1}},
		{"wordline row high", Fault{Kind: WordlineStuck0, Row: 8}},
		{"coupling aggressor row", Fault{Kind: CouplingInvert, Row: 1, Col: 1, AggRow: 99, AggCol: 0}},
		{"coupling aggressor col", Fault{Kind: CouplingInvert, Row: 1, Col: 1, AggRow: 0, AggCol: -2}},
		{"retention zero", Fault{Kind: Retention, Row: 2, Col: 3, RetentionMs: 0}},
		{"retention negative", Fault{Kind: Retention, Row: 2, Col: 3, RetentionMs: -4}},
		{"decoder target row", Fault{Kind: AddressDecoder, Row: 0, Col: 0, AggRow: 8, AggCol: 0}},
		{"decoder target col", Fault{Kind: AddressDecoder, Row: 0, Col: 0, AggRow: 0, AggCol: 16}},
		{"decoder self-loop", Fault{Kind: AddressDecoder, Row: 3, Col: 4, AggRow: 3, AggCol: 4}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewArray(8, 16)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Inject(tc.f); err == nil {
				t.Fatalf("Inject(%+v) accepted a malformed fault", tc.f)
			}
			if n := a.FaultCount(); n != 0 {
				t.Errorf("rejected fault left %d fault records behind", n)
			}
			// The array must still behave fault-free end to end.
			for r := 0; r < 8; r++ {
				for c := 0; c < 16; c++ {
					v := (r+c)%3 == 0
					if err := a.Write(0, r, c, v); err != nil {
						t.Fatal(err)
					}
					got, err := a.Read(0, r, c)
					if err != nil {
						t.Fatal(err)
					}
					if got != v {
						t.Fatalf("cell (%d,%d): rejected fault corrupted behaviour", r, c)
					}
				}
			}
		})
	}
}

// TestInjectErrorMessages spot-checks that the rejection reasons name
// the offending coordinate.
func TestInjectErrorMessages(t *testing.T) {
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = a.Inject(Fault{Kind: BitlineStuck0, Col: 7})
	if err == nil || !strings.Contains(err.Error(), "column 7") {
		t.Errorf("bitline error should name the column, got %v", err)
	}
	err = a.Inject(Fault{Kind: AddressDecoder, Row: 1, Col: 1, AggRow: 1, AggCol: 1})
	if err == nil || !strings.Contains(err.Error(), "different cell") {
		t.Errorf("decoder self-loop error unexpected: %v", err)
	}
}

// TestInjectValidStillWorks pins the happy path after the restructure.
func TestInjectValidStillWorks(t *testing.T) {
	a, err := NewArray(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults := []Fault{
		{Kind: StuckAt1, Row: 0, Col: 0},
		{Kind: BitlineStuck0, Col: 5},
		{Kind: WordlineStuck0, Row: 7},
		{Kind: Retention, Row: 2, Col: 2, RetentionMs: 1},
		{Kind: CouplingInvert, Row: 3, Col: 3, AggRow: 3, AggCol: 4},
		{Kind: AddressDecoder, Row: 4, Col: 4, AggRow: 5, AggCol: 5},
	}
	for _, f := range faults {
		if err := a.Inject(f); err != nil {
			t.Fatalf("Inject(%+v): %v", f, err)
		}
	}
	if n := a.FaultCount(); n != len(faults) {
		t.Errorf("FaultCount = %d, want %d", n, len(faults))
	}
	if v, _ := a.Read(0, 0, 0); !v {
		t.Error("stuck-at-1 cell should read 1")
	}
	if err := a.Write(0, 1, 5, true); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Read(0, 1, 5); v {
		t.Error("stuck bitline should read 0")
	}
}
