package dram

import (
	"fmt"
)

// FaultKind enumerates the DRAM fault models the paper's §6 calls out as
// explicitly tested for: stuck cells, transition faults, coupling
// (cross-talk), whole bit-line and word-line failures, and retention-time
// failures.
type FaultKind int

const (
	// StuckAt0 / StuckAt1: the cell always reads the fixed value.
	StuckAt0 FaultKind = iota
	StuckAt1
	// TransitionUp: the cell cannot make a 0→1 transition.
	TransitionUp
	// TransitionDown: the cell cannot make a 1→0 transition.
	TransitionDown
	// CouplingInvert: a write transition on the aggressor cell inverts
	// this victim cell (cross-talk).
	CouplingInvert
	// BitlineStuck0: the whole column reads 0.
	BitlineStuck0
	// WordlineStuck0: the whole row reads 0.
	WordlineStuck0
	// Retention: the cell loses its charge (decays to 0) when not
	// restored within RetentionMs.
	Retention
	// AddressDecoder: accesses addressed to (Row,Col) actually reach
	// the cell (AggRow,AggCol) — the classic decoder fault MATS+ was
	// designed to catch.
	AddressDecoder
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case StuckAt0:
		return "SA0"
	case StuckAt1:
		return "SA1"
	case TransitionUp:
		return "TF-up"
	case TransitionDown:
		return "TF-down"
	case CouplingInvert:
		return "CF-inv"
	case BitlineStuck0:
		return "bitline"
	case WordlineStuck0:
		return "wordline"
	case Retention:
		return "retention"
	case AddressDecoder:
		return "addr-decoder"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes one injected defect.
type Fault struct {
	Kind     FaultKind
	Row, Col int
	// AggRow/AggCol identify the aggressor cell for CouplingInvert.
	AggRow, AggCol int
	// RetentionMs is the weak cell's retention for Retention faults.
	RetentionMs float64
}

type cellKey struct{ r, c int }

// Array is a functional DRAM cell array with fault injection. It is the
// device-under-test of the BIST substrate (internal/bist) and the defect
// source of the yield model. Time is in milliseconds; reads restore the
// row (sense-amplifier write-back), as in a real DRAM.
type Array struct {
	rows, cols int
	data       []uint64
	// rowRestore is the last time each row was written back (by a
	// write, read or refresh); retention faults decay relative to it.
	rowRestore []float64

	cellFaults map[cellKey][]Fault
	victims    map[cellKey][]cellKey // aggressor -> coupled victims
	rowFaults  map[int]bool
	colFaults  map[int]bool
	// retention indexes the retention-faulty cells per row, so a row
	// restore can decay expired cells without scanning every fault.
	retention map[int][]Fault
	// remap redirects decoder-faulty addresses to the cell actually
	// selected.
	remap map[cellKey]cellKey
}

// NewArray creates a fault-free array of the given geometry, all zeros.
func NewArray(rows, cols int) (*Array, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("dram: array geometry %dx%d invalid", rows, cols)
	}
	n := rows * cols
	return &Array{
		rows:       rows,
		cols:       cols,
		data:       make([]uint64, (n+63)/64),
		rowRestore: make([]float64, rows),
		cellFaults: map[cellKey][]Fault{},
		victims:    map[cellKey][]cellKey{},
		rowFaults:  map[int]bool{},
		colFaults:  map[int]bool{},
		retention:  map[int][]Fault{},
		remap:      map[cellKey]cellKey{},
	}, nil
}

// Rows returns the row count.
func (a *Array) Rows() int { return a.rows }

// Cols returns the column count.
func (a *Array) Cols() int { return a.cols }

// validateFault checks every field of a fault against the array geometry
// without touching any state.
func (a *Array) validateFault(f Fault) error {
	switch f.Kind {
	case BitlineStuck0:
		if f.Col < 0 || f.Col >= a.cols {
			return fmt.Errorf("dram: bitline fault column %d out of range", f.Col)
		}
		return nil
	case WordlineStuck0:
		if f.Row < 0 || f.Row >= a.rows {
			return fmt.Errorf("dram: wordline fault row %d out of range", f.Row)
		}
		return nil
	}
	if f.Row < 0 || f.Row >= a.rows || f.Col < 0 || f.Col >= a.cols {
		return fmt.Errorf("dram: fault cell (%d,%d) out of range", f.Row, f.Col)
	}
	switch f.Kind {
	case CouplingInvert:
		if f.AggRow < 0 || f.AggRow >= a.rows || f.AggCol < 0 || f.AggCol >= a.cols {
			return fmt.Errorf("dram: aggressor (%d,%d) out of range", f.AggRow, f.AggCol)
		}
	case Retention:
		if f.RetentionMs <= 0 {
			return fmt.Errorf("dram: retention fault needs positive retention, got %g", f.RetentionMs)
		}
	case AddressDecoder:
		if f.AggRow < 0 || f.AggRow >= a.rows || f.AggCol < 0 || f.AggCol >= a.cols {
			return fmt.Errorf("dram: decoder target (%d,%d) out of range", f.AggRow, f.AggCol)
		}
		if f.AggRow == f.Row && f.AggCol == f.Col {
			return fmt.Errorf("dram: decoder fault must redirect to a different cell")
		}
	}
	return nil
}

// Inject adds a fault. Coordinates must be in range. Validation is
// completed before any internal map is touched, so a rejected fault
// leaves the array exactly as it was.
func (a *Array) Inject(f Fault) error {
	if err := a.validateFault(f); err != nil {
		return err
	}
	switch f.Kind {
	case BitlineStuck0:
		a.colFaults[f.Col] = true
		return nil
	case WordlineStuck0:
		a.rowFaults[f.Row] = true
		return nil
	case AddressDecoder:
		a.remap[cellKey{f.Row, f.Col}] = cellKey{f.AggRow, f.AggCol}
		return nil
	case CouplingInvert:
		agg := cellKey{f.AggRow, f.AggCol}
		a.victims[agg] = append(a.victims[agg], cellKey{f.Row, f.Col})
	case Retention:
		a.retention[f.Row] = append(a.retention[f.Row], f)
	}
	k := cellKey{f.Row, f.Col}
	a.cellFaults[k] = append(a.cellFaults[k], f)
	return nil
}

// FaultCount returns the number of injected fault records.
func (a *Array) FaultCount() int {
	n := len(a.rowFaults) + len(a.colFaults) + len(a.remap)
	for _, fs := range a.cellFaults {
		n += len(fs)
	}
	return n
}

func (a *Array) idx(r, c int) (word, bit int) {
	i := r*a.cols + c
	return i / 64, i % 64
}

func (a *Array) rawGet(r, c int) bool {
	w, b := a.idx(r, c)
	return a.data[w]>>(uint(b))&1 == 1
}

func (a *Array) rawSet(r, c int, v bool) {
	w, b := a.idx(r, c)
	if v {
		a.data[w] |= 1 << uint(b)
	} else {
		a.data[w] &^= 1 << uint(b)
	}
}

func (a *Array) checkCoords(r, c int) error {
	if r < 0 || r >= a.rows || c < 0 || c >= a.cols {
		return fmt.Errorf("dram: cell (%d,%d) out of %dx%d array", r, c, a.rows, a.cols)
	}
	return nil
}

// Write stores v at (r,c) at time tMs, applying transition faults and
// triggering coupling faults on victims of this cell.
func (a *Array) Write(tMs float64, r, c int, v bool) error {
	if err := a.checkCoords(r, c); err != nil {
		return err
	}
	if to, ok := a.remap[cellKey{r, c}]; ok {
		r, c = to.r, to.c
	}
	a.decayRow(tMs, r) // a write activates (and restores) the row too
	old := a.rawGet(r, c)
	eff := v
	for _, f := range a.cellFaults[cellKey{r, c}] {
		switch f.Kind {
		case StuckAt0:
			eff = false
		case StuckAt1:
			eff = true
		case TransitionUp:
			if !old && v {
				eff = old // rising transition fails
			}
		case TransitionDown:
			if old && !v {
				eff = old
			}
		}
	}
	a.rawSet(r, c, eff)
	// A transition on this cell flips coupled victims.
	if old != eff {
		for _, vic := range a.victims[cellKey{r, c}] {
			a.rawSet(vic.r, vic.c, !a.rawGet(vic.r, vic.c))
		}
	}
	return nil
}

// decayRow zeroes every retention-faulty cell of row r whose charge has
// expired at tMs, then marks the row restored. Any row activation — a
// read of any cell, or a refresh — write-backs the whole row through
// the sense amplifiers, so decayed cells lose their data for good at
// that moment.
func (a *Array) decayRow(tMs float64, r int) {
	for _, f := range a.retention[r] {
		if a.rawGet(f.Row, f.Col) && tMs-a.rowRestore[r] > f.RetentionMs {
			a.rawSet(f.Row, f.Col, false)
		}
	}
	a.rowRestore[r] = tMs
}

// Read returns the value at (r,c) at time tMs, applying stuck-at,
// line and retention faults. Reading restores the row.
func (a *Array) Read(tMs float64, r, c int) (bool, error) {
	if err := a.checkCoords(r, c); err != nil {
		return false, err
	}
	if to, ok := a.remap[cellKey{r, c}]; ok {
		r, c = to.r, to.c
	}
	a.decayRow(tMs, r) // sense amps restore the whole row
	v := a.rawGet(r, c)
	if a.rowFaults[r] || a.colFaults[c] {
		return false, nil
	}
	for _, f := range a.cellFaults[cellKey{r, c}] {
		switch f.Kind {
		case StuckAt0:
			v = false
		case StuckAt1:
			v = true
		}
	}
	return v, nil
}

// FillPattern raw-initializes every cell to pat(r,c), bypassing write
// fault semantics (stuck and transition behaviour still applies on
// later reads and writes), and restarts every row's retention clock at
// tMs. It models the array's initialized state rather than a sequence
// of write operations.
func (a *Array) FillPattern(tMs float64, pat func(r, c int) bool) {
	for r := 0; r < a.rows; r++ {
		for c := 0; c < a.cols; c++ {
			a.rawSet(r, c, pat(r, c))
		}
		a.rowRestore[r] = tMs
	}
}

// RefreshRow restores row r at time tMs (retention clocks restart).
// Cells whose retention already expired have lost their data.
func (a *Array) RefreshRow(tMs float64, r int) error {
	if r < 0 || r >= a.rows {
		return fmt.Errorf("dram: refresh row %d out of range", r)
	}
	a.decayRow(tMs, r)
	return nil
}
