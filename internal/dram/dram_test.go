package dram

import (
	"math"
	"testing"
	"testing/quick"

	"edram/internal/tech"
)

func testConfig() Config {
	return Config{
		Banks:       4,
		RowsPerBank: 1024,
		PageBits:    2048,
		DataBits:    64,
		Timing:      tech.PC100(),
	}
}

func mustNew(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero banks", func(c *Config) { c.Banks = 0 }},
		{"zero rows", func(c *Config) { c.RowsPerBank = 0 }},
		{"zero page", func(c *Config) { c.PageBits = 0 }},
		{"data wider than page", func(c *Config) { c.DataBits = c.PageBits * 2 }},
		{"page not multiple of data", func(c *Config) { c.DataBits = 3 }},
		{"zero clock", func(c *Config) { c.Timing.TCKns = 0 }},
	}
	for _, cse := range cases {
		c := testConfig()
		cse.mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s: should fail validation", cse.name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("%s: New should reject", cse.name)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := testConfig()
	if c.ColumnsPerRow() != 32 {
		t.Errorf("columns per row = %d, want 32", c.ColumnsPerRow())
	}
	if c.TotalBits() != 4*1024*2048 {
		t.Errorf("total bits = %d", c.TotalBits())
	}
	// 64 bits per 10 ns = 8 B / 10 ns = 0.8 GB/s.
	if math.Abs(c.PeakBandwidthGBps()-0.8) > 1e-9 {
		t.Errorf("peak bandwidth = %v, want 0.8", c.PeakBandwidthGBps())
	}
	zero := Config{}
	if zero.ColumnsPerRow() != 0 || zero.PeakBandwidthGBps() != 0 {
		t.Error("zero config must yield zero derived values")
	}
}

func TestAccessBounds(t *testing.T) {
	d := mustNew(t, testConfig())
	if _, err := d.Access(0, -1, 0, false); err == nil {
		t.Error("negative bank must error")
	}
	if _, err := d.Access(0, 4, 0, false); err == nil {
		t.Error("bank out of range must error")
	}
	if _, err := d.Access(0, 0, 1024, false); err == nil {
		t.Error("row out of range must error")
	}
	if _, err := d.Access(0, 0, -1, false); err == nil {
		t.Error("negative row must error")
	}
}

func TestFirstAccessTiming(t *testing.T) {
	d := mustNew(t, testConfig())
	tm := testConfig().Timing
	res, err := d.Access(0, 0, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty || res.Hit {
		t.Error("first access must be an empty-bank activate")
	}
	// ACT at 0, column at tRCD, data tCAS later.
	if math.Abs(res.StartNs-tm.TRCDns) > 1e-9 {
		t.Errorf("column start %.1f, want tRCD=%.1f", res.StartNs, tm.TRCDns)
	}
	if math.Abs(res.DoneNs-(tm.TRCDns+tm.TCASns)) > 1e-9 {
		t.Errorf("done %.1f, want %.1f", res.DoneNs, tm.TRCDns+tm.TCASns)
	}
}

func TestPageHitFasterThanMiss(t *testing.T) {
	d := mustNew(t, testConfig())
	if _, err := d.Access(0, 0, 5, false); err != nil {
		t.Fatal(err)
	}
	hit, err := d.Access(100, 0, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Hit {
		t.Fatal("same-row access must hit")
	}
	hitLatency := hit.DoneNs - 100

	miss, err := d.Access(200, 0, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Hit || miss.Empty {
		t.Fatal("different-row access must be a conflict miss")
	}
	missLatency := miss.DoneNs - 200
	if hitLatency >= missLatency {
		t.Fatalf("hit latency %.1f must beat miss latency %.1f", hitLatency, missLatency)
	}
	// The miss pays at least tRP + tRCD more.
	tm := testConfig().Timing
	if missLatency < hitLatency+tm.TRPns+tm.TRCDns-2*tm.TCKns {
		t.Errorf("miss penalty too small: hit %.1f miss %.1f", hitLatency, missLatency)
	}
}

func TestTRCEnforced(t *testing.T) {
	d := mustNew(t, testConfig())
	tm := testConfig().Timing
	a, err := d.Access(0, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	// Immediately force a second activate in the same bank.
	b, err := d.Access(0, 0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// The second row's column command cannot come earlier than
	// tRAS+tRP (precharge path) + tRCD after the first ACT at 0.
	minStart := tm.TRASns + tm.TRPns + tm.TRCDns
	if b.StartNs < minStart-1e-9 {
		t.Errorf("second row column at %.1f, must be >= %.1f", b.StartNs, minStart)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	// Interleaving row misses across 4 banks must finish much sooner
	// than the same misses serialized in one bank — the multi-bank
	// rationale of paper §4.
	run := func(banks bool) float64 {
		d := mustNew(t, testConfig())
		now := 0.0
		var last float64
		for i := 0; i < 16; i++ {
			bank := 0
			if banks {
				bank = i % 4
			}
			res, err := d.Access(now, bank, i*2+1, false) // new row each time
			if err != nil {
				t.Fatal(err)
			}
			last = res.DoneNs
		}
		return last
	}
	same := run(false)
	inter := run(true)
	if inter >= same {
		t.Fatalf("bank interleaving (%.0f ns) must beat single bank (%.0f ns)", inter, same)
	}
	if same/inter < 2 {
		t.Errorf("expected >2x gain from 4 banks, got %.2fx", same/inter)
	}
}

func TestBurstApproachesPeak(t *testing.T) {
	cfg := testConfig()
	d := mustNew(t, cfg)
	res, err := d.Burst(0, 0, 3, 32, false) // full page
	if err != nil {
		t.Fatal(err)
	}
	bits := 32 * cfg.DataBits
	gbps := float64(bits) / 8 / res.DoneNs
	peak := cfg.PeakBandwidthGBps()
	if gbps < 0.7*peak {
		t.Errorf("page burst achieves %.2f GB/s of %.2f peak; pipeline broken?", gbps, peak)
	}
	if gbps > peak+1e-9 {
		t.Errorf("burst bandwidth %.2f exceeds peak %.2f", gbps, peak)
	}
}

func TestBurstErrors(t *testing.T) {
	d := mustNew(t, testConfig())
	if _, err := d.Burst(0, 0, 0, 0, false); err == nil {
		t.Error("zero-length burst must error")
	}
	if _, err := d.Burst(0, 9, 0, 4, false); err == nil {
		t.Error("bad bank must error")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Access(0, 0, 1, false)   // empty
	d.Access(50, 0, 1, true)   // hit
	d.Access(100, 0, 2, false) // miss
	s := d.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
	if s.PageEmpties != 1 || s.PageHits != 1 || s.PageMisses != 1 {
		t.Errorf("empty/hit/miss = %d/%d/%d, want 1/1/1", s.PageEmpties, s.PageHits, s.PageMisses)
	}
	if math.Abs(s.HitRate()-1.0/3) > 1e-9 {
		t.Errorf("hit rate %v, want 1/3", s.HitRate())
	}
	d.ResetStats()
	if d.Stats().Accesses() != 0 {
		t.Error("ResetStats must clear counters")
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate must be 0")
	}
}

func TestRefreshStealsBandwidth(t *testing.T) {
	cfg := testConfig()
	cfg.AutoRefresh = true
	cfg.Timing.TRefIns = 500 // absurdly frequent, to make the effect visible
	d := mustNew(t, cfg)
	noRef := mustNew(t, testConfig())

	run := func(dev *Device) float64 {
		now := 0.0
		for i := 0; i < 200; i++ {
			r, err := dev.Access(now, 0, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			now = r.DoneNs
		}
		return now
	}
	withEnd := run(d)
	withoutEnd := run(noRef)
	if d.Stats().Refreshes == 0 {
		t.Fatal("auto refresh never fired")
	}
	if withEnd <= withoutEnd {
		t.Errorf("refresh must cost time: %.0f vs %.0f", withEnd, withoutEnd)
	}
}

func TestPrechargeAll(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Access(0, 0, 3, false)
	d.Access(0, 1, 7, false)
	if d.OpenRow(0) != 3 || d.OpenRow(1) != 7 {
		t.Fatal("rows should be open")
	}
	d.PrechargeAll(1000)
	if d.OpenRow(0) != -1 || d.OpenRow(1) != -1 {
		t.Error("PrechargeAll must close all banks")
	}
	if d.OpenRow(-1) != -1 || d.OpenRow(99) != -1 {
		t.Error("out-of-range OpenRow must return -1")
	}
}

func TestNegativeNowClamped(t *testing.T) {
	d := mustNew(t, testConfig())
	res, err := d.Access(-50, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartNs < 0 {
		t.Error("start time must not be negative")
	}
}

// Property: command start times are always aligned to the interface clock
// and monotone per issue order on the shared bus.
func TestClockAlignmentProperty(t *testing.T) {
	cfg := testConfig()
	f := func(seq []uint16) bool {
		d, err := New(cfg)
		if err != nil {
			return false
		}
		now := 0.0
		prevStart := -1.0
		for _, s := range seq {
			bank := int(s) % cfg.Banks
			row := (int(s) / cfg.Banks) % cfg.RowsPerBank
			res, err := d.Access(now, bank, row, s%2 == 0)
			if err != nil {
				return false
			}
			// Clock aligned?
			q := res.StartNs / cfg.Timing.TCKns
			if math.Abs(q-math.Round(q)) > 1e-6 {
				return false
			}
			// Bus serialized?
			if res.StartNs <= prevStart-1e-9 {
				return false
			}
			prevStart = res.StartNs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hit+miss+empty == total accesses.
func TestStatsConservationProperty(t *testing.T) {
	cfg := testConfig()
	f := func(seq []uint16) bool {
		d, err := New(cfg)
		if err != nil {
			return false
		}
		now := 0.0
		for _, s := range seq {
			res, err := d.Access(now, int(s)%cfg.Banks, int(s/7)%cfg.RowsPerBank, false)
			if err != nil {
				return false
			}
			now = res.DoneNs
		}
		st := d.Stats()
		return st.PageHits+st.PageMisses+st.PageEmpties == st.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrecharge(t *testing.T) {
	d := mustNew(t, testConfig())
	if err := d.Precharge(0, -1); err == nil {
		t.Error("bad bank must error")
	}
	if err := d.Precharge(0, 0); err != nil {
		t.Errorf("precharging an idle bank must be a no-op, got %v", err)
	}
	d.Access(0, 0, 3, false)
	if err := d.Precharge(100, 0); err != nil {
		t.Fatal(err)
	}
	if d.OpenRow(0) != -1 {
		t.Error("precharge must close the row")
	}
	// The next activate to the same row is an empty-bank activate, not
	// a conflict miss.
	res, err := d.Access(200, 0, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty {
		t.Error("post-precharge access must be an empty activate")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	cfg := testConfig()
	cfg.Timing.TWTRns = 15
	d := mustNew(t, cfg)
	d.Access(0, 0, 1, false) // open the row
	w, err := d.Access(100, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Access(w.DoneNs, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.StartNs < w.DoneNs+15-1e-9 {
		t.Errorf("read at %.1f must wait tWTR after write end %.1f", r.StartNs, w.DoneNs)
	}
	// Write-after-write needs no turnaround beyond the bus cycle
	// (fresh device: the read above already claimed the bus).
	d2 := mustNew(t, cfg)
	d2.Access(0, 0, 1, false)
	wa, err := d2.Access(100, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := d2.Access(wa.DoneNs, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if wb.StartNs > wa.DoneNs+cfg.Timing.TCKns+1e-9 {
		t.Errorf("back-to-back writes must not pay tWTR: %.1f after %.1f", wb.StartNs, wa.DoneNs)
	}
}

func TestTFAWThrottlesActivates(t *testing.T) {
	cfg := testConfig()
	cfg.Banks = 8
	cfg.Timing.TFAWns = 200 // generous window: 5th ACT must wait
	d := mustNew(t, cfg)
	var fifth AccessResult
	for i := 0; i < 5; i++ {
		res, err := d.Access(0, i, 0, false) // five different banks
		if err != nil {
			t.Fatal(err)
		}
		fifth = res
	}
	// Without tFAW the 5th ACT would issue almost immediately; with a
	// 200-ns window it cannot start its column phase before
	// firstACT + 200 + tRCD.
	if fifth.StartNs < 200-1e-9 {
		t.Errorf("5th activate column at %.1f; tFAW should push it past 200", fifth.StartNs)
	}
	// Control: without tFAW the same sequence is fast.
	d2 := mustNew(t, testConfig())
	var fifth2 AccessResult
	for i := 0; i < 5; i++ {
		res, err := d2.Access(0, i%4, i, false)
		if err != nil {
			t.Fatal(err)
		}
		fifth2 = res
	}
	if fifth2.StartNs >= 200 {
		t.Errorf("control run unexpectedly slow: %.1f", fifth2.StartNs)
	}
}

func TestTFAWFirstFourUnaffected(t *testing.T) {
	cfg := testConfig()
	cfg.Timing.TFAWns = 500
	d := mustNew(t, cfg)
	res, err := d.Access(0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartNs > cfg.Timing.TRCDns+1e-9 {
		t.Errorf("first activate must not be tFAW-delayed: start %.1f", res.StartNs)
	}
}

// Differential test: for single-bank, in-order access sequences the
// device's reported times must match a hand-computed reference.
func TestDeviceMatchesAnalyticReference(t *testing.T) {
	cfg := testConfig()
	tm := cfg.Timing
	d := mustNew(t, cfg)

	type step struct {
		row  int
		want float64 // expected column-start time
	}
	// Sequence: open row 0 (ACT@0, col@tRCD), hit (next tick after
	// bus), conflict to row 1, hit on row 1.
	steps := []step{
		{row: 0, want: tm.TRCDns},
		{row: 0, want: tm.TRCDns + tm.TCKns},
		// Conflict: PRE cannot issue before tRAS (50); ACT at
		// ceil((50+20)/10)*10 = 70; col at 70+tRCD = 90.
		{row: 1, want: tm.TRASns + tm.TRPns + tm.TRCDns},
		{row: 1, want: tm.TRASns + tm.TRPns + tm.TRCDns + tm.TCKns},
	}
	now := 0.0
	for i, s := range steps {
		res, err := d.Access(now, 0, s.row, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.StartNs-s.want) > 1e-9 {
			t.Fatalf("step %d: column at %.1f, reference %.1f", i, res.StartNs, s.want)
		}
		now = res.StartNs
	}
}
