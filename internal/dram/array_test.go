package dram

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustArray(t *testing.T, rows, cols int) *Array {
	t.Helper()
	a, err := NewArray(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0, 8); err == nil {
		t.Error("zero rows must fail")
	}
	if _, err := NewArray(8, 0); err == nil {
		t.Error("zero cols must fail")
	}
	a := mustArray(t, 16, 32)
	if a.Rows() != 16 || a.Cols() != 32 {
		t.Error("geometry accessors wrong")
	}
}

func TestFaultFreeReadWrite(t *testing.T) {
	a := mustArray(t, 8, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			v := (r+c)%2 == 0
			if err := a.Write(0, r, c, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			got, err := a.Read(1, r, c)
			if err != nil {
				t.Fatal(err)
			}
			if got != ((r+c)%2 == 0) {
				t.Fatalf("cell (%d,%d) = %v", r, c, got)
			}
		}
	}
}

func TestCoordinateChecks(t *testing.T) {
	a := mustArray(t, 4, 4)
	if err := a.Write(0, 4, 0, true); err == nil {
		t.Error("row overflow write must error")
	}
	if _, err := a.Read(0, 0, 4); err == nil {
		t.Error("col overflow read must error")
	}
	if err := a.RefreshRow(0, -1); err == nil {
		t.Error("refresh out of range must error")
	}
}

func TestStuckAtFaults(t *testing.T) {
	a := mustArray(t, 4, 4)
	if err := a.Inject(Fault{Kind: StuckAt0, Row: 1, Col: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Inject(Fault{Kind: StuckAt1, Row: 2, Col: 2}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 1, 1, true)
	a.Write(0, 2, 2, false)
	if v, _ := a.Read(1, 1, 1); v {
		t.Error("SA0 cell must read 0")
	}
	if v, _ := a.Read(1, 2, 2); !v {
		t.Error("SA1 cell must read 1")
	}
}

func TestTransitionFaults(t *testing.T) {
	a := mustArray(t, 4, 4)
	a.Inject(Fault{Kind: TransitionUp, Row: 0, Col: 0})
	a.Write(0, 0, 0, true) // 0->1 fails
	if v, _ := a.Read(1, 0, 0); v {
		t.Error("TF-up cell must not rise")
	}
	a.Inject(Fault{Kind: TransitionDown, Row: 1, Col: 0})
	// Get a 1 into the TF-down cell: 0->1 is fine.
	a.Write(0, 1, 0, true)
	a.Write(1, 1, 0, false) // 1->0 fails
	if v, _ := a.Read(2, 1, 0); !v {
		t.Error("TF-down cell must not fall")
	}
}

func TestCouplingFault(t *testing.T) {
	a := mustArray(t, 4, 4)
	// Victim (3,3) inverts when aggressor (0,0) transitions.
	if err := a.Inject(Fault{Kind: CouplingInvert, Row: 3, Col: 3, AggRow: 0, AggCol: 0}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 3, 3, false)
	a.Write(1, 0, 0, true) // transition 0->1 on aggressor
	if v, _ := a.Read(2, 3, 3); !v {
		t.Error("victim must invert on aggressor transition")
	}
	a.Write(3, 0, 0, true) // no transition: victim unaffected
	if v, _ := a.Read(4, 3, 3); !v {
		t.Error("victim must not change without aggressor transition")
	}
}

func TestLineFaults(t *testing.T) {
	a := mustArray(t, 4, 4)
	a.Inject(Fault{Kind: BitlineStuck0, Col: 2})
	a.Inject(Fault{Kind: WordlineStuck0, Row: 1})
	a.Write(0, 0, 2, true)
	a.Write(0, 1, 3, true)
	if v, _ := a.Read(1, 0, 2); v {
		t.Error("bitline-fault column must read 0")
	}
	if v, _ := a.Read(1, 1, 3); v {
		t.Error("wordline-fault row must read 0")
	}
	if err := a.Inject(Fault{Kind: BitlineStuck0, Col: 99}); err == nil {
		t.Error("out-of-range bitline must error")
	}
	if err := a.Inject(Fault{Kind: WordlineStuck0, Row: 99}); err == nil {
		t.Error("out-of-range wordline must error")
	}
}

func TestRetentionFault(t *testing.T) {
	a := mustArray(t, 4, 4)
	if err := a.Inject(Fault{Kind: Retention, Row: 0, Col: 0, RetentionMs: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Inject(Fault{Kind: Retention, Row: 0, Col: 1}); err == nil {
		t.Error("retention fault without retention time must error")
	}
	a.Write(0, 0, 0, true)
	// Within retention: fine.
	if v, _ := a.Read(5, 0, 0); !v {
		t.Error("cell must hold within retention")
	}
	// The read at t=5 restored the row; wait past retention now.
	if v, _ := a.Read(20, 0, 0); v {
		t.Error("cell must decay past retention")
	}
	// Decay is permanent until rewritten.
	if v, _ := a.Read(21, 0, 0); v {
		t.Error("decayed cell stays 0")
	}
}

func TestRefreshPreservesWithinRetention(t *testing.T) {
	a := mustArray(t, 4, 4)
	a.Inject(Fault{Kind: Retention, Row: 2, Col: 2, RetentionMs: 10})
	a.Write(0, 2, 2, true)
	// Refresh every 8 ms: the weak cell survives.
	for tm := 8.0; tm <= 64; tm += 8 {
		if err := a.RefreshRow(tm, 2); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := a.Read(70, 2, 2); !v {
		t.Error("weak cell must survive when refreshed inside its retention")
	}
	// Now stretch the interval beyond retention: data dies.
	a.Write(100, 2, 2, true)
	a.RefreshRow(115, 2) // 15 ms > 10 ms retention
	if v, _ := a.Read(116, 2, 2); v {
		t.Error("weak cell must die when the refresh interval exceeds retention")
	}
}

func TestInjectBounds(t *testing.T) {
	a := mustArray(t, 4, 4)
	if err := a.Inject(Fault{Kind: StuckAt0, Row: 9, Col: 0}); err == nil {
		t.Error("cell fault out of range must error")
	}
	if err := a.Inject(Fault{Kind: CouplingInvert, Row: 0, Col: 0, AggRow: 9, AggCol: 0}); err == nil {
		t.Error("aggressor out of range must error")
	}
}

func TestFaultCount(t *testing.T) {
	a := mustArray(t, 8, 8)
	if a.FaultCount() != 0 {
		t.Error("fresh array must have 0 faults")
	}
	a.Inject(Fault{Kind: StuckAt0, Row: 0, Col: 0})
	a.Inject(Fault{Kind: StuckAt1, Row: 0, Col: 0}) // stacked on same cell
	a.Inject(Fault{Kind: BitlineStuck0, Col: 3})
	a.Inject(Fault{Kind: WordlineStuck0, Row: 5})
	if a.FaultCount() != 4 {
		t.Errorf("fault count = %d, want 4", a.FaultCount())
	}
}

func TestFaultKindString(t *testing.T) {
	kinds := []FaultKind{StuckAt0, StuckAt1, TransitionUp, TransitionDown, CouplingInvert, BitlineStuck0, WordlineStuck0, Retention}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(FaultKind(42).String(), "42") {
		t.Error("unknown kind must embed its number")
	}
}

// Property: on a fault-free array, Read always returns the last Write.
func TestArrayReadAfterWriteProperty(t *testing.T) {
	a := mustArray(t, 32, 32)
	f := func(r8, c8 uint8, v bool) bool {
		r, c := int(r8)%32, int(c8)%32
		if err := a.Write(0, r, c, v); err != nil {
			return false
		}
		got, err := a.Read(1, r, c)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressDecoderFault(t *testing.T) {
	a := mustArray(t, 8, 8)
	// Address (1,1) actually selects cell (5,5).
	if err := a.Inject(Fault{Kind: AddressDecoder, Row: 1, Col: 1, AggRow: 5, AggCol: 5}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 1, 1, true)
	// The data landed at (5,5), not (1,1)'s storage...
	if v, _ := a.Read(1, 5, 5); !v {
		t.Error("write must land at the decoded cell")
	}
	// ...but reading (1,1) also goes to (5,5), so it reads back fine —
	// the fault is only visible through the aliasing:
	a.Write(2, 5, 5, false) // direct write to the shared cell
	if v, _ := a.Read(3, 1, 1); v {
		t.Error("aliased address must observe the direct write")
	}
	if a.FaultCount() != 1 {
		t.Errorf("fault count = %d, want 1", a.FaultCount())
	}
}

func TestAddressDecoderInjectValidation(t *testing.T) {
	a := mustArray(t, 8, 8)
	if err := a.Inject(Fault{Kind: AddressDecoder, Row: 1, Col: 1, AggRow: 9, AggCol: 0}); err == nil {
		t.Error("out-of-range target must error")
	}
	if err := a.Inject(Fault{Kind: AddressDecoder, Row: 1, Col: 1, AggRow: 1, AggCol: 1}); err == nil {
		t.Error("self-redirect must error")
	}
}
