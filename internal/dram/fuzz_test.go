package dram

import (
	"testing"
)

// FuzzArrayReadWrite drives a fault-free array with a random operation
// stream decoded from the fuzz input: random reads, writes and
// refreshes must never panic or error in-bounds, and because the array
// is fault-free, every read must return the last value written to that
// cell (read-after-write consistency, monotonic time).
func FuzzArrayReadWrite(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0xff})
	f.Add([]byte{0x00})
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const rows, cols = 16, 32
		a, err := NewArray(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		shadow := make(map[[2]int]bool)
		tMs := 0.0
		for i := 0; i+2 < len(ops); i += 3 {
			r := int(ops[i]) % rows
			c := int(ops[i+1]) % cols
			tMs += float64(ops[i+2]) / 255.0 // monotonic, fractional ms
			switch ops[i] % 3 {
			case 0: // write
				v := ops[i+1]&1 == 1
				if err := a.Write(tMs, r, c, v); err != nil {
					t.Fatalf("Write(%g,%d,%d): %v", tMs, r, c, err)
				}
				shadow[[2]int{r, c}] = v
			case 1: // read
				got, err := a.Read(tMs, r, c)
				if err != nil {
					t.Fatalf("Read(%g,%d,%d): %v", tMs, r, c, err)
				}
				if want := shadow[[2]int{r, c}]; got != want {
					t.Fatalf("cell (%d,%d) = %t, want %t (fault-free array must be consistent)", r, c, got, want)
				}
			default: // refresh
				if err := a.RefreshRow(tMs, r); err != nil {
					t.Fatalf("RefreshRow(%g,%d): %v", tMs, r, err)
				}
			}
		}
	})
}
