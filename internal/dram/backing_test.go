package dram

import (
	"testing"
)

// backedDevice builds a device whose banks are backed by functional
// arrays (with two spare rows each), returning the collected word
// errors through the returned slice pointer.
func backedDevice(t *testing.T, faults map[int][]Fault) (*Device, *[]int) {
	t.Helper()
	cfg := testConfig()
	d := mustNew(t, cfg)
	arrays := make([]*Array, cfg.Banks)
	for b := range arrays {
		a, err := NewArray(cfg.RowsPerBank+2, cfg.PageBits)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults[b] {
			if err := a.Inject(f); err != nil {
				t.Fatal(err)
			}
		}
		arrays[b] = a
	}
	var errs []int
	if err := d.SetBacking(arrays, func(bank, row, bits int) {
		errs = append(errs, bits)
	}); err != nil {
		t.Fatal(err)
	}
	return d, &errs
}

func TestSetBackingValidation(t *testing.T) {
	cfg := testConfig()
	d := mustNew(t, cfg)
	if err := d.SetBacking([]*Array{}, nil); err == nil {
		t.Error("wrong array count must be rejected")
	}
	small, _ := NewArray(1, cfg.PageBits)
	bad := make([]*Array, cfg.Banks)
	for i := range bad {
		bad[i] = small
	}
	if err := d.SetBacking(bad, nil); err == nil {
		t.Error("too-few-rows arrays must be rejected")
	}
	narrow, _ := NewArray(cfg.RowsPerBank, cfg.DataBits)
	for i := range bad {
		bad[i] = narrow
	}
	if err := d.SetBacking(bad, nil); err == nil {
		t.Error("wrong-width arrays must be rejected")
	}
	if err := d.SetBacking(nil, nil); err != nil {
		t.Errorf("nil detach: %v", err)
	}
}

// TestBackingSurfacesStuckRow drives a full row's worth of beats
// through a bank whose row 0 is wordline-stuck and expects word errors
// on every read beat of that row.
func TestBackingSurfacesStuckRow(t *testing.T) {
	d, errs := backedDevice(t, map[int][]Fault{0: {{Kind: WordlineStuck0, Row: 0}}})
	beats := d.Config().ColumnsPerRow()
	// Read every beat of bank 0 row 0: the checkerboard mismatches on
	// roughly half the bits of every word.
	res, err := d.Burst(0, 0, 0, beats, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(*errs) != beats {
		t.Fatalf("got %d word errors over %d beats, want one per beat", len(*errs), beats)
	}
	for _, bits := range *errs {
		if bits != d.Config().DataBits/2 {
			t.Fatalf("stuck row word error = %d bits, want %d (checkerboard half)", bits, d.Config().DataBits/2)
		}
	}
	// A clean row produces none.
	*errs = (*errs)[:0]
	if _, err := d.Burst(res.DoneNs, 0, 1, beats, false); err != nil {
		t.Fatal(err)
	}
	if len(*errs) != 0 {
		t.Fatalf("clean row produced %d word errors", len(*errs))
	}
}

// TestRedirectRowRepairs remaps a stuck row onto a spare and verifies
// the errors disappear after the spare is scrubbed in.
func TestRedirectRowRepairs(t *testing.T) {
	d, errs := backedDevice(t, map[int][]Fault{0: {{Kind: WordlineStuck0, Row: 0}}})
	cfg := d.Config()
	if err := d.RedirectRow(0, 0, cfg.RowsPerBank); err != nil {
		t.Fatal(err)
	}
	res, err := d.ScrubRow(0, 0, 0) // initialize the spare with the background
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Burst(res.DoneNs, 0, 0, cfg.ColumnsPerRow(), false); err != nil {
		t.Fatal(err)
	}
	if len(*errs) != 0 {
		t.Fatalf("redirected row still produced %d word errors", len(*errs))
	}
	st := d.Stats()
	if st.Scrubs != 1 || st.ScrubBusyNs <= 0 {
		t.Errorf("scrub accounting: %+v", st)
	}
	// Redirect validation.
	if err := d.RedirectRow(9, 0, 0); err == nil {
		t.Error("bad bank must be rejected")
	}
	if err := d.RedirectRow(0, cfg.RowsPerBank, 0); err == nil {
		t.Error("logical row beyond device must be rejected")
	}
	if err := d.RedirectRow(0, 0, cfg.RowsPerBank+2); err == nil {
		t.Error("physical row beyond backing must be rejected")
	}
}

// TestScrubDoesNotCountClientTraffic pins that scrub writes do not
// inflate the device's client read/write counters.
func TestScrubDoesNotCountClientTraffic(t *testing.T) {
	d, _ := backedDevice(t, nil)
	before := d.Stats()
	if _, err := d.ScrubRow(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Reads != before.Reads || after.Writes != before.Writes {
		t.Errorf("scrub moved client counters: %+v -> %+v", before, after)
	}
	if after.Scrubs != before.Scrubs+1 {
		t.Errorf("Scrubs = %d, want %d", after.Scrubs, before.Scrubs+1)
	}
}

// TestBackingRetentionDecay lets a weak cell expire between accesses
// and expects the read to flag it.
func TestBackingRetentionDecay(t *testing.T) {
	// Weak cell at a position whose background is 1 (so decay to 0 is
	// visible): row 1, col 0 -> (1+0)%2 == 1.
	d, errs := backedDevice(t, map[int][]Fault{
		0: {{Kind: Retention, Row: 1, Col: 0, RetentionMs: 0.05}},
	})
	beats := d.Config().ColumnsPerRow()
	// Write the whole row (stores the background, charges the cell).
	res, err := d.Burst(0, 0, 1, beats, true)
	if err != nil {
		t.Fatal(err)
	}
	// Read it back immediately: no decay yet.
	res, err = d.Burst(res.DoneNs, 0, 1, beats, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(*errs) != 0 {
		t.Fatalf("fresh row produced %d errors", len(*errs))
	}
	// Read again 1 ms later (past the 0.05 ms retention): the weak cell
	// has decayed.
	if _, err := d.Burst(res.DoneNs+1e6, 0, 1, beats, false); err != nil {
		t.Fatal(err)
	}
	if len(*errs) != 1 || (*errs)[0] != 1 {
		t.Fatalf("decayed cell errors = %v, want one 1-bit word error", *errs)
	}
}
