package dram

import (
	"testing"
)

// The event loop of the controller calls Access/Burst once per served
// request; any allocation here multiplies across every simulated
// access. These guards pin the word read/write paths at zero
// allocations per operation, with and without functional backing
// arrays attached.

var (
	sinkResult AccessResult
	sinkErr    error
)

func TestDeviceAccessNoAllocs(t *testing.T) {
	d := mustNew(t, testConfig())
	now := 0.0
	if n := testing.AllocsPerRun(2000, func() {
		res, err := d.Access(now, int(now)%4, int(now)%1024, now > 1e5)
		sinkResult, sinkErr = res, err
		now = res.DoneNs
	}); n != 0 {
		t.Fatalf("Device.Access allocates %v allocs/op, want 0", n)
	}
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
}

func TestDeviceBurstNoAllocs(t *testing.T) {
	d := mustNew(t, testConfig())
	now := 0.0
	if n := testing.AllocsPerRun(2000, func() {
		res, err := d.Burst(now, int(now)%4, int(now)%1024, 4, false)
		sinkResult, sinkErr = res, err
		now = res.DoneNs
	}); n != 0 {
		t.Fatalf("Device.Burst allocates %v allocs/op, want 0", n)
	}
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
}

func TestDeviceAccessWithBackingNoAllocs(t *testing.T) {
	cfg := testConfig()
	d := mustNew(t, cfg)
	arrays := make([]*Array, cfg.Banks)
	for i := range arrays {
		a, err := NewArray(cfg.RowsPerBank, cfg.PageBits)
		if err != nil {
			t.Fatal(err)
		}
		arrays[i] = a
	}
	if err := d.SetBacking(arrays, nil); err != nil {
		t.Fatal(err)
	}
	now := 0.0
	if n := testing.AllocsPerRun(500, func() {
		res, err := d.Access(now, int(now)%4, int(now)%1024, int(now)%2 == 0)
		sinkResult, sinkErr = res, err
		now = res.DoneNs
	}); n != 0 {
		t.Fatalf("backed Device.Access allocates %v allocs/op, want 0", n)
	}
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
}
