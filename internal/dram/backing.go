package dram

import (
	"fmt"
)

// This file couples the timing Device to functional Arrays: every column
// access also reads or writes the backing cells, so injected defects,
// retention decay and repair actions surface as runtime data errors
// during scheduled traffic — the bridge between the §6 fault models and
// the §4 memory-controller world that the reliability pipeline
// (internal/reliab) builds on.
//
// The functional contract is a fixed checkerboard background: writes
// store it, reads compare against it, and every mismatching data word is
// reported through the error callback. Data values are not otherwise
// modelled by the traffic generators, so the background doubles as the
// "expected data" an ECC word would protect.

// WordErrorFunc reports one mismatching data word observed during a read
// access: the bank and (logical) row of the access and the number of
// flipped bits inside the DataBits-wide word. It is called synchronously
// from Access/Burst.
type WordErrorFunc func(bank, row, bits int)

// backingState is the per-device functional state.
type backingState struct {
	arrays  []*Array // one per bank; rows may exceed RowsPerBank (spares)
	onError WordErrorFunc
	beat    []int         // per-bank rotating beat (word) index
	redir   []map[int]int // per-bank logical row -> physical row
	refRow  []int         // per-bank rotating refresh row
}

// backgroundAt is the functional data background (checkerboard).
func backgroundAt(row, col int) bool { return (row+col)%2 == 1 }

// SetBacking attaches one functional Array per bank plus an error
// callback. Each array must have at least RowsPerBank rows (extra rows
// model spare rows available for repair redirection) and exactly
// PageBits columns. Passing nil arrays detaches the backing.
func (d *Device) SetBacking(arrays []*Array, onError WordErrorFunc) error {
	if arrays == nil {
		d.backing = nil
		return nil
	}
	if len(arrays) != d.cfg.Banks {
		return fmt.Errorf("dram: backing needs %d arrays, got %d", d.cfg.Banks, len(arrays))
	}
	for i, a := range arrays {
		if a == nil {
			return fmt.Errorf("dram: backing array %d is nil", i)
		}
		if a.Rows() < d.cfg.RowsPerBank {
			return fmt.Errorf("dram: backing array %d has %d rows, need >= %d", i, a.Rows(), d.cfg.RowsPerBank)
		}
		if a.Cols() != d.cfg.PageBits {
			return fmt.Errorf("dram: backing array %d has %d columns, need page length %d", i, a.Cols(), d.cfg.PageBits)
		}
	}
	// Initialize every array to the background so rows read before
	// their first write still satisfy the functional contract. The fill
	// is raw: stuck cells will still read wrong, which is exactly the
	// manufactured-defect behaviour the pipeline should see.
	for _, a := range arrays {
		a.FillPattern(0, backgroundAt)
	}
	b := &backingState{
		arrays:  arrays,
		onError: onError,
		beat:    make([]int, d.cfg.Banks),
		redir:   make([]map[int]int, d.cfg.Banks),
		refRow:  make([]int, d.cfg.Banks),
	}
	d.backing = b
	return nil
}

// Backing returns the functional array of one bank, or nil.
func (d *Device) Backing(bank int) *Array {
	if d.backing == nil || bank < 0 || bank >= len(d.backing.arrays) {
		return nil
	}
	return d.backing.arrays[bank]
}

// RedirectRow redirects accesses of one logical row to a different
// physical row of the bank's backing array — the runtime counterpart of
// the §5 spare-row repair. Timing is unaffected (a spare row in the same
// bank has identical access timing); only the functional cells change.
func (d *Device) RedirectRow(bank, logical, physical int) error {
	if d.backing == nil {
		return fmt.Errorf("dram: no backing attached")
	}
	if bank < 0 || bank >= d.cfg.Banks {
		return fmt.Errorf("dram: redirect bank %d out of range", bank)
	}
	if logical < 0 || logical >= d.cfg.RowsPerBank {
		return fmt.Errorf("dram: redirect row %d out of range [0,%d)", logical, d.cfg.RowsPerBank)
	}
	if physical < 0 || physical >= d.backing.arrays[bank].Rows() {
		return fmt.Errorf("dram: redirect target %d outside backing array (%d rows)", physical, d.backing.arrays[bank].Rows())
	}
	if d.backing.redir[bank] == nil {
		d.backing.redir[bank] = map[int]int{}
	}
	d.backing.redir[bank][logical] = physical
	return nil
}

// physRow resolves a logical row through the redirect table.
func (b *backingState) physRow(bank, row int) int {
	if m := b.redir[bank]; m != nil {
		if p, ok := m[row]; ok {
			return p
		}
	}
	return row
}

// touch performs the functional half of one column access: the beat's
// DataBits-wide slice of the (redirected) row is written with the
// background, or read and compared against it. Mismatching reads invoke
// the error callback unless the access is a scrub.
func (d *Device) touch(tNs float64, bank, row int, write, scrub bool) {
	b := d.backing
	if b == nil {
		return
	}
	beats := d.cfg.ColumnsPerRow()
	if beats < 1 {
		return
	}
	beat := b.beat[bank]
	b.beat[bank] = (beat + 1) % beats
	arr := b.arrays[bank]
	phys := b.physRow(bank, row)
	tMs := tNs / 1e6
	lo := beat * d.cfg.DataBits
	bad := 0
	for c := lo; c < lo+d.cfg.DataBits; c++ {
		if write {
			// Injected write faults (stuck, transition) keep the cell
			// wrong; the next read detects it.
			_ = arr.Write(tMs, phys, c, backgroundAt(phys, c))
			continue
		}
		v, err := arr.Read(tMs, phys, c)
		if err == nil && v != backgroundAt(phys, c) {
			bad++
		}
	}
	if !write && !scrub && bad > 0 && b.onError != nil {
		b.onError(bank, row, bad)
	}
}

// refreshBacking restores the next physical row of the refreshed bank,
// so retention clocks in the functional model track the device's
// distributed refresh (spare rows are refreshed too).
func (d *Device) refreshBacking(tNs float64, bank int) {
	b := d.backing
	if b == nil {
		return
	}
	arr := b.arrays[bank]
	r := b.refRow[bank]
	b.refRow[bank] = (r + 1) % arr.Rows()
	_ = arr.RefreshRow(tNs/1e6, r)
}

// ScrubRow rewrites one full (redirected) row with the correct
// background through the normal access timing path: a write burst over
// every beat of the page, accounted as scrub activity rather than
// client writes. It is the "correctable errors are scrubbed on read"
// action of the reliability ladder, and also serves to initialize a
// spare row after RedirectRow. The returned result spans the whole
// scrub burst.
func (d *Device) ScrubRow(now float64, bank, row int) (AccessResult, error) {
	if d.backing == nil {
		return AccessResult{}, fmt.Errorf("dram: no backing attached")
	}
	beats := d.cfg.ColumnsPerRow()
	var first, last AccessResult
	var err error
	t := now
	for i := 0; i < beats; i++ {
		last, err = d.access(t, bank, row, true, true)
		if err != nil {
			return AccessResult{}, err
		}
		if i == 0 {
			first = last
		}
		t = last.StartNs
	}
	d.stats.Scrubs++
	d.stats.ScrubBusyNs += last.DoneNs - first.StartNs
	return AccessResult{StartNs: first.StartNs, DoneNs: last.DoneNs, Hit: first.Hit, Empty: first.Empty}, nil
}
