package experiments

import (
	"fmt"
	"math/rand"

	"edram/internal/bist"
	"edram/internal/cost"
	"edram/internal/dram"
	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/mapping"
	"edram/internal/power"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/sdram"
	"edram/internal/tech"
	"edram/internal/traffic"
	"edram/internal/units"
	"edram/internal/yield"
)

// marketScenario describes one of the paper's §2 eDRAM markets.
type marketScenario struct {
	Name string
	// Memory requirement.
	CapacityMbit int
	WidthBits    int
	// LogicKGates of the companion controller/accelerator logic.
	LogicKGates float64
	// Utilization of the memory interface at the operating point.
	Utilization float64
}

// marketScenarios returns the three §2 markets the paper details:
// graphics (frame storage, bandwidth-hungry), disk/printer controllers
// (cost-driven, modest memory), and network switches (the high end:
// up to 128 Mbit and 512-bit interfaces).
func marketScenarios() []marketScenario {
	return []marketScenario{
		{Name: "graphics", CapacityMbit: 16, WidthBits: 128, LogicKGates: 400, Utilization: 0.6},
		{Name: "hdd-controller", CapacityMbit: 20, WidthBits: 64, LogicKGates: 250, Utilization: 0.3},
		{Name: "net-switch", CapacityMbit: 128, WidthBits: 512, LogicKGates: 600, Utilization: 0.7},
	}
}

// marketCompare evaluates one scenario both ways.
type marketCompare struct {
	Scenario      marketScenario
	DiscreteChips int
	DiscreteUSD   float64
	EmbeddedUSD   float64
	CostRatio     float64
	DiscretePwrMW float64
	EmbeddedPwrMW float64
	PowerRatio    float64
	DiscretePins  int
}

func evalMarket(sc marketScenario) (marketCompare, error) {
	e := tech.DefaultElectrical()
	logicProc := tech.Logic024()
	dramProc := tech.Siemens024()

	// --- Discrete build: logic die on the logic process + commodity
	// memory system on the board.
	sys, err := sdram.BestSystem(sdram.Requirement{CapacityMbit: sc.CapacityMbit, WidthBits: sc.WidthBits})
	if err != nil {
		return marketCompare{}, err
	}
	logicPads := sys.BusBits() + 80 // memory bus + control/host pins
	logicDie := geom.Die{LogicKGates: sc.LogicKGates, SignalPins: logicPads, Process: logicProc}
	logicRep := logicDie.Compose()
	logicYield := yield.NegBinomialYield(0.8, logicRep.TotalMm2, 2.5)
	logicCost, err := cost.DieCostUSD(logicProc, logicRep.TotalMm2, 0, logicYield)
	if err != nil {
		return marketCompare{}, err
	}
	discTest, err := bist.Estimate(int64(sys.InstalledMbit())*units.Mbit, bist.MemoryTester(), bist.DefaultFlow())
	if err != nil {
		return marketCompare{}, err
	}
	discreteUSD := logicCost + cost.PackageCostUSD(logicPads) +
		sys.PriceUSD() + discTest.CostUSD +
		cost.BoardCostUSDPerCm2*(float64(sys.TotalChips())*2.0+6)
	discretePwr := sys.InterfacePowerMW(e, 3.3, sc.Utilization)

	// --- Embedded build: one hybrid die on the eDRAM process.
	m, err := edram.Build(edram.Spec{
		CapacityMbit:  sc.CapacityMbit,
		InterfaceBits: sc.WidthBits,
		Redundancy:    edram.RedundancyStd,
	})
	if err != nil {
		return marketCompare{}, err
	}
	embPadsRing := geom.PadRingAreaMm2(80) // host/control only; the memory bus is internal
	hybridCost, _, err := cost.MacroDieCost(dramProc, sc.LogicKGates, m.Area.TotalMm2+embPadsRing, 0.8, 0.9)
	if err != nil {
		return marketCompare{}, err
	}
	embTest, err := bist.Estimate(int64(sc.CapacityMbit)*units.Mbit,
		bist.BISTOnTester(m.Geometry.InterfaceBits, m.Timing.TCKns), bist.DefaultFlow())
	if err != nil {
		return marketCompare{}, err
	}
	const embPads = 80
	embeddedUSD := hybridCost + cost.PackageCostUSD(embPads) + embTest.CostUSD +
		cost.BoardCostUSDPerCm2*6
	embPwr := power.OnChipBus(e, m.Geometry.InterfaceBits, m.ClockMHz*sc.Utilization, dramProc.VddDRAMV).PowerMW

	return marketCompare{
		Scenario:      sc,
		DiscreteChips: sys.TotalChips() + 1,
		DiscreteUSD:   discreteUSD,
		EmbeddedUSD:   embeddedUSD,
		CostRatio:     units.Ratio(discreteUSD, embeddedUSD),
		DiscretePwrMW: discretePwr,
		EmbeddedPwrMW: embPwr,
		PowerRatio:    units.Ratio(discretePwr, embPwr),
		DiscretePins:  sys.SignalPins() + logicPads,
	}, nil
}

// E16Markets evaluates the paper's §2 markets end to end: system cost,
// interface power, chip and pin counts for the discrete and the
// embedded build of each product.
func E16Markets() (Experiment, error) {
	t := report.New("E16: §2 market scenarios, discrete vs embedded",
		"market", "chips", "pins", "discrete $", "embedded $", "cost x",
		"discrete mW", "embedded mW", "power x")
	findings := []Finding{}
	for _, sc := range marketScenarios() {
		mc, err := evalMarket(sc)
		if err != nil {
			return Experiment{}, fmt.Errorf("%s: %w", sc.Name, err)
		}
		t.AddRow(sc.Name, mc.DiscreteChips, mc.DiscretePins,
			mc.DiscreteUSD, mc.EmbeddedUSD, mc.CostRatio,
			mc.DiscretePwrMW, mc.EmbeddedPwrMW, mc.PowerRatio)
		findings = append(findings,
			Finding{Name: sc.Name + "-cost-ratio", Value: mc.CostRatio, Unit: "x"},
			Finding{Name: sc.Name + "-power-ratio", Value: mc.PowerRatio, Unit: "x"},
		)
	}
	return Experiment{
		ID:       "E16",
		Title:    "Market scenarios (paper §2: graphics, controllers, switches)",
		Table:    t,
		Findings: findings,
	}, nil
}

// E19SustainedHeadToHead runs the same multi-client workload on the
// discrete system and the embedded macro that both satisfy a
// 16-Mbit/128-bit requirement: the embedded side wins on clock (its
// small blocks cycle faster), on row cycle, and on exact-fit capacity.
func E19SustainedHeadToHead() (Experiment, error) {
	const reqMbit, reqWidth = 16, 128
	mkClients := func(seed int64) []sched.Client {
		return []sched.Client{
			{Name: "stream", Gen: &traffic.Sequential{ClientID: 0, Bits: reqWidth, RateGB: 2, Count: 1200}},
			{Name: "stride", Gen: &traffic.Strided{ClientID: 1, StartB: 4 << 20, StrideB: 512, LimitB: 4 << 20, Bits: reqWidth, RateGB: 2, Count: 1200}},
			{Name: "random", Gen: &traffic.Random{ClientID: 2, StartB: 8 << 20, WindowB: 4 << 20, Bits: reqWidth, RateGB: 2, Count: 1200, Rng: rand.New(rand.NewSource(seed))}},
		}
	}
	run := func(cfg dram.Config) (sched.Result, error) {
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
		mp, err := mapping.NewBankInterleaved(gm)
		if err != nil {
			return sched.Result{}, err
		}
		return sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, mkClients(77))
	}

	sys, err := sdram.BestSystem(sdram.Requirement{CapacityMbit: reqMbit, WidthBits: reqWidth})
	if err != nil {
		return Experiment{}, err
	}
	dres, err := run(sys.DeviceConfig())
	if err != nil {
		return Experiment{}, err
	}
	m, err := edram.Build(edram.Spec{CapacityMbit: reqMbit, InterfaceBits: reqWidth})
	if err != nil {
		return Experiment{}, err
	}
	eres, err := run(m.DeviceConfig())
	if err != nil {
		return Experiment{}, err
	}

	t := report.New("E19: same workload, discrete system vs embedded macro",
		"system", "installed Mbit", "peak GB/s", "sustained GB/s", "hit rate")
	t.AddRow("discrete "+sys.Part.Name, sys.InstalledMbit(), dres.PeakGBps, dres.SustainedGBps, dres.HitRate)
	t.AddRow("embedded macro", m.CapacityMbit(), eres.PeakGBps, eres.SustainedGBps, eres.HitRate)
	return Experiment{
		ID:    "E19",
		Title: "Sustained head-to-head (embedded wins on clock and row cycle)",
		Table: t,
		Findings: []Finding{
			{Name: "sustained-advantage", Value: units.Ratio(eres.SustainedGBps, dres.SustainedGBps), Unit: "x"},
			{Name: "capacity-waste-avoided", Value: units.Ratio(float64(sys.InstalledMbit()), float64(m.CapacityMbit())), Unit: "x"},
		},
	}, nil
}

// E20Feasibility regenerates the paper's opening claim (§1): "In
// quarter-micron technology, chips with up to 128 Mbit of DRAM and
// 500 kgates of logic, or 64 Mbit of DRAM and 1 Mgates of logic are
// feasible." Both corner points must fit the same late-90s die-size
// envelope on the DRAM-based process, and the memory-for-logic exchange
// rate between them is the §3 "trade logic area for memory area".
func E20Feasibility() (Experiment, error) {
	const dieBudgetMm2 = 200 // a large but manufacturable 0.24 µm die
	proc := tech.Siemens024()
	t := report.New("E20: quarter-micron feasibility corner points",
		"config", "macro mm2", "logic mm2", "pads mm2", "die mm2", "fits 200 mm2")
	type corner struct {
		name   string
		mbit   int
		kgates float64
	}
	corners := []corner{
		{"128 Mbit + 500 kgates", 128, 500},
		{"64 Mbit + 1 Mgates", 64, 1000},
	}
	dies := make([]float64, len(corners))
	for i, c := range corners {
		m, err := edram.Build(edram.Spec{CapacityMbit: c.mbit, InterfaceBits: 256})
		if err != nil {
			return Experiment{}, err
		}
		logicMm2 := geom.LogicAreaMm2(proc, c.kgates)
		pads := geom.PadRingAreaMm2(200)
		die := m.Area.TotalMm2 + logicMm2 + pads
		dies[i] = die
		t.AddRow(c.name, m.Area.TotalMm2, logicMm2, pads, die, die <= dieBudgetMm2)
	}
	// Exchange rate between the corners: trading 500 kgates of logic
	// buys 64 Mbit of macro — the §3 "trade logic area for memory area".
	exchange := float64(128-64) / (1000 - 500)
	return Experiment{
		ID:    "E20",
		Title: "Feasibility corners (paper §1: 128 Mbit + 500 kgates or 64 Mbit + 1 Mgates)",
		Table: t,
		Findings: []Finding{
			{Name: "die-128mbit-500k", Value: dies[0], Unit: "mm2"},
			{Name: "die-64mbit-1M", Value: dies[1], Unit: "mm2"},
			{Name: "mbit-per-kgate", Value: exchange, Unit: "Mbit/kgate"},
		},
	}, nil
}

// E21Volume quantifies the §2 rule of thumb "the product volume and
// product lifetime are usually high": embedding carries the eDRAM NRE
// (mask set + library/porting effort, §1), so it only pays above a
// break-even volume — computed here for each §2 market from the E16
// bill-of-materials.
func E21Volume() (Experiment, error) {
	nre := cost.DefaultNRE()
	t := report.New("E21: break-even volume per market",
		"market", "discrete $/unit", "embedded $/unit", "break-even units",
		"$/unit @10k", "$/unit @1M")
	findings := []Finding{}
	for _, sc := range marketScenarios() {
		mc, err := evalMarket(sc)
		if err != nil {
			return Experiment{}, err
		}
		be := cost.BreakEvenVolume(nre, mc.DiscreteUSD, mc.EmbeddedUSD)
		t.AddRow(sc.Name, mc.DiscreteUSD, mc.EmbeddedUSD, be,
			cost.VolumeCostUSD(nre, mc.EmbeddedUSD, 10_000),
			cost.VolumeCostUSD(nre, mc.EmbeddedUSD, 1_000_000))
		findings = append(findings, Finding{Name: sc.Name + "-breakeven", Value: be, Unit: "units"})
	}
	return Experiment{
		ID:       "E21",
		Title:    "Break-even volume (paper §2: volumes are usually high)",
		Table:    t,
		Findings: findings,
	}, nil
}
