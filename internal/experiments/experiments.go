// Package experiments implements the reproduction harness: one function
// per quantitative claim of the paper (E1–E12, indexed in DESIGN.md),
// each regenerating the corresponding "table" as structured findings
// plus a rendered report. cmd/papertables prints them; the root
// bench_test.go benchmarks them; EXPERIMENTS.md records paper-vs-
// measured from their output.
package experiments

import (
	"fmt"

	"edram/internal/report"
)

// Finding is one headline number of an experiment.
type Finding struct {
	Name  string
	Value float64
	Unit  string
}

// Experiment couples an identifier with its regenerated table and
// headline findings.
type Experiment struct {
	ID       string
	Title    string
	Table    *report.Table
	Findings []Finding
}

// Finding returns the named finding's value, or an error.
func (e Experiment) Finding(name string) (float64, error) {
	for _, f := range e.Findings {
		if f.Name == name {
			return f.Value, nil
		}
	}
	return 0, fmt.Errorf("experiments: %s has no finding %q", e.ID, name)
}

// All runs every experiment in order.
func All() ([]Experiment, error) {
	runs := []func() (Experiment, error){
		E1IOPower,
		E2FillFrequency,
		E3Granularity,
		E4WireDelay,
		E5MPEG2,
		E6MemoryGap,
		E7SiemensConcept,
		E8Sustained,
		E9FIFODepth,
		E10TestCost,
		E11Yield,
		E12Process,
		E13SRAMPartition,
		E14QualityGrades,
		E15ThermalFeedback,
		E16Markets,
		E17Generations,
		E18Standby,
		E19SustainedHeadToHead,
		E20Feasibility,
		E21Volume,
		E22ScanConverter,
		A1PagePolicy,
		A2Reorder,
		A3ModelVsSim,
		A4RefreshTax,
		A5Prefetch,
	}
	out := make([]Experiment, 0, len(runs))
	for _, run := range runs {
		e, err := run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s failed: %w", e.ID, err)
		}
		out = append(out, e)
	}
	return out, nil
}
