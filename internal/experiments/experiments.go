// Package experiments implements the reproduction harness: one function
// per quantitative claim of the paper (E1–E12, indexed in DESIGN.md),
// each regenerating the corresponding "table" as structured findings
// plus a rendered report. cmd/papertables prints them; the root
// bench_test.go benchmarks them; EXPERIMENTS.md records paper-vs-
// measured from their output.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"edram/internal/report"
)

// Finding is one headline number of an experiment.
type Finding struct {
	Name  string
	Value float64
	Unit  string
}

// Experiment couples an identifier with its regenerated table and
// headline findings.
type Experiment struct {
	ID       string
	Title    string
	Table    *report.Table
	Findings []Finding
}

// Finding returns the named finding's value, or an error.
func (e Experiment) Finding(name string) (float64, error) {
	for _, f := range e.Findings {
		if f.Name == name {
			return f.Value, nil
		}
	}
	return 0, fmt.Errorf("experiments: %s has no finding %q", e.ID, name)
}

// All runs every experiment and returns them in canonical order.
func All() ([]Experiment, error) {
	return AllContext(context.Background(), 1, nil)
}

// registry lists every experiment in canonical order.
func registry() []func() (Experiment, error) {
	return []func() (Experiment, error){
		E1IOPower,
		E2FillFrequency,
		E3Granularity,
		E4WireDelay,
		E5MPEG2,
		E6MemoryGap,
		E7SiemensConcept,
		E8Sustained,
		E9FIFODepth,
		E10TestCost,
		E11Yield,
		E12Process,
		E13SRAMPartition,
		E14QualityGrades,
		E15ThermalFeedback,
		E16Markets,
		E17Generations,
		E18Standby,
		E19SustainedHeadToHead,
		E20Feasibility,
		E21Volume,
		E22ScanConverter,
		A1PagePolicy,
		A2Reorder,
		A3ModelVsSim,
		A4RefreshTax,
		A5Prefetch,
	}
}

// AllContext runs the experiment suite on a pool of workers (the
// experiments are independent and deterministic, so the result is the
// same at any pool size), stopping early when ctx is cancelled.
// workers < 1 selects runtime.GOMAXPROCS(0). progress, when non-nil, is
// invoked (serialized) as each experiment finishes, in completion
// order. Results are returned in canonical registry order.
func AllContext(ctx context.Context, workers int, progress func(done, total int, id string)) ([]Experiment, error) {
	runs := registry()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	out := make([]Experiment, len(runs))
	idx := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		defer close(idx)
		for i := range runs {
			select {
			case idx <- i:
			case <-cctx.Done():
				return
			}
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				e, err := runs[i]()
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("experiments: run %d failed: %w", i+1, err)
					}
					mu.Unlock()
					cancel() // stop handing out further work
					return
				}
				out[i] = e
				done++
				if progress != nil {
					progress(done, len(runs), e.ID)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
