package experiments

import (
	"fmt"

	"edram/internal/edram"
	"edram/internal/power"
	"edram/internal/report"
	"edram/internal/sdram"
	"edram/internal/tech"
	"edram/internal/timing"
	"edram/internal/units"
)

// E1IOPower regenerates the paper's §1 interface-power example: a
// system needing 4 GB/s with a 256-bit bus, built from discrete 16-bit
// 100-MHz SDRAMs versus an eDRAM with an internal 256-bit interface,
// "would require about ten times the power". Swept over bandwidth
// targets.
func E1IOPower() (Experiment, error) {
	e := tech.DefaultElectrical()
	t := report.New("E1: interface power, discrete SDRAM system vs eDRAM",
		"target GB/s", "emb width", "chips", "discrete mW", "embedded mW", "ratio")
	var anchor float64
	for _, bw := range []float64{1, 2, 4, 8} {
		cmp, err := power.CompareInterfaces(e, bw, 256, 2.5, 16, 100, 3.3)
		if err != nil {
			return Experiment{}, err
		}
		t.AddRow(bw, 256, cmp.DiscreteChips, cmp.Discrete.PowerMW, cmp.Embedded.PowerMW, cmp.PowerRatio)
		if bw == 4 { //nolint:edramvet/floateq // anchor row: loop variable vs its own literal
			anchor = cmp.PowerRatio
		}
	}
	return Experiment{
		ID:    "E1",
		Title: "Interface power (paper §1: ~10x at 4 GB/s, 256 bits)",
		Table: t,
		Findings: []Finding{
			{Name: "power-ratio@4GBps", Value: anchor, Unit: "x"},
		},
	}, nil
}

// E2FillFrequency regenerates §1 footnote 2 and the fill-frequency
// argument: an eDRAM's wide interface fills a small memory orders of
// magnitude faster than a discrete system, whose minimum size is
// inflated by granularity.
func E2FillFrequency() (Experiment, error) {
	t := report.New("E2: fill frequency vs memory size",
		"size Mbit", "discrete GB/s", "discrete fill/s", "edram GB/s", "edram fill/s", "ratio")
	part := sdram.Catalog()[0] // 4-Mbit x16
	var anchor float64
	for _, mbit := range []int{4, 8, 16, 32, 64, 128} {
		sys, err := sdram.Compose(part, sdram.Requirement{CapacityMbit: mbit, WidthBits: 16})
		if err != nil {
			return Experiment{}, err
		}
		m, err := edram.Build(edram.Spec{CapacityMbit: mbit, InterfaceBits: 256})
		if err != nil {
			return Experiment{}, err
		}
		ratio := units.Ratio(m.FillFrequencyHz(), sys.FillFrequencyHz())
		t.AddRow(mbit, sys.PeakBandwidthGBps(), sys.FillFrequencyHz(),
			m.PeakBandwidthGBps(), m.FillFrequencyHz(), ratio)
		if mbit == 4 {
			anchor = ratio
		}
	}
	return Experiment{
		ID:    "E2",
		Title: "Fill frequency (paper §1: eDRAM achieves much higher fill frequencies)",
		Table: t,
		Findings: []Finding{
			{Name: "fill-ratio@4Mbit", Value: anchor, Unit: "x"},
		},
	}, nil
}

// E3Granularity regenerates the §1 granularity example: reaching a
// 256-bit bus from 16-bit discrete parts forces 16 chips and a 64-Mbit
// floor although the application may need only 8 Mbit.
func E3Granularity() (Experiment, error) {
	const neededMbit = 8
	t := report.New("E3: granularity floor for an 8-Mbit application",
		"bus bits", "chips", "installed Mbit", "waste", "edram Mbit", "edram waste")
	part := sdram.Catalog()[0]
	var anchorWaste float64
	for width := 16; width <= 512; width *= 2 {
		req := sdram.Requirement{CapacityMbit: neededMbit, WidthBits: width}
		sys, err := sdram.Compose(part, req)
		if err != nil {
			return Experiment{}, err
		}
		waste := sdram.WasteFactor(sys, req)
		m, err := edram.Build(edram.Spec{CapacityMbit: neededMbit, InterfaceBits: width})
		if err != nil {
			return Experiment{}, err
		}
		t.AddRow(width, sys.TotalChips(), sys.InstalledMbit(), waste, m.CapacityMbit(), 1.0)
		if width == 256 {
			anchorWaste = waste
		}
	}
	return Experiment{
		ID:    "E3",
		Title: "Granularity (paper §1: 256-bit bus => 64-Mbit floor for an 8-Mbit need)",
		Table: t,
		Findings: []Finding{
			{Name: "waste@256bit", Value: anchorWaste, Unit: "x"},
		},
	}, nil
}

// E4WireDelay regenerates the §1 interface-wire argument: shorter
// on-chip wires mean lower propagation times and better noise immunity
// than board traces.
func E4WireDelay() (Experiment, error) {
	e := tech.DefaultElectrical()
	t := report.New("E4: interface wire delay and coupled noise",
		"path", "length mm", "delay ns", "noise frac")
	type path struct {
		name    string
		lengths []float64
		delay   func(float64) float64
		noise   float64
	}
	paths := []path{
		{"on-chip", []float64{1, 2, 5, 10}, func(l float64) float64 { return timing.OnChipInterfaceDelayNs(e, l) }, e.OnChipNoiseCouplingPerMm},
		{"board", []float64{20, 50, 80, 150}, func(l float64) float64 { return timing.BoardInterfaceDelayNs(e, l) }, e.BoardNoiseCouplingPerMm},
	}
	for _, p := range paths {
		for _, l := range p.lengths {
			t.AddRow(p.name, l, p.delay(l), timing.NoiseFraction(p.noise, l))
		}
	}
	on := timing.OnChipInterfaceDelayNs(e, 5)
	off := timing.BoardInterfaceDelayNs(e, 80)
	if on <= 0 {
		return Experiment{}, fmt.Errorf("degenerate on-chip delay")
	}
	return Experiment{
		ID:    "E4",
		Title: "Wire delay (paper §1: on-chip wires are faster and quieter)",
		Table: t,
		Findings: []Finding{
			{Name: "delay-ratio-80mm-vs-5mm", Value: off / on, Unit: "x"},
		},
	}, nil
}
