package experiments

import (
	"edram/internal/bist"
	"edram/internal/cost"
	"edram/internal/report"
	"edram/internal/tech"
	"edram/internal/units"
	"edram/internal/yield"
)

// E10TestCost regenerates the §6 test economics: rich DRAM test suites
// with retention waits are slow on external testers; on-chip BIST
// parallelism collapses test time and cost.
func E10TestCost() (Experiment, error) {
	flow := bist.DefaultFlow()
	t := report.New("E10: test time and cost per device",
		"Mbit", "path", "prefuse s", "postfuse s", "retention s", "total s", "cost $", "share of $4 die")
	var bistCost, extCost float64
	for _, mbit := range []int{4, 16, 64} {
		bits := int64(mbit) * units.Mbit
		paths := []bist.Tester{
			bist.MemoryTester(),
			bist.LogicTester(),
			bist.BISTOnTester(256, 7),
		}
		for _, tester := range paths {
			r, err := bist.Estimate(bits, tester, flow)
			if err != nil {
				return Experiment{}, err
			}
			t.AddRow(mbit, tester.Name, r.PreFuseS, r.PostFuseS, r.RetentionS,
				r.TotalS, r.CostUSD, bist.CostShare(r.CostUSD, 4))
			if mbit == 64 {
				switch tester.Name {
				case "bist":
					bistCost = r.CostUSD
				case "memory-tester":
					extCost = r.CostUSD
				}
			}
		}
	}
	return Experiment{
		ID:    "E10",
		Title: "Test economics (paper §6: test cost significant; BIST parallelism required)",
		Table: t,
		Findings: []Finding{
			{Name: "external-cost@64Mbit", Value: extCost, Unit: "USD"},
			{Name: "bist-cost@64Mbit", Value: bistCost, Unit: "USD"},
			{Name: "bist-saving", Value: units.Ratio(extCost, bistCost), Unit: "x"},
		},
	}, nil
}

// E11Yield regenerates the §5 redundancy argument: yield versus
// redundancy level across defect densities, Monte-Carlo over random
// defect maps with must-repair + greedy spare allocation.
func E11Yield() (Experiment, error) {
	t := report.New("E11: block yield vs redundancy level",
		"defects/block", "spares", "raw yield", "repaired yield", "gain")
	var rawAt12, stdAt12 float64
	for _, mean := range []float64{0.4, 1.2, 2.5} {
		for _, spares := range []int{0, 2, 4, 8} {
			mc := yield.MonteCarlo{
				Rows: 512, Cols: 512,
				MeanDefectsPerBlock: mean,
				SpareRows:           spares, SpareCols: spares,
				Mix: yield.DefaultMix(),
			}
			res, err := mc.Run(300, 17)
			if err != nil {
				return Experiment{}, err
			}
			t.AddRow(mean, spares, res.RawYield, res.RepairedYield,
				units.Ratio(res.RepairedYield, res.RawYield))
			//nolint:edramvet/floateq // anchor row: loop variable vs its own literal
			if mean == 1.2 && spares == 0 {
				rawAt12 = res.RawYield
			}
			//nolint:edramvet/floateq // anchor row: loop variable vs its own literal
			if mean == 1.2 && spares == 4 {
				stdAt12 = res.RepairedYield
			}
		}
	}
	return Experiment{
		ID:    "E11",
		Title: "Yield vs redundancy (paper §5: redundancy levels optimize module yield)",
		Table: t,
		Findings: []Finding{
			{Name: "raw-yield@1.2", Value: rawAt12, Unit: "frac"},
			{Name: "std-yield@1.2", Value: stdAt12, Unit: "frac"},
		},
	}, nil
}

// E12Process regenerates the §3 base-process trade-off: the same system
// (500 kgates of logic + 32 Mbit of memory) on a DRAM-based, a
// logic-based and a merged process.
func E12Process() (Experiment, error) {
	t := report.New("E12: base-process choice for 500 kgates + 32 Mbit",
		"process", "logic mm2", "macro mm2", "die mm2", "rel logic delay", "yield", "die $")
	const kgates = 500
	var dramArea, logicArea, mergedCost, dramCost float64
	for _, p := range tech.Processes() {
		macroMm2, err := macroAreaOn(p, 32)
		if err != nil {
			return Experiment{}, err
		}
		logicMm2 := logicAreaOn(p, kgates)
		dieCost, yieldEff, err := cost.MacroDieCost(p, kgates, macroMm2, 0.8, 0.9)
		if err != nil {
			return Experiment{}, err
		}
		die := logicMm2 + macroMm2
		t.AddRow(p.Kind.String(), logicMm2, macroMm2, die, p.LogicDelayRel, yieldEff, dieCost)
		switch p.Kind {
		case tech.DRAMBased:
			dramArea = die
			dramCost = dieCost
		case tech.LogicBased:
			logicArea = die
		case tech.Merged:
			mergedCost = dieCost
		}
	}
	return Experiment{
		ID:    "E12",
		Title: "Base process (paper §3: density vs logic speed vs cost)",
		Table: t,
		Findings: []Finding{
			{Name: "logic-vs-dram-area", Value: units.Ratio(logicArea, dramArea), Unit: "x"},
			{Name: "merged-vs-dram-cost", Value: units.Ratio(mergedCost, dramCost), Unit: "x"},
		},
	}, nil
}
