package experiments

import (
	"edram/internal/edram"
	"edram/internal/iram"
	"edram/internal/mapping"
	"edram/internal/mpeg2"
	"edram/internal/report"
	"edram/internal/scanconv"
	"edram/internal/sched"
	"edram/internal/trend"
)

// E5MPEG2 regenerates the §4.1 case study: the 16-Mbit decoder budget
// for PAL and NTSC, the ~3-Mbit output-buffer saving that costs 2x
// pipeline/MC bandwidth, the commodity-granularity fit, and a one-frame
// decode simulated on a 16-Mbit eDRAM macro.
func E5MPEG2() (Experiment, error) {
	t := report.New("E5: MPEG2 decoder memory budget and bandwidth",
		"format", "mode", "input Mbit", "refs Mbit", "out Mbit", "total Mbit",
		"commodity Mbit", "edram Mbit", "BW GB/s")
	var palSaving, palFullTotal float64
	for _, f := range []mpeg2.Format{mpeg2.PAL(), mpeg2.NTSC()} {
		for _, mode := range []mpeg2.OutputMode{mpeg2.FullOutput, mpeg2.ReducedOutput} {
			b, err := mpeg2.BudgetFor(f, mode)
			if err != nil {
				return Experiment{}, err
			}
			bw, err := mpeg2.Bandwidth(f, mode)
			if err != nil {
				return Experiment{}, err
			}
			t.AddRow(f.Name, mode.String(), b.InputMbit, b.RefMbit, b.OutputMbit,
				b.TotalMbit, mpeg2.CommodityFitMbit(b), mpeg2.EDRAMFitMbit(b), bw.TotalGBps)
			if f.Name == "PAL" && mode == mpeg2.FullOutput {
				palFullTotal = b.TotalMbit
			}
		}
		if f.Name == "PAL" {
			s, err := mpeg2.SavingMbit(f)
			if err != nil {
				return Experiment{}, err
			}
			palSaving = s
		}
	}

	// One-frame decode on a 16-Mbit / 64-bit macro.
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64})
	if err != nil {
		return Experiment{}, err
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return Experiment{}, err
	}
	clients, err := mpeg2.Clients(mpeg2.PAL(), mpeg2.FullOutput, 1, 7)
	if err != nil {
		return Experiment{}, err
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, clients)
	if err != nil {
		return Experiment{}, err
	}

	return Experiment{
		ID:    "E5",
		Title: "MPEG2 decoder (paper §4.1: 16-Mbit budget, ~3-Mbit saving at 2x bandwidth)",
		Table: t,
		Findings: []Finding{
			{Name: "pal-full-total", Value: palFullTotal, Unit: "Mbit"},
			{Name: "pal-saving", Value: palSaving, Unit: "Mbit"},
			{Name: "frame-decode-ms", Value: res.DurationNs / 1e6, Unit: "ms"},
			{Name: "macro-utilization", Value: res.SustainedFraction, Unit: "frac"},
		},
	}, nil
}

// E6MemoryGap regenerates §4.2: the 60%-vs-10% divergence over the
// years, and the IRAM merge ratios (latency 5-10x, bandwidth 50-100x,
// energy 2-4x).
func E6MemoryGap() (Experiment, error) {
	t := report.New("E6: processor-memory gap and IRAM merge",
		"year", "cpu perf", "dram ns", "gap", "device Mbit", "chips/system")
	rows, err := trend.Table(1980, 2005, 5)
	if err != nil {
		return Experiment{}, err
	}
	for _, r := range rows {
		t.AddRow(r.Year, r.CPUPerf, r.DRAMAccessNs, r.Gap, r.DeviceMbit, r.DevicesPer)
	}
	m, err := iram.Compare(200000, 1)
	if err != nil {
		return Experiment{}, err
	}
	return Experiment{
		ID:    "E6",
		Title: "Processor-memory gap (paper §4.2: IRAM 5-10x latency, 50-100x BW, 2-4x energy)",
		Table: t,
		Findings: []Finding{
			{Name: "gap-1998", Value: trend.Gap(1998), Unit: "x"},
			{Name: "iram-latency-ratio", Value: m.LatencyRatio, Unit: "x"},
			{Name: "iram-bandwidth-ratio", Value: m.BandwidthRatio, Unit: "x"},
			{Name: "iram-energy-ratio", Value: m.EnergyRatio, Unit: "x"},
			{Name: "conv-cpi", Value: m.ConvCPI, Unit: "cpi"},
			{Name: "iram-cpi", Value: m.IRAMCPI, Unit: "cpi"},
		},
	}, nil
}

// E22ScanConverter regenerates the first §5 application: a TV scan-rate
// converter (50 Hz interlaced -> 100 Hz) whose field stores are an
// awkward non-power-of-two size — the granularity argument applied to a
// real product — plus a real-time simulation on the exact-fit macro.
func E22ScanConverter() (Experiment, error) {
	t := report.New("E22: scan-rate converter memory (3-field motion adaptive)",
		"standard", "field Mbit", "total Mbit", "edram Mbit", "acquire GB/s",
		"interp GB/s", "display GB/s", "total GB/s")
	var palTotal float64
	for _, s := range []scanconv.Standard{scanconv.PAL50(), scanconv.NTSC60()} {
		b, err := scanconv.BudgetFor(s, 3)
		if err != nil {
			return Experiment{}, err
		}
		bw, err := scanconv.Bandwidth(s, 3)
		if err != nil {
			return Experiment{}, err
		}
		t.AddRow(s.Name, s.FieldMbit(), b.TotalMbit, b.EDRAMMbit,
			bw.AcquireGBps, bw.InterpGBps, bw.DisplayGBps, bw.TotalGBps)
		if s.Name == "PAL-50" {
			palTotal = b.TotalMbit
		}
	}

	// Real-time check on the exact-fit macro.
	b, err := scanconv.BudgetFor(scanconv.PAL50(), 3)
	if err != nil {
		return Experiment{}, err
	}
	m, err := edram.Build(edram.Spec{CapacityMbit: b.EDRAMMbit, InterfaceBits: 64})
	if err != nil {
		return Experiment{}, err
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return Experiment{}, err
	}
	clients, err := scanconv.Clients(scanconv.PAL50(), 3, 2, 5)
	if err != nil {
		return Experiment{}, err
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.Deadline}, clients)
	if err != nil {
		return Experiment{}, err
	}
	budgetNs := 2 * 1e9 / float64(scanconv.PAL50().FieldRateHz*scanconv.PAL50().OutputFactor)
	return Experiment{
		ID:    "E22",
		Title: "Scan-rate converter (paper §5: first listed application)",
		Table: t,
		Findings: []Finding{
			{Name: "pal-total-mbit", Value: palTotal, Unit: "Mbit"},
			{Name: "realtime-margin", Value: budgetNs / res.DurationNs, Unit: "x"},
		},
	}, nil
}
