package experiments

import (
	"fmt"
	"math/rand"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/traffic"
)

// E7SiemensConcept regenerates the §5 concept corner points across the
// capacity range: ~1 Mbit/mm² from 8-16 Mbit up, cycle < 7 ns
// (>= 143 MHz), up to ~9 GB/s per module at 512 bits.
func E7SiemensConcept() (Experiment, error) {
	t := report.New("E7: flexible eDRAM concept sweep",
		"Mbit", "iface", "area mm2", "Mbit/mm2", "tCK ns", "MHz", "peak GB/s")
	var eff16, bw512, tck16 float64
	for _, mbit := range []int{1, 4, 8, 16, 32, 64, 128} {
		iface := 256
		if mbit < 4 {
			iface = 64
		}
		m, err := edram.Build(edram.Spec{CapacityMbit: mbit, InterfaceBits: iface})
		if err != nil {
			return Experiment{}, err
		}
		t.AddRow(mbit, iface, m.Area.TotalMm2, m.Area.EfficiencyMbitPerMm2,
			m.Timing.TCKns, m.ClockMHz, m.PeakBandwidthGBps())
		if mbit == 16 {
			eff16 = m.Area.EfficiencyMbitPerMm2
			tck16 = m.Timing.TCKns
		}
	}
	wide, err := edram.Build(edram.Spec{CapacityMbit: 128, InterfaceBits: 512})
	if err != nil {
		return Experiment{}, err
	}
	bw512 = wide.PeakBandwidthGBps()
	t.AddRow(128, 512, wide.Area.TotalMm2, wide.Area.EfficiencyMbitPerMm2,
		wide.Timing.TCKns, wide.ClockMHz, bw512)
	return Experiment{
		ID:    "E7",
		Title: "Siemens concept (paper §5: ~1 Mbit/mm², <7 ns, ~9 GB/s @ 512 bits)",
		Table: t,
		Findings: []Finding{
			{Name: "efficiency@16Mbit", Value: eff16, Unit: "Mbit/mm2"},
			{Name: "tck@16Mbit", Value: tck16, Unit: "ns"},
			{Name: "peak@512bit", Value: bw512, Unit: "GB/s"},
		},
	}, nil
}

// gapClients builds the standard three-client contention mix used by E8
// and E9: a latency-sensitive stream, a page-strided walker (column
// accesses of a 2-D structure — the client whose behaviour the address
// mapping decides), and a random bulk client.
func gapClients(seed int64) []sched.Client {
	return []sched.Client{
		{Name: "stream", Gen: &traffic.Sequential{ClientID: 0, StartB: 0, Bits: 64, RateGB: 0.6, Count: 1200}},
		{Name: "stride", Gen: &traffic.Strided{ClientID: 1, StartB: 4 << 20, StrideB: 256, LimitB: 4 << 20, Bits: 64, RateGB: 0.6, Count: 1200}},
		{Name: "random", Gen: &traffic.Random{ClientID: 2, StartB: 8 << 20, WindowB: 4 << 20, Bits: 64, RateGB: 0.6, Count: 1200, Rng: rand.New(rand.NewSource(seed))}},
	}
}

// E8Sustained regenerates the §4 sustained-vs-peak argument: with
// several clients, sustained bandwidth falls well below peak; banks and
// mapping recover much of it.
func E8Sustained() (Experiment, error) {
	t := report.New("E8: sustained vs peak bandwidth",
		"banks", "mapping", "peak GB/s", "sustained GB/s", "fraction", "hit rate")
	var worst, best float64 = 1, 0
	for _, banks := range []int{1, 2, 4, 8} {
		m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: banks, PageBits: 2048})
		if err != nil {
			return Experiment{}, err
		}
		cfg := m.DeviceConfig()
		cfg.AutoRefresh = false
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
		lin, err := mapping.NewLinear(gm)
		if err != nil {
			return Experiment{}, err
		}
		il, err := mapping.NewBankInterleaved(gm)
		if err != nil {
			return Experiment{}, err
		}
		for _, mp := range []mapping.Mapping{lin, il} {
			res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.RoundRobin}, gapClients(42))
			if err != nil {
				return Experiment{}, err
			}
			t.AddRow(banks, mp.Name(), res.PeakGBps, res.SustainedGBps,
				res.SustainedFraction, res.HitRate)
			if res.SustainedFraction < worst {
				worst = res.SustainedFraction
			}
			if res.SustainedFraction > best {
				best = res.SustainedFraction
			}
		}
	}
	// Finally the access-scheme lever (paper §3): the best organization
	// plus an open-page-aware arbiter.
	m8, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: 8, PageBits: 2048})
	if err != nil {
		return Experiment{}, err
	}
	cfg8 := m8.DeviceConfig()
	cfg8.AutoRefresh = false
	gm8 := mapping.Geometry{Banks: cfg8.Banks, RowsBank: cfg8.RowsPerBank, PageBytes: cfg8.PageBits / 8}
	il8, err := mapping.NewBankInterleaved(gm8)
	if err != nil {
		return Experiment{}, err
	}
	resOP, err := sched.RunWithOptions(cfg8, il8, sched.Options{Policy: sched.OpenPageFirst}, gapClients(42))
	if err != nil {
		return Experiment{}, err
	}
	t.AddRow(8, "interleaved+open-page", resOP.PeakGBps, resOP.SustainedGBps,
		resOP.SustainedFraction, resOP.HitRate)
	if resOP.SustainedFraction > best {
		best = resOP.SustainedFraction
	}
	if best <= worst {
		return Experiment{}, fmt.Errorf("sweep produced no spread")
	}
	return Experiment{
		ID:    "E8",
		Title: "Sustained vs peak (paper §4: sustained can be much lower than peak)",
		Table: t,
		Findings: []Finding{
			{Name: "worst-fraction", Value: worst, Unit: "frac"},
			{Name: "best-fraction", Value: best, Unit: "frac"},
			{Name: "recovery", Value: best / worst, Unit: "x"},
		},
	}, nil
}

// E9FIFODepth regenerates the §3 access-scheme argument: the arbiter
// determines client latency and hence the FIFO depth each client needs.
func E9FIFODepth() (Experiment, error) {
	t := report.New("E9: arbitration policy vs stream-client latency and FIFO depth",
		"policy", "p50 ns", "p99 ns", "max ns", "fifo depth", "sustained GB/s")
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: 4, PageBits: 2048})
	if err != nil {
		return Experiment{}, err
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return Experiment{}, err
	}
	depths := map[sched.Policy]int{}
	for _, pol := range []sched.Policy{sched.RoundRobin, sched.FixedPriority, sched.OldestFirst, sched.OpenPageFirst} {
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: pol}, gapClients(42))
		if err != nil {
			return Experiment{}, err
		}
		st := res.Clients[0].Stats // the latency-sensitive stream
		depth := traffic.FIFODepthFor(st.MaxNs, 64, 0.6)
		depths[pol] = depth
		t.AddRow(pol.String(), st.P50Ns, st.P99Ns, st.MaxNs, depth, res.SustainedGBps)
	}
	return Experiment{
		ID:    "E9",
		Title: "FIFO depth (paper §3: access scheme minimizes latency and FIFO depth)",
		Table: t,
		Findings: []Finding{
			{Name: "fifo-round-robin", Value: float64(depths[sched.RoundRobin]), Unit: "slots"},
			{Name: "fifo-priority", Value: float64(depths[sched.FixedPriority]), Unit: "slots"},
		},
	}, nil
}
