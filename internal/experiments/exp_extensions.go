package experiments

import (
	"fmt"
	"math/rand"

	"edram/internal/core"
	"edram/internal/cpu"
	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/iram"
	"edram/internal/mapping"
	"edram/internal/power"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/sdram"
	"edram/internal/sram"
	"edram/internal/tech"
	"edram/internal/timing"
	"edram/internal/traffic"
	"edram/internal/trend"
	"edram/internal/units"
	"edram/internal/yield"
)

// E13SRAMPartition regenerates the §3 on-chip partitioning decision:
// "since eDRAM allows to integrate SRAMs and DRAMs, decisions on the …
// SRAM/DRAM-partitioning have to be made." Below the crossover the 6T
// SRAM's zero fixed overhead wins; above it the DRAM cell's density
// does.
func E13SRAMPartition() (Experiment, error) {
	proc := tech.Siemens024()
	// eDRAM area model: built from 256-Kbit blocks (the granularity
	// floor), one bank, 64-bit interface.
	dramModel := func(mbit float64) (float64, float64, error) {
		bits := int(mbit * units.Mbit)
		blocks := units.CeilDiv(bits, geom.Block256K)
		g := geom.MacroGeometry{
			Process:       proc,
			BlockBits:     geom.Block256K,
			Blocks:        blocks,
			Banks:         1,
			PageBits:      512,
			InterfaceBits: 64,
			WithBIST:      true,
		}
		a, err := g.Area()
		if err != nil {
			return 0, 0, err
		}
		tm, err := timing.ArrayTiming(tech.PC100(), timing.Organization{PageBits: 512, RowsPerBank: 512})
		if err != nil {
			return 0, 0, err
		}
		// Random access: row + column.
		return a.TotalMm2, tm.TRCDns + tm.TCASns, nil
	}
	caps := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2, 4, 8}
	rows, crossover, err := sram.Partition(proc, caps, dramModel)
	if err != nil {
		return Experiment{}, err
	}
	t := report.New("E13: SRAM vs eDRAM on-chip partitioning",
		"Mbit", "sram mm2", "edram mm2", "sram ns", "edram ns", "winner")
	for _, r := range rows {
		winner := "edram"
		if r.SRAMWins {
			winner = "sram"
		}
		t.AddRow(r.CapacityMbit, r.SRAMAreaMm2, r.DRAMAreaMm2, r.SRAMAccessNs, r.DRAMAccessNs, winner)
	}
	if crossover == 0 {
		return Experiment{}, fmt.Errorf("no SRAM/eDRAM crossover in the swept range")
	}
	return Experiment{
		ID:    "E13",
		Title: "SRAM/DRAM partitioning (paper §3: a free on-chip decision)",
		Table: t,
		Findings: []Finding{
			{Name: "crossover-mbit", Value: crossover, Unit: "Mbit"},
		},
	}, nil
}

// E14QualityGrades regenerates the §6 quality-target argument:
// "occasional soft problems, such as too short retention times of a few
// cells, are much more acceptable [for graphics] than if eDRAM is used
// for program data. The test concept should take this cost-reduction
// potential into account, ideally in conjunction with the redundancy
// concept."
func E14QualityGrades() (Experiment, error) {
	t := report.New("E14: graded yield (graphics tolerates weak cells)",
		"defects/block", "spares", "program yield", "graphics yield", "gain")
	var progAt3, gfxAt3 float64
	mix := yield.DefectMix{CellFrac: 0.25, RowFrac: 0.05, ColFrac: 0.05, RetentionFrac: 0.65}
	for _, mean := range []float64{1.5, 3.0, 5.0} {
		for _, spares := range []int{1, 2, 4} {
			mc := yield.MonteCarlo{
				Rows: 512, Cols: 512,
				MeanDefectsPerBlock: mean,
				SpareRows:           spares, SpareCols: spares,
				Mix: mix,
			}
			res, err := mc.RunGraded(300, 29, 8)
			if err != nil {
				return Experiment{}, err
			}
			t.AddRow(mean, spares, res.ProgramYield, res.GraphicsYield,
				units.Ratio(res.GraphicsYield, res.ProgramYield))
			//nolint:edramvet/floateq // anchor row: loop variable vs its own literal
			if mean == 3.0 && spares == 1 {
				progAt3, gfxAt3 = res.ProgramYield, res.GraphicsYield
			}
		}
	}
	return Experiment{
		ID:    "E14",
		Title: "Quality grades (paper §6: graphics-grade cost reduction)",
		Table: t,
		Findings: []Finding{
			{Name: "program-yield@3", Value: progAt3, Unit: "frac"},
			{Name: "graphics-yield@3", Value: gfxAt3, Unit: "frac"},
			{Name: "grade-gain@3", Value: units.Ratio(gfxAt3, progAt3), Unit: "x"},
		},
	}, nil
}

// E15ThermalFeedback regenerates the §1 thermal warning: per-chip power
// rises when logic joins the die, junction temperature climbs, retention
// falls, and refresh power rises — a feedback loop solved to its fixed
// point for increasing amounts of co-integrated logic power.
func E15ThermalFeedback() (Experiment, error) {
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	th := power.DefaultThermal()
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 256})
	if err != nil {
		return Experiment{}, err
	}
	t := report.New("E15: thermal feedback on a hybrid die (16-Mbit macro)",
		"logic W", "junction C", "retention ms", "refresh mW", "refresh penalty")
	var retAlone, retHot float64
	for _, logicW := range []float64{0, 0.5, 1, 2, 3} {
		rep, err := m.PowerAtThermalEquilibrium(e, ce, th, 0.5, 0.8, logicW*1000)
		if err != nil {
			return Experiment{}, err
		}
		if !rep.Converged {
			return Experiment{}, fmt.Errorf("thermal loop diverged at %g W", logicW)
		}
		t.AddRow(logicW, rep.JunctionC, rep.RetentionMs, rep.Power.RefreshMW, rep.RefreshPenalty)
		switch logicW {
		case 0:
			retAlone = rep.RetentionMs
		case 3:
			retHot = rep.RetentionMs
		}
	}
	return Experiment{
		ID:    "E15",
		Title: "Thermal feedback (paper §1: junction temperature cuts retention)",
		Table: t,
		Findings: []Finding{
			{Name: "retention-alone", Value: retAlone, Unit: "ms"},
			{Name: "retention-3W", Value: retHot, Unit: "ms"},
			{Name: "retention-collapse", Value: units.Ratio(retAlone, retHot), Unit: "x"},
		},
	}, nil
}

// A1PagePolicy is the closed-vs-open page-policy ablation called out in
// DESIGN.md §4: streams live on open pages, no-locality mixes prefer
// eager precharge.
func A1PagePolicy() (Experiment, error) {
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: 4, PageBits: 2048})
	if err != nil {
		return Experiment{}, err
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return Experiment{}, err
	}
	stream := func() []sched.Client {
		return []sched.Client{{Name: "stream", Gen: &traffic.Sequential{Bits: 64, RateGB: 5, Count: 1500}}}
	}
	random := func() []sched.Client {
		return []sched.Client{
			{Name: "r0", Gen: &traffic.Random{ClientID: 0, WindowB: 4 << 20, Bits: 64, RateGB: 2, Count: 1200, Rng: rand.New(rand.NewSource(31))}},
			{Name: "r1", Gen: &traffic.Random{ClientID: 1, StartB: 4 << 20, WindowB: 4 << 20, Bits: 64, RateGB: 2, Count: 1200, Rng: rand.New(rand.NewSource(32))}},
		}
	}
	t := report.New("A1: page-policy ablation", "workload", "policy", "sustained GB/s", "hit rate")
	var streamOpen, streamClosed, randOpen, randClosed float64
	for _, w := range []struct {
		name    string
		clients func() []sched.Client
	}{{"stream", stream}, {"random", random}} {
		for _, closed := range []bool{false, true} {
			res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.RoundRobin, ClosedPage: closed}, w.clients())
			if err != nil {
				return Experiment{}, err
			}
			name := "open-page"
			if closed {
				name = "closed-page"
			}
			t.AddRow(w.name, name, res.SustainedGBps, res.HitRate)
			switch {
			case w.name == "stream" && !closed:
				streamOpen = res.SustainedGBps
			case w.name == "stream" && closed:
				streamClosed = res.SustainedGBps
			case w.name == "random" && !closed:
				randOpen = res.SustainedGBps
			case w.name == "random" && closed:
				randClosed = res.SustainedGBps
			}
		}
	}
	return Experiment{
		ID:    "A1",
		Title: "Ablation: open vs closed page policy",
		Table: t,
		Findings: []Finding{
			{Name: "stream-open-over-closed", Value: units.Ratio(streamOpen, streamClosed), Unit: "x"},
			{Name: "random-closed-over-open", Value: units.Ratio(randClosed, randOpen), Unit: "x"},
		},
	}, nil
}

// A2Reorder is the access-scheme depth ablation: how far the FR-FCFS
// reorder window recovers sustained bandwidth and hit rate over strict
// in-order service (paper §3's "optimizing the access scheme", one level
// deeper than the A1/E9 policy choice).
func A2Reorder() (Experiment, error) {
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: 4, PageBits: 2048})
	if err != nil {
		return Experiment{}, err
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return Experiment{}, err
	}
	// One client interleaves fetches from two buffers that share banks
	// under the interleaved mapping (different rows): strict in-order
	// service conflicts on every request.
	mix := func() []sched.Client {
		return []sched.Client{{Name: "bidir", Gen: &traffic.Alternating{
			ClientID: 0, BaseA: 0, BaseB: 1 << 20, Bits: 64, RateGB: 3, Count: 3000}}}
	}
	t := report.New("A2: FR-FCFS reorder-window ablation",
		"window", "sustained GB/s", "hit rate")
	var w1, w16 float64
	for _, w := range []int{1, 2, 4, 8, 16} {
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst, ReorderWindow: w}, mix())
		if err != nil {
			return Experiment{}, err
		}
		t.AddRow(w, res.SustainedGBps, res.HitRate)
		switch w {
		case 1:
			w1 = res.SustainedGBps
		case 16:
			w16 = res.SustainedGBps
		}
	}
	return Experiment{
		ID:    "A2",
		Title: "Ablation: controller reorder window (FR-FCFS depth)",
		Table: t,
		Findings: []Finding{
			{Name: "window16-over-inorder", Value: units.Ratio(w16, w1), Unit: "x"},
		},
	}, nil
}

// E17Generations regenerates the §4 observation that "the peak device
// memory bandwidth has increased over the last couple of years by two
// orders of magnitude" through interface techniques while the core
// improved only ~10 %/yr — and its price: growing minimum burst lengths.
func E17Generations() (Experiment, error) {
	t := report.New("E17: commodity interface generations",
		"gen", "year", "width", "MT/s", "banks", "min burst", "peak GB/s", "random ns")
	for _, g := range trend.Generations() {
		t.AddRow(g.Name, g.Year, g.WidthBits, g.TransferMHz, g.Banks, g.MinBurst,
			g.PeakGBps(), g.RandomAccessNs)
	}
	return Experiment{
		ID:    "E17",
		Title: "Interface generations (paper §4: two orders of magnitude peak BW)",
		Table: t,
		Findings: []Finding{
			{Name: "bandwidth-growth", Value: trend.BandwidthGrowth(), Unit: "x"},
			{Name: "core-improvement", Value: trend.CoreImprovement(), Unit: "x"},
		},
	}, nil
}

// E18Standby regenerates the §2 portable argument: "other things being
// equal, eDRAM will find its way first into portable applications" —
// every discrete chip burns self-refresh standby power, the macro only
// its own leakage and refresh.
func E18Standby() (Experiment, error) {
	ce := power.DefaultCoreEnergy()
	t := report.New("E18: standby power, discrete system vs embedded macro",
		"Mbit", "width", "chips", "discrete mW", "embedded mW", "ratio")
	var anchor float64
	for _, mbit := range []int{8, 16, 64, 128} {
		width := 128
		sys, err := sdram.BestSystem(sdram.Requirement{CapacityMbit: mbit, WidthBits: width})
		if err != nil {
			return Experiment{}, err
		}
		m, err := edram.Build(edram.Spec{CapacityMbit: mbit, InterfaceBits: width})
		if err != nil {
			return Experiment{}, err
		}
		bits := mbit * units.Mbit
		embMW := ce.StandbyPowerMW(bits) +
			ce.RefreshPowerMW(bits, m.Geometry.PageBits, m.Geometry.Process.RetentionMs)
		ratio := units.Ratio(sys.StandbyPowerMW(), embMW)
		t.AddRow(mbit, width, sys.TotalChips(), sys.StandbyPowerMW(), embMW, ratio)
		if mbit == 16 {
			anchor = ratio
		}
	}
	return Experiment{
		ID:    "E18",
		Title: "Portable standby (paper §2: eDRAM reaches portables first)",
		Table: t,
		Findings: []Finding{
			{Name: "standby-ratio@16Mbit", Value: anchor, Unit: "x"},
		},
	}, nil
}

// A3ModelVsSim validates the explorer's closed-form sustained-bandwidth
// model against the event-driven simulator (the DESIGN.md §4 "analytical
// + event-driven split" ablation): the model, fed the simulator's
// measured hit rate, must track simulated sustained bandwidth.
func A3ModelVsSim() (Experiment, error) {
	t := report.New("A3: closed-form model vs event-driven simulation",
		"banks", "sim hit", "sim GB/s", "model GB/s", "ratio")
	worst := 1.0
	for _, banks := range []int{1, 2, 4, 8} {
		m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: banks, PageBits: 2048})
		if err != nil {
			return Experiment{}, err
		}
		cfg := m.DeviceConfig()
		cfg.AutoRefresh = false
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
		mp, err := mapping.NewBankInterleaved(gm)
		if err != nil {
			return Experiment{}, err
		}
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.RoundRobin}, gapClients(42))
		if err != nil {
			return Experiment{}, err
		}
		model := core.SustainedEstimate(m, res.HitRate)
		ratio := units.Ratio(model, res.SustainedGBps)
		t.AddRow(banks, res.HitRate, res.SustainedGBps, model, ratio)
		if r := ratio; r > 1 {
			if 1/r < worst {
				// invert so worst tracks the most pessimistic side
			}
		}
		inv := ratio
		if inv > 1 {
			inv = 1 / inv
		}
		if inv < worst {
			worst = inv
		}
	}
	return Experiment{
		ID:    "A3",
		Title: "Ablation: analytical model vs simulator agreement",
		Table: t,
		Findings: []Finding{
			{Name: "worst-agreement", Value: worst, Unit: "frac"},
		},
	}, nil
}

// A4RefreshTax closes the loop between the thermal model and the
// simulator: the §1 retention collapse on a hot hybrid die shortens the
// refresh interval, and the refresh traffic taxes the bandwidth the
// clients see.
func A4RefreshTax() (Experiment, error) {
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	th := power.DefaultThermal()
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: 4, PageBits: 2048})
	if err != nil {
		return Experiment{}, err
	}
	totalRows := m.Geometry.Banks * m.RowsPerBank()

	t := report.New("A4: refresh tax vs co-integrated logic power",
		"logic W", "retention ms", "refresh interval ns", "refreshes", "sustained GB/s")
	var cold, hot float64
	for _, logicW := range []float64{0, 1, 2, 3} {
		rep, err := m.PowerAtThermalEquilibrium(e, ce, th, 0.5, 0.8, logicW*1000)
		if err != nil {
			return Experiment{}, err
		}
		cfg := m.DeviceConfig()
		cfg.AutoRefresh = true
		cfg.Timing.TRefIns = rep.RetentionMs * 1e6 / float64(totalRows)
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
		mp, err := mapping.NewBankInterleaved(gm)
		if err != nil {
			return Experiment{}, err
		}
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.RoundRobin}, []sched.Client{
			{Name: "stream", Gen: &traffic.Sequential{Bits: 64, RateGB: 5, Count: 3000}},
		})
		if err != nil {
			return Experiment{}, err
		}
		t.AddRow(logicW, rep.RetentionMs, cfg.Timing.TRefIns, res.Device.Refreshes, res.SustainedGBps)
		switch logicW {
		case 0:
			cold = res.SustainedGBps
		case 3:
			hot = res.SustainedGBps
		}
	}
	tax := 0.0
	if cold > 0 {
		tax = 1 - hot/cold
	}
	return Experiment{
		ID:    "A4",
		Title: "Ablation: thermal retention collapse taxes bandwidth via refresh",
		Table: t,
		Findings: []Finding{
			{Name: "refresh-tax@3W", Value: tax, Unit: "frac"},
		},
	}, nil
}

// A5Prefetch quantifies the IRAM wide-interface prefetch argument: on
// the merged system the 512-bit internal bus delivers the neighbour
// line for free, while the conventional 64-bit channel must pay another
// burst for it. Next-line prefetch therefore helps the IRAM system more.
func A5Prefetch() (Experiment, error) {
	const n = 150000
	t := report.New("A5: next-line prefetch on wide vs narrow memory interfaces",
		"system", "prefetch", "CPI", "MIPS")
	// Prefetch pays off on streaming code; use a stream-heavy workload
	// (media processing, the IRAM target domain).
	streamWorkload := func(seed int64) cpu.Workload {
		return cpu.Workload{
			HotBytes: 8 << 10, HotFrac: 0.3,
			HeapBytes: 8 << 20, StreamFrac: 0.8,
			Rng: rand.New(rand.NewSource(seed)),
		}
	}
	type point struct{ base, pf float64 }
	var conv, ir point
	for _, withPf := range []bool{false, true} {
		c := iram.Conventional()
		if withPf {
			c.Prefetch = true
			// A 64-byte line over a 64-bit 100-MHz channel: 80 ns extra.
			c.PrefetchNs = 80
		}
		cr, err := c.RunCustom(n, streamWorkload(9))
		if err != nil {
			return Experiment{}, err
		}
		m := iram.Merged()
		if withPf {
			m.Prefetch = true
			m.PrefetchNs = m.MemLatencyNs * 0.1 // rides the wide bus
		}
		mr, err := m.RunCustom(n, streamWorkload(9))
		if err != nil {
			return Experiment{}, err
		}
		label := "off"
		if withPf {
			label = "on"
		}
		t.AddRow("conventional", label, cr.CPU.CPI, cr.CPU.MIPS)
		t.AddRow("iram", label, mr.CPU.CPI, mr.CPU.MIPS)
		if withPf {
			conv.pf, ir.pf = cr.CPU.CPI, mr.CPU.CPI
		} else {
			conv.base, ir.base = cr.CPU.CPI, mr.CPU.CPI
		}
	}
	convGain := units.Ratio(conv.base, conv.pf)
	irGain := units.Ratio(ir.base, ir.pf)
	return Experiment{
		ID:    "A5",
		Title: "Ablation: prefetch pays off on the wide internal interface",
		Table: t,
		Findings: []Finding{
			{Name: "conv-prefetch-gain", Value: convGain, Unit: "x"},
			{Name: "iram-prefetch-gain", Value: irGain, Unit: "x"},
			{Name: "iram-advantage", Value: units.Ratio(irGain, convGain), Unit: "x"},
		},
	}, nil
}
