package experiments

import (
	"math/rand"

	"edram/internal/core"
	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/mapping"
	"edram/internal/sched"
	"edram/internal/tech"
	"edram/internal/traffic"
)

// macroAreaOn builds a 256-bit macro of the given capacity on process p
// and returns its area.
func macroAreaOn(p tech.Process, mbit int) (float64, error) {
	proc := p
	m, err := edram.Build(edram.Spec{CapacityMbit: mbit, InterfaceBits: 256, Process: &proc})
	if err != nil {
		return 0, err
	}
	return m.Area.TotalMm2, nil
}

// logicAreaOn returns the standard-cell area of kgates on process p.
func logicAreaOn(p tech.Process, kgates float64) float64 {
	return geom.LogicAreaMm2(p, kgates)
}

// Simulator returns the core.SimulateFunc used to validate explorer
// recommendations: the standard stream+stride+random mix, each client
// demanding a third of the target bandwidth, served open-page-first on
// a bank-interleaved mapping.
func Simulator(seed int64) core.SimulateFunc {
	return func(demandGBps float64, c core.Candidate) (float64, float64, error) {
		cfg := c.Macro.DeviceConfig()
		cfg.AutoRefresh = false
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
		mp, err := mapping.NewBankInterleaved(gm)
		if err != nil {
			return 0, 0, err
		}
		// Drive each client hard enough to saturate the macro: the
		// validation measures capacity, which is what the closed-form
		// model predicts. The requirement check uses the measured value.
		per := c.Macro.PeakBandwidthGBps()
		if d := demandGBps; d > per {
			per = d
		}
		if per <= 0 {
			per = 0.1
		}
		bits := cfg.DataBits
		clients := []sched.Client{
			{Name: "stream", Gen: &traffic.Sequential{ClientID: 0, Bits: bits, RateGB: per * 2, Count: 900}},
			{Name: "stride", Gen: &traffic.Strided{ClientID: 1, StartB: 2 << 20, StrideB: int64(cfg.PageBits / 8), LimitB: 2 << 20, Bits: bits, RateGB: per, Count: 900}},
			{Name: "random", Gen: &traffic.Random{ClientID: 2, StartB: 6 << 20, WindowB: 2 << 20, Bits: bits, RateGB: per, Count: 900, Rng: rand.New(rand.NewSource(seed))}},
		}
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, clients)
		if err != nil {
			return 0, 0, err
		}
		return res.SustainedGBps, res.HitRate, nil
	}
}
