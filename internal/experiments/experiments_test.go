package experiments

import (
	"strings"
	"testing"

	"edram/internal/core"
)

// band asserts a finding sits inside [lo, hi].
func band(t *testing.T, e Experiment, name string, lo, hi float64) {
	t.Helper()
	v, err := e.Finding(name)
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	if v < lo || v > hi {
		t.Errorf("%s %s = %.3f outside [%g, %g]", e.ID, name, v, lo, hi)
	}
}

func TestE1Band(t *testing.T) {
	e, err := E1IOPower()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "about ten times the power".
	band(t, e, "power-ratio@4GBps", 5, 25)
	if e.Table.RowCount() != 4 {
		t.Error("E1 should sweep 4 bandwidth targets")
	}
}

func TestE2Band(t *testing.T) {
	e, err := E2FillFrequency()
	if err != nil {
		t.Fatal(err)
	}
	// A 4-Mbit 256-bit eDRAM against a single discrete 4-Mbit x16 part:
	// 16x width times faster clock.
	band(t, e, "fill-ratio@4Mbit", 15, 50)
}

func TestE3Band(t *testing.T) {
	e, err := E3Granularity()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 64-Mbit floor for an 8-Mbit need = 8x waste.
	band(t, e, "waste@256bit", 8, 8)
}

func TestE4Band(t *testing.T) {
	e, err := E4WireDelay()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "delay-ratio-80mm-vs-5mm", 2, 100)
}

func TestE5Band(t *testing.T) {
	e, err := E5MPEG2()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "pal-full-total", 14.5, 16)  // fits 16 Mbit, barely
	band(t, e, "pal-saving", 2.5, 3.5)      // "about 3 Mbit"
	band(t, e, "frame-decode-ms", 0, 42)    // real-time with margin
	band(t, e, "macro-utilization", 0, 0.5) // ample headroom
}

func TestE6Band(t *testing.T) {
	e, err := E6MemoryGap()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "iram-latency-ratio", 4, 12)
	band(t, e, "iram-bandwidth-ratio", 40, 130)
	band(t, e, "iram-energy-ratio", 1.5, 5)
	band(t, e, "gap-1998", 500, 1200)
}

func TestE7Band(t *testing.T) {
	e, err := E7SiemensConcept()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "efficiency@16Mbit", 0.85, 1.6)
	band(t, e, "tck@16Mbit", 0, 7.01)
	band(t, e, "peak@512bit", 8, 12.5)
}

func TestE8Band(t *testing.T) {
	e, err := E8Sustained()
	if err != nil {
		t.Fatal(err)
	}
	// The worst configuration must sit well below peak, and the best
	// organization must recover a large factor.
	band(t, e, "worst-fraction", 0, 0.7)
	band(t, e, "recovery", 1.2, 20)
}

func TestE9Band(t *testing.T) {
	e, err := E9FIFODepth()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := e.Finding("fifo-round-robin")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := e.Finding("fifo-priority")
	if err != nil {
		t.Fatal(err)
	}
	if fp > rr {
		t.Errorf("priority FIFO depth %v must not exceed round-robin %v", fp, rr)
	}
}

func TestE10Band(t *testing.T) {
	e, err := E10TestCost()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "bist-saving", 3, 1000)
}

func TestE11Band(t *testing.T) {
	e, err := E11Yield()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "raw-yield@1.2", 0.2, 0.42) // ~exp(-1.2)
	band(t, e, "std-yield@1.2", 0.9, 1.0)
}

func TestE12Band(t *testing.T) {
	e, err := E12Process()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "logic-vs-dram-area", 1.5, 4)
	band(t, e, "merged-vs-dram-cost", 1.01, 3)
}

func TestAllRunAndRender(t *testing.T) {
	exps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 27 {
		t.Fatalf("got %d experiments, want 27", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Table == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Table.RowCount() == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		var sb strings.Builder
		if err := e.Table.Render(&sb); err != nil {
			t.Errorf("%s: render: %v", e.ID, err)
		}
		if len(sb.String()) == 0 {
			t.Errorf("%s: empty render", e.ID)
		}
		if len(e.Findings) == 0 {
			t.Errorf("%s: no findings", e.ID)
		}
	}
}

func TestFindingLookupError(t *testing.T) {
	e := Experiment{ID: "X"}
	if _, err := e.Finding("nope"); err == nil {
		t.Error("missing finding must error")
	}
}

func TestE13Band(t *testing.T) {
	e, err := E13SRAMPartition()
	if err != nil {
		t.Fatal(err)
	}
	// The late-90s rule of thumb: SRAM below a few hundred Kbit, eDRAM
	// above ~0.5-2 Mbit.
	band(t, e, "crossover-mbit", 0.1, 2)
}

func TestE14Band(t *testing.T) {
	e, err := E14QualityGrades()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := e.Finding("program-yield@3")
	if err != nil {
		t.Fatal(err)
	}
	gfx, err := e.Finding("graphics-yield@3")
	if err != nil {
		t.Fatal(err)
	}
	if gfx <= prog {
		t.Errorf("graphics grade must out-yield program grade: %.2f vs %.2f", gfx, prog)
	}
	band(t, e, "grade-gain@3", 1.1, 10)
}

func TestE15Band(t *testing.T) {
	e, err := E15ThermalFeedback()
	if err != nil {
		t.Fatal(err)
	}
	// 3 W through ~35 C/W is ~105 C: retention collapses hard.
	band(t, e, "retention-collapse", 10, 100000)
}

func TestA1Band(t *testing.T) {
	e, err := A1PagePolicy()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "stream-open-over-closed", 1.1, 10)
	band(t, e, "random-closed-over-open", 1.0, 3)
}

func TestE16Band(t *testing.T) {
	e, err := E16Markets()
	if err != nil {
		t.Fatal(err)
	}
	// Every market must save interface power by roughly the paper's
	// order of magnitude; the cost story is market-dependent but the
	// switch (many chips, many pins) must favour embedding.
	for _, market := range []string{"graphics", "hdd-controller", "net-switch"} {
		band(t, e, market+"-power-ratio", 3, 30)
	}
	band(t, e, "net-switch-cost-ratio", 1.0, 20)
}

func TestA2Band(t *testing.T) {
	e, err := A2Reorder()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "window16-over-inorder", 1.0, 5)
}

func TestE17Band(t *testing.T) {
	e, err := E17Generations()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "bandwidth-growth", 30, 150)
	band(t, e, "core-improvement", 1.1, 3)
}

func TestE18Band(t *testing.T) {
	e, err := E18Standby()
	if err != nil {
		t.Fatal(err)
	}
	// Several discrete chips in self-refresh vs one macro's leakage +
	// refresh: a clear portable-power win.
	band(t, e, "standby-ratio@16Mbit", 3, 100)
}

func TestA3Band(t *testing.T) {
	e, err := A3ModelVsSim()
	if err != nil {
		t.Fatal(err)
	}
	// The closed form must agree with the simulator within ~2.5x in the
	// worst corner (it ignores arrival gaps and bus serialization).
	band(t, e, "worst-agreement", 0.4, 1.0)
}

func TestA4Band(t *testing.T) {
	e, err := A4RefreshTax()
	if err != nil {
		t.Fatal(err)
	}
	// The hot die pays a visible refresh tax, escalating toward a
	// cliff at 3 W (retention collapses to sub-ms).
	band(t, e, "refresh-tax@3W", 0.05, 0.9)
}

func TestA5Band(t *testing.T) {
	e, err := A5Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	// Prefetch must help the wide-interface system more.
	band(t, e, "iram-advantage", 1.0, 3)
	band(t, e, "iram-prefetch-gain", 1.0, 2)
}

func TestE19Band(t *testing.T) {
	e, err := E19SustainedHeadToHead()
	if err != nil {
		t.Fatal(err)
	}
	band(t, e, "sustained-advantage", 1.05, 5)
	band(t, e, "capacity-waste-avoided", 1.0, 4)
}

func TestE20Band(t *testing.T) {
	e, err := E20Feasibility()
	if err != nil {
		t.Fatal(err)
	}
	// Both corner configurations must land in the large-die regime the
	// paper's intro calls feasible (well under ~200 mm²).
	band(t, e, "die-128mbit-500k", 60, 200)
	band(t, e, "die-64mbit-1M", 60, 200)
}

func TestValidateRecommendationBySimulation(t *testing.T) {
	req := core.Requirements{CapacityMbit: 16, BandwidthGBps: 1.0, HitRate: 0.7, DefectsPerCm2: 0.8}
	recs, err := core.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	sim := Simulator(5)
	for _, rec := range recs {
		v, err := core.ValidateBySimulation(rec.Candidate, req, sim)
		if err != nil {
			t.Fatalf("%s: %v", rec.Role, err)
		}
		if v.Agreement < 0.3 {
			t.Errorf("%s: model/sim agreement %.2f too weak (model %.2f sim %.2f)",
				rec.Role, v.Agreement, v.ModelGBps, v.SimulatedGBps)
		}
	}
	if _, err := core.ValidateBySimulation(recs[0].Candidate, req, nil); err == nil {
		t.Error("nil simulator must error")
	}
}

func TestE21Band(t *testing.T) {
	e, err := E21Volume()
	if err != nil {
		t.Fatal(err)
	}
	// Every market breaks even in the thousands-to-hundreds-of-
	//-thousands range — the "volumes are usually high" rule of thumb.
	for _, market := range []string{"graphics", "hdd-controller", "net-switch"} {
		band(t, e, market+"-breakeven", 1000, 500000)
	}
}

func TestE22Band(t *testing.T) {
	e, err := E22ScanConverter()
	if err != nil {
		t.Fatal(err)
	}
	// Three PAL fields ≈ 9.5 Mbit — an eDRAM-friendly, commodity-
	// hostile size.
	band(t, e, "pal-total-mbit", 9, 10)
	// The exact-fit macro must hold real time with margin.
	band(t, e, "realtime-margin", 0.95, 100)
}
