package report

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", 123456.789)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the value column offset.
	hdrIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1")
	if hdrIdx != rowIdx {
		t.Errorf("misaligned: header@%d row@%d\n%s", hdrIdx, rowIdx, out)
	}
	if tb.RowCount() != 2 {
		t.Error("row count wrong")
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	var sb strings.Builder
	tb.Render(&sb)
	if strings.Contains(sb.String(), "==") {
		t.Error("untitled table must have no title banner")
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		12345:    "12345",
		42.42:    "42.4",
		3.14159:  "3.14",
		0.012345: "0.0123",
		-42.42:   "-42.4",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow(1.0, "x")
	tb.AddRow(2.5, "y")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1.00,x\n2.50,y\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := New("md", "a", "b")
	tb.AddRow(1.0, "x")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**md**", "| a | b |", "|---|---|", "| 1.00 | x |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
