// Package report renders the experiment tables of the reproduction as
// aligned ASCII (for terminals and EXPERIMENTS.md) and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat picks a compact human precision.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting; cells must not contain
// commas).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
