// Package timing provides the delay models of the reproduction: lumped-RC
// interface delay for on-chip wires versus board traces (paper §1: "as
// interface wire lengths can be optimized for the application in eDRAMs,
// lower propagation times and thus higher speeds are possible"), a simple
// crosstalk-noise model, and an organization-dependent DRAM array timing
// model that scales the base core timing with page length and bank depth.
package timing

import (
	"fmt"
	"math"

	"edram/internal/tech"
	"edram/internal/units"
)

// elmoreFactor converts an RC product to a 50%-swing delay.
const elmoreFactor = 0.69

// WireDelayNs returns the 50%-point delay of a driver with output
// resistance driverOhm driving a distributed RC wire of the given per-mm
// resistance and capacitance plus a lumped load at the far end.
//
//	delay = 0.69 * (Rdrv*(Cwire+Cload) + Rwire*(Cwire/2 + Cload))
//
// Capacitances are in pF, resistances in Ω, length in mm; the result is
// in ns (Ω·pF = ps, /1000 → ns).
func WireDelayNs(driverOhm, resOhmPerMm, capPFPerMm, lengthMm, loadPF float64) float64 {
	if lengthMm < 0 {
		lengthMm = 0
	}
	cw := capPFPerMm * lengthMm
	rw := resOhmPerMm * lengthMm
	ps := elmoreFactor * (driverOhm*(cw+loadPF) + rw*(cw/2+loadPF))
	return ps / 1000
}

// OnChipInterfaceDelayNs is the delay of an on-chip macro-to-logic
// interface wire of the given length, using the on-chip driver class.
func OnChipInterfaceDelayNs(e tech.Electrical, lengthMm float64) float64 {
	return WireDelayNs(e.OnChipDriverResOhm, e.OnChipWireResOhmPerMm, e.OnChipWireCapPFPerMm, lengthMm, 0.2)
}

// BoardInterfaceDelayNs is the delay of an off-chip path of the given
// board-trace length: output pad driver, package, trace and receiver
// loads. The fixed 7-pF lump models the pad and package parasitics.
func BoardInterfaceDelayNs(e tech.Electrical, lengthMm float64) float64 {
	return WireDelayNs(e.OffChipDriverResOhm, e.BoardTraceResOhmPerMm, e.BoardTraceCapPFPerMm, lengthMm, 7)
}

// NoiseFraction returns the fraction of the aggressor swing coupled onto
// a victim line running in parallel for lengthMm, saturating at 1.
func NoiseFraction(couplingPerMm, lengthMm float64) float64 {
	if couplingPerMm < 0 || lengthMm < 0 {
		return 0
	}
	n := couplingPerMm * lengthMm
	if n > 1 {
		return 1
	}
	return n
}

// Organization describes the array organization parameters that the
// paper's §3 lists as free: page length, bank count and depth. It is the
// timing-relevant subset; the full organization lives in internal/edram.
type Organization struct {
	// PageBits is the length of one page (row) in bits — the number of
	// sense amplifiers that fire per activate.
	PageBits int
	// RowsPerBank is the number of rows (pages) in one bank.
	RowsPerBank int
}

// Validate checks that the organization is physically meaningful.
func (o Organization) Validate() error {
	if o.PageBits <= 0 {
		return fmt.Errorf("timing: page length must be positive, got %d", o.PageBits)
	}
	if o.RowsPerBank <= 0 {
		return fmt.Errorf("timing: rows per bank must be positive, got %d", o.RowsPerBank)
	}
	return nil
}

// Reference organization at which the base SDRAMTiming numbers hold:
// a 100-MHz-era 64-Mbit part with 4096-row banks and 4-KB pages.
const (
	refPageBits    = 4096 * 8
	refRowsPerBank = 4096
)

// ArrayTiming scales a base core timing to the given organization.
//
// Wordline RC grows with page length (more cells hang on the wordline),
// bitline development time grows with rows per bitline, and the column
// path grows weakly with page length. A square-root law models the
// segmented/hierarchical drivers real arrays use; halving a dimension
// therefore buys roughly a 1/sqrt(2) speedup, which reproduces the
// paper's observation that small, wide, shallow embedded banks cycle
// faster (<7 ns) than commodity parts built from the same core.
func ArrayTiming(base tech.SDRAMTiming, o Organization) (tech.SDRAMTiming, error) {
	if err := o.Validate(); err != nil {
		return tech.SDRAMTiming{}, err
	}
	wl := math.Sqrt(float64(o.PageBits) / refPageBits)       // wordline factor
	bl := math.Sqrt(float64(o.RowsPerBank) / refRowsPerBank) // bitline factor
	col := math.Pow(float64(o.PageBits)/refPageBits, 0.32)   // column decode factor

	// Floors: driver and sense-amp intrinsic delays that do not scale
	// with organization.
	scale := func(baseNs, factor, floorNs float64) float64 {
		v := baseNs * factor
		if v < floorNs {
			return floorNs
		}
		return v
	}

	t := base
	t.TRCDns = scale(base.TRCDns, 0.5*wl+0.5*bl, 4)
	t.TRPns = scale(base.TRPns, bl, 4)
	t.TCASns = scale(base.TCASns, col, 3)
	t.TRASns = scale(base.TRASns, 0.4*wl+0.6*bl, 10)
	t.TRCns = t.TRASns + t.TRPns
	t.TRFCns = scale(base.TRFCns, bl, 12)
	// The interface clock is limited by the column path.
	t.TCKns = math.Max(t.TCASns, base.TCKns*col)
	if t.TCKns < 2 {
		t.TCKns = 2
	}
	return t, nil
}

// MaxClockMHz returns the highest interface clock the timing set
// supports.
func MaxClockMHz(t tech.SDRAMTiming) float64 {
	return units.NsToMHz(t.TCKns) // 0 for a degenerate timing set
}

// RandomRowCycleNs is the worst-case time between accesses to different
// rows of the same bank (the page-miss penalty period).
func RandomRowCycleNs(t tech.SDRAMTiming) float64 { return t.TRCns }

// PageHitCycleNs is the time per access when the page is already open.
func PageHitCycleNs(t tech.SDRAMTiming) float64 { return t.TCKns }
