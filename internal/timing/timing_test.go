package timing

import (
	"math"
	"testing"
	"testing/quick"

	"edram/internal/tech"
)

func TestWireDelayMonotonicInLength(t *testing.T) {
	e := tech.DefaultElectrical()
	prev := -1.0
	for l := 0.0; l <= 300; l += 10 {
		d := BoardInterfaceDelayNs(e, l)
		if d <= prev {
			t.Fatalf("board delay not strictly increasing at %v mm", l)
		}
		prev = d
	}
}

func TestOnChipBeatsBoard(t *testing.T) {
	// Paper §1: on-chip interface wires are shorter and faster than
	// board-level paths. Compare a typical 5-mm macro interface with a
	// typical 80-mm board trace.
	e := tech.DefaultElectrical()
	on := OnChipInterfaceDelayNs(e, 5)
	off := BoardInterfaceDelayNs(e, 80)
	if on >= off {
		t.Fatalf("on-chip delay %.3f ns must beat board delay %.3f ns", on, off)
	}
	if off/on < 2 {
		t.Errorf("expected a clear (>2x) delay advantage, got %.2fx", off/on)
	}
}

func TestWireDelayNegativeLength(t *testing.T) {
	d := WireDelayNs(100, 60, 0.25, -5, 0.2)
	want := WireDelayNs(100, 60, 0.25, 0, 0.2)
	if d != want {
		t.Error("negative length must clamp to zero")
	}
}

func TestNoiseFraction(t *testing.T) {
	if NoiseFraction(0.01, 10) != 0.1 {
		t.Error("basic coupling math wrong")
	}
	if NoiseFraction(0.01, 1e6) != 1 {
		t.Error("noise must saturate at 1")
	}
	if NoiseFraction(-1, 10) != 0 || NoiseFraction(0.01, -1) != 0 {
		t.Error("negative inputs must yield 0")
	}
}

func TestNoiseOnChipAdvantage(t *testing.T) {
	// Paper §1: "noise immunity is enhanced" on-chip because runs are
	// short. 5-mm on-chip vs 80-mm board parallel run.
	e := tech.DefaultElectrical()
	on := NoiseFraction(e.OnChipNoiseCouplingPerMm, 5)
	off := NoiseFraction(e.BoardNoiseCouplingPerMm, 80)
	if on >= off {
		t.Fatalf("on-chip noise %.3f must be below board noise %.3f", on, off)
	}
}

func TestOrganizationValidate(t *testing.T) {
	if (Organization{PageBits: 0, RowsPerBank: 4}).Validate() == nil {
		t.Error("zero page must fail")
	}
	if (Organization{PageBits: 4, RowsPerBank: 0}).Validate() == nil {
		t.Error("zero rows must fail")
	}
	if (Organization{PageBits: 2048, RowsPerBank: 512}).Validate() != nil {
		t.Error("valid organization rejected")
	}
}

func TestArrayTimingReference(t *testing.T) {
	// At the reference organization the scaling must be identity-ish
	// (within the floor clamps).
	base := tech.PC100()
	got, err := ArrayTiming(base, Organization{PageBits: refPageBits, RowsPerBank: refRowsPerBank})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TRCDns-base.TRCDns) > 1e-9 || math.Abs(got.TRPns-base.TRPns) > 1e-9 {
		t.Errorf("reference organization must reproduce base timing, got %+v", got)
	}
}

func TestArrayTimingSmallBanksFaster(t *testing.T) {
	// Paper §5: embedded macros with small building blocks cycle below
	// 7 ns while the commodity part runs at 10 ns. A 256-Kbit block
	// organized as 512 rows x 512 bits must beat the reference.
	base := tech.PC100()
	small, err := ArrayTiming(base, Organization{PageBits: 512, RowsPerBank: 512})
	if err != nil {
		t.Fatal(err)
	}
	if small.TCKns >= base.TCKns {
		t.Fatalf("small bank cycle %.2f ns not faster than base %.2f ns", small.TCKns, base.TCKns)
	}
	if small.TCKns > 7 {
		t.Errorf("small embedded bank should reach the paper's <7 ns regime, got %.2f ns", small.TCKns)
	}
	if MaxClockMHz(small) < 143 {
		t.Errorf("small embedded bank should support >=143 MHz, got %.1f", MaxClockMHz(small))
	}
}

func TestArrayTimingInvalidOrg(t *testing.T) {
	if _, err := ArrayTiming(tech.PC100(), Organization{}); err == nil {
		t.Error("invalid organization must error")
	}
}

func TestArrayTimingConsistency(t *testing.T) {
	// Property: for any organization, tRC = tRAS + tRP and every
	// parameter stays at or above its floor and positive.
	f := func(p, r uint8) bool {
		o := Organization{PageBits: 64 << (p % 10), RowsPerBank: 64 << (r % 8)}
		tm, err := ArrayTiming(tech.PC100(), o)
		if err != nil {
			return false
		}
		if tm.TRCns < tm.TRASns+tm.TRPns-1e-9 || tm.TRCns > tm.TRASns+tm.TRPns+1e-9 {
			return false
		}
		return tm.TRCDns > 0 && tm.TRPns > 0 && tm.TCASns > 0 && tm.TCKns >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayTimingMonotonicInPage(t *testing.T) {
	base := tech.PC100()
	prev := 0.0
	for page := 256; page <= 65536; page *= 2 {
		tm, err := ArrayTiming(base, Organization{PageBits: page, RowsPerBank: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if tm.TRCDns < prev {
			t.Fatalf("tRCD must not shrink as pages lengthen (page %d)", page)
		}
		prev = tm.TRCDns
	}
}

func TestCycleHelpers(t *testing.T) {
	tm := tech.PC100()
	if RandomRowCycleNs(tm) != tm.TRCns {
		t.Error("RandomRowCycleNs must be tRC")
	}
	if PageHitCycleNs(tm) != tm.TCKns {
		t.Error("PageHitCycleNs must be tCK")
	}
	if MaxClockMHz(tech.SDRAMTiming{}) != 0 {
		t.Error("zero timing must yield zero clock")
	}
}
