// Package shard partitions an explore's absolute-Seq range across a
// set of executors — in-process worker shards and/or remote edramd
// peers — and merges the partial Pareto frontiers back into a result
// byte-identical to the single-process sweep.
//
// Exactness, not approximation: the sweep enumerates candidates by an
// absolute sequence number, so contiguous [From,To) partitions cover
// the space without overlap, and dominance is a strict partial order,
// so merging per-partition fronts through a fresh Frontier yields
// exactly the global front regardless of partition boundaries or
// arrival order. The parity and associativity tests in
// internal/service pin this down byte-for-byte.
//
// Fault model: a remote executor that fails mid-partition is retired
// and its partition requeued to the surviving executors (a dead peer
// loses only its own partition's work); an optional hedge re-runs a
// straggling remote partition locally and takes whichever finishes
// first. Local executor failures are fatal — they mean the computation
// itself is broken, not the transport.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edram/internal/core"
)

// Executor kinds, used for fan-out accounting and hedge policy.
const (
	KindLocal  = "local"
	KindRemote = "remote"
)

// Partition is one contiguous absolute-Seq slice [From, To) of the
// sweep.
type Partition struct {
	Index int
	From  int
	To    int
}

// Plan splits [from, to) into at most parts near-equal contiguous
// partitions (fewer when the span is smaller than parts; nil when the
// span or parts is empty).
func Plan(from, to, parts int) []Partition {
	span := to - from
	if span <= 0 || parts <= 0 {
		return nil
	}
	if parts > span {
		parts = span
	}
	base, extra := span/parts, span%parts
	out := make([]Partition, 0, parts)
	next := from
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, Partition{Index: i, From: next, To: next + size})
		next += size
	}
	return out
}

// Result is the outcome of sweeping one partition (or, after Merge,
// the union of partitions): the exact enumeration counters plus the
// partition-local Pareto front.
type Result struct {
	Enumerated int64
	Built      int64
	Infeasible int64
	Frontier   []core.Candidate
}

// PartResult pairs a partition with its result.
type PartResult struct {
	Partition
	Result
}

// Executor runs one partition of the sweep somewhere.
type Executor interface {
	// Kind returns KindLocal or KindRemote.
	Kind() string
	// Execute sweeps the partition. It must honor ctx cancellation.
	Execute(ctx context.Context, p Partition) (Result, error)
}

// Stats describes one Run's fan-out behavior.
type Stats struct {
	// Partitions is the plan size; Local/Remote count partitions whose
	// accepted result came from that executor kind.
	Partitions int64
	Local      int64
	Remote     int64
	// Retries counts partitions requeued after a remote failure;
	// Hedges counts local re-executions launched against stragglers;
	// PeerFailures counts remote executors retired by a failure.
	Retries      int64
	Hedges       int64
	PeerFailures int64
}

// Options tunes a Run.
type Options struct {
	// HedgeAfter launches a local re-execution of a remote partition
	// still unfinished after this long (0 disables hedging; hedging
	// also requires at least one local executor).
	HedgeAfter time.Duration
	// OnResult, when set, observes each partition result as it is
	// accepted. Calls are serialized on the coordinating goroutine —
	// this is the sharded job runner's checkpoint hook.
	OnResult func(Partition, Result)
}

type counters struct {
	local, remote, retries, hedges, peerFailures atomic.Int64
}

type laneResult struct {
	pr   PartResult
	kind string
}

// Run executes every partition across the executors with bounded
// fan-out (one in-flight partition per executor), requeuing partitions
// from failed remotes onto the survivors, and returns the accepted
// results sorted by Partition.From.
func Run(ctx context.Context, execs []Executor, parts []Partition, o Options) ([]PartResult, Stats, error) {
	stats := Stats{Partitions: int64(len(parts))}
	if len(parts) == 0 {
		return nil, stats, nil
	}
	if len(execs) == 0 {
		return nil, stats, errors.New("shard: no executors")
	}

	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	// The queue holds every not-yet-accepted partition; its capacity is
	// the partition count, so a requeue can never block.
	queue := make(chan Partition, len(parts))
	for _, p := range parts {
		queue <- p
	}
	results := make(chan laneResult, len(parts))
	fatal := make(chan error, len(execs))

	// A hedge needs a local executor to re-run the partition on.
	var hedge Executor
	for _, ex := range execs {
		if ex.Kind() == KindLocal {
			hedge = ex
			break
		}
	}

	var cnt counters
	var wg sync.WaitGroup
	for _, ex := range execs {
		wg.Add(1)
		go func(ex Executor) {
			defer wg.Done()
			lane(ictx, ex, hedge, o, &cnt, queue, results, fatal)
		}(ex)
	}
	lanesDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(lanesDone)
	}()

	out := make([]PartResult, 0, len(parts))
	deliver := func(lr laneResult) {
		if lr.kind == KindRemote {
			cnt.remote.Add(1)
		} else {
			cnt.local.Add(1)
		}
		if o.OnResult != nil {
			o.OnResult(lr.pr.Partition, lr.pr.Result)
		}
		out = append(out, lr.pr)
	}
	finish := func() Stats {
		stats.Local = cnt.local.Load()
		stats.Remote = cnt.remote.Load()
		stats.Retries = cnt.retries.Load()
		stats.Hedges = cnt.hedges.Load()
		stats.PeerFailures = cnt.peerFailures.Load()
		return stats
	}

	lanesExited := false
	for len(out) < len(parts) {
		if lanesExited {
			// Lanes are gone; accept whatever they buffered, then fail
			// over whatever is left unserved.
			select {
			case lr := <-results:
				deliver(lr)
				continue
			default:
			}
			return nil, finish(), fmt.Errorf("shard: %d of %d partitions unserved: all executors failed",
				len(parts)-len(out), len(parts))
		}
		select {
		case <-ctx.Done():
			icancel()
			wg.Wait()
			return nil, finish(), ctx.Err()
		case err := <-fatal:
			icancel()
			wg.Wait()
			return nil, finish(), fmt.Errorf("shard: %w", err)
		case lr := <-results:
			deliver(lr)
		case <-lanesDone:
			lanesExited = true
		}
	}
	icancel()
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out, finish(), nil
}

// lane pulls partitions off the queue and executes them on one
// executor until the run is cancelled or the executor is retired by a
// failure.
func lane(ctx context.Context, ex, hedge Executor, o Options, cnt *counters,
	queue chan Partition, results chan<- laneResult, fatal chan<- error) {
	for {
		var p Partition
		select {
		case <-ctx.Done():
			return
		case p = <-queue:
		}
		r, kind, err := runOne(ctx, ex, hedge, o, cnt, p)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if ex.Kind() == KindRemote {
				// Retire the peer; its partition goes back to the
				// survivors. The queue's capacity covers every
				// outstanding partition, so this never blocks.
				cnt.peerFailures.Add(1)
				cnt.retries.Add(1)
				queue <- p
				return
			}
			// A local failure is the computation failing, not a
			// transport fault — fail the whole run.
			select {
			case fatal <- fmt.Errorf("partition [%d,%d): %w", p.From, p.To, err):
			case <-ctx.Done():
			}
			return
		}
		select {
		case results <- laneResult{pr: PartResult{Partition: p, Result: r}, kind: kind}:
		case <-ctx.Done():
			return
		}
	}
}

// runOne executes a partition, optionally hedging a straggling remote
// against the local executor; it returns the winning executor's kind.
func runOne(ctx context.Context, ex, hedge Executor, o Options, cnt *counters, p Partition) (Result, string, error) {
	if ex.Kind() != KindRemote || o.HedgeAfter <= 0 || hedge == nil {
		r, err := ex.Execute(ctx, p)
		return r, ex.Kind(), err
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	type arm struct {
		r    Result
		kind string
		err  error
	}
	ch := make(chan arm, 2)
	var hwg sync.WaitGroup
	launch := func(e Executor) {
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			r, err := e.Execute(hctx, p)
			ch <- arm{r: r, kind: e.Kind(), err: err}
		}()
	}
	launch(ex)
	timer := time.NewTimer(o.HedgeAfter)
	defer timer.Stop()
	pending, hedged := 1, false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				cnt.hedges.Add(1)
				launch(hedge)
			}
		case a := <-ch:
			if a.err == nil {
				hcancel()
				hwg.Wait()
				return a.r, a.kind, nil
			}
			pending--
			if firstErr == nil {
				firstErr = a.err
			}
			if pending == 0 {
				hcancel()
				hwg.Wait()
				return Result{}, ex.Kind(), firstErr
			}
		case <-ctx.Done():
			hcancel()
			hwg.Wait()
			return Result{}, ex.Kind(), ctx.Err()
		}
	}
}

// Merge folds partition results into the union result: counters sum
// and the partial fronts merge through a fresh Frontier. Dominance is
// a strict partial order, so the merged front is exactly the front the
// undivided sweep produces, independent of partition boundaries and
// merge order — the associativity the property tests pin.
func Merge(results []PartResult) Result {
	var out Result
	front := core.NewFrontier()
	for i := range results {
		r := &results[i]
		out.Enumerated += r.Enumerated
		out.Built += r.Built
		out.Infeasible += r.Infeasible
		for _, c := range r.Frontier {
			front.Add(c)
		}
	}
	out.Frontier = front.Candidates()
	return out
}
