package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edram/internal/core"
	"edram/internal/testleak"
)

func TestMain(m *testing.M) { testleak.Check(m) }

func TestPlanCoversRangeExactly(t *testing.T) {
	cases := []struct{ from, to, parts int }{
		{0, 2304, 1}, {0, 2304, 3}, {0, 2304, 7}, {5, 17, 4},
		{0, 3, 8}, // parts clamp to the span
		{100, 101, 1},
	}
	for _, tc := range cases {
		parts := Plan(tc.from, tc.to, tc.parts)
		if len(parts) == 0 {
			t.Fatalf("Plan(%d,%d,%d) empty", tc.from, tc.to, tc.parts)
		}
		next := tc.from
		for i, p := range parts {
			if p.Index != i || p.From != next || p.To <= p.From {
				t.Fatalf("Plan(%d,%d,%d)[%d] = %+v, want contiguous from %d",
					tc.from, tc.to, tc.parts, i, p, next)
			}
			next = p.To
		}
		if next != tc.to {
			t.Fatalf("Plan(%d,%d,%d) ends at %d", tc.from, tc.to, tc.parts, next)
		}
		// Near-equal: sizes differ by at most one.
		min, max := tc.to-tc.from, 0
		for _, p := range parts {
			if s := p.To - p.From; s < min {
				min = s
			} else if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("Plan(%d,%d,%d) imbalanced: sizes span [%d,%d]", tc.from, tc.to, tc.parts, min, max)
		}
	}
	if p := Plan(10, 10, 4); p != nil {
		t.Fatalf("Plan over empty span = %v, want nil", p)
	}
	if p := Plan(0, 10, 0); p != nil {
		t.Fatalf("Plan with zero parts = %v, want nil", p)
	}
}

// synthetic builds a feasible candidate whose metrics place it on a
// synthetic trade-off curve; i and the flip flag control whether it
// lands on the front (area·power product constant) or strictly inside.
func synthetic(seq int, dominated bool) core.Candidate {
	c := core.Candidate{
		Seq:           seq,
		AreaMm2:       1 + float64(seq%13),
		PowerMW:       100 - float64(seq%13),
		SustainedGBps: 1,
		Feasible:      true,
	}
	c.CostUSD = c.AreaMm2
	c.CostPerMbitUSD = c.AreaMm2
	if dominated {
		c.AreaMm2 += 5
		c.PowerMW += 5
		c.CostUSD += 5
		c.CostPerMbitUSD += 5
	}
	return c
}

func TestMergeMatchesSingleFrontier(t *testing.T) {
	// Build one population, compute its front in one pass, then merge
	// per-partition fronts over random boundaries and compare.
	var pop []core.Candidate
	for seq := 0; seq < 400; seq++ {
		pop = append(pop, synthetic(seq, seq%3 == 0))
	}
	whole := core.NewFrontier()
	for _, c := range pop {
		whole.Add(c)
	}
	want := whole.Candidates()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nparts := 1 + rng.Intn(9)
		parts := Plan(0, len(pop), nparts)
		var prs []PartResult
		for _, p := range parts {
			local := core.NewFrontier()
			for _, c := range pop[p.From:p.To] {
				local.Add(c)
			}
			prs = append(prs, PartResult{Partition: p, Result: Result{Frontier: local.Candidates()}})
		}
		// Merge order must not matter either.
		rng.Shuffle(len(prs), func(i, j int) { prs[i], prs[j] = prs[j], prs[i] })
		got := Merge(prs).Frontier
		if len(got) != len(want) {
			t.Fatalf("trial %d (%d parts): merged front has %d members, want %d", trial, nparts, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq {
				t.Fatalf("trial %d: merged front member %d is seq %d, want %d", trial, i, got[i].Seq, want[i].Seq)
			}
		}
	}
}

type fakeExec struct {
	kind string
	run  func(ctx context.Context, p Partition) (Result, error)
}

func (f *fakeExec) Kind() string { return f.kind }
func (f *fakeExec) Execute(ctx context.Context, p Partition) (Result, error) {
	return f.run(ctx, p)
}

func sweepFake(p Partition) Result {
	return Result{Enumerated: int64(p.To - p.From)}
}

func TestRunCompletesAcrossExecutors(t *testing.T) {
	local := &fakeExec{kind: KindLocal, run: func(_ context.Context, p Partition) (Result, error) {
		return sweepFake(p), nil
	}}
	remote := &fakeExec{kind: KindRemote, run: func(_ context.Context, p Partition) (Result, error) {
		return sweepFake(p), nil
	}}
	parts := Plan(0, 100, 6)
	var observed atomic.Int64
	out, stats, err := Run(context.Background(), []Executor{local, remote}, parts, Options{
		OnResult: func(Partition, Result) { observed.Add(1) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != len(parts) || observed.Load() != int64(len(parts)) {
		t.Fatalf("got %d results, %d observed; want %d", len(out), observed.Load(), len(parts))
	}
	for i := 1; i < len(out); i++ {
		if out[i].From < out[i-1].From {
			t.Fatal("results not sorted by From")
		}
	}
	if stats.Local+stats.Remote != int64(len(parts)) || stats.Partitions != int64(len(parts)) {
		t.Fatalf("stats = %+v", stats)
	}
	if total := Merge(out); total.Enumerated != 100 {
		t.Fatalf("merged Enumerated = %d, want 100", total.Enumerated)
	}
}

func TestRunRequeuesDeadPeerPartition(t *testing.T) {
	// The local lane waits for the remote to grab a partition and die,
	// so the requeue path runs on every schedule.
	remoteFailed := make(chan struct{})
	var failOnce sync.Once
	local := &fakeExec{kind: KindLocal, run: func(ctx context.Context, p Partition) (Result, error) {
		select {
		case <-remoteFailed:
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		return sweepFake(p), nil
	}}
	dead := &fakeExec{kind: KindRemote, run: func(_ context.Context, _ Partition) (Result, error) {
		failOnce.Do(func() { close(remoteFailed) })
		return Result{}, errors.New("connection refused")
	}}
	parts := Plan(0, 60, 4)
	out, stats, err := Run(context.Background(), []Executor{local, dead}, parts, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != len(parts) {
		t.Fatalf("got %d results, want %d", len(out), len(parts))
	}
	if stats.PeerFailures == 0 || stats.Retries == 0 {
		t.Fatalf("stats = %+v, want peer failure + retry recorded", stats)
	}
	if stats.Local != int64(len(parts)) {
		t.Fatalf("stats = %+v, want every partition served locally", stats)
	}
}

func TestRunFailsWhenAllExecutorsDie(t *testing.T) {
	boom := func(_ context.Context, _ Partition) (Result, error) {
		return Result{}, errors.New("unreachable")
	}
	execs := []Executor{
		&fakeExec{kind: KindRemote, run: boom},
		&fakeExec{kind: KindRemote, run: boom},
	}
	_, _, err := Run(context.Background(), execs, Plan(0, 40, 4), Options{})
	if err == nil {
		t.Fatal("Run succeeded with every executor failing")
	}
}

func TestRunLocalFailureIsFatal(t *testing.T) {
	wantErr := errors.New("model blew up")
	local := &fakeExec{kind: KindLocal, run: func(_ context.Context, _ Partition) (Result, error) {
		return Result{}, wantErr
	}}
	_, _, err := Run(context.Background(), []Executor{local}, Plan(0, 40, 4), Options{})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run error = %v, want %v", err, wantErr)
	}
}

func TestRunHedgesStragglingRemote(t *testing.T) {
	// The local lane waits until the remote is holding a partition, so
	// at least one partition can only finish through the hedge.
	remoteStarted := make(chan struct{})
	var startOnce sync.Once
	local := &fakeExec{kind: KindLocal, run: func(ctx context.Context, p Partition) (Result, error) {
		select {
		case <-remoteStarted:
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		return sweepFake(p), nil
	}}
	// The remote never answers; only the hedge can finish its
	// partitions.
	stuck := &fakeExec{kind: KindRemote, run: func(ctx context.Context, _ Partition) (Result, error) {
		startOnce.Do(func() { close(remoteStarted) })
		<-ctx.Done()
		return Result{}, ctx.Err()
	}}
	parts := Plan(0, 40, 4)
	out, stats, err := Run(context.Background(), []Executor{local, stuck}, parts, Options{
		HedgeAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != len(parts) {
		t.Fatalf("got %d results, want %d", len(out), len(parts))
	}
	if stats.Hedges == 0 {
		t.Fatalf("stats = %+v, want hedges recorded", stats)
	}
	if stats.Local != int64(len(parts)) || stats.Remote != 0 {
		t.Fatalf("stats = %+v, want hedged partitions accepted from the local arm", stats)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	slow := &fakeExec{kind: KindLocal, run: func(ctx context.Context, _ Partition) (Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return Result{}, ctx.Err()
	}}
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(ctx, []Executor{slow}, Plan(0, 40, 4), Options{})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

func TestMergeSumsCounters(t *testing.T) {
	var prs []PartResult
	for i := 0; i < 3; i++ {
		prs = append(prs, PartResult{
			Partition: Partition{Index: i, From: i * 10, To: i*10 + 10},
			Result:    Result{Enumerated: 10, Built: 8, Infeasible: int64(i)},
		})
	}
	got := Merge(prs)
	want := fmt.Sprintf("%d/%d/%d", 30, 24, 3)
	if g := fmt.Sprintf("%d/%d/%d", got.Enumerated, got.Built, got.Infeasible); g != want {
		t.Fatalf("Merge counters = %s, want %s", g, want)
	}
}
