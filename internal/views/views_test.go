package views

import (
	"fmt"
	"strings"
	"testing"

	"edram/internal/bist"
	"edram/internal/edram"
)

func bundle(t *testing.T, mbit, iface int) *Bundle {
	t.Helper()
	m, err := edram.Build(edram.Spec{CapacityMbit: mbit, InterfaceBits: iface})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewRejectsNil(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil macro must error")
	}
}

func TestVerilogStructure(t *testing.T) {
	b := bundle(t, 16, 256)
	v := b.Verilog()
	for _, want := range []string{
		"module edram_16mb_x256",
		"endmodule",
		"input  wire                  clk",
		"[255:0]          din",
		"[255:0]          dout",
		"reg [255:0] mem",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	if strings.Count(v, "module") != strings.Count(v, "endmodule")+1 {
		// "module" appears in "endmodule" too; count balance via prefix.
		t.Log(v)
	}
	// Word count: 16 Mbit / 256 = 65536 words -> mem [0:65535].
	if !strings.Contains(v, "mem [0:65535]") {
		t.Error("memory depth wrong")
	}
}

func TestVerilogAddressWidths(t *testing.T) {
	// 16 Mbit, 4 banks, page 2048, iface 256: rows/bank = 2048,
	// cols/page = 8 -> bank[1:0], row[10:0], col[2:0].
	b := bundle(t, 16, 256)
	v := b.Verilog()
	for _, want := range []string{"[ 1:0]           bank", "[10:0]           row", "[ 2:0]           col"} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing port %q\n%s", want, v)
		}
	}
}

func TestFloorplanText(t *testing.T) {
	b := bundle(t, 16, 256)
	fp, err := b.FloorplanText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fp, "FLOORPLAN edram_16mb_x256") {
		t.Error("missing header")
	}
	// One BLOCK row per building block.
	if got := strings.Count(fp, "BLOCK b"); got != 16 {
		t.Errorf("block placements = %d, want 16", got)
	}
	if !strings.Contains(fp, "CONTROL STRIP") || !strings.Contains(fp, "AVG INTERFACE WIRE") {
		t.Error("missing strip/wire summary")
	}
}

func TestTimingLib(t *testing.T) {
	b := bundle(t, 16, 256)
	lib := b.TimingLib()
	for _, want := range []string{
		"library (edram_16mb_x256)",
		"siemens-0.24um-edram",
		"clock_period_ns",
		"t_rcd_ns",
		"peak_bandwidth_gbps",
		"active_power_mw",
	} {
		if !strings.Contains(lib, want) {
			t.Errorf("lib missing %q", want)
		}
	}
	// Values come from the macro, not placeholders.
	if !strings.Contains(lib, fmt.Sprintf("max_frequency_mhz   : %.0f;", b.Macro.ClockMHz)) {
		t.Error("clock not propagated")
	}
}

func TestTestProgram(t *testing.T) {
	b := bundle(t, 16, 256)
	p := b.TestProgram(bist.MarchCMinus(), bist.Checkerboard)
	if !strings.Contains(p, "PROGRAM edram_16mb_x256 March C- background=checkerboard") {
		t.Errorf("program header wrong:\n%s", p)
	}
	// March C- has 6 elements and 10 ops/cell.
	if got := strings.Count(p, "ELEMENT"); got != 6 {
		t.Errorf("elements = %d, want 6", got)
	}
	reads := strings.Count(p, "READ")
	writes := strings.Count(p, "WRITE")
	if reads+writes != 10 {
		t.Errorf("ops = %d, want 10", reads+writes)
	}
	// Cost line: 10 ops/cell x 16 Mbit / 256-bit parallelism.
	wantCycles := int64(10) * 16 * 1048576 / 256
	if !strings.Contains(p, fmt.Sprintf("cycles=%d", wantCycles)) {
		t.Errorf("cost line missing cycles=%d:\n%s", wantCycles, p)
	}
	if !strings.Contains(p, "SWEEP DOWN") || !strings.Contains(p, "SWEEP UP") {
		t.Error("sweep directions missing")
	}
}

func TestAllViews(t *testing.T) {
	b := bundle(t, 4, 64)
	files, err := b.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 8 {
		t.Fatalf("views = %d, want 8", len(files))
	}
	seen := map[string]bool{}
	for _, f := range files {
		if f.Name == "" || f.Content == "" {
			t.Errorf("empty view %q", f.Name)
		}
		if seen[f.Name] {
			t.Errorf("duplicate view %q", f.Name)
		}
		seen[f.Name] = true
		if !strings.HasPrefix(f.Name, "edram_4mb_x64") {
			t.Errorf("view name %q not derived from macro", f.Name)
		}
	}
}

func TestViewsDeterministic(t *testing.T) {
	a := bundle(t, 8, 128)
	b := bundle(t, 8, 128)
	fa, err := a.All()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.All()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("view %s not deterministic", fa[i].Name)
		}
	}
}

func TestTestbench(t *testing.T) {
	b := bundle(t, 16, 256)
	tb := b.Testbench()
	for _, want := range []string{
		"module edram_16mb_x256_tb;",
		"edram_16mb_x256 dut",
		"always #3.30 clk",
		"$display(\"PASS\")",
		"endmodule",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
}
