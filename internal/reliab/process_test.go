package reliab

import (
	"reflect"
	"testing"

	"edram/internal/dram"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Seed: 1, MeanDefectsPerBank: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MeanDefectsPerBank: -1},
		{RetentionTailPerBank: -1},
		{SoftErrorsPerMAccess: -0.5},
		{SpareRowsPerBank: -2},
		{MaxRetries: -1},
		{TailMinMs: 5, TailMaxMs: 1},
		{ECC: ECC(99)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v must be rejected", i, c)
		}
	}
}

func TestProcessDeterminism(t *testing.T) {
	cfg := Config{
		Seed:                 7,
		MeanDefectsPerBank:   3,
		RetentionTailPerBank: 2,
		SpareRowsPerBank:     2,
		SoftErrorsPerMAccess: 100,
	}
	a, err := NewProcess(cfg, 4, 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProcess(cfg, 4, 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same seed must give byte-identical defect maps")
	}
	if !reflect.DeepEqual(a.faults, b.faults) {
		t.Error("fault slices must be identical, not just fingerprint-equal")
	}
	cfg.Seed = 8
	c, err := NewProcess(cfg, 4, 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds should give different maps")
	}
	// Soft errors are a pure function of the access coordinates.
	for i := int64(0); i < 1000; i++ {
		if a.SoftBits(i, 0, 1, 2) != b.SoftBits(i, 0, 1, 2) {
			t.Fatal("soft-error draws must be deterministic")
		}
	}
}

func TestProcessSoftErrorRate(t *testing.T) {
	cfg := Config{Seed: 3, SoftErrorsPerMAccess: 10000} // 1% per access
	p, err := NewProcess(cfg, 1, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const n = 200000
	for i := int64(0); i < n; i++ {
		if p.SoftBits(i, 0, 0, int(i%8)) > 0 {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.008 || rate > 0.012 {
		t.Errorf("soft-error rate = %g, want ~0.01", rate)
	}
	// Zero rate draws nothing.
	p0, _ := NewProcess(Config{Seed: 3}, 1, 8, 64)
	for i := int64(0); i < 1000; i++ {
		if p0.SoftBits(i, 0, 0, 0) != 0 {
			t.Fatal("zero soft-error rate must never flip bits")
		}
	}
}

func TestProcessBuildArrays(t *testing.T) {
	cfg := Config{
		Seed:             5,
		SpareRowsPerBank: 3,
		ExtraFaults: map[int][]dram.Fault{
			1: {{Kind: dram.StuckAt1, Row: 2, Col: 7}},
		},
	}
	p, err := NewProcess(cfg, 2, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	arrays, err := p.BuildArrays()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrays) != 2 {
		t.Fatalf("got %d arrays", len(arrays))
	}
	for _, a := range arrays {
		if a.Rows() != 16+3 || a.Cols() != 64 {
			t.Errorf("array geometry %dx%d, want 19x64", a.Rows(), a.Cols())
		}
	}
	if arrays[1].FaultCount() != 1 || arrays[0].FaultCount() != 0 {
		t.Errorf("extra fault placement wrong: bank0=%d bank1=%d",
			arrays[0].FaultCount(), arrays[1].FaultCount())
	}
	if p.FaultCount() != 1 {
		t.Errorf("FaultCount = %d, want 1", p.FaultCount())
	}
}

func TestProcessRetentionTailWindow(t *testing.T) {
	cfg := Config{Seed: 11, RetentionTailPerBank: 50, TailMinMs: 0.1, TailMaxMs: 0.5}
	p, err := NewProcess(cfg, 1, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.WeakCells() == 0 {
		t.Fatal("mean 50 weak cells drew none")
	}
	for _, f := range p.faults[0] {
		if f.Kind != dram.Retention {
			continue
		}
		if f.RetentionMs < 0.1 || f.RetentionMs > 0.5 {
			t.Errorf("retention %g ms outside [0.1,0.5]", f.RetentionMs)
		}
	}
}
