package reliab

import (
	"fmt"
	"reflect"
	"testing"
)

// syntheticTrial is a pure function of (trial, seed) so range-union
// comparisons are exact without a full scheduler run.
func syntheticTrial(trial int, seed int64) (Stats, []FaultEvent, error) {
	return Stats{
		InjectedFaults:    trial + 1,
		DefectFingerprint: uint64(seed),
		FaultyAccesses:    int64(trial) * 3,
	}, nil, nil
}

// TestRunTrialsRangeUnionMatchesFull: disjoint ranges concatenate to
// exactly the uninterrupted campaign — same absolute trial indices,
// same derived seeds, same stats.
func TestRunTrialsRangeUnionMatchesFull(t *testing.T) {
	const trials = 13
	full, err := RunTrials(trials, 3, 99, syntheticTrial)
	if err != nil {
		t.Fatal(err)
	}
	var union []TrialResult
	for _, r := range [][2]int{{0, 5}, {5, 6}, {6, 13}} {
		part, err := RunTrialsRange(r[0], r[1], 2, 99, syntheticTrial)
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, part...)
	}
	if !reflect.DeepEqual(full, union) {
		t.Fatalf("range union differs from full campaign:\nfull:  %+v\nunion: %+v", full, union)
	}
}

func TestRunTrialsRangeValidation(t *testing.T) {
	for _, r := range [][2]int{{-1, 2}, {3, 3}, {4, 2}} {
		if _, err := RunTrialsRange(r[0], r[1], 1, 1, syntheticTrial); err == nil {
			t.Errorf("range [%d,%d) accepted", r[0], r[1])
		}
	}
}

func TestRunTrialsRangePropagatesError(t *testing.T) {
	_, err := RunTrialsRange(2, 5, 2, 1, func(trial int, seed int64) (Stats, []FaultEvent, error) {
		if trial == 4 {
			return Stats{}, nil, fmt.Errorf("boom")
		}
		return Stats{}, nil, nil
	})
	if err == nil || err.Error() != "reliab: trial 4: boom" {
		t.Errorf("error = %v, want trial 4 boom", err)
	}
}
