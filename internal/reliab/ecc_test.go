package reliab

import "testing"

func TestCheckBits(t *testing.T) {
	cases := []struct {
		ecc  ECC
		data int
		want int
	}{
		{ECCNone, 64, 0},
		{ECCParity, 64, 1},
		{ECCSECDED, 64, 8},        // the classic (72,64) code
		{ECCSECDED, 32, 7},        // (39,32)
		{ECCSECDED, 16, 6},        // (22,16)
		{ECCChipkillLite, 64, 14}, // two (39,32) half-words
	}
	for _, tc := range cases {
		if got := tc.ecc.CheckBits(tc.data); got != tc.want {
			t.Errorf("%v.CheckBits(%d) = %d, want %d", tc.ecc, tc.data, got, tc.want)
		}
	}
	if o := ECCSECDED.StorageOverhead(64); o != 0.125 {
		t.Errorf("SEC-DED/64 overhead = %g, want 0.125", o)
	}
	if o := ECCNone.StorageOverhead(64); o != 0 {
		t.Errorf("none overhead = %g", o)
	}
}

func TestParseECCRoundTrip(t *testing.T) {
	for _, e := range []ECC{ECCNone, ECCParity, ECCSECDED, ECCChipkillLite} {
		got, err := ParseECC(e.String())
		if err != nil || got != e {
			t.Errorf("ParseECC(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseECC("hamming-extreme"); err == nil {
		t.Error("unknown scheme must be rejected")
	}
	if e, err := ParseECC(""); err != nil || e != ECCNone {
		t.Errorf("empty scheme = %v, %v, want none", e, err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		ecc  ECC
		bits int
		want Verdict
	}{
		{ECCNone, 0, VerdictClean},
		{ECCNone, 1, VerdictSilent},
		{ECCNone, 3, VerdictSilent},
		{ECCParity, 1, VerdictDetected},
		{ECCParity, 2, VerdictSilent},
		{ECCParity, 3, VerdictDetected},
		{ECCSECDED, 1, VerdictCorrected},
		{ECCSECDED, 2, VerdictDetected},
		{ECCSECDED, 3, VerdictMiscorrected},
		{ECCSECDED, 4, VerdictDetected},
		{ECCChipkillLite, 1, VerdictCorrected},
		{ECCChipkillLite, 2, VerdictCorrected},
		{ECCChipkillLite, 3, VerdictDetected},
		{ECCChipkillLite, 4, VerdictDetected},
		{ECCChipkillLite, 5, VerdictMiscorrected},
		{ECCChipkillLite, 6, VerdictDetected},
	}
	for _, tc := range cases {
		if got := tc.ecc.Classify(tc.bits); got != tc.want {
			t.Errorf("%v.Classify(%d) = %v, want %v", tc.ecc, tc.bits, got, tc.want)
		}
	}
}

func TestDecodeLatencyOrdering(t *testing.T) {
	if !(ECCNone.DecodeNs() < ECCParity.DecodeNs() &&
		ECCParity.DecodeNs() < ECCSECDED.DecodeNs() &&
		ECCSECDED.DecodeNs() < ECCChipkillLite.DecodeNs()) {
		t.Error("decode latency must grow with code strength")
	}
}
