package reliab

import (
	"fmt"
	"math/rand"
	"sort"

	"edram/internal/dram"
	"edram/internal/yield"
)

// Config parameterizes the reliability pipeline of one controller run.
// The zero value is almost usable: set Seed and at least one of
// MeanDefectsPerBank / SoftErrorsPerMAccess / RetentionTailPerBank to
// inject something.
type Config struct {
	// Seed drives every random draw of the pipeline. The same seed
	// reproduces byte-identical defect maps, fault-event streams and
	// statistics, regardless of how many worker goroutines run
	// campaigns around the simulation.
	Seed int64
	// ECC selects the per-word code of the interface.
	ECC ECC
	// MeanDefectsPerBank is the Poisson mean of manufacturing defects
	// per bank (rendered through yield.GenerateDefects over the bank's
	// rows+spares x page geometry).
	MeanDefectsPerBank float64
	// Mix controls what a defect becomes; the zero value means
	// yield.DefaultMix().
	Mix yield.DefectMix
	// RetentionTailPerBank is the Poisson mean of weak cells per bank
	// whose retention falls in [TailMinMs, TailMaxMs] — cells that
	// decay between refresh visits at runtime.
	RetentionTailPerBank float64
	// TailMinMs / TailMaxMs bound the retention tail (defaults 0.02
	// and 1.0 ms — weak enough to decay within short simulations).
	TailMinMs, TailMaxMs float64
	// SoftErrorsPerMAccess is the expected transient bit flips per
	// million word accesses (the soft-error rate scaled to traffic).
	SoftErrorsPerMAccess float64
	// SpareRowsPerBank is the runtime repair budget of the remap rung.
	SpareRowsPerBank int
	// MaxRetries bounds the retry rung (default 2).
	MaxRetries int
	// BootScreen, when true, runs a BIST row diagnosis over every bank
	// before traffic and pre-repairs the rows it finds, so the runtime
	// ladder only sees escapes (retention tails, transients, spare-cell
	// defects).
	BootScreen bool
	// ExtraFaults injects additional explicit faults per bank on top of
	// the generated map — the hook unit tests and targeted experiments
	// use for deterministic scenarios.
	ExtraFaults map[int][]dram.Fault
}

// withDefaults returns the config with zero-valued knobs resolved.
func (c Config) withDefaults() Config {
	if c.Mix == (yield.DefectMix{}) {
		c.Mix = yield.DefaultMix()
	}
	if c.TailMinMs == 0 {
		c.TailMinMs = 0.02
	}
	if c.TailMaxMs == 0 {
		c.TailMaxMs = 1.0
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.MeanDefectsPerBank < 0 || c.RetentionTailPerBank < 0 || c.SoftErrorsPerMAccess < 0 {
		return fmt.Errorf("reliab: fault rates must be non-negative")
	}
	if c.SpareRowsPerBank < 0 {
		return fmt.Errorf("reliab: spare rows must be non-negative, got %d", c.SpareRowsPerBank)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("reliab: retry bound must be non-negative, got %d", c.MaxRetries)
	}
	if c.TailMinMs <= 0 || c.TailMaxMs <= c.TailMinMs {
		return fmt.Errorf("reliab: retention tail window [%g,%g) ms invalid", c.TailMinMs, c.TailMaxMs)
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if _, err := ParseECC(c.ECC.String()); err != nil {
		return fmt.Errorf("reliab: invalid ECC scheme %d", int(c.ECC))
	}
	return nil
}

// Process is the instantiated fault process of one run: the per-bank
// defect maps (manufacturing defects plus the retention tail, spares
// included) and the deterministic transient-error source.
type Process struct {
	cfg    Config
	banks  int
	rows   int            // physical rows per bank = logical rows + spares
	cols   int            // page bits
	faults [][]dram.Fault // per bank, generation order
	softP  float64        // per-access transient probability
}

// NewProcess draws the defect map for a device of the given
// organization. Everything is a pure function of (cfg.Seed, geometry):
// two processes with equal inputs are byte-identical.
func NewProcess(cfg Config, banks, rowsPerBank, pageBits int) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if banks < 1 || rowsPerBank < 1 || pageBits < 1 {
		return nil, fmt.Errorf("reliab: geometry %d banks x %d rows x %d bits invalid", banks, rowsPerBank, pageBits)
	}
	p := &Process{
		cfg:   cfg,
		banks: banks,
		rows:  rowsPerBank + cfg.SpareRowsPerBank,
		cols:  pageBits,
		softP: cfg.SoftErrorsPerMAccess / 1e6,
	}
	p.faults = make([][]dram.Fault, banks)
	for b := 0; b < banks; b++ {
		// One independent, bank-seeded stream per bank, so the map of
		// bank b does not depend on how many banks precede it.
		rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.Seed), uint64(b)+1))))
		defects, err := yield.GenerateDefects(rng, p.rows, p.cols, cfg.MeanDefectsPerBank, cfg.Mix)
		if err != nil {
			return nil, err
		}
		tail, err := yield.GenerateRetentionTail(rng, p.rows, p.cols, cfg.RetentionTailPerBank, cfg.TailMinMs, cfg.TailMaxMs)
		if err != nil {
			return nil, err
		}
		p.faults[b] = append(defects, tail...)
		p.faults[b] = append(p.faults[b], cfg.ExtraFaults[b]...)
	}
	return p, nil
}

// Config returns the (defaults-resolved) configuration.
func (p *Process) Config() Config { return p.cfg }

// FaultCount returns the total injected fault records across banks.
func (p *Process) FaultCount() int {
	n := 0
	for _, fs := range p.faults {
		n += len(fs)
	}
	return n
}

// WeakCells returns the number of retention faults in the map.
func (p *Process) WeakCells() int {
	n := 0
	for _, fs := range p.faults {
		for _, f := range fs {
			if f.Kind == dram.Retention {
				n++
			}
		}
	}
	return n
}

// BuildArrays renders the defect map into one functional array per
// bank, sized rows+spares x pageBits, ready for dram.Device.SetBacking.
func (p *Process) BuildArrays() ([]*dram.Array, error) {
	arrays := make([]*dram.Array, p.banks)
	for b := 0; b < p.banks; b++ {
		a, err := dram.NewArray(p.rows, p.cols)
		if err != nil {
			return nil, err
		}
		for _, f := range p.faults[b] {
			if err := a.Inject(f); err != nil {
				return nil, fmt.Errorf("reliab: bank %d: %w", b, err)
			}
		}
		arrays[b] = a
	}
	return arrays, nil
}

// SoftBits returns the number of transient bit flips a word access
// observes — a pure hash of (seed, access index, attempt, bank, row),
// so a retry of the same access re-rolls the transients (they are gone)
// while everything stays reproducible across runs and worker counts.
func (p *Process) SoftBits(access int64, attempt, bank, row int) int {
	if p.softP <= 0 {
		return 0
	}
	h := mix64(uint64(p.cfg.Seed)^0x9e3779b97f4a7c15, uint64(access)<<20|uint64(attempt)<<16|uint64(bank)<<12|uint64(row))
	u := float64(h>>11) / float64(1<<53) // uniform [0,1)
	switch {
	case u < p.softP/16:
		return 2 // rare double-bit upset (one particle, two cells)
	case u < p.softP:
		return 1
	default:
		return 0
	}
}

// Fingerprint hashes the full defect map into one word — the
// byte-identical-defect-map check of the determinism tests.
func (p *Process) Fingerprint() uint64 {
	h := uint64(0x8c995b3c551da617)
	for b, fs := range p.faults {
		sorted := append([]dram.Fault(nil), fs...)
		sort.Slice(sorted, func(i, j int) bool {
			a, c := sorted[i], sorted[j]
			if a.Row != c.Row {
				return a.Row < c.Row
			}
			if a.Col != c.Col {
				return a.Col < c.Col
			}
			return a.Kind < c.Kind
		})
		for _, f := range sorted {
			h = mix64(h, uint64(b))
			h = mix64(h, uint64(f.Kind)<<48|uint64(uint32(f.Row))<<24|uint64(uint32(f.Col)))
			h = mix64(h, uint64(int64(f.RetentionMs*1e6)))
		}
	}
	return h
}

// mix64 is a splitmix64-style avalanche combiner.
func mix64(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
