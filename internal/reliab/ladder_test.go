package reliab

import (
	"testing"

	"edram/internal/dram"
	"edram/internal/mapping"
	"edram/internal/tech"
)

func ladderDevCfg() dram.Config {
	return dram.Config{
		Banks:       2,
		RowsPerBank: 32,
		PageBits:    512,
		DataBits:    64,
		Timing:      tech.PC100(),
	}
}

func ladderFixture(t *testing.T, cfg Config) (*Ladder, *dram.Device, *mapping.Degraded, *[]FaultEvent) {
	t.Helper()
	dev, err := dram.New(ladderDevCfg())
	if err != nil {
		t.Fatal(err)
	}
	base, err := mapping.NewLinear(mapping.Geometry{Banks: 2, RowsBank: 32, PageBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	deg := mapping.NewDegraded(base)
	var events []FaultEvent
	l, err := NewLadder(cfg, dev, deg, func(ev FaultEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	return l, dev, deg, &events
}

// readRow drives one full-row read through the device and the ladder.
func readRow(t *testing.T, l *Ladder, dev *dram.Device, now float64, bank, row int) (float64, error) {
	t.Helper()
	beats := dev.Config().ColumnsPerRow()
	res, err := dev.Burst(now, bank, row, beats, false)
	if err != nil {
		t.Fatal(err)
	}
	return l.AfterAccess("test", bank, row, false, beats, res)
}

// TestLadderCleanRun: no faults, no events, no latency beyond decode.
func TestLadderCleanRun(t *testing.T) {
	l, dev, _, events := ladderFixture(t, Config{Seed: 1, ECC: ECCSECDED})
	done, err := readRow(t, l, dev, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(*events) != 0 {
		t.Fatalf("clean run emitted %d events", len(*events))
	}
	st := l.Stats()
	if st.FaultyAccesses != 0 || st.Retries != 0 {
		t.Errorf("clean stats: %+v", st)
	}
	if st.DecodeNs <= 0 || done <= 0 {
		t.Error("SEC-DED decode latency must accrue on reads")
	}
}

// TestLadderCorrectsSingleBit: one stuck cell under SEC-DED is
// corrected and the row scrubbed.
func TestLadderCorrectsSingleBit(t *testing.T) {
	// Cell (5, 0): background (5+0)%2 = 1, stuck at 0 -> one bad bit in
	// beat 0 of row 5.
	l, dev, _, events := ladderFixture(t, Config{
		Seed: 1, ECC: ECCSECDED,
		ExtraFaults: map[int][]dram.Fault{0: {{Kind: dram.StuckAt0, Row: 5, Col: 0}}},
	})
	if _, err := readRow(t, l, dev, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Corrected != 1 {
		t.Fatalf("Corrected = %d, want 1 (stats %+v)", st.Corrected, st)
	}
	if st.Scrubs != 1 || st.ScrubNs <= 0 {
		t.Errorf("persistent correctable error must scrub: %+v", st)
	}
	if len(*events) != 1 || (*events)[0].Outcome != OutcomeCorrected {
		t.Fatalf("events = %+v", *events)
	}
	if (*events)[0].HardBits != 1 {
		t.Errorf("HardBits = %d, want 1", (*events)[0].HardBits)
	}
}

// TestLadderRemapsUncorrectable: a stuck wordline overwhelms SEC-DED;
// the ladder retries, remaps to a spare, and the row reads clean after.
func TestLadderRemapsUncorrectable(t *testing.T) {
	l, dev, _, events := ladderFixture(t, Config{
		Seed: 1, ECC: ECCSECDED, SpareRowsPerBank: 2, MaxRetries: 2,
		ExtraFaults: map[int][]dram.Fault{0: {{Kind: dram.WordlineStuck0, Row: 3}}},
	})
	done, err := readRow(t, l, dev, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Remapped != 1 {
		t.Fatalf("Remapped = %d (stats %+v)", st.Remapped, st)
	}
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want MaxRetries=2", st.Retries)
	}
	if st.SparesUsed != 1 {
		t.Errorf("SparesUsed = %d, want 1", st.SparesUsed)
	}
	if len(*events) != 1 || (*events)[0].Outcome != OutcomeRemapped || (*events)[0].Attempts != 2 {
		t.Fatalf("events = %+v", *events)
	}
	// The remapped row must now be clean.
	*events = (*events)[:0]
	if _, err := readRow(t, l, dev, done, 0, 3); err != nil {
		t.Fatal(err)
	}
	if len(*events) != 0 {
		t.Fatalf("remapped row still faults: %+v", *events)
	}
	if l.Stats().FaultyAccesses != 1 {
		t.Errorf("FaultyAccesses = %d, want 1", l.Stats().FaultyAccesses)
	}
}

// TestLadderDegradesWhenSparesExhausted: two stuck wordlines, one
// spare: the second uncorrectable row is offlined and capacity shrinks.
func TestLadderDegradesWhenSparesExhausted(t *testing.T) {
	l, dev, deg, events := ladderFixture(t, Config{
		Seed: 1, ECC: ECCSECDED, SpareRowsPerBank: 1,
		ExtraFaults: map[int][]dram.Fault{0: {
			{Kind: dram.WordlineStuck0, Row: 3},
			{Kind: dram.WordlineStuck0, Row: 9},
		}},
	})
	done, err := readRow(t, l, dev, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readRow(t, l, dev, done, 0, 9); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Remapped != 1 || st.Offlined != 1 {
		t.Fatalf("Remapped=%d Offlined=%d, want 1/1 (stats %+v)", st.Remapped, st.Offlined, st)
	}
	if !deg.IsOffline(0, 9) {
		t.Error("row (0,9) should be offline")
	}
	if st.CapacityLossFrac <= 0 {
		t.Error("capacity loss must be visible")
	}
	if st.OfflinedRows != 1 {
		t.Errorf("OfflinedRows = %d", st.OfflinedRows)
	}
	outcomes := []Outcome{(*events)[0].Outcome, (*events)[1].Outcome}
	if outcomes[0] != OutcomeRemapped || outcomes[1] != OutcomeOfflined {
		t.Errorf("outcomes = %v, want [remapped offlined]", outcomes)
	}
}

// TestLadderNoECCSilent: without ECC even a hard fault passes silently
// (the paper's baseline: no detection, no repair).
func TestLadderNoECCSilent(t *testing.T) {
	l, dev, _, events := ladderFixture(t, Config{
		Seed: 1, ECC: ECCNone,
		ExtraFaults: map[int][]dram.Fault{0: {{Kind: dram.StuckAt0, Row: 5, Col: 0}}},
	})
	if _, err := readRow(t, l, dev, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Silent != 1 || st.Corrected != 0 || st.Retries != 0 {
		t.Fatalf("no-ECC stats: %+v", st)
	}
	if (*events)[0].Outcome != OutcomeSilent {
		t.Errorf("outcome = %v", (*events)[0].Outcome)
	}
}

// TestLadderBootScreen: a boot screen pre-repairs a manufactured stuck
// row, so runtime traffic never sees it.
func TestLadderBootScreen(t *testing.T) {
	l, dev, _, events := ladderFixture(t, Config{
		Seed: 1, ECC: ECCSECDED, SpareRowsPerBank: 2, BootScreen: true,
		ExtraFaults: map[int][]dram.Fault{0: {{Kind: dram.WordlineStuck0, Row: 4}}},
	})
	st := l.Stats()
	if st.BootRemapped != 1 {
		t.Fatalf("BootRemapped = %d (stats %+v)", st.BootRemapped, st)
	}
	if _, err := readRow(t, l, dev, 0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if len(*events) != 0 {
		t.Fatalf("pre-repaired row still faults at runtime: %+v", *events)
	}
}

// TestOutcomeStrings pins the observer-facing names.
func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeCorrected:      "corrected",
		OutcomeRetryRecovered: "retry-recovered",
		OutcomeRemapped:       "remapped",
		OutcomeOfflined:       "offlined",
		OutcomeUncorrected:    "uncorrected",
		OutcomeMiscorrected:   "miscorrected",
		OutcomeSilent:         "silent",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
}
