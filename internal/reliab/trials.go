package reliab

import (
	"fmt"
	"sync"
)

// TrialResult is the outcome of one fault-injection trial of a
// campaign.
type TrialResult struct {
	// Trial is the campaign index of this result; results come back
	// sorted by it regardless of worker scheduling.
	Trial int
	// Seed is the derived per-trial seed the trial ran under.
	Seed int64
	// Stats are the trial's final reliability counters.
	Stats Stats
	// Events is the trial's full fault-event stream in service order.
	Events []FaultEvent
}

// TrialFunc runs one complete fault-injection experiment under the
// given derived seed — typically a scheduler run with Config.Seed set
// to it — and returns the stats and event stream.
type TrialFunc func(trial int, seed int64) (Stats, []FaultEvent, error)

// RunTrials runs a Monte-Carlo fault-injection campaign: trials
// independent experiments, each under a seed derived from baseSeed and
// the trial index alone, fanned out over workers goroutines. Because
// every trial's randomness is a pure function of its derived seed, the
// result slice is byte-identical for any worker count — the property
// the determinism tests pin down.
func RunTrials(trials, workers int, baseSeed int64, run TrialFunc) ([]TrialResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("reliab: campaign needs at least 1 trial, got %d", trials)
	}
	return RunTrialsRange(0, trials, workers, baseSeed, run)
}

// RunTrialsRange runs the campaign members with absolute trial index in
// [from, to). Seeds derive from the absolute index, so a campaign split
// into disjoint ranges produces exactly the same per-trial results as
// one uninterrupted RunTrials call — the primitive behind resumable
// trial-range checkpoints in the job API.
func RunTrialsRange(from, to, workers int, baseSeed int64, run TrialFunc) ([]TrialResult, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("reliab: invalid trial range [%d, %d)", from, to)
	}
	n := to - from
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	results := make([]TrialResult, n)
	errs := make([]error, n)
	idx := make(chan int, n)
	for i := from; i < to; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				seed := TrialSeed(baseSeed, i)
				stats, events, err := run(i, seed)
				if err != nil {
					errs[i-from] = fmt.Errorf("reliab: trial %d: %w", i, err)
					continue
				}
				results[i-from] = TrialResult{Trial: i, Seed: seed, Stats: stats, Events: events}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// TrialSeed derives the seed of one campaign trial from the base seed —
// exported so single-trial reruns can reproduce a campaign member.
func TrialSeed(baseSeed int64, trial int) int64 {
	return int64(mix64(uint64(baseSeed), uint64(trial)+0x5ca1ab1e))
}
