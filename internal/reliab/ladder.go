package reliab

import (
	"fmt"

	"edram/internal/bist"
	"edram/internal/dram"
	"edram/internal/mapping"
	"edram/internal/yield"
)

// Outcome is the final disposition of one faulty access after the
// ladder ran.
type Outcome int

const (
	// OutcomeCorrected: ECC corrected the data in place.
	OutcomeCorrected Outcome = iota
	// OutcomeRetryRecovered: the retry re-read came back clean or
	// correctable (a transient).
	OutcomeRetryRecovered
	// OutcomeRemapped: retries kept failing; the row was redirected to
	// a spare row.
	OutcomeRemapped
	// OutcomeOfflined: no spares left; the page was taken out of
	// service and its addresses aliased to a live page.
	OutcomeOfflined
	// OutcomeUncorrected: data lost and no repair was possible (even
	// offlining failed).
	OutcomeUncorrected
	// OutcomeMiscorrected: the decoder corrected the wrong bit.
	OutcomeMiscorrected
	// OutcomeSilent: the errors were invisible to the scheme.
	OutcomeSilent
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCorrected:
		return "corrected"
	case OutcomeRetryRecovered:
		return "retry-recovered"
	case OutcomeRemapped:
		return "remapped"
	case OutcomeOfflined:
		return "offlined"
	case OutcomeUncorrected:
		return "uncorrected"
	case OutcomeMiscorrected:
		return "miscorrected"
	case OutcomeSilent:
		return "silent"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// FaultEvent is one time-stamped runtime error event — the reliability
// counterpart of sched.TraceEntry, streamed through the controller's
// FaultObserver hook in service order.
type FaultEvent struct {
	// TimeNs is when the ladder resolved the access (after any retries
	// and scrubs).
	TimeNs float64
	// Client is the memory client whose access hit the fault.
	Client    string
	Bank, Row int
	// HardBits / SoftBits are the worst-word persistent and transient
	// bit-error counts of the first (pre-retry) observation.
	HardBits, SoftBits int
	// Attempts is the number of retries issued.
	Attempts int
	Outcome  Outcome
}

// Stats accumulates the reliability counters of one run — the
// ReliabilityStats of the controller result.
type Stats struct {
	// InjectedFaults / WeakCells describe the drawn defect map.
	InjectedFaults int
	WeakCells      int
	// DefectFingerprint identifies the map (determinism checks).
	DefectFingerprint uint64
	// BootRemapped / BootOfflined count boot-screen pre-repairs.
	BootRemapped int64
	BootOfflined int64
	// FaultyAccesses counts accesses that observed at least one bit
	// error; the Outcome counters below partition them.
	FaultyAccesses int64
	Corrected      int64
	RetryRecovered int64
	Remapped       int64
	Offlined       int64
	Uncorrected    int64
	Miscorrected   int64
	Silent         int64
	// Retries counts individual retry bursts; Scrubs full-row scrub
	// rewrites.
	Retries int64
	Scrubs  int64
	// RetryNs / ScrubNs / DecodeNs is device or pipeline time stolen
	// from the clients by each mechanism.
	RetryNs  float64
	ScrubNs  float64
	DecodeNs float64
	// SparesUsed / SparesTotal describe the repair budget; OfflinedRows
	// and CapacityLossFrac the graceful degradation reached by the end
	// of the run.
	SparesUsed       int
	SparesTotal      int
	OfflinedRows     int
	CapacityLossFrac float64
}

// Ladder is the controller-side reliability engine: it owns the fault
// process, the ECC scheme, the spare-row allocator and the degradation
// state, and is invoked by the scheduler after every served request.
type Ladder struct {
	cfg         Config
	proc        *Process
	dev         *dram.Device
	deg         *mapping.Degraded
	alloc       *yield.Allocator
	observer    func(FaultEvent)
	stats       Stats
	rowsPerBank int
	// pending accumulates per-word bit-error counts reported by the
	// device backing during the burst currently being served.
	pending []int
	accessN int64
}

// NewLadder builds the fault process for the device's organization,
// attaches the functional backing (and error callback) to the device,
// optionally runs the boot-time BIST screen, and returns the ladder
// ready for traffic. deg is the degradation surface the scheduler also
// maps addresses through; observer may be nil.
func NewLadder(cfg Config, dev *dram.Device, deg *mapping.Degraded, observer func(FaultEvent)) (*Ladder, error) {
	if dev == nil || deg == nil {
		return nil, fmt.Errorf("reliab: ladder needs a device and a degradation mapping")
	}
	dc := dev.Config()
	proc, err := NewProcess(cfg, dc.Banks, dc.RowsPerBank, dc.PageBits)
	if err != nil {
		return nil, err
	}
	cfg = proc.Config()
	alloc, err := yield.NewAllocator(dc.Banks, cfg.SpareRowsPerBank)
	if err != nil {
		return nil, err
	}
	arrays, err := proc.BuildArrays()
	if err != nil {
		return nil, err
	}
	l := &Ladder{
		cfg: cfg, proc: proc, dev: dev, deg: deg, alloc: alloc,
		observer:    observer,
		rowsPerBank: dc.RowsPerBank,
	}
	l.stats.InjectedFaults = proc.FaultCount()
	l.stats.WeakCells = proc.WeakCells()
	l.stats.DefectFingerprint = proc.Fingerprint()
	_, l.stats.SparesTotal = alloc.Totals()
	if err := dev.SetBacking(arrays, l.onWordError); err != nil {
		return nil, err
	}
	if cfg.BootScreen {
		if err := l.bootScreen(arrays); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// onWordError is the device backing callback: it records each
// mismatching word of the burst in flight.
func (l *Ladder) onWordError(bank, row, bits int) {
	l.pending = append(l.pending, bits)
}

// takePending consumes the worst-word persistent error count observed
// since the last call.
func (l *Ladder) takePending() int {
	worst := 0
	for _, b := range l.pending {
		if b > worst {
			worst = b
		}
	}
	l.pending = l.pending[:0]
	return worst
}

// bootScreen runs the BIST row diagnosis over every bank and
// pre-repairs the rows it finds: spare-row remap while spares last,
// offline after. This is the §6 test/repair flow promoted to boot time.
func (l *Ladder) bootScreen(arrays []*dram.Array) error {
	runner := bist.Runner{CycleNs: 10, ParallelBits: 64}
	for b, a := range arrays {
		diag, err := bist.DiagnoseRows(a, bist.Checkerboard, runner, 0)
		if err != nil {
			return err
		}
		for _, r := range diag.FailingRows {
			if r >= l.rowsPerBank {
				continue // a defective spare row carries no logical data yet
			}
			if l.repairRow(b, r) {
				l.stats.BootRemapped++
			} else if _, _, err := l.deg.Offline(b, r); err == nil {
				l.stats.BootOfflined++
			}
		}
	}
	return nil
}

// repairRow redirects one logical row to the bank's next spare,
// initializing the spare with a scrub. Reports false when the spare
// pool is exhausted.
func (l *Ladder) repairRow(bank, row int) bool {
	spare, ok := l.alloc.Allocate(bank)
	if !ok {
		return false
	}
	if err := l.dev.RedirectRow(bank, row, l.rowsPerBank+spare); err != nil {
		return false
	}
	return true
}

// Stats returns the counters accumulated so far, with the
// degradation-state fields refreshed.
func (l *Ladder) Stats() Stats {
	s := l.stats
	s.SparesUsed, s.SparesTotal = l.alloc.Totals()
	s.OfflinedRows = l.deg.OfflinedPages()
	s.CapacityLossFrac = l.deg.CapacityLossFraction()
	return s
}

// emit sends one event to the observer and counts the access.
func (l *Ladder) emit(ev FaultEvent) {
	l.stats.FaultyAccesses++
	if l.observer != nil {
		l.observer(ev)
	}
}

// AfterAccess runs the ladder on one served request: it merges the
// persistent word errors the device backing reported during the burst
// with the transient errors of the fault process, classifies them under
// the ECC scheme, and walks detect→retry→remap→degrade as far as the
// fault demands. It returns the access completion time extended by any
// decode, retry and scrub activity. beats is the burst length of the
// original access.
func (l *Ladder) AfterAccess(client string, bank, row int, write bool, beats int, res dram.AccessResult) (float64, error) {
	hard := l.takePending()
	n := l.accessN
	l.accessN++
	done := res.DoneNs
	if !write {
		// Syndrome decode sits on every read's critical path.
		done += l.cfg.ECC.DecodeNs()
		l.stats.DecodeNs += l.cfg.ECC.DecodeNs()
	}
	soft := 0
	if !write {
		soft = l.proc.SoftBits(n, 0, bank, row)
	}
	bits := hard + soft
	if bits == 0 {
		return done, nil
	}
	ev := FaultEvent{Client: client, Bank: bank, Row: row, HardBits: hard, SoftBits: soft}
	verdict := l.cfg.ECC.Classify(bits)

	// Retry rung: a detected-uncorrectable word is re-read a bounded
	// number of times. Transients re-roll (and vanish); persistent
	// faults keep the verdict at Detected.
	for verdict == VerdictDetected && ev.Attempts < l.cfg.MaxRetries {
		ev.Attempts++
		l.stats.Retries++
		r2, err := l.dev.Burst(done, bank, row, beats, false)
		if err != nil {
			return done, fmt.Errorf("reliab: retry: %w", err)
		}
		l.stats.RetryNs += r2.DoneNs - done
		done = r2.DoneNs + l.cfg.ECC.DecodeNs()
		l.stats.DecodeNs += l.cfg.ECC.DecodeNs()
		hard = l.takePending()
		soft = l.proc.SoftBits(n, ev.Attempts, bank, row)
		bits = hard + soft
		verdict = l.cfg.ECC.Classify(bits)
	}

	switch verdict {
	case VerdictClean:
		ev.Outcome = OutcomeRetryRecovered
		l.stats.RetryRecovered++
	case VerdictCorrected:
		if ev.Attempts > 0 {
			ev.Outcome = OutcomeRetryRecovered
			l.stats.RetryRecovered++
		} else {
			ev.Outcome = OutcomeCorrected
			l.stats.Corrected++
		}
		// Correctable errors with a persistent cause are scrubbed on
		// read: rewrite the row so decayed weak cells are restored
		// (stuck cells will re-surface and eventually climb the
		// ladder through repeated correction).
		if hard > 0 {
			var err error
			done, err = l.scrub(done, bank, row)
			if err != nil {
				return done, err
			}
		}
	case VerdictDetected:
		// Retries exhausted: a persistent uncorrectable fault. The
		// word's data is lost; repair the page so future traffic is
		// clean — spare-row remap while spares last, then graceful
		// capacity degradation.
		if l.repairRow(bank, row) {
			ev.Outcome = OutcomeRemapped
			l.stats.Remapped++
			var err error
			done, err = l.scrub(done, bank, row) // initialize the spare
			if err != nil {
				return done, err
			}
		} else if _, _, err := l.deg.Offline(bank, row); err == nil {
			ev.Outcome = OutcomeOfflined
			l.stats.Offlined++
		} else {
			ev.Outcome = OutcomeUncorrected
			l.stats.Uncorrected++
		}
	case VerdictMiscorrected:
		ev.Outcome = OutcomeMiscorrected
		l.stats.Miscorrected++
	case VerdictSilent:
		ev.Outcome = OutcomeSilent
		l.stats.Silent++
	}
	ev.TimeNs = done
	l.emit(ev)
	return done, nil
}

// scrub rewrites one row through the device and accounts the stolen
// time.
func (l *Ladder) scrub(now float64, bank, row int) (float64, error) {
	res, err := l.dev.ScrubRow(now, bank, row)
	if err != nil {
		return now, fmt.Errorf("reliab: scrub: %w", err)
	}
	l.stats.Scrubs++
	l.stats.ScrubNs += res.DoneNs - now
	return res.DoneNs, nil
}
