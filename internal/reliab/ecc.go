// Package reliab implements the runtime reliability pipeline of the
// reproduction: an ECC model (parity, SEC-DED, chipkill-lite), a
// seeded, deterministic fault process that turns manufacturing defect
// maps, a retention-time tail and a transient soft-error rate into
// time-stamped fault events during scheduled traffic, and the
// detect→retry→remap→degrade ladder the memory controller runs those
// events through. It connects the paper's §5 redundancy and §6
// test/repair machinery — so far exercised only at manufacturing test —
// to the §4 timing world, in the spirit of "A Case for Transparent
// Reliability in DRAM Systems" (arXiv 2204.10378): reliability
// mechanisms modelled inside the memory system, with their bandwidth,
// latency, storage and capacity costs on the books.
package reliab

import (
	"encoding/json"
	"fmt"
)

// ECC selects the per-word error-correcting code of the memory
// interface. The code word is one DataBits-wide interface word plus
// CheckBits stored alongside it (the storage overhead fed back into the
// area and cost models).
type ECC int

const (
	// ECCNone: errors pass through silently.
	ECCNone ECC = iota
	// ECCParity: one check bit per word; detects odd bit counts,
	// corrects nothing.
	ECCParity
	// ECCSECDED: single-error-correct, double-error-detect Hamming.
	ECCSECDED
	// ECCChipkillLite: two interleaved SEC-DED half-words; corrects up
	// to 2 bit errors, detects up to 4 — a lightweight stand-in for
	// symbol-based chipkill.
	ECCChipkillLite
)

// String implements fmt.Stringer.
func (e ECC) String() string {
	switch e {
	case ECCNone:
		return "none"
	case ECCParity:
		return "parity"
	case ECCSECDED:
		return "secded"
	case ECCChipkillLite:
		return "chipkill"
	default:
		return fmt.Sprintf("ECC(%d)", int(e))
	}
}

// ParseECC parses an ECC scheme name as used by CLI flags.
func ParseECC(s string) (ECC, error) {
	switch s {
	case "none", "":
		return ECCNone, nil
	case "parity":
		return ECCParity, nil
	case "secded", "sec-ded":
		return ECCSECDED, nil
	case "chipkill", "chipkill-lite":
		return ECCChipkillLite, nil
	default:
		return ECCNone, fmt.Errorf("reliab: unknown ECC scheme %q (none, parity, secded, chipkill)", s)
	}
}

// MarshalJSON renders the scheme by name, keeping the service layer's
// wire schema human-readable and stable across any renumbering.
func (e ECC) MarshalJSON() ([]byte, error) {
	return json.Marshal(e.String())
}

// UnmarshalJSON accepts the scheme name.
func (e *ECC) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	scheme, err := ParseECC(s)
	if err != nil {
		return err
	}
	*e = scheme
	return nil
}

// secdedCheckBits returns the Hamming SEC-DED check-bit count for a
// data word: the smallest r with 2^r >= data+r+1, plus the extra
// overall-parity bit.
func secdedCheckBits(dataBits int) int {
	r := 0
	for (1 << uint(r)) < dataBits+r+1 {
		r++
	}
	return r + 1
}

// CheckBits returns the number of check bits the scheme stores per
// dataBits-wide word (64-bit SEC-DED: 8; the classic 12.5%).
func (e ECC) CheckBits(dataBits int) int {
	if dataBits <= 0 {
		return 0
	}
	switch e {
	case ECCParity:
		return 1
	case ECCSECDED:
		return secdedCheckBits(dataBits)
	case ECCChipkillLite:
		half := dataBits / 2
		if half < 1 {
			half = 1
		}
		return 2 * secdedCheckBits(half)
	default:
		return 0
	}
}

// StorageOverhead returns CheckBits as a fraction of the data width —
// the extra cell area (and capacity the macro must carry) per stored
// word.
func (e ECC) StorageOverhead(dataBits int) float64 {
	if dataBits <= 0 {
		return 0
	}
	return float64(e.CheckBits(dataBits)) / float64(dataBits)
}

// DecodeNs returns the per-read-access decode/correct latency adder of
// the scheme: syndrome generation sits on the critical read path, and
// heavier codes pay more.
func (e ECC) DecodeNs() float64 {
	switch e {
	case ECCParity:
		return 0.5
	case ECCSECDED:
		return 1.0
	case ECCChipkillLite:
		return 2.0
	default:
		return 0
	}
}

// Verdict classifies what the ECC decoder did with one word.
type Verdict int

const (
	// VerdictClean: no bit errors.
	VerdictClean Verdict = iota
	// VerdictCorrected: errors within the correction capability; data
	// restored.
	VerdictCorrected
	// VerdictDetected: errors beyond correction but within detection —
	// the uncorrectable-error signal that starts the retry ladder.
	VerdictDetected
	// VerdictMiscorrected: errors aliased onto a correctable syndrome;
	// the decoder "fixed" the wrong bit and made things worse.
	VerdictMiscorrected
	// VerdictSilent: errors entirely invisible to the scheme (silent
	// data corruption).
	VerdictSilent
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictCorrected:
		return "corrected"
	case VerdictDetected:
		return "detected"
	case VerdictMiscorrected:
		return "miscorrected"
	case VerdictSilent:
		return "silent"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Classify returns the decoder outcome for a word carrying bits flipped
// bits. The aliasing rules follow the standard coding results: parity
// misses even counts; SEC-DED corrects 1, detects 2, and miscorrects
// roughly the odd counts >= 3; chipkill-lite doubles both capabilities.
func (e ECC) Classify(bits int) Verdict {
	if bits <= 0 {
		return VerdictClean
	}
	switch e {
	case ECCNone:
		return VerdictSilent
	case ECCParity:
		if bits%2 == 1 {
			return VerdictDetected
		}
		return VerdictSilent
	case ECCSECDED:
		switch {
		case bits == 1:
			return VerdictCorrected
		case bits == 2:
			return VerdictDetected
		case bits%2 == 1:
			return VerdictMiscorrected
		default:
			return VerdictDetected
		}
	case ECCChipkillLite:
		switch {
		case bits <= 2:
			return VerdictCorrected
		case bits <= 4:
			return VerdictDetected
		case bits%2 == 1:
			return VerdictMiscorrected
		default:
			return VerdictDetected
		}
	default:
		return VerdictSilent
	}
}
