package power

import (
	"math"
	"testing"
	"testing/quick"

	"edram/internal/tech"
)

func TestInterfacePowerUnits(t *testing.T) {
	// 1 bit, 1 pF, 1 V, 1 MHz, activity 1 => 1 µW = 0.001 mW.
	got := InterfacePowerMW(1, 1, 1, 1, 1)
	if math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("unit anchor wrong: %v", got)
	}
}

func TestInterfacePowerDegenerate(t *testing.T) {
	if InterfacePowerMW(0, 1, 1, 1, 1) != 0 ||
		InterfacePowerMW(8, 0, 1, 1, 1) != 0 ||
		InterfacePowerMW(8, 1, 1, 0, 1) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestInterfacePowerQuadraticInV(t *testing.T) {
	p1 := InterfacePowerMW(64, 30, 2.5, 100, 0.5)
	p2 := InterfacePowerMW(64, 30, 5.0, 100, 0.5)
	if math.Abs(p2/p1-4) > 1e-9 {
		t.Errorf("power must scale with V²: ratio %v", p2/p1)
	}
}

func TestPaper10xIOPowerClaim(t *testing.T) {
	// Paper §1: "consider a system which needs a 4 GB/s bandwidth and a
	// bus width of 256 bits. A memory system built with discrete SDRAMs
	// (16-bit interface at 100 MHz) would require about ten times the
	// power of an eDRAM with an internal 256-bit interface."
	e := tech.DefaultElectrical()
	cmp, err := CompareInterfaces(e, 4.0, 256, 2.5, 16, 100, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DiscreteChips != 20 {
		// 4 GB/s / (16 bit @ 100 MHz = 0.2 GB/s) = 20 chips ("about ten
		// times the power" comes from the load ratio, not chip count).
		t.Errorf("discrete chips = %d, want 20", cmp.DiscreteChips)
	}
	if cmp.PowerRatio < 5 || cmp.PowerRatio > 25 {
		t.Fatalf("interface power ratio %.1fx outside the paper's ~10x regime", cmp.PowerRatio)
	}
	// Both systems must actually deliver 4 GB/s.
	if math.Abs(cmp.Embedded.BandwidthGB*cmp.Embedded.TransferMHz/cmp.Embedded.TransferMHz-4) > 1e-9 {
		t.Errorf("embedded bandwidth %.2f GB/s, want 4", cmp.Embedded.BandwidthGB)
	}
}

func TestCompareInterfacesErrors(t *testing.T) {
	e := tech.DefaultElectrical()
	if _, err := CompareInterfaces(e, 0, 256, 2.5, 16, 100, 3.3); err == nil {
		t.Error("zero bandwidth must error")
	}
	if _, err := CompareInterfaces(e, 4, 0, 2.5, 16, 100, 3.3); err == nil {
		t.Error("zero embedded width must error")
	}
	if _, err := CompareInterfaces(e, 4, 256, 2.5, 16, 0, 3.3); err == nil {
		t.Error("zero chip rate must error")
	}
}

func TestCompareInterfacesChipCeil(t *testing.T) {
	e := tech.DefaultElectrical()
	// 0.3 GB/s needs 2 chips of 0.2 GB/s each.
	cmp, err := CompareInterfaces(e, 0.3, 64, 2.5, 16, 100, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DiscreteChips != 2 {
		t.Errorf("chips = %d, want 2", cmp.DiscreteChips)
	}
}

func TestCoreEnergyBasics(t *testing.T) {
	c := DefaultCoreEnergy()
	if c.ActivateEnergyPJ(0) != 0 || c.AccessEnergyPJ(-1) != 0 {
		t.Error("degenerate energies must be 0")
	}
	if c.ActivateEnergyPJ(2048) <= c.ActivateEnergyPJ(1024) {
		t.Error("longer pages must cost more activate energy")
	}
	if c.AccessEnergyPJ(256) != 256*c.ColumnPJPerBit {
		t.Error("column energy must be linear in bits")
	}
}

func TestRefreshPower(t *testing.T) {
	c := DefaultCoreEnergy()
	// Refresh power must be linear in total size and inverse in
	// retention.
	p1 := c.RefreshPowerMW(16<<20, 2048, 64)
	p2 := c.RefreshPowerMW(32<<20, 2048, 64)
	p3 := c.RefreshPowerMW(16<<20, 2048, 32)
	if math.Abs(p2/p1-2) > 1e-9 {
		t.Errorf("refresh power not linear in size: %v", p2/p1)
	}
	if math.Abs(p3/p1-2) > 1e-9 {
		t.Errorf("refresh power not inverse in retention: %v", p3/p1)
	}
	if c.RefreshPowerMW(0, 2048, 64) != 0 || c.RefreshPowerMW(16<<20, 0, 64) != 0 || c.RefreshPowerMW(16<<20, 2048, 0) != 0 {
		t.Error("degenerate refresh inputs must yield 0")
	}
	// Sanity: a 16-Mbit macro refreshes in the tens-of-µW..mW range,
	// not watts.
	if p1 <= 0 || p1 > 100 {
		t.Errorf("16-Mbit refresh power %.3f mW implausible", p1)
	}
}

func TestStandbyPower(t *testing.T) {
	c := DefaultCoreEnergy()
	if c.StandbyPowerMW(16<<20) != 16*c.StandbyMWPerMbit {
		t.Error("standby power must be linear in Mbit")
	}
	if c.StandbyPowerMW(-1) != 0 {
		t.Error("negative size must yield 0")
	}
}

func TestThermalRetentionFeedback(t *testing.T) {
	// Paper §1: per-chip power may increase, raising junction
	// temperature and lowering retention.
	th := DefaultThermal()
	p := tech.Siemens024()
	coolTJ := th.JunctionC(200) // 0.2 W
	hotTJ := th.JunctionC(2000) // 2 W
	if hotTJ <= coolTJ {
		t.Fatal("more power must mean hotter junction")
	}
	rCool, err := RetentionAtJunction(p, coolTJ)
	if err != nil {
		t.Fatal(err)
	}
	rHot, err := RetentionAtJunction(p, hotTJ)
	if err != nil {
		t.Fatal(err)
	}
	if rHot >= rCool {
		t.Fatalf("retention must fall with temperature: %.1f vs %.1f ms", rHot, rCool)
	}
	// Exactly one halving per RetentionHalvingC.
	rRef, _ := RetentionAtJunction(p, p.RefJunctionC)
	rPlus10, _ := RetentionAtJunction(p, p.RefJunctionC+p.RetentionHalvingC)
	if math.Abs(rRef/rPlus10-2) > 1e-9 {
		t.Errorf("halving rule violated: %v", rRef/rPlus10)
	}
}

func TestRetentionBadProcess(t *testing.T) {
	p := tech.Siemens024()
	p.RetentionHalvingC = 0
	if _, err := RetentionAtJunction(p, 70); err == nil {
		t.Error("missing halving constant must error")
	}
}

func TestJunctionNegativePower(t *testing.T) {
	th := DefaultThermal()
	if th.JunctionC(-100) != th.AmbientC {
		t.Error("negative power must clamp to ambient")
	}
}

// Property: interface power is linear in width, load, frequency and
// activity.
func TestInterfacePowerLinearity(t *testing.T) {
	f := func(w uint8, load, mhz uint16) bool {
		width := int(w%128) + 1
		l := float64(load%100)/10 + 0.1
		f0 := float64(mhz%500) + 1
		p1 := InterfacePowerMW(width, l, 3.3, f0, 0.5)
		p2 := InterfacePowerMW(2*width, l, 3.3, f0, 0.5)
		p3 := InterfacePowerMW(width, 2*l, 3.3, f0, 0.5)
		p4 := InterfacePowerMW(width, l, 3.3, 2*f0, 0.5)
		eq := func(a, b float64) bool { return math.Abs(a-b) < 1e-9*(math.Abs(a)+1) }
		return eq(p2, 2*p1) && eq(p3, 2*p1) && eq(p4, 2*p1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the discrete/embedded comparison always reports enough chips
// to meet the bandwidth, and the embedded side never uses the off-chip
// load.
func TestCompareInterfacesProperty(t *testing.T) {
	e := tech.DefaultElectrical()
	f := func(bwRaw, widthRaw uint8) bool {
		bw := float64(bwRaw%80)/10 + 0.1
		width := 16 << (widthRaw % 6) // 16..512
		cmp, err := CompareInterfaces(e, bw, width, 2.5, 16, 100, 3.3)
		if err != nil {
			return false
		}
		perChip := 0.2 // 16 bit @ 100 MHz
		if float64(cmp.DiscreteChips)*perChip < bw-1e-9 {
			return false
		}
		return cmp.Embedded.LoadPF == e.OnChipLoadPF && cmp.Discrete.LoadPF == e.OffChipLoadPF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyOfCounts(t *testing.T) {
	c := DefaultCoreEnergy()
	s := c.EnergyOfCounts(10, 2, 640, 2048)
	wantAct := 10 * c.ActivateEnergyPJ(2048)
	wantCol := 640 * c.ColumnPJPerBit
	wantRef := 2 * c.RefreshPJPerBitOfPage * 2048
	if math.Abs(s.ActivatePJ-wantAct) > 1e-9 || math.Abs(s.ColumnPJ-wantCol) > 1e-9 ||
		math.Abs(s.RefreshPJ-wantRef) > 1e-9 {
		t.Fatalf("breakdown wrong: %+v", s)
	}
	if math.Abs(s.TotalPJ-(wantAct+wantCol+wantRef)) > 1e-9 {
		t.Error("total must sum")
	}
	if math.Abs(s.PJPerBit-s.TotalPJ/640) > 1e-12 {
		t.Error("per-bit wrong")
	}
	if c.EnergyOfCounts(0, 0, 0, 2048).PJPerBit != 0 {
		t.Error("zero bits must yield zero per-bit")
	}
}

func TestSimEnergyHitRateEffect(t *testing.T) {
	// More activations for the same data = more energy: the energy
	// face of the page-hit argument.
	c := DefaultCoreEnergy()
	hits := c.EnergyOfCounts(5, 0, 10000, 2048)
	thrash := c.EnergyOfCounts(100, 0, 10000, 2048)
	if thrash.PJPerBit <= hits.PJPerBit {
		t.Error("page thrashing must cost energy per bit")
	}
}
