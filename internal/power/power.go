// Package power implements the power and thermal models of the
// reproduction: CV²f interface power for on-chip versus off-chip drivers
// (the basis of the paper's ~10x system-power claim, §1), DRAM core
// energy (activate / column access / refresh), and the junction-
// temperature → retention-time feedback the paper warns about ("junction
// temperature may increase and DRAM retention time may decrease").
package power

import (
	"fmt"
	"math"

	"edram/internal/tech"
)

// InterfacePowerMW returns the switching power of a bus.
//
//	P = activity · width · C · V² · f
//
// with C in pF, V in volts and f in MHz; the result is in mW
// (pF·V²·MHz = µW, /1000 → mW).
func InterfacePowerMW(widthBits int, loadPF, vddV, transferMHz, activity float64) float64 {
	if widthBits <= 0 || loadPF <= 0 || transferMHz <= 0 {
		return 0
	}
	uw := activity * float64(widthBits) * loadPF * vddV * vddV * transferMHz
	return uw / 1000
}

// BusPower describes one evaluated interface.
type BusPower struct {
	WidthBits   int
	TransferMHz float64
	LoadPF      float64
	VddV        float64
	PowerMW     float64
	BandwidthGB float64 // delivered GB/s at 1 transfer/cycle
}

// OffChipBus evaluates an off-chip (board-level) interface of the given
// width and rate using the electrical constants e.
func OffChipBus(e tech.Electrical, widthBits int, transferMHz, vddV float64) BusPower {
	return evalBus(widthBits, transferMHz, e.OffChipLoadPF, vddV, e.SwitchingActivity)
}

// OnChipBus evaluates an on-chip interface of the given width and rate.
func OnChipBus(e tech.Electrical, widthBits int, transferMHz, vddV float64) BusPower {
	return evalBus(widthBits, transferMHz, e.OnChipLoadPF, vddV, e.SwitchingActivity)
}

func evalBus(widthBits int, transferMHz, loadPF, vddV, activity float64) BusPower {
	return BusPower{
		WidthBits:   widthBits,
		TransferMHz: transferMHz,
		LoadPF:      loadPF,
		VddV:        vddV,
		PowerMW:     InterfacePowerMW(widthBits, loadPF, vddV, transferMHz, activity),
		BandwidthGB: float64(widthBits) / 8 * transferMHz * 1e6 / 1e9,
	}
}

// CoreEnergy holds the DRAM core energy coefficients. Defaults are
// calibrated for the 0.24 µm generation.
type CoreEnergy struct {
	// ActivatePJPerBitOfPage is the energy to fire the sense amplifiers
	// of one page, per page bit (wordline + bitline swing + restore).
	ActivatePJPerBitOfPage float64
	// ColumnPJPerBit is the energy to move one bit through the column
	// path on a read or write.
	ColumnPJPerBit float64
	// RefreshPJPerBitOfPage is the per-bit energy of one refresh of one
	// page (an internal activate/precharge).
	RefreshPJPerBitOfPage float64
	// StandbyMWPerMbit is the dc standby power per Mbit.
	StandbyMWPerMbit float64
}

// DefaultCoreEnergy returns the 0.24 µm-generation coefficients.
func DefaultCoreEnergy() CoreEnergy {
	return CoreEnergy{
		ActivatePJPerBitOfPage: 0.40,
		ColumnPJPerBit:         0.9,
		RefreshPJPerBitOfPage:  0.40,
		StandbyMWPerMbit:       0.05,
	}
}

// ActivateEnergyPJ is the energy of one row activation of the given page
// length.
func (c CoreEnergy) ActivateEnergyPJ(pageBits int) float64 {
	if pageBits <= 0 {
		return 0
	}
	return c.ActivatePJPerBitOfPage * float64(pageBits)
}

// AccessEnergyPJ is the column-path energy of transferring n bits.
func (c CoreEnergy) AccessEnergyPJ(bits int) float64 {
	if bits <= 0 {
		return 0
	}
	return c.ColumnPJPerBit * float64(bits)
}

// RefreshPowerMW is the average refresh power of a memory of totalBits
// organized in pages of pageBits, each refreshed every retentionMs.
func (c CoreEnergy) RefreshPowerMW(totalBits, pageBits int, retentionMs float64) float64 {
	if totalBits <= 0 || pageBits <= 0 || retentionMs <= 0 {
		return 0
	}
	pages := float64(totalBits) / float64(pageBits)
	energyPerRound := c.RefreshPJPerBitOfPage * float64(pageBits) * pages // pJ per full refresh
	// pJ per ms = nW; /1e6 → mW.
	return energyPerRound / retentionMs / 1e6
}

// StandbyPowerMW is the dc standby power of a memory of totalBits.
func (c CoreEnergy) StandbyPowerMW(totalBits int) float64 {
	if totalBits <= 0 {
		return 0
	}
	return c.StandbyMWPerMbit * float64(totalBits) / (1 << 20)
}

// Thermal is a lumped package thermal model.
type Thermal struct {
	AmbientC     float64
	ThetaJACPerW float64 // junction-to-ambient resistance, °C/W
}

// DefaultThermal returns a plastic-package model of the era.
func DefaultThermal() Thermal {
	return Thermal{AmbientC: 45, ThetaJACPerW: 35}
}

// JunctionC returns the junction temperature at the given chip power.
func (th Thermal) JunctionC(chipPowerMW float64) float64 {
	if chipPowerMW < 0 {
		chipPowerMW = 0
	}
	return th.AmbientC + th.ThetaJACPerW*chipPowerMW/1000
}

// RetentionAtJunction returns the retention time of process p at junction
// temperature tj, using the exponential halving rule
// (retention halves every RetentionHalvingC degrees above reference).
func RetentionAtJunction(p tech.Process, tjC float64) (float64, error) {
	if p.RetentionHalvingC <= 0 {
		return 0, fmt.Errorf("power: process %q has no retention halving constant", p.Name)
	}
	return p.RetentionMs * math.Pow(2, (p.RefJunctionC-tjC)/p.RetentionHalvingC), nil
}

// SystemComparison is the result of comparing a discrete memory system
// against an embedded one at the same delivered bandwidth (paper §1's
// 4-GB/s example).
type SystemComparison struct {
	Discrete BusPower
	Embedded BusPower
	// DiscreteChips is the number of discrete devices ganged to reach
	// the required width.
	DiscreteChips int
	// PowerRatio is discrete interface power / embedded interface power.
	PowerRatio float64
}

// CompareInterfaces reproduces the paper's §1 example: a system needing
// bandwidthGBps with an embedded bus of embWidthBits versus a bank of
// discrete parts each with chipWidthBits at chipMHz. Both systems run at
// whatever transfer rate delivers exactly the target bandwidth; the
// discrete system pays board-level loads on every chip pin, and both
// rates must be achievable (the discrete chips cap at chipMHz).
func CompareInterfaces(e tech.Electrical, bandwidthGBps float64, embWidthBits int, embVddV float64, chipWidthBits int, chipMHz, chipVddV float64) (SystemComparison, error) {
	if bandwidthGBps <= 0 {
		return SystemComparison{}, fmt.Errorf("power: bandwidth must be positive, got %g", bandwidthGBps)
	}
	if embWidthBits <= 0 || chipWidthBits <= 0 || chipMHz <= 0 {
		return SystemComparison{}, fmt.Errorf("power: widths and chip rate must be positive")
	}
	// Embedded: one wide on-chip bus at the rate that meets the target.
	embMHz := bandwidthGBps * 1e9 * 8 / float64(embWidthBits) / 1e6
	emb := OnChipBus(e, embWidthBits, embMHz, embVddV)

	// Discrete: chips run at their full rate; gang enough of them.
	perChipGBps := float64(chipWidthBits) / 8 * chipMHz * 1e6 / 1e9
	chips := int(math.Ceil(bandwidthGBps / perChipGBps))
	if chips < 1 {
		chips = 1
	}
	totalWidth := chips * chipWidthBits
	// The ganged bus transfers at the rate that meets the target on the
	// composed width (it cannot exceed chipMHz by construction).
	disMHz := bandwidthGBps * 1e9 * 8 / float64(totalWidth) / 1e6
	dis := OffChipBus(e, totalWidth, disMHz, chipVddV)

	ratio := 0.0
	if emb.PowerMW > 0 {
		ratio = dis.PowerMW / emb.PowerMW
	}
	return SystemComparison{Discrete: dis, Embedded: emb, DiscreteChips: chips, PowerRatio: ratio}, nil
}

// SimEnergy converts event counts from a simulation into core energy.
// Activations are page opens (misses + empties + refresh rounds); the
// column term covers the transferred bits.
type SimEnergy struct {
	ActivatePJ float64
	ColumnPJ   float64
	RefreshPJ  float64
	TotalPJ    float64
	// PJPerBit is total energy over transferred bits.
	PJPerBit float64
}

// EnergyOfCounts computes the core energy of a simulated run.
func (c CoreEnergy) EnergyOfCounts(activates, refreshes, transferredBits int64, pageBits int) SimEnergy {
	var s SimEnergy
	s.ActivatePJ = float64(activates) * c.ActivateEnergyPJ(pageBits)
	s.ColumnPJ = float64(transferredBits) * c.ColumnPJPerBit
	s.RefreshPJ = float64(refreshes) * c.RefreshPJPerBitOfPage * float64(pageBits)
	s.TotalPJ = s.ActivatePJ + s.ColumnPJ + s.RefreshPJ
	if transferredBits > 0 {
		s.PJPerBit = s.TotalPJ / float64(transferredBits)
	}
	return s
}
