package bist

import (
	"strings"
	"testing"

	"edram/internal/dram"
)

func TestBackgroundPatterns(t *testing.T) {
	if Solid.at(3, 5) || Solid.at(0, 0) {
		t.Error("solid background must be all zeros")
	}
	if !Checkerboard.at(0, 1) || Checkerboard.at(1, 1) {
		t.Error("checkerboard parity wrong")
	}
	if RowStripes.at(0, 7) || !RowStripes.at(1, 7) {
		t.Error("row stripes wrong")
	}
	if ColStripes.at(7, 0) || !ColStripes.at(7, 1) {
		t.Error("col stripes wrong")
	}
	seen := map[string]bool{}
	for _, b := range Backgrounds() {
		if s := b.String(); s == "" || seen[s] {
			t.Errorf("bad/duplicate background string %q", s)
		} else {
			seen[s] = true
		}
	}
	if !strings.Contains(Background(9).String(), "9") {
		t.Error("unknown background must embed number")
	}
}

func TestSignatureSensitivity(t *testing.T) {
	var a, b Signature
	for i := 0; i < 100; i++ {
		a.Update(i%3 == 0)
		b.Update(i%3 == 0)
	}
	if a.Value() != b.Value() {
		t.Fatal("identical streams must produce identical signatures")
	}
	// Flip a single bit late in the stream.
	var c Signature
	for i := 0; i < 100; i++ {
		bit := i%3 == 0
		if i == 97 {
			bit = !bit
		}
		c.Update(bit)
	}
	if c.Value() == a.Value() {
		t.Error("single-bit difference must change the signature")
	}
}

func TestSessionCleanMatchesGolden(t *testing.T) {
	for _, bg := range Backgrounds() {
		se := Session{
			Runner:     Runner{CycleNs: 10, ParallelBits: 64},
			Algorithm:  MarchCMinus(),
			Background: bg,
		}
		golden, err := se.GoldenSignature(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		a, err := dram.NewArray(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := se.Run(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Signature != golden {
			t.Errorf("%v: clean device signature mismatch", bg)
		}
		if res.Ops != int64(MarchCMinus().OpsPerCell())*16*16 {
			t.Errorf("%v: ops = %d", bg, res.Ops)
		}
	}
}

func TestSessionGoldenIsZero(t *testing.T) {
	// The MISR compresses the miscompare stream, so the golden
	// signature is the all-zero-input signature regardless of
	// background or geometry.
	se := Session{Runner: Runner{CycleNs: 10, ParallelBits: 64}, Algorithm: MATSPlus(), Background: Checkerboard}
	g1, err := se.GoldenSignature(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	se.Background = Solid
	g2, err := se.GoldenSignature(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	_ = g1
	_ = g2
	// Same stream length differs, so values may differ; the invariant
	// is only clean==golden per session, checked above. Here we check
	// determinism.
	g3, err := se.GoldenSignature(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g3 {
		t.Error("golden signature must be deterministic")
	}
}

func TestSessionDetectsFaults(t *testing.T) {
	kinds := []dram.Fault{
		{Kind: dram.StuckAt0, Row: 3, Col: 3},
		{Kind: dram.StuckAt1, Row: 3, Col: 3},
		{Kind: dram.TransitionUp, Row: 5, Col: 9},
		{Kind: dram.BitlineStuck0, Col: 7},
		{Kind: dram.WordlineStuck0, Row: 2},
	}
	se := Session{
		Runner:     Runner{CycleNs: 10, ParallelBits: 64},
		Algorithm:  MarchCMinus(),
		Background: Solid,
	}
	golden, err := se.GoldenSignature(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range kinds {
		a, err := dram.NewArray(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Inject(f); err != nil {
			t.Fatal(err)
		}
		res, err := se.Run(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Signature == golden {
			t.Errorf("fault %v aliased to the golden signature", f.Kind)
		}
	}
}

func TestBackgroundsCatchStripeCoupling(t *testing.T) {
	// A coupling fault between column neighbours is excited when they
	// hold opposite values: the col-stripe background forces that.
	mk := func() *dram.Array {
		a, err := dram.NewArray(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		// Victim (4,4) inverts when aggressor (4,5) transitions.
		if err := a.Inject(dram.Fault{Kind: dram.CouplingInvert, Row: 4, Col: 4, AggRow: 4, AggCol: 5}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	se := Session{
		Runner:     Runner{CycleNs: 10, ParallelBits: 64},
		Algorithm:  MarchCMinus(),
		Background: ColStripes,
	}
	golden, err := se.GoldenSignature(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := se.Run(mk(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Signature == golden {
		t.Error("col-stripe background must excite the neighbour coupling fault")
	}
}

func TestSessionInvalidRunner(t *testing.T) {
	se := Session{Runner: Runner{}, Algorithm: MATSPlus()}
	a, _ := dram.NewArray(4, 4)
	if _, err := se.Run(a, 0); err == nil {
		t.Error("invalid runner must error")
	}
	if _, err := se.GoldenSignature(0, 4); err == nil {
		t.Error("bad geometry must error")
	}
}

func TestRunMacro(t *testing.T) {
	se := Session{
		Runner:     Runner{CycleNs: 10, ParallelBits: 64},
		Algorithm:  MarchCMinus(),
		Background: Solid,
	}
	mk := func() *dram.Array {
		a, err := dram.NewArray(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Four clean blocks: pass, and wall time equals one block's time.
	blocks := []*dram.Array{mk(), mk(), mk(), mk()}
	mr, err := se.RunMacro(blocks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Pass() || mr.Blocks != 4 {
		t.Fatalf("clean macro must pass: %+v", mr.FailingBlocks)
	}
	single, err := se.Run(mk(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if mr.TestTimeNs != single.TestTimeNs {
		t.Errorf("parallel blocks: macro time %.0f, single block %.0f", mr.TestTimeNs, single.TestTimeNs)
	}
	if mr.Ops != 4*single.Ops {
		t.Errorf("total ops %d, want %d", mr.Ops, 4*single.Ops)
	}

	// Inject a fault into block 2 only: exactly that block fails.
	blocks2 := []*dram.Array{mk(), mk(), mk(), mk()}
	blocks2[2].Inject(dram.Fault{Kind: dram.StuckAt1, Row: 3, Col: 3})
	mr2, err := se.RunMacro(blocks2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mr2.Pass() || len(mr2.FailingBlocks) != 1 || mr2.FailingBlocks[0] != 2 {
		t.Errorf("failing blocks = %v, want [2]", mr2.FailingBlocks)
	}
}

func TestRunMacroErrors(t *testing.T) {
	se := Session{Runner: Runner{CycleNs: 10, ParallelBits: 64}, Algorithm: MATSPlus()}
	if _, err := se.RunMacro(nil, 0); err == nil {
		t.Error("no blocks must error")
	}
	a, _ := dram.NewArray(8, 8)
	b, _ := dram.NewArray(16, 16)
	if _, err := se.RunMacro([]*dram.Array{a, b}, 0); err == nil {
		t.Error("mismatched geometries must error")
	}
}
