package bist

import (
	"math"
	"testing"

	"edram/internal/dram"
)

func arr(t *testing.T, rows, cols int) *dram.Array {
	t.Helper()
	a, err := dram.NewArray(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runner() Runner { return Runner{CycleNs: 10, ParallelBits: 1} }

func TestAlgorithmsOps(t *testing.T) {
	if got := MATSPlus().OpsPerCell(); got != 5 {
		t.Errorf("MATS+ is 5N, got %dN", got)
	}
	if got := MarchCMinus().OpsPerCell(); got != 10 {
		t.Errorf("March C- is 10N, got %dN", got)
	}
	if got := MarchB().OpsPerCell(); got != 17 {
		t.Errorf("March B is 17N, got %dN", got)
	}
}

func TestCleanArrayPasses(t *testing.T) {
	for _, alg := range Algorithms() {
		a := arr(t, 16, 16)
		res, err := runner().RunMarch(a, alg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass() {
			t.Errorf("%s: clean array must pass, got %d failures", alg.Name, len(res.Failures))
		}
		if res.Ops != int64(alg.OpsPerCell())*16*16 {
			t.Errorf("%s: ops = %d", alg.Name, res.Ops)
		}
		if res.TestTimeNs <= 0 {
			t.Errorf("%s: test time must be positive", alg.Name)
		}
	}
}

func TestMarchDetectsStuckAt(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, kind := range []dram.FaultKind{dram.StuckAt0, dram.StuckAt1} {
			a := arr(t, 16, 16)
			if err := a.Inject(dram.Fault{Kind: kind, Row: 3, Col: 7}); err != nil {
				t.Fatal(err)
			}
			res, err := runner().RunMarch(a, alg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pass() {
				t.Errorf("%s must detect %v", alg.Name, kind)
				continue
			}
			cells := res.FailingCells()
			if len(cells) != 1 || cells[0] != [2]int{3, 7} {
				t.Errorf("%s: %v localized to %v, want [[3 7]]", alg.Name, kind, cells)
			}
		}
	}
}

func TestMarchDetectsTransitionFaults(t *testing.T) {
	// March C- and March B catch transition faults; MATS+ catches
	// TF-up (it reads after the 0->1 write) but not all TFs.
	for _, alg := range []Algorithm{MarchCMinus(), MarchB()} {
		for _, kind := range []dram.FaultKind{dram.TransitionUp, dram.TransitionDown} {
			a := arr(t, 16, 16)
			a.Inject(dram.Fault{Kind: kind, Row: 5, Col: 5})
			res, err := runner().RunMarch(a, alg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pass() {
				t.Errorf("%s must detect %v", alg.Name, kind)
			}
		}
	}
}

func TestMarchCDetectsCoupling(t *testing.T) {
	// Victim before aggressor in address order.
	a := arr(t, 16, 16)
	a.Inject(dram.Fault{Kind: dram.CouplingInvert, Row: 2, Col: 2, AggRow: 10, AggCol: 10})
	res, err := runner().RunMarch(a, MarchCMinus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Error("March C- must detect coupling (victim < aggressor)")
	}
	// Victim after aggressor.
	a2 := arr(t, 16, 16)
	a2.Inject(dram.Fault{Kind: dram.CouplingInvert, Row: 10, Col: 10, AggRow: 2, AggCol: 2})
	res2, err := runner().RunMarch(a2, MarchCMinus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pass() {
		t.Error("March C- must detect coupling (victim > aggressor)")
	}
}

func TestMarchDetectsLineFaults(t *testing.T) {
	a := arr(t, 16, 16)
	a.Inject(dram.Fault{Kind: dram.BitlineStuck0, Col: 4})
	a.Inject(dram.Fault{Kind: dram.WordlineStuck0, Row: 9})
	res, err := runner().RunMarch(a, MATSPlus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The whole column and row must show up.
	cells := res.FailingCells()
	colHits, rowHits := 0, 0
	for _, c := range cells {
		if c[1] == 4 {
			colHits++
		}
		if c[0] == 9 {
			rowHits++
		}
	}
	if colHits < 16 || rowHits < 16 {
		t.Errorf("line faults under-detected: col hits %d, row hits %d", colHits, rowHits)
	}
}

func TestMarchMissesRetentionButPauseTestCatches(t *testing.T) {
	// A march test back-to-back is too fast to see a 10-ms retention
	// fault (the paper's point: retention tests need waiting).
	a := arr(t, 16, 16)
	a.Inject(dram.Fault{Kind: dram.Retention, Row: 1, Col: 1, RetentionMs: 10})
	res, err := runner().RunMarch(a, MarchCMinus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Error("back-to-back march should not see a 10-ms retention fault")
	}
	a2 := arr(t, 16, 16)
	a2.Inject(dram.Fault{Kind: dram.Retention, Row: 1, Col: 1, RetentionMs: 10})
	ret, err := runner().RunRetention(a2, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret.Pass() {
		t.Fatal("retention test with 64-ms pause must catch the weak cell")
	}
	if cells := ret.FailingCells(); len(cells) != 1 || cells[0] != [2]int{1, 1} {
		t.Errorf("retention failure localized to %v", cells)
	}
	// The pause dominates test time.
	if ret.TestTimeNs < 64e6 {
		t.Error("retention test time must include the pause")
	}
}

func TestCheckerboard(t *testing.T) {
	a := arr(t, 8, 8)
	res, err := runner().RunCheckerboard(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Error("clean array must pass checkerboard")
	}
	if res.Ops != 4*8*8 {
		t.Errorf("checkerboard is 4N, got %d ops for 64 cells", res.Ops)
	}
	a2 := arr(t, 8, 8)
	a2.Inject(dram.Fault{Kind: dram.StuckAt1, Row: 0, Col: 0})
	res2, err := runner().RunCheckerboard(a2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pass() {
		t.Error("checkerboard must catch SA1")
	}
}

func TestRunnerValidation(t *testing.T) {
	a := arr(t, 4, 4)
	if _, err := (Runner{CycleNs: 0, ParallelBits: 1}).RunMarch(a, MATSPlus(), 0); err == nil {
		t.Error("zero cycle must error")
	}
	if _, err := (Runner{CycleNs: 10, ParallelBits: 0}).RunMarch(a, MATSPlus(), 0); err == nil {
		t.Error("zero parallelism must error")
	}
	if _, err := runner().RunRetention(a, 0, 0); err == nil {
		t.Error("zero pause must error")
	}
}

func TestParallelismShrinksTestTime(t *testing.T) {
	a1 := arr(t, 32, 32)
	narrow, err := (Runner{CycleNs: 10, ParallelBits: 1}).RunMarch(a1, MarchCMinus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a2 := arr(t, 32, 32)
	wide, err := (Runner{CycleNs: 10, ParallelBits: 256}).RunMarch(a2, MarchCMinus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := narrow.TestTimeNs / wide.TestTimeNs
	if math.Abs(ratio-256) > 1 {
		t.Errorf("256x parallelism must shrink time ~256x, got %.1fx", ratio)
	}
}

func TestEstimateFlow(t *testing.T) {
	// A 16-Mbit macro on the three test paths.
	bits := int64(16 << 20)
	flow := DefaultFlow()

	mem, err := Estimate(bits, MemoryTester(), flow)
	if err != nil {
		t.Fatal(err)
	}
	logic, err := Estimate(bits, LogicTester(), flow)
	if err != nil {
		t.Fatal(err)
	}
	bist, err := Estimate(bits, BISTOnTester(256, 7), flow)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6: external test of an embedded macro is slow; BIST's
	// internal parallelism collapses test time.
	if !(bist.TotalS < mem.TotalS && mem.TotalS < logic.TotalS) {
		t.Fatalf("test time ordering violated: bist %.1fs mem %.1fs logic %.1fs",
			bist.TotalS, mem.TotalS, logic.TotalS)
	}
	if bist.CostUSD >= logic.CostUSD {
		t.Errorf("BIST cost %.3f must undercut external logic-tester cost %.3f",
			bist.CostUSD, logic.CostUSD)
	}
	// With BIST, the irreducible retention pause dominates.
	if bist.RetentionS < 0.7*bist.TotalS-1e-9 {
		t.Errorf("retention pause should dominate BIST time: %.2f of %.2f s",
			bist.RetentionS, bist.TotalS)
	}
	// Report must sum.
	for _, r := range []Report{mem, logic, bist} {
		if math.Abs(r.PreFuseS+r.PostFuseS+r.RetentionS-r.TotalS) > 1e-9 {
			t.Error("report must sum")
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(0, MemoryTester(), DefaultFlow()); err == nil {
		t.Error("zero bits must error")
	}
	bad := MemoryTester()
	bad.InterfaceBits = 0
	if _, err := Estimate(1<<20, bad, DefaultFlow()); err == nil {
		t.Error("bad tester must error")
	}
}

func TestCostShare(t *testing.T) {
	if CostShare(2, 8) != 0.2 {
		t.Error("cost share math wrong")
	}
	if CostShare(0, 8) != 0 || CostShare(-1, 8) != 0 {
		t.Error("degenerate shares must be 0")
	}
	// Paper §6: test costs are a significant fraction of total cost.
	// A 64-Mbit part on a memory tester vs a $4 die (mature yield).
	r, err := Estimate(64<<20, MemoryTester(), DefaultFlow())
	if err != nil {
		t.Fatal(err)
	}
	share := CostShare(r.CostUSD, 4)
	if share < 0.1 {
		t.Errorf("test cost share %.2f should be significant", share)
	}
}

func TestMarchDetectsAddressDecoderFault(t *testing.T) {
	// MATS+ exists to catch decoder faults: two addresses sharing one
	// cell fail the ascending r0,w1 sweep (the later address reads the
	// earlier address's 1).
	for _, alg := range Algorithms() {
		a := arr(t, 16, 16)
		if err := a.Inject(dram.Fault{Kind: dram.AddressDecoder, Row: 12, Col: 12, AggRow: 2, AggCol: 2}); err != nil {
			t.Fatal(err)
		}
		res, err := runner().RunMarch(a, alg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pass() {
			t.Errorf("%s must detect the address-decoder fault", alg.Name)
		}
	}
}
