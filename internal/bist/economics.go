package bist

import (
	"fmt"
)

// Tester describes a piece of test equipment (paper §6: the hybrid chip
// could be tested "on a memory or logic tester, or on both"; test
// concepts should support either).
type Tester struct {
	Name       string
	USDPerHour float64
	// InterfaceBits is how many memory bits the tester can drive per
	// cycle through the chip's external interface.
	InterfaceBits int
	// CycleNs is the tester's effective per-op cycle.
	CycleNs float64
}

// MemoryTester returns a specialized memory tester: massively parallel
// pin electronics, expensive.
func MemoryTester() Tester {
	// March patterns activate a row per op, so the effective op cycle
	// is row-cycle-limited, not interface-limited.
	return Tester{Name: "memory-tester", USDPerHour: 420, InterfaceBits: 64, CycleNs: 60}
}

// LogicTester returns a logic tester pressed into memory testing: fewer
// usable memory pins, cheaper per hour.
func LogicTester() Tester {
	return Tester{Name: "logic-tester", USDPerHour: 260, InterfaceBits: 16, CycleNs: 80}
}

// BISTOnTester models a chip with on-chip BIST: the tester only starts
// the controller and reads the go/no-go result, so the internal
// parallelism (the macro interface width) applies and the cheap tester
// suffices.
func BISTOnTester(internalBits int, coreCycleNs float64) Tester {
	return Tester{Name: "bist", USDPerHour: 260, InterfaceBits: internalBits, CycleNs: coreCycleNs}
}

// Flow describes the two-wafer-pass test flow of a DRAM (paper §6:
// "(1) pre-fuse testing, (2) fuse blowing, (3) post-fuse testing").
type Flow struct {
	// PreFuse is the full characterization suite run before repair.
	PreFuse []Algorithm
	// PostFuse is the (shorter) verification suite after fuse blowing.
	PostFuse []Algorithm
	// RetentionPauseMs is the retention-test wait, applied once per
	// pass; it does not shrink with parallelism.
	RetentionPauseMs float64
	// VddCorners is the number of supply corners the pre-fuse suite is
	// repeated at (production DRAM test characterizes margin).
	VddCorners int
}

// DefaultFlow returns the standard flow: full suite pre-fuse at two
// supply corners, March C− post-fuse, 2 x 64 ms retention pauses.
func DefaultFlow() Flow {
	return Flow{
		PreFuse:          Algorithms(),
		PostFuse:         []Algorithm{MarchCMinus()},
		RetentionPauseMs: 64,
		VddCorners:       2,
	}
}

// Report is the time/cost outcome of one flow on one device.
type Report struct {
	Tester     Tester
	PreFuseS   float64
	PostFuseS  float64
	RetentionS float64
	TotalS     float64
	CostUSD    float64
}

// suiteOps returns total operations per cell of a suite.
func suiteOps(suite []Algorithm) int {
	n := 0
	for _, a := range suite {
		n += a.OpsPerCell()
	}
	return n
}

// Estimate computes the flow's time and cost for a memory of totalBits
// tested on the given tester.
func Estimate(totalBits int64, t Tester, f Flow) (Report, error) {
	if totalBits <= 0 {
		return Report{}, fmt.Errorf("bist: memory size must be positive")
	}
	if t.InterfaceBits < 1 || t.CycleNs <= 0 || t.USDPerHour <= 0 {
		return Report{}, fmt.Errorf("bist: invalid tester %+v", t)
	}
	opsSeconds := func(suite []Algorithm) float64 {
		cellOps := float64(suiteOps(suite))
		return cellOps * float64(totalBits) / float64(t.InterfaceBits) * t.CycleNs / 1e9
	}
	corners := f.VddCorners
	if corners < 1 {
		corners = 1
	}
	var r Report
	r.Tester = t
	r.PreFuseS = opsSeconds(f.PreFuse) * float64(corners)
	r.PostFuseS = opsSeconds(f.PostFuse)
	// One retention pause per wafer pass plus the background write/read
	// (4N ops total, already cheap — folded into the pause constant).
	r.RetentionS = 2 * f.RetentionPauseMs / 1e3
	r.TotalS = r.PreFuseS + r.PostFuseS + r.RetentionS
	r.CostUSD = r.TotalS / 3600 * t.USDPerHour
	return r, nil
}

// CostShare returns test cost as a fraction of total unit cost (die +
// test), the "test costs are a significant fraction of total cost"
// quantity of paper §6.
func CostShare(testUSD, dieUSD float64) float64 {
	if testUSD <= 0 || dieUSD < 0 {
		return 0
	}
	return testUSD / (testUSD + dieUSD)
}
