package bist

import (
	"sort"

	"edram/internal/dram"
)

// Diagnosis is the row-resolved outcome of a diagnostic test pass — the
// repair-feeding mode of the §6 test flow, as opposed to the go/no-go
// MISR signature of Session.Run. FailCounts maps each failing row to its
// mismatching cell count; FailingRows lists the same rows sorted.
type Diagnosis struct {
	FailCounts  map[int]int
	FailingRows []int
	Ops         int64
	TestTimeNs  float64
}

// DiagnoseRows runs a write-background / read-compare pass over the
// array and reports every row whose read-back differs from the written
// background. The per-row fail counts feed the spare-row allocator: a
// boot-time screen can pre-repair known-bad rows before traffic starts,
// leaving the runtime ladder only the faults that escape (retention
// tails, transients). Two operations per cell — far cheaper than a full
// march — because diagnosis needs locations, not coverage of coupling
// faults.
func DiagnoseRows(a *dram.Array, bg Background, ru Runner, startMs float64) (Diagnosis, error) {
	if err := ru.Validate(); err != nil {
		return Diagnosis{}, err
	}
	d := Diagnosis{FailCounts: map[int]int{}}
	opMs := ru.CycleNs / 1e6 / float64(ru.ParallelBits)
	tMs := startMs
	rows, cols := a.Rows(), a.Cols()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if err := a.Write(tMs, r, c, bg.at(r, c)); err != nil {
				return Diagnosis{}, err
			}
			d.Ops++
			tMs += opMs
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			got, err := a.Read(tMs, r, c)
			if err != nil {
				return Diagnosis{}, err
			}
			if got != bg.at(r, c) {
				d.FailCounts[r]++
			}
			d.Ops++
			tMs += opMs
		}
	}
	for r := range d.FailCounts {
		d.FailingRows = append(d.FailingRows, r)
	}
	sort.Ints(d.FailingRows)
	d.TestTimeNs = (tMs - startMs) * 1e6
	return d, nil
}
