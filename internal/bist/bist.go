// Package bist implements DRAM test: classic march algorithms (MATS+,
// March C−, March B), checkerboard and retention tests, a test runner
// over the fault-injectable cell array of internal/dram, and the
// test-time and test-cost models behind the paper's §6 observations —
// DRAM test patterns are rich and slow, test cost is a significant cost
// fraction, and embedded DRAM therefore needs on-chip parallelism (BIST)
// plus a pre-fuse / repair / post-fuse flow.
package bist

import (
	"fmt"

	"edram/internal/dram"
)

// Op is one march operation: read-and-expect or write.
type Op struct {
	Read  bool
	Value bool // expected value for reads, written value for writes
}

// r returns a read-expect op, w a write op.
func r(v bool) Op { return Op{Read: true, Value: v} }
func w(v bool) Op { return Op{Read: false, Value: v} }

// Element is one march element: an address sweep with a fixed op
// sequence per cell.
type Element struct {
	// Descending reverses the address order (⇓ instead of ⇑).
	Descending bool
	Ops        []Op
}

// Algorithm is a complete march test.
type Algorithm struct {
	Name     string
	Elements []Element
}

// OpsPerCell returns the number of operations the algorithm applies per
// cell.
func (a Algorithm) OpsPerCell() int {
	n := 0
	for _, e := range a.Elements {
		n += len(e.Ops)
	}
	return n
}

// MATSPlus returns MATS+ — {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)} — the minimal
// test covering stuck-at faults and address decoder faults (5N).
func MATSPlus() Algorithm {
	return Algorithm{
		Name: "MATS+",
		Elements: []Element{
			{Ops: []Op{w(false)}},
			{Ops: []Op{r(false), w(true)}},
			{Descending: true, Ops: []Op{r(true), w(false)}},
		},
	}
}

// MarchCMinus returns March C− —
// {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)} —
// covering stuck-at, transition, address-decoder and unlinked coupling
// faults (10N).
func MarchCMinus() Algorithm {
	return Algorithm{
		Name: "March C-",
		Elements: []Element{
			{Ops: []Op{w(false)}},
			{Ops: []Op{r(false), w(true)}},
			{Ops: []Op{r(true), w(false)}},
			{Descending: true, Ops: []Op{r(false), w(true)}},
			{Descending: true, Ops: []Op{r(true), w(false)}},
			{Descending: true, Ops: []Op{r(false)}},
		},
	}
}

// MarchB returns March B —
// {⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}
// — a 17N test additionally covering linked faults.
func MarchB() Algorithm {
	return Algorithm{
		Name: "March B",
		Elements: []Element{
			{Ops: []Op{w(false)}},
			{Ops: []Op{r(false), w(true), r(true), w(false), r(false), w(true)}},
			{Ops: []Op{r(true), w(false), w(true)}},
			{Descending: true, Ops: []Op{r(true), w(false), w(true), w(false)}},
			{Descending: true, Ops: []Op{r(false), w(true), w(false)}},
		},
	}
}

// Algorithms returns the built-in march suite in increasing strength.
func Algorithms() []Algorithm {
	return []Algorithm{MATSPlus(), MarchCMinus(), MarchB()}
}

// Failure records one mismatching read.
type Failure struct {
	Row, Col int
	Element  int
	Expected bool
	Got      bool
}

// Result reports one test run.
type Result struct {
	Algorithm string
	Failures  []Failure
	Ops       int64
	// TestTimeNs is the tester/BIST time consumed, including pauses.
	TestTimeNs float64
}

// FailingCells returns the distinct failing cell coordinates.
func (res Result) FailingCells() [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, f := range res.Failures {
		k := [2]int{f.Row, f.Col}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Pass reports whether the run saw no failures.
func (res Result) Pass() bool { return len(res.Failures) == 0 }

// Runner executes march tests on a cell array.
type Runner struct {
	// CycleNs is the time per memory operation.
	CycleNs float64
	// ParallelBits is the number of cells tested per cycle (the
	// interface width of the tester path; the on-chip BIST datapath is
	// much wider than the external tester's — paper §6: "a high degree
	// of parallelism is required in order to reduce test costs").
	ParallelBits int
}

// Validate checks the runner configuration.
func (ru Runner) Validate() error {
	if ru.CycleNs <= 0 {
		return fmt.Errorf("bist: cycle time must be positive")
	}
	if ru.ParallelBits < 1 {
		return fmt.Errorf("bist: parallelism must be >= 1")
	}
	return nil
}

// RunMarch executes the algorithm over the array starting at startMs
// (array time, for retention bookkeeping) and returns the result.
func (ru Runner) RunMarch(a *dram.Array, alg Algorithm, startMs float64) (Result, error) {
	if err := ru.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Algorithm: alg.Name}
	n := a.Rows() * a.Cols()
	tMs := startMs
	opMs := ru.CycleNs / 1e6 / float64(ru.ParallelBits) // amortized per-cell op time
	for ei, el := range alg.Elements {
		for i := 0; i < n; i++ {
			idx := i
			if el.Descending {
				idx = n - 1 - i
			}
			row, col := idx/a.Cols(), idx%a.Cols()
			for _, op := range el.Ops {
				if op.Read {
					got, err := a.Read(tMs, row, col)
					if err != nil {
						return Result{}, err
					}
					if got != op.Value {
						res.Failures = append(res.Failures, Failure{
							Row: row, Col: col, Element: ei,
							Expected: op.Value, Got: got,
						})
					}
				} else if err := a.Write(tMs, row, col, op.Value); err != nil {
					return Result{}, err
				}
				res.Ops++
				tMs += opMs
			}
		}
	}
	res.TestTimeNs = (tMs - startMs) * 1e6
	return res, nil
}

// RunRetention writes an all-ones background, pauses for pauseMs without
// refresh, then reads everything back — the retention-time test whose
// "lot of waiting" makes DRAM test times high (paper §6).
func (ru Runner) RunRetention(a *dram.Array, pauseMs, startMs float64) (Result, error) {
	if err := ru.Validate(); err != nil {
		return Result{}, err
	}
	if pauseMs <= 0 {
		return Result{}, fmt.Errorf("bist: retention pause must be positive, got %g", pauseMs)
	}
	res := Result{Algorithm: fmt.Sprintf("retention-%.0fms", pauseMs)}
	opMs := ru.CycleNs / 1e6 / float64(ru.ParallelBits)
	tMs := startMs
	for row := 0; row < a.Rows(); row++ {
		for col := 0; col < a.Cols(); col++ {
			if err := a.Write(tMs, row, col, true); err != nil {
				return Result{}, err
			}
			res.Ops++
			tMs += opMs
		}
	}
	tMs += pauseMs // the wait, with refresh disabled
	for row := 0; row < a.Rows(); row++ {
		for col := 0; col < a.Cols(); col++ {
			got, err := a.Read(tMs, row, col)
			if err != nil {
				return Result{}, err
			}
			if !got {
				res.Failures = append(res.Failures, Failure{Row: row, Col: col, Expected: true, Got: false})
			}
			res.Ops++
			tMs += opMs
		}
	}
	res.TestTimeNs = (tMs - startMs) * 1e6
	return res, nil
}

// RunCheckerboard writes a checkerboard, reads it, then the inverse —
// targeting cell-to-cell leakage (4N plus an optional pause).
func (ru Runner) RunCheckerboard(a *dram.Array, pauseMs, startMs float64) (Result, error) {
	if err := ru.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Algorithm: "checkerboard"}
	opMs := ru.CycleNs / 1e6 / float64(ru.ParallelBits)
	tMs := startMs
	pass := func(invert bool) error {
		for row := 0; row < a.Rows(); row++ {
			for col := 0; col < a.Cols(); col++ {
				v := (row+col)%2 == 0
				if invert {
					v = !v
				}
				if err := a.Write(tMs, row, col, v); err != nil {
					return err
				}
				res.Ops++
				tMs += opMs
			}
		}
		if pauseMs > 0 {
			tMs += pauseMs
		}
		for row := 0; row < a.Rows(); row++ {
			for col := 0; col < a.Cols(); col++ {
				want := (row+col)%2 == 0
				if invert {
					want = !want
				}
				got, err := a.Read(tMs, row, col)
				if err != nil {
					return err
				}
				if got != want {
					res.Failures = append(res.Failures, Failure{Row: row, Col: col, Expected: want, Got: got})
				}
				res.Ops++
				tMs += opMs
			}
		}
		return nil
	}
	if err := pass(false); err != nil {
		return Result{}, err
	}
	if err := pass(true); err != nil {
		return Result{}, err
	}
	res.TestTimeNs = (tMs - startMs) * 1e6
	return res, nil
}
