package bist

import (
	"fmt"

	"edram/internal/dram"
)

// Background is a data pattern the march operations are applied
// relative to — the "algorithmic test pattern generation" of the
// paper's §6 BIST controller. A march `w0` writes the background value
// of the cell, `w1` its inverse.
type Background int

const (
	// Solid: all cells share one value.
	Solid Background = iota
	// Checkerboard: (row+col) parity.
	Checkerboard
	// RowStripes: row parity (adjacent wordlines differ).
	RowStripes
	// ColStripes: column parity (adjacent bitlines differ).
	ColStripes
)

// String implements fmt.Stringer.
func (b Background) String() string {
	switch b {
	case Solid:
		return "solid"
	case Checkerboard:
		return "checkerboard"
	case RowStripes:
		return "row-stripes"
	case ColStripes:
		return "col-stripes"
	default:
		return fmt.Sprintf("Background(%d)", int(b))
	}
}

// Backgrounds returns the standard set.
func Backgrounds() []Background {
	return []Background{Solid, Checkerboard, RowStripes, ColStripes}
}

// at returns the background value of a cell.
func (b Background) at(row, col int) bool {
	switch b {
	case Checkerboard:
		return (row+col)%2 == 1
	case RowStripes:
		return row%2 == 1
	case ColStripes:
		return col%2 == 1
	default:
		return false
	}
}

// Signature is a 32-bit MISR (multiple-input signature register) that
// compresses the read-data stream so only a go/no-go word crosses the
// chip boundary — the paper's "on-chip manipulation and compression of
// test data in order to reduce the off-chip interface width".
type Signature struct {
	state uint32
}

// misrPoly is the CRC-32/IEEE feedback polynomial.
const misrPoly = 0xEDB88320

// Update folds one read bit into the signature.
func (s *Signature) Update(bit bool) {
	in := uint32(0)
	if bit {
		in = 1
	}
	fb := (s.state ^ in) & 1
	s.state >>= 1
	if fb == 1 {
		s.state ^= misrPoly
	}
}

// Value returns the signature word.
func (s *Signature) Value() uint32 { return s.state }

// Session is the on-chip BIST controller: it runs a march algorithm
// against a background and compresses all reads into a signature. A
// device passes when its signature equals the golden signature of a
// fault-free array of the same geometry.
type Session struct {
	Runner     Runner
	Algorithm  Algorithm
	Background Background
}

// SessionResult reports one BIST session.
type SessionResult struct {
	Signature  uint32
	Ops        int64
	TestTimeNs float64
}

// Run executes the session on the array.
func (se Session) Run(a *dram.Array, startMs float64) (SessionResult, error) {
	if err := se.Runner.Validate(); err != nil {
		return SessionResult{}, err
	}
	var res SessionResult
	var sig Signature
	n := a.Rows() * a.Cols()
	tMs := startMs
	opMs := se.Runner.CycleNs / 1e6 / float64(se.Runner.ParallelBits)
	for _, el := range se.Algorithm.Elements {
		for i := 0; i < n; i++ {
			idx := i
			if el.Descending {
				idx = n - 1 - i
			}
			row, col := idx/a.Cols(), idx%a.Cols()
			bg := se.Background.at(row, col)
			for _, op := range el.Ops {
				v := op.Value != bg // XOR: w1/r1 means inverse background
				if op.Read {
					got, err := a.Read(tMs, row, col)
					if err != nil {
						return SessionResult{}, err
					}
					// The MISR compresses the *miscompare* stream so
					// the signature of a clean device is geometry-
					// independent of the background.
					sig.Update(got != v)
				} else if err := a.Write(tMs, row, col, v); err != nil {
					return SessionResult{}, err
				}
				res.Ops++
				tMs += opMs
			}
		}
	}
	res.Signature = sig.Value()
	res.TestTimeNs = (tMs - startMs) * 1e6
	return res, nil
}

// GoldenSignature computes the pass signature for the session on a
// fault-free array of the given geometry.
func (se Session) GoldenSignature(rows, cols int) (uint32, error) {
	a, err := dram.NewArray(rows, cols)
	if err != nil {
		return 0, err
	}
	res, err := se.Run(a, 0)
	if err != nil {
		return 0, err
	}
	return res.Signature, nil
}

// MacroResult reports a whole-macro BIST run: every building block is
// tested by its own slice of the parallel datapath, so wall time is one
// block's time, not the sum.
type MacroResult struct {
	Blocks     int
	Signatures []uint32
	// FailingBlocks lists block indices whose signature missed golden.
	FailingBlocks []int
	TestTimeNs    float64
	Ops           int64
}

// Pass reports whether every block matched the golden signature.
func (mr MacroResult) Pass() bool { return len(mr.FailingBlocks) == 0 }

// RunMacro executes the session on a whole macro: arrays[i] is building
// block i (all must share one geometry). Blocks run concurrently on the
// BIST datapath; the go/no-go compares each block's signature with the
// common golden value.
func (se Session) RunMacro(arrays []*dram.Array, startMs float64) (MacroResult, error) {
	if len(arrays) == 0 {
		return MacroResult{}, fmt.Errorf("bist: no blocks")
	}
	rows, cols := arrays[0].Rows(), arrays[0].Cols()
	golden, err := se.GoldenSignature(rows, cols)
	if err != nil {
		return MacroResult{}, err
	}
	var mr MacroResult
	mr.Blocks = len(arrays)
	for i, a := range arrays {
		if a.Rows() != rows || a.Cols() != cols {
			return MacroResult{}, fmt.Errorf("bist: block %d geometry %dx%d differs from %dx%d",
				i, a.Rows(), a.Cols(), rows, cols)
		}
		res, err := se.Run(a, startMs)
		if err != nil {
			return MacroResult{}, err
		}
		mr.Signatures = append(mr.Signatures, res.Signature)
		mr.Ops += res.Ops
		if res.TestTimeNs > mr.TestTimeNs {
			mr.TestTimeNs = res.TestTimeNs // blocks test in parallel
		}
		if res.Signature != golden {
			mr.FailingBlocks = append(mr.FailingBlocks, i)
		}
	}
	return mr, nil
}
