package bist

import (
	"reflect"
	"testing"

	"edram/internal/dram"
)

func TestDiagnoseRowsCleanArray(t *testing.T) {
	a, err := dram.NewArray(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	ru := Runner{CycleNs: 10, ParallelBits: 32}
	d, err := DiagnoseRows(a, Checkerboard, ru, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.FailingRows) != 0 {
		t.Errorf("clean array failed rows %v", d.FailingRows)
	}
	if d.Ops != 2*16*32 {
		t.Errorf("Ops = %d, want %d (2 per cell)", d.Ops, 2*16*32)
	}
	if d.TestTimeNs <= 0 {
		t.Error("test time must accrue")
	}
}

func TestDiagnoseRowsLocatesFaults(t *testing.T) {
	a, err := dram.NewArray(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []dram.Fault{
		{Kind: dram.WordlineStuck0, Row: 3},
		{Kind: dram.StuckAt0, Row: 7, Col: 5}, // background (7+5)%2=0 -> invisible
		{Kind: dram.StuckAt1, Row: 9, Col: 5}, // background (9+5)%2=0 -> visible
	} {
		if err := a.Inject(f); err != nil {
			t.Fatal(err)
		}
	}
	ru := Runner{CycleNs: 10, ParallelBits: 32}
	d, err := DiagnoseRows(a, Checkerboard, ru, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Row 3: the whole stuck row fails on the background-1 half (16
	// cells). Row 9: one stuck-at-1 cell against a 0 background. Row 7's
	// stuck-at-0 cell agrees with its background and stays hidden — the
	// reason production screens run multiple backgrounds.
	if want := []int{3, 9}; !reflect.DeepEqual(d.FailingRows, want) {
		t.Fatalf("FailingRows = %v, want %v (counts %v)", d.FailingRows, want, d.FailCounts)
	}
	if d.FailCounts[3] != 16 {
		t.Errorf("row 3 fail count = %d, want 16", d.FailCounts[3])
	}
	if d.FailCounts[9] != 1 {
		t.Errorf("row 9 fail count = %d, want 1", d.FailCounts[9])
	}
}

func TestDiagnoseRowsValidatesRunner(t *testing.T) {
	a, _ := dram.NewArray(4, 4)
	if _, err := DiagnoseRows(a, Checkerboard, Runner{}, 0); err == nil {
		t.Error("zero runner must be rejected")
	}
}
