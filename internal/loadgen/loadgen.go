// Package loadgen is the deterministic half of the edramload SLO
// harness: seeded request schedules, latency percentile math and SLO
// evaluation. Everything here is pure — the same profile and seed
// produce the same request sequence byte for byte, so an SLO breach in
// CI is a service regression, never schedule noise. The wall-clock
// half (issuing requests, measuring latency) lives in cmd/edramload.
//
// A schedule interleaves eight traffic mixes, each probing one
// overload behaviour of the daemon:
//
//   - hot: one identical request over and over — the cache-hit fast
//     path that must stay fast under every other mix's pressure;
//   - unique: cache-busting requests (every body distinct) — the
//     compute path, immune to the cache and the coalescer;
//   - storm: bursts of identical uncached requests — the coalescer
//     must collapse each burst into one computation;
//   - slow: requests whose bodies drip in byte by byte — slowloris
//     pressure that must not occupy compute capacity;
//   - disconnect: requests abandoned mid-flight — detached compute
//     must finish and fill the cache anyway;
//   - overload: deliberate saturation of one tightly-budgeted endpoint
//     — these are EXPECTED to shed with 503 + Retry-After, and their
//     503s do not count against the error budget;
//   - sharded: explores cycling a small body set — when the driver
//     runs the daemon with sharding enabled these sweep the
//     partitioned fan-out path, and the repeats land in the cache
//     tiers (first draw a miss, the rest memory or disk hits);
//   - delta: explores rotating one constraint (the area cap) over an
//     otherwise fixed requirement structure — the first draw is the
//     cold sweep that records the daemon's retained state, each later
//     distinct cap is re-served incrementally (X-Cache: hit-delta),
//     and exact repeats land in the byte caches.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Request is one scheduled HTTP operation.
type Request struct {
	// Mix names the traffic mix that generated the request.
	Mix string
	// Path and Body describe the POST to issue.
	Path string
	Body string
	// Disconnect abandons the request mid-flight (the driver cancels
	// its context shortly after the body is sent).
	Disconnect bool
	// SlowBody drips the request body to the server in small chunks.
	SlowBody bool
	// WantShed marks a deliberate-overload probe: a 503 reply is the
	// intended outcome and is not an error-budget violation.
	WantShed bool
}

// MixWeight is one entry of a profile's traffic composition.
type MixWeight struct {
	Name   string
	Weight int
}

// Profile describes a load run: how many requests, drawn from which
// mix composition, under which seed.
type Profile struct {
	Requests int
	Seed     int64
	Mixes    []MixWeight
}

// SmokeProfile is the deterministic CI profile: small enough to finish
// in seconds, broad enough that every mix (and therefore every
// overload behaviour) is exercised.
func SmokeProfile(seed int64) Profile {
	return Profile{
		Requests: 160,
		Seed:     seed,
		Mixes: []MixWeight{
			{"hot", 35},
			{"unique", 22},
			{"storm", 15},
			{"slow", 5},
			{"disconnect", 5},
			{"overload", 10},
			{"sharded", 8},
			{"delta", 8},
		},
	}
}

// stormBurst is how many identical requests one storm draw emits.
const stormBurst = 6

// hotBody is the hot mix's single recommend request (the same
// requirements the service tests pin, so the response is known-good).
const hotBody = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`

// Schedule expands a profile into its deterministic request sequence.
// The sequence depends only on (Profile.Requests, Profile.Seed,
// Profile.Mixes) — never on wall-clock or map order.
func Schedule(p Profile) ([]Request, error) {
	total := 0
	for _, m := range p.Mixes {
		if m.Weight < 0 {
			return nil, fmt.Errorf("loadgen: mix %q has negative weight %d", m.Name, m.Weight)
		}
		total += m.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: profile has no positive mix weights")
	}
	if p.Requests < 1 {
		return nil, fmt.Errorf("loadgen: profile must schedule at least one request, got %d", p.Requests)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var reqs []Request
	var uniqueSeq, stormSeq, disconnectSeq, overloadSeq, shardedSeq, deltaSeq int
	for len(reqs) < p.Requests {
		draw := rng.Intn(total)
		var mix string
		for _, m := range p.Mixes {
			if draw < m.Weight {
				mix = m.Name
				break
			}
			draw -= m.Weight
		}
		switch mix {
		case "hot":
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/recommend", Body: hotBody})
		case "unique":
			// Every body distinct: the target clock is a fresh value each
			// time, so neither the cache nor the coalescer can absorb it.
			uniqueSeq++
			body := fmt.Sprintf(
				`{"capacity_mbit":%d,"interface_bits":%d,"redundancy":"std","target_clock_mhz":%d.5}`,
				[]int{4, 8, 16, 32}[uniqueSeq%4], []int{32, 64, 128}[uniqueSeq%3], 100+uniqueSeq)
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/datasheet", Body: body})
		case "storm":
			// One burst of identical, per-burst-unique requests: exactly
			// one computation if the coalescer holds.
			stormSeq++
			body := fmt.Sprintf(`{"capacity_mbit":16,"bandwidth_gbps":%d.125,"hit_rate":0.5}`, 1+stormSeq%8)
			for i := 0; i < stormBurst && len(reqs) < p.Requests; i++ {
				reqs = append(reqs, Request{Mix: mix, Path: "/v1/recommend", Body: body})
			}
		case "slow":
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/datasheet",
				Body: `{"capacity_mbit":16,"interface_bits":128,"redundancy":"std"}`, SlowBody: true})
		case "disconnect":
			disconnectSeq++
			body := fmt.Sprintf(`{"capacity_mbit":16,"bandwidth_gbps":%d.25,"hit_rate":0.5}`, 1+disconnectSeq%4)
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/recommend", Body: body, Disconnect: true})
		case "overload":
			// Cache-busting simulations against the endpoint the driver
			// configures with a tiny concurrency budget. (This mix used
			// to target /v1/explore, but explores are now the sharded
			// mix's probe — shedding them would starve that path.)
			overloadSeq++
			body := fmt.Sprintf(
				`{"spec":{"capacity_mbit":16,"interface_bits":64},"options":{"policy":"round-robin"},`+
					`"clients":[{"name":"cpu","kind":"sequential","rate_gbps":0.8,"count":%d}]}`,
				500+overloadSeq)
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/simulate", Body: body, WantShed: true})
		case "sharded":
			// A small rotating body set: each body's first draw sweeps
			// the (possibly sharded) explore path, the repeats measure
			// the cache tiers.
			shardedSeq++
			body := fmt.Sprintf(`{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5,"max_power_mw":%d00.5}`, 4+shardedSeq%4)
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/explore", Body: body})
		case "delta":
			// One structural requirement family, rotating only the area
			// cap (hit_rate 0.6 keeps the family's structural key disjoint
			// from the hot and sharded mixes' 0.5 bodies, so this mix
			// alone decides whether the delta tier fires).
			deltaSeq++
			body := fmt.Sprintf(`{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.6,"max_area_mm2":%d.5}`, 20+10*(deltaSeq%4))
			reqs = append(reqs, Request{Mix: mix, Path: "/v1/explore", Body: body})
		default:
			return nil, fmt.Errorf("loadgen: unknown mix %q", mix)
		}
	}
	return reqs, nil
}

// Outcome is what the driver observed for one request.
type Outcome struct {
	Mix    string
	Status int // 0 = transport failure (no response)
	// LatencyNs is the request's wall latency; only successful (2xx)
	// outcomes feed the percentiles.
	LatencyNs int64
	// Disconnected marks a deliberate mid-flight abandonment.
	Disconnected bool
	// WantShed carries the schedule's deliberate-overload mark.
	WantShed bool
}

// SLO is the latency/error contract a run is judged against.
type SLO struct {
	P50Ms        float64
	P99Ms        float64
	P999Ms       float64
	MaxErrorFrac float64
}

// DefaultSLO is the declared serving objective for the deterministic
// smoke profile on one modest core: the hot path stays in tens of
// milliseconds, the tail is bounded by one uncached sweep, and no
// unexpected errors are tolerated at all.
func DefaultSLO() SLO {
	return SLO{P50Ms: 250, P99Ms: 5000, P999Ms: 10000, MaxErrorFrac: 0}
}

// MixStats is the per-mix rollup inside a Report.
type MixStats struct {
	Mix          string `json:"mix"`
	Requests     int    `json:"requests"`
	OK           int    `json:"ok"`
	Shed         int    `json:"shed"`
	Disconnected int    `json:"disconnected"`
	Errors       int    `json:"errors"`
}

// TierStat is one cache tier's hit/miss tally, scraped from the
// daemon's /metrics after a run. Recorded for observability, not
// SLO-gated: hit ratios depend on mix interleaving, and gating on
// them would make the harness flaky, not the service honest.
type TierStat struct {
	Tier     string  `json:"tier"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// ParseTierStats extracts the edramd_cache_tier_* series from a
// Prometheus text exposition. Tiers come back sorted by name; tiers
// absent from the text are absent from the result.
func ParseTierStats(metricsText string) []TierStat {
	byTier := map[string]*TierStat{}
	var names []string
	get := func(tier string) *TierStat {
		if byTier[tier] == nil {
			byTier[tier] = &TierStat{Tier: tier}
			names = append(names, tier)
		}
		return byTier[tier]
	}
	for _, line := range strings.Split(metricsText, "\n") {
		var hits bool
		var rest string
		switch {
		case strings.HasPrefix(line, `edramd_cache_tier_hits_total{tier="`):
			hits, rest = true, strings.TrimPrefix(line, `edramd_cache_tier_hits_total{tier="`)
		case strings.HasPrefix(line, `edramd_cache_tier_misses_total{tier="`):
			hits, rest = false, strings.TrimPrefix(line, `edramd_cache_tier_misses_total{tier="`)
		default:
			continue
		}
		tier, value, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		if err != nil {
			continue
		}
		if hits {
			get(tier).Hits = n
		} else {
			get(tier).Misses = n
		}
	}
	sort.Strings(names)
	var tiers []TierStat
	for _, name := range names {
		t := byTier[name]
		if total := t.Hits + t.Misses; total > 0 {
			t.HitRatio = float64(t.Hits) / float64(total)
		}
		tiers = append(tiers, *t)
	}
	return tiers
}

// Report is the harness's aggregate verdict over one run.
type Report struct {
	Requests     int `json:"requests"`
	OK           int `json:"ok"`
	ShedExpected int `json:"shed_expected"`
	Disconnected int `json:"disconnected"`
	// UnexpectedErrors counts transport failures, 4xx and 5xx replies —
	// except deliberate disconnects and 503s on WantShed probes.
	UnexpectedErrors int        `json:"unexpected_errors"`
	ErrorFrac        float64    `json:"error_frac"`
	P50Ns            int64      `json:"p50_ns"`
	P99Ns            int64      `json:"p99_ns"`
	P999Ns           int64      `json:"p999_ns"`
	Mixes            []MixStats `json:"mixes"`
	// Tiers holds the daemon's per-tier cache hit ratios, scraped
	// after the run when the driver has a /metrics endpoint to ask.
	Tiers []TierStat `json:"tiers,omitempty"`
}

// percentile is the nearest-rank percentile of sorted latencies.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summarize folds the observed outcomes into a report.
func Summarize(outcomes []Outcome) Report {
	r := Report{Requests: len(outcomes)}
	byMix := map[string]*MixStats{}
	var mixNames []string
	var lat []int64
	for _, o := range outcomes {
		ms := byMix[o.Mix]
		if ms == nil {
			ms = &MixStats{Mix: o.Mix}
			byMix[o.Mix] = ms
			mixNames = append(mixNames, o.Mix)
		}
		ms.Requests++
		switch {
		case o.Disconnected:
			r.Disconnected++
			ms.Disconnected++
		case o.Status >= 200 && o.Status < 300:
			r.OK++
			ms.OK++
			lat = append(lat, o.LatencyNs)
		case o.Status == 503 && o.WantShed:
			r.ShedExpected++
			ms.Shed++
		default:
			r.UnexpectedErrors++
			ms.Errors++
		}
	}
	if judged := r.Requests - r.Disconnected; judged > 0 {
		r.ErrorFrac = float64(r.UnexpectedErrors) / float64(judged)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	r.P50Ns = percentile(lat, 0.50)
	r.P99Ns = percentile(lat, 0.99)
	r.P999Ns = percentile(lat, 0.999)
	sort.Strings(mixNames)
	for _, name := range mixNames {
		r.Mixes = append(r.Mixes, *byMix[name])
	}
	return r
}

// Check returns every SLO violation of the run (empty = the run met
// its objectives).
func (r Report) Check(slo SLO) []string {
	var v []string
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	if slo.P50Ms > 0 && ms(r.P50Ns) > slo.P50Ms {
		v = append(v, fmt.Sprintf("p50 %.1fms exceeds SLO %.1fms", ms(r.P50Ns), slo.P50Ms))
	}
	if slo.P99Ms > 0 && ms(r.P99Ns) > slo.P99Ms {
		v = append(v, fmt.Sprintf("p99 %.1fms exceeds SLO %.1fms", ms(r.P99Ns), slo.P99Ms))
	}
	if slo.P999Ms > 0 && ms(r.P999Ns) > slo.P999Ms {
		v = append(v, fmt.Sprintf("p999 %.1fms exceeds SLO %.1fms", ms(r.P999Ns), slo.P999Ms))
	}
	if r.ErrorFrac > slo.MaxErrorFrac {
		v = append(v, fmt.Sprintf("error fraction %.4f exceeds budget %.4f (%d unexpected errors)",
			r.ErrorFrac, slo.MaxErrorFrac, r.UnexpectedErrors))
	}
	return v
}

// Format renders the report as a human-readable table.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d: %d ok, %d shed (deliberate), %d disconnected (deliberate), %d unexpected errors\n",
		r.Requests, r.OK, r.ShedExpected, r.Disconnected, r.UnexpectedErrors)
	fmt.Fprintf(&b, "latency p50 %.1fms  p99 %.1fms  p999 %.1fms  error-frac %.4f\n",
		float64(r.P50Ns)/1e6, float64(r.P99Ns)/1e6, float64(r.P999Ns)/1e6, r.ErrorFrac)
	for _, m := range r.Mixes {
		fmt.Fprintf(&b, "  %-12s %4d requests  %4d ok  %3d shed  %3d disconnected  %3d errors\n",
			m.Mix, m.Requests, m.OK, m.Shed, m.Disconnected, m.Errors)
	}
	for _, t := range r.Tiers {
		fmt.Fprintf(&b, "  cache tier %-8s %6d hits  %6d misses  hit-ratio %.3f\n",
			t.Tier, t.Hits, t.Misses, t.HitRatio)
	}
	return b.String()
}
