package loadgen

import (
	"reflect"
	"strings"
	"testing"
)

// TestScheduleDeterministic: same profile + seed, same sequence; a
// different seed reshuffles it.
func TestScheduleDeterministic(t *testing.T) {
	p := SmokeProfile(1)
	a, err := Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two schedules of the same profile differ")
	}
	if len(a) != p.Requests {
		t.Fatalf("schedule has %d requests, want %d", len(a), p.Requests)
	}
	c, err := Schedule(SmokeProfile(2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
}

// TestScheduleMixes: the smoke profile exercises every mix, unique
// bodies never repeat, storms repeat within a burst, and overload
// probes are marked shed-expected.
func TestScheduleMixes(t *testing.T) {
	reqs, err := Schedule(SmokeProfile(1))
	if err != nil {
		t.Fatal(err)
	}
	seenMix := map[string]int{}
	uniqueBodies := map[string]int{}
	overloadBodies := map[string]int{}
	shardedBodies := map[string]bool{}
	deltaBodies := map[string]bool{}
	for _, r := range reqs {
		seenMix[r.Mix]++
		if r.Mix == "unique" {
			uniqueBodies[r.Body]++
		}
		if r.Mix == "overload" {
			if !r.WantShed || r.Path != "/v1/simulate" {
				t.Fatalf("overload request not a shed-expected simulate: %+v", r)
			}
			overloadBodies[r.Body]++
		}
		if r.Mix == "sharded" {
			if r.Path != "/v1/explore" || r.WantShed {
				t.Fatalf("sharded request must be a plain explore: %+v", r)
			}
			shardedBodies[r.Body] = true
		}
		if r.Mix == "delta" {
			if r.Path != "/v1/explore" || r.WantShed {
				t.Fatalf("delta request must be a plain explore: %+v", r)
			}
			if !strings.Contains(r.Body, `"hit_rate":0.6`) || !strings.Contains(r.Body, `"max_area_mm2":`) {
				t.Fatalf("delta body must rotate the area cap over the 0.6 hit-rate family: %s", r.Body)
			}
			deltaBodies[r.Body] = true
		}
		if r.Mix == "disconnect" && !r.Disconnect {
			t.Fatalf("disconnect request not marked: %+v", r)
		}
		if r.Mix == "slow" && !r.SlowBody {
			t.Fatalf("slow request not marked: %+v", r)
		}
	}
	for _, mix := range []string{"hot", "unique", "storm", "slow", "disconnect", "overload", "sharded", "delta"} {
		if seenMix[mix] == 0 {
			t.Errorf("smoke profile never drew mix %q", mix)
		}
	}
	for body, n := range uniqueBodies {
		if n > 1 {
			t.Errorf("unique body repeated %d times: %s", n, body)
		}
	}
	for body, n := range overloadBodies {
		if n > 1 {
			t.Errorf("overload body repeated %d times (must cache-bust): %s", n, body)
		}
	}
	// The sharded mix rotates a small set so repeats hit the cache
	// tiers; with 8% of 160 requests every body should recur.
	if len(shardedBodies) == 0 || len(shardedBodies) > 4 {
		t.Errorf("sharded mix drew %d distinct bodies, want 1..4", len(shardedBodies))
	}
	if seenMix["sharded"] <= len(shardedBodies) {
		t.Errorf("sharded mix drew %d requests over %d bodies — no repeats to hit the cache",
			seenMix["sharded"], len(shardedBodies))
	}
	// The delta mix needs at least two distinct caps in one run: the
	// first records the retained state, the second exercises the
	// incremental re-serve.
	if len(deltaBodies) < 2 || len(deltaBodies) > 4 {
		t.Errorf("delta mix drew %d distinct bodies, want 2..4", len(deltaBodies))
	}
}

// TestScheduleRejectsBadProfiles: zero weights and empty runs are
// configuration errors, not silent no-ops.
func TestScheduleRejectsBadProfiles(t *testing.T) {
	if _, err := Schedule(Profile{Requests: 10, Mixes: []MixWeight{{"hot", 0}}}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := Schedule(Profile{Requests: 0, Mixes: []MixWeight{{"hot", 1}}}); err == nil {
		t.Error("zero-request profile accepted")
	}
	if _, err := Schedule(Profile{Requests: 5, Mixes: []MixWeight{{"lukewarm", 1}}}); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestSummarizeAndCheck pins the outcome classification and the SLO
// arithmetic.
func TestSummarizeAndCheck(t *testing.T) {
	ms := int64(1e6)
	outcomes := []Outcome{
		{Mix: "hot", Status: 200, LatencyNs: 10 * ms},
		{Mix: "hot", Status: 200, LatencyNs: 20 * ms},
		{Mix: "hot", Status: 200, LatencyNs: 30 * ms},
		{Mix: "overload", Status: 503, WantShed: true},
		{Mix: "overload", Status: 200, LatencyNs: 40 * ms, WantShed: true},
		{Mix: "disconnect", Disconnected: true},
		{Mix: "unique", Status: 500},
	}
	r := Summarize(outcomes)
	if r.OK != 4 || r.ShedExpected != 1 || r.Disconnected != 1 || r.UnexpectedErrors != 1 {
		t.Fatalf("classification: ok=%d shed=%d disc=%d err=%d", r.OK, r.ShedExpected, r.Disconnected, r.UnexpectedErrors)
	}
	// 6 judged outcomes (disconnects excluded), 1 unexpected error.
	if got, want := r.ErrorFrac, 1.0/6.0; got != want {
		t.Errorf("error frac %v, want %v", got, want)
	}
	if r.P50Ns != 20*ms || r.P99Ns != 40*ms || r.P999Ns != 40*ms {
		t.Errorf("percentiles p50=%d p99=%d p999=%d", r.P50Ns, r.P99Ns, r.P999Ns)
	}
	if len(r.Mixes) != 4 || r.Mixes[0].Mix != "disconnect" {
		t.Errorf("mix rollup not sorted: %+v", r.Mixes)
	}

	v := r.Check(SLO{P50Ms: 15, P99Ms: 5000, MaxErrorFrac: 0})
	if len(v) != 2 {
		t.Fatalf("violations %v, want p50 breach + error budget breach", v)
	}
	if !strings.Contains(v[0], "p50") || !strings.Contains(v[1], "error fraction") {
		t.Errorf("violations %v", v)
	}
	if v := r.Check(SLO{P50Ms: 100, P99Ms: 100, P999Ms: 100, MaxErrorFrac: 0.5}); len(v) != 0 {
		t.Errorf("generous SLO still violated: %v", v)
	}

	empty := Summarize(nil)
	if empty.P50Ns != 0 || empty.ErrorFrac != 0 {
		t.Errorf("empty run: %+v", empty)
	}
}

// TestParseTierStats pins the /metrics scrape: tier series in any
// order, interleaved with unrelated lines, parse to sorted stats.
func TestParseTierStats(t *testing.T) {
	text := strings.Join([]string{
		`# HELP edramd_cache_tier_hits_total Cache hits by tier.`,
		`edramd_cache_tier_misses_total{tier="memory"} 4`,
		`edramd_requests_total{endpoint="/v1/explore"} 12`,
		`edramd_cache_tier_hits_total{tier="memory"} 12`,
		`edramd_cache_tier_hits_total{tier="disk"} 1`,
		`edramd_cache_tier_misses_total{tier="disk"} 3`,
		``,
	}, "\n")
	got := ParseTierStats(text)
	want := []TierStat{
		{Tier: "disk", Hits: 1, Misses: 3, HitRatio: 0.25},
		{Tier: "memory", Hits: 12, Misses: 4, HitRatio: 0.75},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseTierStats:\n got %+v\nwant %+v", got, want)
	}
	if stats := ParseTierStats("edramd_cache_tier_hits_total{tier=\"memory\"} not-a-number\n"); len(stats) != 0 {
		t.Errorf("garbage value parsed: %+v", stats)
	}

	r := Report{Tiers: want}
	out := r.Format()
	if !strings.Contains(out, "cache tier disk") || !strings.Contains(out, "hit-ratio 0.750") {
		t.Errorf("Format missing tier lines:\n%s", out)
	}
}
