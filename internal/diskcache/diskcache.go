// Package diskcache is the persistent canonical-key cache tier behind
// the service layer's in-memory LRU: an append-only segment log of
// (key, response-bytes) records with CRC framing, compacted atomically
// via tmp+rename, bounded by a size/entry budget, snapshotted on
// graceful drain and replayed on boot so a restarted replica serves
// its hot keys byte-identical to the original miss without
// recomputation.
//
// Durability model: the live working set (index and values) lives in
// memory; the log is its crash-safe shadow. Appends are handed to a
// single writer goroutine over a bounded queue, so the serving path
// never blocks on disk and no file I/O ever runs under the index lock.
// A torn or corrupt record — a crash mid-append — is detected by its
// CRC at replay and the damaged suffix is dropped; everything before
// it replays exactly. A compaction killed mid-write leaves only a
// stale tmp file (removed at open); the rename is atomic, so the log
// is always either the old segment or the complete new one.
//
// Every segment starts with a generation header. The owner derives the
// generation from its wire schema version and canonical-key tag
// versions (service.CacheGeneration); a snapshot written under an old
// schema self-invalidates at open instead of replaying wrong bytes.
package diskcache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	logName = "cache.log"
	tmpName = "cache.log.tmp"

	// magic opens every segment; the header is
	// magic | u32 gen-length | gen | u32 crc32(gen).
	magic = "EDRC"

	// recordOverhead is the framing cost of one record:
	// u32 key-length | u32 value-length | key | value | u32 crc32(key‖value).
	recordOverhead = 12

	// maxKeyLen / maxValLen are sanity bounds on the framing fields, so
	// a corrupt length cannot ask replay for a gigantic allocation.
	maxKeyLen = 1 << 16
	maxValLen = 1 << 30

	// compactMinBytes is the log size below which compaction is never
	// triggered automatically — rewriting a tiny log buys nothing.
	compactMinBytes = 1 << 20
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("diskcache: closed")

// Options tunes a cache; zero values get defaults.
type Options struct {
	// MaxBytes bounds the live value bytes held (default 256 MiB).
	MaxBytes int64
	// MaxEntries bounds the live entry count (default 4096).
	MaxEntries int
	// Generation tags the segment. Required: a cache opened with a
	// different generation than the segment on disk discards the
	// segment instead of replaying bytes encoded under another schema.
	Generation string
	// QueueDepth bounds the pending-append queue (default 256). When
	// the writer falls behind, further Puts stay memory-only (counted
	// as DroppedWrites) rather than blocking the serving path.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits, Misses, Puts int64
	// Evictions counts entries dropped by the size/entry budget.
	Evictions int64
	// ReplayedEntries is the live entry count recovered at Open;
	// DroppedRecords counts damaged suffixes truncated at Open;
	// Invalidations counts whole-segment discards (generation mismatch
	// or unreadable header).
	ReplayedEntries int64
	DroppedRecords  int64
	Invalidations   int64
	// Compactions counts segment rewrites; WriteErrors counts failed
	// appends (the entry stays served from memory, just not durable);
	// DroppedWrites counts appends shed by the full queue.
	Compactions   int64
	WriteErrors   int64
	DroppedWrites int64
	// Entries / LiveBytes describe the current live set.
	Entries   int
	LiveBytes int64
}

type entry struct {
	key string
	val []byte
}

// Cache is the disk-backed tier. Construct with Open; Close snapshots
// the live set back to a compact segment.
type Cache struct {
	dir string
	opt Options

	// mu guards the index only — never held across file I/O (the locks
	// analyzer enforces this repo-wide).
	mu        sync.Mutex
	order     *list.List // front = most recently used
	entries   map[string]*list.Element
	liveBytes int64
	closed    bool

	// The segment file is owned by the writer goroutine while it runs,
	// and by Open/Close outside that window.
	f        *os.File
	logBytes int64

	writeq   chan entry
	compactq chan chan error
	done     chan struct{} // closed by Close: writer drains and exits
	wdone    chan struct{} // closed by the writer on exit

	hits, misses, puts      atomic.Int64
	evictions, compactions  atomic.Int64
	replayed, dropped       atomic.Int64
	invalidations           atomic.Int64
	writeErrors, dropWrites atomic.Int64
}

// Open loads (or creates) the segment in dir, replays it into memory,
// truncates any damaged suffix, and starts the background writer.
func Open(dir string, opt Options) (*Cache, error) {
	opt = opt.withDefaults()
	if opt.Generation == "" {
		return nil, errors.New("diskcache: Options.Generation is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	// A tmp file is a compaction that died before its atomic rename;
	// the main segment is still authoritative.
	if err := os.Remove(filepath.Join(dir, tmpName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("diskcache: removing stale tmp: %w", err)
	}
	c := &Cache{
		dir:      dir,
		opt:      opt,
		order:    list.New(),
		entries:  map[string]*list.Element{},
		writeq:   make(chan entry, opt.QueueDepth),
		compactq: make(chan chan error),
		done:     make(chan struct{}),
		wdone:    make(chan struct{}),
	}
	if err := c.replay(); err != nil {
		return nil, err
	}
	go c.writer(c.done)
	return c, nil
}

// replay loads the segment into the in-memory index, enforcing the
// budget, and leaves an append handle positioned after the last valid
// record.
func (c *Cache) replay() error {
	path := filepath.Join(c.dir, logName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("diskcache: reading segment: %w", err)
	}
	valid := 0
	if headerLen, ok := parseHeader(data, c.opt.Generation); ok {
		valid = headerLen
		for valid < len(data) {
			key, val, next, ok := parseRecord(data, valid)
			if !ok {
				// Damaged suffix: a torn append or bit rot. Everything
				// before it is CRC-verified; drop only the tail.
				c.dropped.Add(1)
				break
			}
			c.applyReplayed(key, val)
			valid = next
		}
		c.replayed.Store(int64(len(c.entries)))
	} else {
		if len(data) > 0 {
			// Unreadable header or another generation's segment: the
			// bytes may be encoded under a different schema, so the
			// whole segment is discarded rather than replayed wrong.
			c.invalidations.Add(1)
		}
		fresh, err := encodeHeader(c.opt.Generation)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, fresh, 0o644); err != nil {
			return fmt.Errorf("diskcache: writing segment header: %w", err)
		}
		valid = len(fresh)
	}
	c.enforceBudget()
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("diskcache: opening segment for append: %w", err)
	}
	// Truncate the damaged suffix (if any) and append after the valid
	// prefix from now on.
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return fmt.Errorf("diskcache: truncating damaged suffix: %w", err)
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return fmt.Errorf("diskcache: seeking segment: %w", err)
	}
	c.f = f
	c.logBytes = int64(valid)
	return nil
}

// applyReplayed folds one replayed record into the index (later records
// for the same key win; record order is the recency order).
func (c *Cache) applyReplayed(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.liveBytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, val: val})
	c.liveBytes += int64(len(key) + len(val))
}

// enforceBudget evicts least-recently-used entries until the size and
// entry budgets hold. Callers hold mu (or run single-threaded at Open).
func (c *Cache) enforceBudget() {
	for len(c.entries) > c.opt.MaxEntries || (c.liveBytes > c.opt.MaxBytes && len(c.entries) > 1) {
		oldest := c.order.Back()
		if oldest == nil {
			return
		}
		e := oldest.Value.(*entry)
		c.order.Remove(oldest)
		delete(c.entries, e.key)
		c.liveBytes -= int64(len(e.key) + len(e.val))
		c.evictions.Add(1)
	}
}

// Get returns the cached bytes for key, promoting the entry to
// most-recently-used. The returned slice must not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	val := el.Value.(*entry).val
	c.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key and queues the append to the segment log.
// The entry serves from memory immediately; durability follows when
// the writer drains the queue (or at the Close snapshot).
func (c *Cache) Put(key string, val []byte) {
	if key == "" || len(key) >= maxKeyLen || int64(len(val)) >= maxValLen {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.applyReplayed(key, val)
	c.enforceBudget()
	c.mu.Unlock()
	c.puts.Add(1)
	select {
	case c.writeq <- entry{key: key, val: val}:
	default:
		c.dropWrites.Add(1)
	}
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, live := len(c.entries), c.liveBytes
	c.mu.Unlock()
	return Stats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Puts:            c.puts.Load(),
		Evictions:       c.evictions.Load(),
		ReplayedEntries: c.replayed.Load(),
		DroppedRecords:  c.dropped.Load(),
		Invalidations:   c.invalidations.Load(),
		Compactions:     c.compactions.Load(),
		WriteErrors:     c.writeErrors.Load(),
		DroppedWrites:   c.dropWrites.Load(),
		Entries:         entries,
		LiveBytes:       live,
	}
}

// Compact rewrites the segment to exactly the live set (tmp + atomic
// rename). The rewrite runs on the writer goroutine, serialized with
// appends.
func (c *Cache) Compact() error {
	ch := make(chan error, 1)
	select {
	case c.compactq <- ch:
		return <-ch
	case <-c.done:
		return ErrClosed
	}
}

// Close drains pending appends, snapshots the live set into a compact
// segment (the graceful-drain snapshot), and releases the file.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	<-c.wdone
	// Single-threaded from here: the writer has exited.
	err := c.compact()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writer is the single goroutine that owns the segment file: it drains
// the append queue, triggers budget-driven compaction, and serves
// explicit Compact requests. It exits when done closes (Close), after
// draining whatever is already queued.
func (c *Cache) writer(done <-chan struct{}) {
	defer close(c.wdone)
	for {
		select {
		case e := <-c.writeq:
			c.appendRecord(e)
			c.maybeCompact()
		case ch := <-c.compactq:
			ch <- c.compact()
		case <-done:
			for {
				select {
				case e := <-c.writeq:
					c.appendRecord(e)
				default:
					return
				}
			}
		}
	}
}

// appendRecord writes one framed record to the segment. Failures are
// counted, not fatal: the entry still serves from memory.
func (c *Cache) appendRecord(e entry) {
	buf := encodeRecord(e.key, e.val)
	if _, err := c.f.Write(buf); err != nil {
		c.writeErrors.Add(1)
		return
	}
	c.logBytes += int64(len(buf))
}

// maybeCompact rewrites the segment when the log has grown past twice
// the live set — the stale-record ratio where a rewrite pays for
// itself.
func (c *Cache) maybeCompact() {
	c.mu.Lock()
	live := c.liveBytes
	c.mu.Unlock()
	if c.logBytes > compactMinBytes && c.logBytes > 2*live {
		// Best effort: a failed automatic compaction keeps appending to
		// the old segment; the next trigger retries.
		if err := c.compact(); err != nil {
			c.writeErrors.Add(1)
		}
	}
}

// compact writes the live set (oldest → newest, so replay rebuilds the
// recency order) to a tmp segment and renames it over the log. Only
// the writer goroutine (or Close, after the writer exited) calls it.
func (c *Cache) compact() error {
	// Snapshot the live set under the lock — value slices are immutable
	// by contract, so holding references is safe; no I/O happens here.
	c.mu.Lock()
	snap := make([]entry, 0, len(c.entries))
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		snap = append(snap, entry{key: e.key, val: e.val})
	}
	c.mu.Unlock()

	header, err := encodeHeader(c.opt.Generation)
	if err != nil {
		return err
	}
	tmpPath := filepath.Join(c.dir, tmpName)
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("diskcache: creating compaction tmp: %w", err)
	}
	written := int64(0)
	write := func(b []byte) error {
		n, err := tmp.Write(b)
		written += int64(n)
		return err
	}
	if err := write(header); err == nil {
		for _, e := range snap {
			if err = write(encodeRecord(e.key, e.val)); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("diskcache: writing compaction tmp: %w", err)
	}
	logPath := filepath.Join(c.dir, logName)
	if err := os.Rename(tmpPath, logPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("diskcache: swapping compacted segment: %w", err)
	}
	// Reopen the append handle on the new segment; the old descriptor
	// points at the unlinked file.
	old := c.f
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskcache: reopening compacted segment: %w", err)
	}
	old.Close()
	c.f = f
	c.logBytes = written
	c.compactions.Add(1)
	return nil
}

// ---- framing ----------------------------------------------------------

// encodeHeader renders the segment header for a generation.
func encodeHeader(gen string) ([]byte, error) {
	if len(gen) >= maxKeyLen {
		return nil, fmt.Errorf("diskcache: generation tag too long (%d bytes)", len(gen))
	}
	buf := make([]byte, 0, len(magic)+8+len(gen))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(gen)))
	buf = append(buf, gen...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE([]byte(gen)))
	return buf, nil
}

// parseHeader validates the segment header against the expected
// generation, returning the header length on success.
func parseHeader(data []byte, gen string) (int, bool) {
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return 0, false
	}
	off := len(magic)
	genLen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if genLen >= maxKeyLen || off+genLen+4 > len(data) {
		return 0, false
	}
	got := data[off : off+genLen]
	off += genLen
	sum := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if crc32.ChecksumIEEE(got) != sum || string(got) != gen {
		return 0, false
	}
	return off, true
}

// encodeRecord frames one (key, value) record with its CRC.
func encodeRecord(key string, val []byte) []byte {
	buf := make([]byte, 0, recordOverhead+len(key)+len(val))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write(val)
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	return buf
}

// parseRecord decodes the record at off, verifying lengths and CRC.
// It returns the offset just past the record.
func parseRecord(data []byte, off int) (key string, val []byte, next int, ok bool) {
	if off+8 > len(data) {
		return "", nil, 0, false
	}
	keyLen := int(binary.LittleEndian.Uint32(data[off:]))
	valLen := int(binary.LittleEndian.Uint32(data[off+4:]))
	if keyLen == 0 || keyLen >= maxKeyLen || valLen < 0 || int64(valLen) >= maxValLen {
		return "", nil, 0, false
	}
	off += 8
	if off+keyLen+valLen+4 > len(data) {
		return "", nil, 0, false
	}
	k := data[off : off+keyLen]
	v := data[off+keyLen : off+keyLen+valLen]
	sum := binary.LittleEndian.Uint32(data[off+keyLen+valLen:])
	crc := crc32.NewIEEE()
	crc.Write(k)
	crc.Write(v)
	if crc.Sum32() != sum {
		return "", nil, 0, false
	}
	return string(k), append([]byte(nil), v...), off + keyLen + valLen + 4, true
}
