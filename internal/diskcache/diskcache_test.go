package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"edram/internal/testleak"
)

func TestMain(m *testing.M) { testleak.Check(m) }

const gen = "test/v1"

func open(t *testing.T, dir string, opt Options) *Cache {
	t.Helper()
	if opt.Generation == "" {
		opt.Generation = gen
	}
	c, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

// writeLog crafts a raw segment file from a header plus records, so
// replay semantics can be tested against exact byte layouts.
func writeLog(t *testing.T, dir string, chunks ...[]byte) {
	t.Helper()
	header, err := encodeHeader(gen)
	if err != nil {
		t.Fatalf("encodeHeader: %v", err)
	}
	data := append([]byte(nil), header...)
	for _, c := range chunks {
		data = append(data, c...)
	}
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatalf("writing crafted log: %v", err)
	}
}

func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{})
	c.Put("alpha", []byte("one"))
	c.Put("beta", []byte("two"))
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := open(t, dir, Options{})
	defer c2.Close()
	if got := c2.Stats().ReplayedEntries; got != 2 {
		t.Fatalf("ReplayedEntries = %d, want 2", got)
	}
	for key, want := range map[string]string{"alpha": "one", "beta": "two"} {
		got, ok := c2.Get(key)
		if !ok || string(got) != want {
			t.Fatalf("Get(%q) = %q, %v; want %q", key, got, ok, want)
		}
	}
	if _, ok := c2.Get("missing"); ok {
		t.Fatal("Get(missing) unexpectedly hit")
	}
}

func TestReplayLaterRecordWins(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir,
		encodeRecord("k", []byte("stale")),
		encodeRecord("other", []byte("x")),
		encodeRecord("k", []byte("fresh")),
	)
	c := open(t, dir, Options{})
	defer c.Close()
	got, ok := c.Get("k")
	if !ok || string(got) != "fresh" {
		t.Fatalf("Get(k) = %q, %v; want fresh", got, ok)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	torn := encodeRecord("torn", []byte("never fully written"))
	writeLog(t, dir,
		encodeRecord("a", []byte("1")),
		encodeRecord("b", []byte("2")),
		torn[:len(torn)-5], // crash mid-append
	)
	c := open(t, dir, Options{})
	st := c.Stats()
	if st.DroppedRecords != 1 || st.ReplayedEntries != 2 {
		t.Fatalf("stats = %+v, want 1 dropped / 2 replayed", st)
	}
	if _, ok := c.Get("torn"); ok {
		t.Fatal("torn record replayed")
	}
	// The damaged suffix must be truncated, so appends after recovery
	// produce a clean log that replays in full.
	c.Put("c", []byte("3"))
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c2 := open(t, dir, Options{})
	defer c2.Close()
	st = c2.Stats()
	if st.DroppedRecords != 0 || st.ReplayedEntries != 3 {
		t.Fatalf("after recovery stats = %+v, want 0 dropped / 3 replayed", st)
	}
}

func TestReplayCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	bad := encodeRecord("bad", []byte("payload"))
	bad[10] ^= 0xff // flip a byte inside the record body
	writeLog(t, dir,
		encodeRecord("good", []byte("kept")),
		bad,
		encodeRecord("after", []byte("unreachable")),
	)
	c := open(t, dir, Options{})
	defer c.Close()
	// Only the suffix from the damaged record on is dropped; the
	// CRC-verified prefix replays exactly.
	if got, ok := c.Get("good"); !ok || string(got) != "kept" {
		t.Fatalf("Get(good) = %q, %v", got, ok)
	}
	for _, key := range []string{"bad", "after"} {
		if _, ok := c.Get(key); ok {
			t.Fatalf("Get(%q) replayed past a corrupt record", key)
		}
	}
	if st := c.Stats(); st.DroppedRecords != 1 {
		t.Fatalf("DroppedRecords = %d, want 1", st.DroppedRecords)
	}
}

func TestMidCompactionKillLeavesLogAuthoritative(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, encodeRecord("k", []byte("v")))
	// A compaction killed before its atomic rename leaves a tmp file of
	// arbitrary completeness; the main segment must stay authoritative.
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("partial garbage"), 0o644); err != nil {
		t.Fatalf("writing stray tmp: %v", err)
	}
	c := open(t, dir, Options{})
	defer c.Close()
	if got, ok := c.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get(k) = %q, %v", got, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not removed: %v", err)
	}
}

func TestGenerationMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{Generation: "schema/v1"})
	c.Put("k", []byte("old-schema bytes"))
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := open(t, dir, Options{Generation: "schema/v2"})
	if _, ok := c2.Get("k"); ok {
		t.Fatal("stale-generation entry replayed")
	}
	st := c2.Stats()
	if st.Invalidations != 1 || st.ReplayedEntries != 0 {
		t.Fatalf("stats = %+v, want 1 invalidation / 0 replayed", st)
	}
	c2.Put("k", []byte("new-schema bytes"))
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c3 := open(t, dir, Options{Generation: "schema/v2"})
	defer c3.Close()
	if got, ok := c3.Get("k"); !ok || string(got) != "new-schema bytes" {
		t.Fatalf("Get(k) = %q, %v", got, ok)
	}
}

func TestBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{MaxEntries: 2})
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // promote a over b
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived past the entry budget")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The budget also holds across a restart with a tighter limit.
	c2 := open(t, dir, Options{MaxEntries: 1})
	defer c2.Close()
	if n := c2.Len(); n != 1 {
		t.Fatalf("Len after tightened restart = %d, want 1", n)
	}
}

func TestCompactDropsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{})
	for i := 0; i < 10; i++ {
		c.Put("hot", []byte(fmt.Sprintf("version-%d", i)))
	}
	c.Put("cold", []byte("x"))
	if err := c.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := c.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The compacted segment holds exactly the live set: replay applies
	// one record per live key.
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	headerLen, ok := parseHeader(data, gen)
	if !ok {
		t.Fatal("compacted segment header unreadable")
	}
	records := 0
	for off := headerLen; off < len(data); records++ {
		_, _, next, ok := parseRecord(data, off)
		if !ok {
			t.Fatalf("compacted segment has a bad record at offset %d", off)
		}
		off = next
	}
	if records != 2 {
		t.Fatalf("compacted segment holds %d records, want 2", records)
	}
	c2 := open(t, dir, Options{})
	defer c2.Close()
	if got, ok := c2.Get("hot"); !ok || string(got) != "version-9" {
		t.Fatalf("Get(hot) = %q, %v; want version-9", got, ok)
	}
}

func TestCloseSnapshotIsCompact(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		c.Put("k", []byte(fmt.Sprintf("v%d", i)))
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c2 := open(t, dir, Options{})
	defer c2.Close()
	st := c2.Stats()
	if st.ReplayedEntries != 1 {
		t.Fatalf("ReplayedEntries = %d, want 1 (graceful drain snapshots the live set)", st.ReplayedEntries)
	}
	if got, _ := c2.Get("k"); !bytes.Equal(got, []byte("v4")) {
		t.Fatalf("Get(k) = %q, want v4", got)
	}
}

func TestClosedCacheRejectsOps(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{})
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c.Put("k", []byte("v")) // must not panic or write
	if err := c.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, Options{MaxEntries: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%100)
				c.Put(key, []byte(key))
				if got, ok := c.Get(key); ok && string(got) != key {
					t.Errorf("Get(%q) = %q", key, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
