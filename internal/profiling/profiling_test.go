package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little work so the profiles have something to hold.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
