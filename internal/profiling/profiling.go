// Package profiling wires the -cpuprofile/-memprofile flags of the CLI
// tools (edramx, memsim) to runtime/pprof, so hot-path work can be
// profiled exactly as it runs in production use rather than only
// through synthetic benchmarks. The daemon exposes the live
// net/http/pprof endpoints instead (edramd -pprof-addr).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (empty = disabled) and
// returns a stop function that ends the CPU profile and writes an
// allocation-accounting heap profile to memPath (empty = disabled).
// The stop function must run on the success path — typically deferred
// right after Start; error exits that bypass it simply lose the
// profile, they do not corrupt anything.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			// Up-to-date accounting: the heap profile reflects live
			// objects after a full collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
