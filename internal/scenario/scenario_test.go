package scenario

import (
	"strings"
	"testing"

	"edram/internal/sched"
)

// validDoc is a minimal two-level scenario exercising both kinds,
// operands, a below reference and a client allocation.
const validDoc = `{
  "schema_version": 1,
  "name": "test-scn",
  "description": "ignored by the key",
  "hierarchy": {
    "name": "h",
    "levels": [
      {"name": "cache", "kind": "sram", "capacity_kbit": 256, "interface_bits": 64, "below": "store"},
      {"name": "store", "kind": "edram", "capacity_mbit": 16, "interface_bits": 64,
       "operands": ["frames"], "read_gbps": 1.0, "write_gbps": 0.5,
       "read_energy_pj_bit": 1.5, "write_energy_pj_bit": 1.8}
    ]
  },
  "workload": {
    "policy": "open-page-first",
    "reorder_window": 8,
    "clients": [
      {"name": "stream", "kind": "sequential", "level": "store", "operand": "frames",
       "rate_gbps": 0.8, "count": 100}
    ]
  },
  "constraints": {"hit_rate": 0.8, "defects_per_cm2": 0.8}
}`

func mustParse(t *testing.T, doc string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseValidDocument(t *testing.T) {
	s := mustParse(t, validDoc)
	if v := s.Violations(0); len(v) != 0 {
		t.Fatalf("valid document reported violations: %v", v)
	}
	if s.Name != "test-scn" || len(s.Hierarchy.Levels) != 2 {
		t.Fatalf("unexpected parse result: %+v", s)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	// capacity_mb is neither unit spelling the schema accepts: a typo'd
	// or wrong-unit field must be a load error, not an ignored knob.
	doc := strings.Replace(validDoc, `"capacity_mbit": 16`, `"capacity_mb": 16`, 1)
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("unknown field capacity_mb accepted")
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(validDoc + "{}")); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestViolationsUnitSuffixMismatch(t *testing.T) {
	// capacity_kbit is a real field — but the sram unit; using it on an
	// edram level is a semantic unit mismatch reported by validation.
	doc := strings.Replace(validDoc, `"capacity_mbit": 16`, `"capacity_mbit": 16, "capacity_kbit": 64`, 1)
	s := mustParse(t, doc)
	v := s.Violations(0)
	if !containsSubstring(v, "capacity_kbit is the sram unit") {
		t.Fatalf("unit mismatch not reported: %v", v)
	}
}

func TestViolationsAbsentBelowReference(t *testing.T) {
	doc := strings.Replace(validDoc, `"below": "store"`, `"below": "nonexistent"`, 1)
	s := mustParse(t, doc)
	if v := s.Violations(0); !containsSubstring(v, `below references unknown level "nonexistent"`) {
		t.Fatalf("absent reference not reported: %v", v)
	}
}

func TestViolationsCyclicBelowChain(t *testing.T) {
	doc := strings.Replace(validDoc,
		`"operands": ["frames"],`,
		`"operands": ["frames"], "below": "cache",`, 1)
	s := mustParse(t, doc)
	if v := s.Violations(0); !containsSubstring(v, "cyclic below chain") {
		t.Fatalf("cycle not reported: %v", v)
	}
}

func TestViolationsSelfSpill(t *testing.T) {
	doc := strings.Replace(validDoc, `"below": "store"`, `"below": "cache"`, 1)
	s := mustParse(t, doc)
	if v := s.Violations(0); !containsSubstring(v, "cannot spill to itself") {
		t.Fatalf("self-spill not reported: %v", v)
	}
}

func TestViolationsSchemaVersion(t *testing.T) {
	missing := strings.Replace(validDoc, `"schema_version": 1,`, "", 1)
	if v := mustParse(t, missing).Violations(0); !containsSubstring(v, "schema_version is required") {
		t.Fatalf("missing version not reported: %v", v)
	}
	wrong := strings.Replace(validDoc, `"schema_version": 1`, `"schema_version": 99`, 1)
	if v := mustParse(t, wrong).Violations(0); !containsSubstring(v, "unsupported schema_version 99") {
		t.Fatalf("wrong version not reported: %v", v)
	}
}

func TestViolationsAggregateEverything(t *testing.T) {
	// One document, many problems: every violation must surface in a
	// single pass (the core.Requirements aggregate style).
	doc := `{
	  "schema_version": 3,
	  "hierarchy": {"levels": [
	    {"name": "a", "kind": "flash", "capacity_mbit": 1},
	    {"name": "a", "kind": "edram", "capacity_mbit": -4, "interface_bits": 48}
	  ]},
	  "workload": {
	    "policy": "whatever",
	    "clients": [{"name": "", "kind": "laser", "level": "missing", "rate_gbps": -1, "count": 0}]
	  },
	  "constraints": {"hit_rate": 1.5}
	}`
	s := mustParse(t, doc)
	v := s.Violations(0)
	for _, want := range []string{
		"unsupported schema_version 3",
		"name is required",
		`unknown kind "flash"`,
		"duplicate level name",
		"capacity_mbit must be positive",
		"interface_bits 48 outside",
		`unknown kind "laser"`,
		"rate must be positive",
		"count must be positive",
		`targets unknown level "missing"`,
		`unknown policy "whatever"`,
		// No edram level survives to carry the constraint check, but the
		// broken constraint still surfaces in the same pass.
		"constraints: hit rate 1.5 out of [0,1]",
	} {
		if !containsSubstring(v, want) {
			t.Errorf("violation %q missing from %v", want, v)
		}
	}
}

func TestViolationsOperandAllocation(t *testing.T) {
	doc := strings.Replace(validDoc, `"operand": "frames"`, `"operand": "weights"`, 1)
	s := mustParse(t, doc)
	if v := s.Violations(0); !containsSubstring(v, `operand "weights" is not allocated to level "store"`) {
		t.Fatalf("operand misallocation not reported: %v", v)
	}
}

func TestViolationsClientOnSRAMLevel(t *testing.T) {
	doc := strings.Replace(validDoc, `"level": "store"`, `"level": "cache"`, 1)
	s := mustParse(t, doc)
	if v := s.Violations(0); !containsSubstring(v, "simulation clients need an edram level") {
		t.Fatalf("sram-targeted client not reported: %v", v)
	}
}

func TestViolationsRequestCap(t *testing.T) {
	s := mustParse(t, validDoc)
	if v := s.Violations(50); !containsSubstring(v, "exceeds the per-request limit 50") {
		t.Fatalf("request cap not enforced: %v", v)
	}
}

func TestCanonicalKeyContentNotName(t *testing.T) {
	// The PR 4 rule: two same-named scenarios with different content
	// must never alias in the cache.
	a := mustParse(t, validDoc)
	b := mustParse(t, strings.Replace(validDoc, `"capacity_mbit": 16`, `"capacity_mbit": 32`, 1))
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("same-named scenarios with different content share a canonical key")
	}
}

func TestCanonicalKeyNormalizesSpelling(t *testing.T) {
	// JSON spelling differences that do not change the value must not
	// change the identity.
	a := mustParse(t, validDoc)
	b := mustParse(t, strings.Replace(validDoc, `"rate_gbps": 0.8`, `"rate_gbps": 0.80`, 1))
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatalf("0.8 and 0.80 produce different keys:\n%s\n%s", a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestCanonicalKeyIgnoresDescription(t *testing.T) {
	a := mustParse(t, validDoc)
	b := mustParse(t, strings.Replace(validDoc, "ignored by the key", "a different story", 1))
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("description changed the canonical key")
	}
}

func TestCompileLowering(t *testing.T) {
	s := mustParse(t, validDoc)
	c, err := s.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(c.Levels) != 2 {
		t.Fatalf("expected 2 compiled levels, got %d", len(c.Levels))
	}
	cache, store := c.Levels[0], c.Levels[1]
	if cache.SRAM == nil || cache.SRAM.Bits != 256*1024 {
		t.Fatalf("sram level not lowered: %+v", cache.SRAM)
	}
	if store.Spec.CapacityMbit != 16 || store.Spec.InterfaceBits != 64 {
		t.Fatalf("edram spec not lowered: %+v", store.Spec)
	}
	// Port demand 1.0+0.5 exceeds the client sum 0.8, so it wins.
	if got := store.Requirements.BandwidthGBps; got != 1.5 {
		t.Fatalf("bandwidth requirement = %g, want 1.5 (port demand)", got)
	}
	// Derived power: 8*(1.0*1.5 + 0.5*1.8) * PowerOverheadFactor.
	want := 8 * (1.0*1.5 + 0.5*1.8) * PowerOverheadFactor
	if got := store.Requirements.MaxPowerMW; got != want {
		t.Fatalf("derived power cap = %g, want %g", got, want)
	}
	if len(store.Clients) != 1 || store.Clients[0].Name != "stream" {
		t.Fatalf("client allocation wrong: %+v", store.Clients)
	}
	if c.Target != 1 {
		t.Fatalf("target = %d, want 1 (first edram level with clients)", c.Target)
	}
	if c.Policy != sched.OpenPageFirst || c.ReorderWindow != 8 {
		t.Fatalf("workload options not lowered: %+v", c)
	}
}

func TestCompileClientDemandWins(t *testing.T) {
	doc := strings.Replace(validDoc, `"rate_gbps": 0.8`, `"rate_gbps": 4.0`, 1)
	c, err := mustParse(t, doc).Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Levels[1].Requirements.BandwidthGBps; got != 4.0 {
		t.Fatalf("bandwidth requirement = %g, want 4 (client demand)", got)
	}
}

func TestCompileRefusesInvalidDocument(t *testing.T) {
	doc := strings.Replace(validDoc, `"capacity_mbit": 16`, `"capacity_mbit": 0`, 1)
	if _, err := mustParse(t, doc).Compile(); err == nil {
		t.Fatal("Compile accepted an invalid document")
	} else if !strings.Contains(err.Error(), "invalid scenario:") {
		t.Fatalf("error lacks the shared vocabulary prefix: %v", err)
	}
}

func TestParsePolicyVocabulary(t *testing.T) {
	for name, want := range map[string]sched.Policy{
		"":                sched.RoundRobin,
		"round-robin":     sched.RoundRobin,
		"priority":        sched.FixedPriority,
		"fixed-priority":  sched.FixedPriority,
		"oldest":          sched.OldestFirst,
		"oldest-first":    sched.OldestFirst,
		"open-page":       sched.OpenPageFirst,
		"open-page-first": sched.OpenPageFirst,
		"deadline":        sched.Deadline,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestTargetLevelAllSRAM(t *testing.T) {
	doc := `{
	  "schema_version": 1, "name": "sram-only",
	  "hierarchy": {"levels": [{"name": "buf", "kind": "sram", "capacity_kbit": 64}]},
	  "constraints": {"hit_rate": 0.5}
	}`
	c, err := mustParse(t, doc).Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := c.TargetLevel(); err == nil {
		t.Fatal("TargetLevel succeeded with no edram level")
	}
}

func containsSubstring(list []string, sub string) bool {
	for _, s := range list {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
