// Compilation: lowering a validated scenario document into the
// engine's existing inputs — an edram.Spec candidate plus a
// core.Requirements per explorable level, an sram.Macro per SRAM
// level, and sched-ready client allocations. Nothing downstream knows
// scenarios exist; the compiler meets the engine at the same types the
// HTTP handlers and CLI flags always used.

package scenario

import (
	"fmt"

	"edram/internal/core"
	"edram/internal/edram"
	"edram/internal/reliab"
	"edram/internal/sched"
	"edram/internal/sram"
	"edram/internal/tech"
	"edram/internal/units"
)

// DefaultInterfaceBits is the interface width a level gets when the
// document leaves interface_bits unset: the concept's narrow-middle
// default, wide enough for a word-oriented client, narrow enough that
// the explorer's sweep (which owns the width decision) stays in
// charge.
const DefaultInterfaceBits = 64

// Compiled is a scenario lowered onto the engine's input types.
type Compiled struct {
	// Levels preserves the document's level order.
	Levels []CompiledLevel
	// Policy and the page/reorder options configure the controller for
	// every simulated level.
	Policy        sched.Policy
	PolicyName    string
	ClosedPage    bool
	ReorderWindow int
	// Target indexes the level memsim simulates (-1 = the hierarchy
	// has no edram level).
	Target int
}

// CompiledLevel is one lowered hierarchy level.
type CompiledLevel struct {
	Name string
	Kind string
	// Spec and Requirements are set for edram levels: Spec is the
	// concrete macro candidate the document pins (unset free dimensions
	// left to the template defaults), Requirements is the constraint
	// set the explorer sweeps against.
	Spec         edram.Spec
	Requirements core.Requirements
	// Clients are the workload clients allocated to this level, in
	// document order.
	Clients []ClientSpec
	// SRAM is set for sram levels.
	SRAM *sram.Macro
}

// PeakGBps sums a level's declared port bandwidth.
func (l Level) PeakGBps() float64 {
	return l.ReadGBps + l.WriteGBps
}

// PowerOverheadFactor converts declared array access energy into a
// whole-macro busy-power budget. The pJ/bit numbers in a scenario
// describe the cell-array access alone; the model's busy power also
// carries the periphery, the interface drivers and refresh, which in
// the concept sit an order of magnitude above the array (the default
// 0.24 µm sweep lands near 190 mW per GB/s ≈ 24 pJ/bit total against
// ~1.5 pJ/bit of array energy). The factor sizes the derived cap so it
// still rules out the power-hungry wide/fast corner without outlawing
// every buildable design.
const PowerOverheadFactor = 40

// derivedPowerMW converts a level's declared access energies and port
// bandwidths into a busy-power cap when the constraint set leaves
// max_power_mw unset: 1 GB/s at 1 pJ/bit is 8 mW of array power
// (8 Gbit/s × 1 pJ/s per bit), scaled by PowerOverheadFactor for the
// rest of the macro.
func (l Level) derivedPowerMW() float64 {
	if l.ReadEnergyPJBit <= 0 && l.WriteEnergyPJBit <= 0 {
		return 0
	}
	array := 8 * (l.ReadGBps*l.ReadEnergyPJBit + l.WriteGBps*l.WriteEnergyPJBit)
	return PowerOverheadFactor * array
}

// clientRateGBps sums the demand of the clients allocated to level
// name.
func (s *Scenario) clientRateGBps(name string) float64 {
	var sum float64
	for _, c := range s.Workload.Clients {
		if c.Level == name {
			sum += c.RateGBps
		}
	}
	return sum
}

// requirementsFor lowers one edram level into the explorer's
// constraint set. The sustained-bandwidth requirement is the larger of
// the level's declared port demand and its allocated clients' summed
// rates — the ports say what the level offers, the clients what the
// workload pulls; the explorer must satisfy both.
func (s *Scenario) requirementsFor(l Level) core.Requirements {
	bw := l.PeakGBps()
	if cr := s.clientRateGBps(l.Name); cr > bw {
		bw = cr
	}
	power := s.Constraints.MaxPowerMW
	if power == 0 {
		power = l.derivedPowerMW()
	}
	clock := s.Constraints.MinClockMHz
	if l.TargetClockMHz > clock {
		clock = l.TargetClockMHz
	}
	return core.Requirements{
		CapacityMbit:  l.CapacityMbit,
		BandwidthGBps: bw,
		HitRate:       s.Constraints.HitRate,
		MaxAreaMm2:    s.Constraints.MaxAreaMm2,
		MaxPowerMW:    power,
		MinClockMHz:   clock,
		DefectsPerCm2: s.Constraints.DefectsPerCm2,
	}
}

// specFor lowers one edram level into the concrete macro candidate the
// document pins. Validation has already vetted redundancy/ecc names,
// so the parses cannot fail here.
func (l Level) specFor() edram.Spec {
	red, _ := edram.ParseRedundancy(l.Redundancy)
	ecc, _ := reliab.ParseECC(l.ECC)
	iface := l.InterfaceBits
	if iface == 0 {
		iface = DefaultInterfaceBits
	}
	return edram.Spec{
		CapacityMbit:   l.CapacityMbit,
		InterfaceBits:  iface,
		Banks:          l.Banks,
		PageBits:       l.PageBits,
		BlockBits:      l.BlockKbit * 1024,
		Redundancy:     red,
		ECC:            ecc,
		TargetClockMHz: l.TargetClockMHz,
	}
}

// Compile validates the scenario and lowers it. A document with any
// violation is refused with the same aggregate ViolationsError the
// service's 400 carries.
func (s *Scenario) Compile() (*Compiled, error) {
	if v := s.Violations(0); len(v) > 0 {
		return nil, ViolationsError(v)
	}
	idx := s.levelIndex()
	policy, err := ParsePolicy(s.Workload.Policy)
	if err != nil {
		return nil, err // unreachable after Violations, kept for safety
	}
	out := &Compiled{
		Policy:        policy,
		PolicyName:    policy.String(),
		ClosedPage:    s.Workload.ClosedPage,
		ReorderWindow: s.Workload.ReorderWindow,
		Target:        -1,
	}
	proc := tech.Siemens024()
	for _, l := range s.Hierarchy.Levels {
		cl := CompiledLevel{Name: l.Name, Kind: l.Kind}
		switch l.Kind {
		case "edram":
			cl.Spec = l.specFor()
			cl.Requirements = s.requirementsFor(l)
		case "sram":
			bits := l.CapacityKbit * 1024
			if bits == 0 {
				bits = int(int64(l.CapacityMbit) * units.Mbit)
			}
			data := l.InterfaceBits
			if data == 0 {
				data = DefaultInterfaceBits
			}
			cl.SRAM = &sram.Macro{Process: proc, Bits: bits, DataBits: data}
		}
		for _, c := range s.Workload.Clients {
			if c.Level == l.Name {
				cl.Clients = append(cl.Clients, c.ClientSpec)
			}
		}
		out.Levels = append(out.Levels, cl)
	}
	// Target: the named level, else the first edram level with clients,
	// else the first edram level.
	if t := s.Workload.Target; t != "" {
		out.Target = idx[t]
	} else {
		for i, cl := range out.Levels {
			if cl.Kind != "edram" {
				continue
			}
			if len(cl.Clients) > 0 {
				out.Target = i
				break
			}
			if out.Target < 0 {
				out.Target = i
			}
		}
	}
	return out, nil
}

// TargetLevel returns the compiled level the simulation targets, or an
// error for an all-SRAM hierarchy.
func (c *Compiled) TargetLevel() (*CompiledLevel, error) {
	if c.Target < 0 || c.Target >= len(c.Levels) {
		return nil, fmt.Errorf("scenario has no edram level to simulate")
	}
	return &c.Levels[c.Target], nil
}
