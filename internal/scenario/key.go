// The scenario's canonical cache identity. Same rules as the other
// request keys (DESIGN.md §"Cache-key canonicalization"): every
// semantically significant field in declared order, floats in shortest
// exact form, client-chosen strings quoted so embedded separators
// cannot shift positional fields. The full document content is
// rendered — never just the name — so two same-named scenarios with
// different bodies can never alias in the cache (the PR 4 rule).
// Description is the one field excluded: it cannot change any computed
// result.

package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// canonFloat renders a float in its shortest exact round-trip form.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonString renders a document-controlled string self-delimited.
func canonString(s string) string {
	return strconv.Quote(s)
}

// CanonicalKey is the scenario's normalized fingerprint, the service
// layer's cache and coalescing identity for POST /v1/scenario.
//
//cachekey:fields v1 Constraints,Hierarchy,Name,SchemaVersion,Workload
func (s *Scenario) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("scn/v1")
	fmt.Fprintf(&b, "|ver=%d", s.SchemaVersion)
	b.WriteString("|name=" + canonString(s.Name))
	b.WriteString("|hier=" + canonString(s.Hierarchy.Name))
	for _, l := range s.Hierarchy.Levels {
		fmt.Fprintf(&b, "|level=%s,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s",
			canonString(l.Name), canonString(l.Kind),
			l.CapacityMbit, l.CapacityKbit, l.InterfaceBits,
			l.Banks, l.PageBits, l.BlockKbit,
			canonString(l.Redundancy), canonString(l.ECC),
			canonFloat(l.TargetClockMHz),
			canonFloat(l.ReadGBps), canonFloat(l.WriteGBps),
			canonFloat(l.ReadEnergyPJBit), canonFloat(l.WriteEnergyPJBit))
		for _, op := range l.Operands {
			b.WriteString(",op=" + canonString(op))
		}
		b.WriteString(",below=" + canonString(l.Below))
	}
	fmt.Fprintf(&b, "|policy=%s|closed=%t|window=%d|target=%s",
		canonString(s.Workload.Policy), s.Workload.ClosedPage,
		s.Workload.ReorderWindow, canonString(s.Workload.Target))
	for _, c := range s.Workload.Clients {
		fmt.Fprintf(&b, "|client=%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%t,%s,level=%s,operand=%s",
			canonString(c.Name), canonString(c.Kind), c.Bits, canonFloat(c.RateGBps), c.Count,
			c.StartB, c.StrideB, c.LimitB, c.WindowB, c.Seed, c.Write,
			canonFloat(c.LatencyBudgetNs), canonString(c.Level), canonString(c.Operand))
	}
	fmt.Fprintf(&b, "|hit=%s|area=%s|power=%s|clock=%s|defects=%s",
		canonFloat(s.Constraints.HitRate), canonFloat(s.Constraints.MaxAreaMm2),
		canonFloat(s.Constraints.MaxPowerMW), canonFloat(s.Constraints.MinClockMHz),
		canonFloat(s.Constraints.DefectsPerCm2))
	return b.String()
}
