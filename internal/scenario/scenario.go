// Package scenario is the declarative scenario language of the
// reproduction: a versioned JSON document describing a named memory
// hierarchy (levels with capacity, per-port read/write bandwidth,
// access energy and operand-to-level allocation), a workload (traffic
// clients mapped onto the levels), and a constraint set. Load/Parse
// read a document with strict field checking; Compile lowers it into
// the existing engine inputs — macro edram.Spec candidates,
// core.Requirements per explorable level, and simulator client
// configurations — so new workloads become data, not code.
//
// The same loader backs POST /v1/scenario on edramd, `edramx
// -scenario` and `memsim -scenario`; the corpus under
// examples/scenarios/ is the shared test fixture set. Validation is
// aggregate in the core.Requirements.Violations style: every problem
// in the document is reported in one error, with identical messages
// from the service and the CLIs.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"edram/internal/edram"
	"edram/internal/reliab"
	"edram/internal/sched"
)

// SchemaVersion is the scenario-document (and wire) schema version this
// loader speaks. The canonical-key tag (scn/v1) tracks it: additive
// schema changes keep the version, key-affecting changes bump both (see
// DESIGN.md "Wire-schema versioning").
const SchemaVersion = 1

// Scenario is one declarative scenario document. The JSON names are the
// on-disk file format and the POST /v1/scenario wire schema at once.
type Scenario struct {
	// SchemaVersion pins the document format; required, must equal
	// SchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Name identifies the scenario; the canonical key renders the full
	// content, so two same-named scenarios with different bodies never
	// alias (the PR 4 cache rule).
	Name string `json:"name"`
	// Description is human documentation; it is the one field excluded
	// from the canonical key (it cannot change any computed result).
	//cachekey:exempt human documentation only; cannot change any computed result
	Description string      `json:"description,omitempty"`
	Hierarchy   Hierarchy   `json:"hierarchy"`
	Workload    Workload    `json:"workload"`
	Constraints Constraints `json:"constraints"`
}

// Hierarchy is the named memory hierarchy: an ordered list of levels
// (file order is compile order — a list, not a map, so no iteration-
// order nondeterminism can leak into responses).
type Hierarchy struct {
	Name   string  `json:"name,omitempty"`
	Levels []Level `json:"levels"`
}

// Level is one memory level of the hierarchy. Kind "edram" levels
// compile to an edram.Spec candidate plus a core.Requirements for the
// design-space explorer; kind "sram" levels compile to a 6T SRAM macro
// summary (the §3 SRAM/DRAM partitioning decision). Unit suffixes are
// part of the field names — the loader rejects unknown spellings, so a
// capacity given in the wrong unit is a load error, not a silent
// misread.
type Level struct {
	Name string `json:"name"`
	// Kind is "edram" or "sram".
	Kind string `json:"kind"`
	// CapacityMbit sizes an edram level (building-block granularity).
	CapacityMbit int `json:"capacity_mbit,omitempty"`
	// CapacityKbit sizes an sram level (sram macros are sub-Mbit).
	CapacityKbit int `json:"capacity_kbit,omitempty"`
	// InterfaceBits is the data interface width (16..512, power of two
	// for edram; the word width for sram).
	InterfaceBits int `json:"interface_bits,omitempty"`
	// Banks, PageBits, BlockKbit, Redundancy, ECC and TargetClockMHz
	// are the edram.Spec free dimensions (zero = auto-derived).
	Banks          int     `json:"banks,omitempty"`
	PageBits       int     `json:"page_bits,omitempty"`
	BlockKbit      int     `json:"block_kbit,omitempty"`
	Redundancy     string  `json:"redundancy,omitempty"`
	ECC            string  `json:"ecc,omitempty"`
	TargetClockMHz float64 `json:"target_clock_mhz,omitempty"`
	// ReadGBps/WriteGBps declare the level's per-port read and write
	// bandwidth demand; the compiled sustained-bandwidth requirement is
	// the larger of this port demand and the allocated clients' sum.
	ReadGBps  float64 `json:"read_gbps,omitempty"`
	WriteGBps float64 `json:"write_gbps,omitempty"`
	// ReadEnergyPJBit/WriteEnergyPJBit declare the level's access
	// energy; with no explicit power cap they derive one
	// (8 mW per GB/s per pJ/bit — see Compile).
	ReadEnergyPJBit  float64 `json:"read_energy_pj_bit,omitempty"`
	WriteEnergyPJBit float64 `json:"write_energy_pj_bit,omitempty"`
	// Operands names the data operands this level holds (the
	// operand-to-level allocation); clients naming an operand must
	// target a level that carries it.
	Operands []string `json:"operands,omitempty"`
	// Below names the next (larger, slower) level this one spills to.
	// References must resolve and the spill chain must be acyclic.
	Below string `json:"below,omitempty"`
}

// Workload is the traffic mix plus the controller configuration the
// simulation runs under.
type Workload struct {
	Clients []Client `json:"clients,omitempty"`
	// Policy is the arbitration scheme by name (see ParsePolicy);
	// "" = round-robin.
	Policy        string `json:"policy,omitempty"`
	ClosedPage    bool   `json:"closed_page,omitempty"`
	ReorderWindow int    `json:"reorder_window,omitempty"`
	// Target names the level `memsim -scenario` simulates; default:
	// the first edram level with allocated clients.
	Target string `json:"target,omitempty"`
}

// Client is one workload client: a ClientSpec allocated to a hierarchy
// level (and optionally to one of the level's operands).
type Client struct {
	ClientSpec
	// Level names the hierarchy level this client hammers (required).
	Level string `json:"level"`
	// Operand optionally names which of the level's operands the
	// client streams; it must be allocated to that level.
	Operand string `json:"operand,omitempty"`
}

// Constraints is the scenario's constraint set, applied to every
// explorable level's requirements.
type Constraints struct {
	// HitRate is the expected page-hit rate of the workload.
	HitRate float64 `json:"hit_rate"`
	// MaxAreaMm2, MaxPowerMW, MinClockMHz cap each level's candidates
	// (0 = unconstrained; a level with declared access energies derives
	// a power cap from them when MaxPowerMW is 0).
	MaxAreaMm2  float64 `json:"max_area_mm2,omitempty"`
	MaxPowerMW  float64 `json:"max_power_mw,omitempty"`
	MinClockMHz float64 `json:"min_clock_mhz,omitempty"`
	// DefectsPerCm2 parameterizes the yield/cost model.
	DefectsPerCm2 float64 `json:"defects_per_cm2,omitempty"`
}

// Parse decodes a scenario document with strict field checking: an
// unknown field (a typo, or a quantity under the wrong unit suffix) is
// an error, not a silently ignored knob. Parse does not validate the
// content — call Violations (or Compile, which refuses invalid
// documents) for that.
func Parse(b []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding document: %w", err)
	}
	if dec.More() {
		return nil, errors.New("scenario: trailing data after JSON document")
	}
	return &s, nil
}

// Load reads and parses a scenario file, then validates it, returning
// the aggregate ViolationsError the service layer produces for the
// same document — one loader, one error vocabulary.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(b)
	if err != nil {
		return nil, err
	}
	if v := s.Violations(0); len(v) > 0 {
		return nil, ViolationsError(v)
	}
	return s, nil
}

// ViolationsError folds a violation list into the single aggregate
// error both the service layer (HTTP 400 body) and the CLIs print.
func ViolationsError(v []string) error {
	return fmt.Errorf("invalid scenario: %s", strings.Join(v, "; "))
}

// levelIndex maps level names to their position; later duplicates are
// not entered (the duplicate itself is reported as a violation).
func (s *Scenario) levelIndex() map[string]int {
	idx := make(map[string]int, len(s.Hierarchy.Levels))
	for i, l := range s.Hierarchy.Levels {
		if _, dup := idx[l.Name]; !dup {
			idx[l.Name] = i
		}
	}
	return idx
}

// validKinds lists the level kinds the loader accepts.
const validKinds = "edram, sram"

// Violations lists every constraint the scenario document violates, in
// document order (empty = valid). maxRequests caps the total simulated
// request count (0 = uncapped) — the service passes its per-request
// limit, the CLIs pass 0.
func (s *Scenario) Violations(maxRequests int64) []string {
	var v []string
	switch {
	case s.SchemaVersion == 0:
		v = append(v, fmt.Sprintf("schema_version is required (this loader speaks %d)", SchemaVersion))
	case s.SchemaVersion != SchemaVersion:
		v = append(v, fmt.Sprintf("unsupported schema_version %d (this loader speaks %d)", s.SchemaVersion, SchemaVersion))
	}
	if s.Name == "" {
		v = append(v, "name is required")
	}
	if len(s.Hierarchy.Levels) == 0 {
		v = append(v, "hierarchy must declare at least one level")
	}
	idx := s.levelIndex()
	seen := make(map[string]bool, len(s.Hierarchy.Levels))
	for i, l := range s.Hierarchy.Levels {
		v = append(v, l.violations(i, idx)...)
		if l.Name != "" && seen[l.Name] {
			v = append(v, fmt.Sprintf("level %d (%s): duplicate level name", i, l.Name))
		}
		seen[l.Name] = true
	}
	v = append(v, s.spillCycles(idx)...)
	v = append(v, s.workloadViolations(idx, maxRequests)...)
	v = append(v, s.constraintViolations(idx)...)
	return v
}

// violations checks one level's own fields; cross-level rules (cycles,
// client references) live on Scenario.
func (l Level) violations(i int, idx map[string]int) []string {
	var v []string
	at := func(format string, args ...any) {
		v = append(v, fmt.Sprintf("level %d (%s): %s", i, l.Name, fmt.Sprintf(format, args...)))
	}
	if l.Name == "" {
		at("name is required")
	}
	switch l.Kind {
	case "edram":
		if l.CapacityMbit <= 0 {
			at("capacity_mbit must be positive, got %d", l.CapacityMbit)
		}
		if l.CapacityKbit != 0 {
			at("capacity_kbit is the sram unit; edram levels are sized in capacity_mbit")
		}
		if l.BlockKbit != 0 && l.BlockKbit != 256 && l.BlockKbit != 1024 {
			at("block_kbit must be 256 or 1024, got %d", l.BlockKbit)
		}
		if l.InterfaceBits != 0 && !validInterface(l.InterfaceBits) {
			at("interface_bits %d outside the concept's 16..512 power-of-two range", l.InterfaceBits)
		}
		if _, err := edram.ParseRedundancy(l.Redundancy); err != nil {
			at("%v", err)
		}
		if _, err := reliab.ParseECC(l.ECC); err != nil {
			at("%v", err)
		}
	case "sram":
		switch {
		case l.CapacityKbit > 0 && l.CapacityMbit != 0:
			at("give capacity_kbit or capacity_mbit, not both")
		case l.CapacityKbit <= 0 && l.CapacityMbit <= 0:
			at("capacity_kbit must be positive, got %d", l.CapacityKbit)
		}
		if l.Banks != 0 || l.PageBits != 0 || l.BlockKbit != 0 || l.Redundancy != "" || l.ECC != "" {
			at("banks, page_bits, block_kbit, redundancy and ecc apply only to edram levels")
		}
	default:
		at("unknown kind %q (%s)", l.Kind, validKinds)
	}
	if l.Banks < 0 || l.PageBits < 0 || l.InterfaceBits < 0 {
		at("geometry fields must be non-negative")
	}
	if l.ReadGBps < 0 || l.WriteGBps < 0 {
		at("port bandwidths must be non-negative, got read %g / write %g GB/s", l.ReadGBps, l.WriteGBps)
	}
	if l.ReadEnergyPJBit < 0 || l.WriteEnergyPJBit < 0 {
		at("access energies must be non-negative, got read %g / write %g pJ/bit", l.ReadEnergyPJBit, l.WriteEnergyPJBit)
	}
	if l.TargetClockMHz < 0 {
		at("target_clock_mhz must be non-negative, got %g", l.TargetClockMHz)
	}
	opSeen := map[string]bool{}
	for _, op := range l.Operands {
		if op == "" {
			at("operand names must be non-empty")
			continue
		}
		if opSeen[op] {
			at("duplicate operand %q", op)
		}
		opSeen[op] = true
	}
	if l.Below != "" {
		if l.Below == l.Name {
			at("level cannot spill to itself")
		} else if _, ok := idx[l.Below]; !ok {
			at("below references unknown level %q", l.Below)
		}
	}
	return v
}

// validInterface reports whether w is a 16..512 power of two.
func validInterface(w int) bool {
	for c := 16; c <= 512; c *= 2 {
		if w == c {
			return true
		}
	}
	return false
}

// spillCycles walks every level's below-chain and reports the first
// cycle each chain closes (each offending level reported once, in
// document order).
func (s *Scenario) spillCycles(idx map[string]int) []string {
	var v []string
	reported := make(map[int]bool)
	for i := range s.Hierarchy.Levels {
		visited := make(map[int]bool)
		path := []string{}
		j := i
		for {
			l := s.Hierarchy.Levels[j]
			visited[j] = true
			path = append(path, l.Name)
			if l.Below == "" || l.Below == l.Name {
				break
			}
			next, ok := idx[l.Below]
			if !ok {
				break
			}
			if visited[next] {
				if !reported[i] {
					v = append(v, fmt.Sprintf("level %d (%s): cyclic below chain: %s -> %s",
						i, s.Hierarchy.Levels[i].Name, strings.Join(path, " -> "), l.Below))
					reported[i] = true
				}
				break
			}
			j = next
		}
	}
	return v
}

// workloadViolations checks the clients and controller options.
func (s *Scenario) workloadViolations(idx map[string]int, maxRequests int64) []string {
	var v []string
	var total int64
	levelNames := make([]string, 0, len(s.Hierarchy.Levels))
	for _, l := range s.Hierarchy.Levels {
		levelNames = append(levelNames, l.Name)
	}
	for i, c := range s.Workload.Clients {
		v = append(v, c.Violations(i, maxRequests)...)
		total += int64(c.Count)
		at := func(format string, args ...any) {
			v = append(v, fmt.Sprintf("client %d (%s): %s", i, c.Name, fmt.Sprintf(format, args...)))
		}
		if c.Level == "" {
			at("level is required (one of: %s)", strings.Join(levelNames, ", "))
			continue
		}
		li, ok := idx[c.Level]
		if !ok {
			at("targets unknown level %q", c.Level)
			continue
		}
		lvl := s.Hierarchy.Levels[li]
		if lvl.Kind != "edram" {
			at("targets %s level %q; simulation clients need an edram level", lvl.Kind, c.Level)
		}
		if c.Operand != "" {
			found := false
			for _, op := range lvl.Operands {
				if op == c.Operand {
					found = true
					break
				}
			}
			if !found {
				at("operand %q is not allocated to level %q (allocated: %s)",
					c.Operand, c.Level, strings.Join(lvl.Operands, ", "))
			}
		}
	}
	if maxRequests > 0 && total > maxRequests {
		v = append(v, fmt.Sprintf("total request count %d exceeds the per-request limit %d", total, maxRequests))
	}
	if _, err := ParsePolicy(s.Workload.Policy); err != nil {
		v = append(v, err.Error())
	}
	if s.Workload.ReorderWindow < 0 {
		v = append(v, fmt.Sprintf("reorder window must be non-negative, got %d", s.Workload.ReorderWindow))
	}
	if t := s.Workload.Target; t != "" {
		if li, ok := idx[t]; !ok {
			v = append(v, fmt.Sprintf("workload target references unknown level %q", t))
		} else if s.Hierarchy.Levels[li].Kind != "edram" {
			v = append(v, fmt.Sprintf("workload target %q is an %s level; simulation needs an edram level",
				t, s.Hierarchy.Levels[li].Kind))
		}
	}
	return v
}

// constraintViolations lowers each edram level into its
// core.Requirements and reports that type's own violations under the
// level's name — the same aggregate messages the explorer's request
// validation produces, so "bandwidth must be positive" reads
// identically whether the input was a scenario file or a raw
// /v1/explore body.
func (s *Scenario) constraintViolations(idx map[string]int) []string {
	var v []string
	checked := 0
	for i, l := range s.Hierarchy.Levels {
		if l.Kind != "edram" || l.CapacityMbit <= 0 {
			continue // structural problems are already reported above
		}
		checked++
		req := s.requirementsFor(l)
		for _, msg := range req.Violations() {
			v = append(v, fmt.Sprintf("level %d (%s): %s", i, l.Name, msg))
		}
	}
	if checked > 0 {
		return v
	}
	// No edram level survived to carry the constraint check (all
	// structurally broken, or an sram-only hierarchy): report the
	// constraint block's own problems directly, in core's vocabulary, so
	// a broken level never masks a broken constraint until a second
	// round-trip.
	c := s.Constraints
	at := func(format string, args ...any) {
		v = append(v, "constraints: "+fmt.Sprintf(format, args...))
	}
	if c.HitRate < 0 || c.HitRate > 1 {
		at("hit rate %g out of [0,1]", c.HitRate)
	}
	if c.MaxAreaMm2 < 0 {
		at("area cap must be non-negative, got %g mm²", c.MaxAreaMm2)
	}
	if c.MaxPowerMW < 0 {
		at("power cap must be non-negative, got %g mW", c.MaxPowerMW)
	}
	if c.MinClockMHz < 0 {
		at("min clock must be non-negative, got %g MHz", c.MinClockMHz)
	}
	if c.DefectsPerCm2 < 0 {
		at("defect density must be non-negative, got %g /cm²", c.DefectsPerCm2)
	}
	return v
}

// ParsePolicy maps an arbitration-policy name to its sched.Policy —
// the one name vocabulary shared by scenario documents, the simulate
// wire schema and the CLIs.
func ParsePolicy(name string) (sched.Policy, error) {
	switch name {
	case "round-robin", "":
		return sched.RoundRobin, nil
	case "fixed-priority", "priority":
		return sched.FixedPriority, nil
	case "oldest-first", "oldest":
		return sched.OldestFirst, nil
	case "open-page-first", "open-page":
		return sched.OpenPageFirst, nil
	case "deadline":
		return sched.Deadline, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (round-robin, fixed-priority, oldest-first, open-page-first, deadline)", name)
	}
}
