// ClientSpec — the declarative form of one memory client — lives here
// so scenario documents, the simulate wire schema and the CLIs share
// one definition (internal/service aliases it). It moved from
// internal/service when the scenario language landed; the JSON names
// are unchanged and remain the /v1/simulate wire schema.

package scenario

import (
	"fmt"
	"math/rand"

	"edram/internal/traffic"
)

// clientKinds lists the generator kinds the loader accepts.
const clientKinds = "sequential, strided, random, alternating"

// ClientSpec is the declarative form of one memory client: a named
// request generator. Kind selects the generator; the geometry fields
// not used by a kind are ignored.
type ClientSpec struct {
	Name string `json:"name"`
	// Kind: "sequential", "strided", "random", "alternating".
	Kind string `json:"kind"`
	// Bits per request (default: the macro interface width).
	Bits int `json:"bits,omitempty"`
	// RateGBps is the bandwidth the client demands.
	RateGBps float64 `json:"rate_gbps"`
	// Count is the number of requests to emit (required: the service
	// refuses unbounded streams).
	Count   int   `json:"count"`
	StartB  int64 `json:"start_b,omitempty"`
	StrideB int64 `json:"stride_b,omitempty"`
	// LimitB wraps sequential/strided streams; WindowB bounds random
	// ones.
	LimitB  int64 `json:"limit_b,omitempty"`
	WindowB int64 `json:"window_b,omitempty"`
	// Seed seeds the random generator (default 1; runs are
	// deterministic for a given seed).
	Seed            int64   `json:"seed,omitempty"`
	Write           bool    `json:"write,omitempty"`
	LatencyBudgetNs float64 `json:"latency_budget_ns,omitempty"`
}

// Violations lists every constraint the client spec violates
// (maxRequests caps Count; 0 = uncapped).
func (c ClientSpec) Violations(i int, maxRequests int64) []string {
	var v []string
	at := func(format string, args ...any) {
		v = append(v, fmt.Sprintf("client %d (%s): %s", i, c.Name, fmt.Sprintf(format, args...)))
	}
	switch c.Kind {
	case "sequential", "strided", "random", "alternating":
	default:
		at("unknown kind %q (%s)", c.Kind, clientKinds)
	}
	if c.Name == "" {
		at("name is required")
	}
	if c.RateGBps <= 0 {
		at("rate must be positive, got %g GB/s", c.RateGBps)
	}
	if c.Count <= 0 {
		at("count must be positive, got %d (unbounded streams are not served)", c.Count)
	} else if maxRequests > 0 && int64(c.Count) > maxRequests {
		at("count %d exceeds the per-request limit %d", c.Count, maxRequests)
	}
	if c.Bits < 0 || c.StartB < 0 || c.StrideB < 0 || c.LimitB < 0 || c.WindowB < 0 {
		at("geometry fields must be non-negative")
	}
	if c.LatencyBudgetNs < 0 {
		at("latency budget must be non-negative, got %g ns", c.LatencyBudgetNs)
	}
	return v
}

// Generator builds the traffic generator for the spec. bits is the
// default request width (the macro interface).
func (c ClientSpec) Generator(i, bits int) traffic.Generator {
	if c.Bits > 0 {
		bits = c.Bits
	}
	switch c.Kind {
	case "strided":
		return &traffic.Strided{ClientID: i, StartB: c.StartB, StrideB: c.StrideB,
			LimitB: c.LimitB, Bits: bits, Write: c.Write, RateGB: c.RateGBps, Count: c.Count}
	case "random":
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		window := c.WindowB
		if window <= 0 {
			window = 1 << 20
		}
		return &traffic.Random{ClientID: i, StartB: c.StartB, WindowB: window, Bits: bits,
			Write: c.Write, RateGB: c.RateGBps, Count: c.Count, Rng: NewSeededRand(seed)}
	case "alternating":
		return &traffic.Alternating{ClientID: i, BaseA: c.StartB, BaseB: c.StartB + c.StrideB,
			Bits: bits, RateGB: c.RateGBps, Count: c.Count}
	default: // "sequential"
		return &traffic.Sequential{ClientID: i, StartB: c.StartB, LimitB: c.LimitB,
			Bits: bits, Write: c.Write, RateGB: c.RateGBps, Count: c.Count}
	}
}

// NewSeededRand returns a deterministic PRNG for the random traffic
// generator — same seed, same request stream, same simulation result.
func NewSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
